"""Shared plumbing for the benchmark suite.

Each benchmark runs one paper experiment end to end (workload
generation, both designs, parameter sweep), prints the
paper-vs-measured table to the terminal and saves it under
``benchmarks/results/``.  ``REPRO_FULL=1`` switches from the trimmed
fast sweeps to the figures' complete axes.
"""

import json
import os

import pytest

from repro.experiments import sweep

#: full sweeps when REPRO_FULL=1, trimmed ones otherwise
FAST = os.environ.get("REPRO_FULL", "") != "1"
SEED = int(os.environ.get("REPRO_SEED", "42"))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_addoption(parser):
    parser.addoption(
        "--jobs", type=int, default=None, metavar="N",
        help="fan experiment sweep points across N worker processes "
             "(default: $REPRO_JOBS or 1; results are bit-identical "
             "to a serial run)")


def pytest_configure(config):
    jobs = config.getoption("--jobs", default=None)
    if jobs is not None:
        if jobs < 1:
            raise pytest.UsageError("--jobs must be >= 1")
        sweep.configure(jobs)


def pytest_unconfigure(config):
    sweep.configure(None)


@pytest.fixture
def run_experiment(benchmark, request):
    """Run an experiment module once under pytest-benchmark timing."""
    capman = request.config.pluginmanager.getplugin("capturemanager")

    def _run(module):
        result = benchmark.pedantic(
            lambda: module.run(fast=FAST, seed=SEED), rounds=1, iterations=1)
        rendered = result.render()
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, "%s.txt" % result.exp_id)
        with open(path, "w") as fh:
            fh.write(rendered + "\n")
        with open(os.path.join(RESULTS_DIR, "%s.json" % result.exp_id),
                  "w") as fh:
            json.dump(result.to_dict(), fh, indent=2, default=str)
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print()
                print(rendered)
        else:
            print(rendered)
        return result

    return _run
