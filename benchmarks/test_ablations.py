"""Ablation benchmarks: design-choice studies beyond the paper's tables.

Each isolates one Lynx design decision (see
``repro/experiments/ablations.py``) and checks the direction of its
effect.
"""

import json
import os

from repro.experiments import ablations

FAST = os.environ.get("REPRO_FULL", "") != "1"
SEED = int(os.environ.get("REPRO_SEED", "42"))

_GOLDEN_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "tests",
                            "fixtures", "golden_ablation_rows.json")
with open(_GOLDEN_PATH) as _fh:
    _GOLDEN = json.load(_fh)


def _bench(benchmark, study):
    result = benchmark.pedantic(lambda: study(fast=FAST, seed=SEED),
                                rounds=1, iterations=1)
    print()
    print(result.render())
    if FAST and SEED == 42:
        # Row parity with the hand-written predecessors: the campaign
        # declarations must reproduce the golden fixed-seed rows (and
        # notes) bit-identically.
        rows = json.loads(json.dumps(result.rows))
        assert rows == _GOLDEN["rows"][result.exp_id], \
            "%s rows drifted from the golden fixture" % result.exp_id
        assert list(result.notes) == _GOLDEN["notes"][result.exp_id], \
            "%s notes drifted from the golden fixture" % result.exp_id
    return result


def test_ablation_gpu_centric(benchmark):
    result = _bench(benchmark, ablations.gpu_centric_comparison)
    lynx = result.find(design="lynx-on-xeon-6core")
    rows = [r for r in result.rows if r["design"].startswith("gpu-centric")]
    # every I/O threadblock carved out of the app costs throughput
    assert all(r["relative"] < 1.0 for r in rows)
    heaviest = min(rows, key=lambda r: r["app_threadblocks"])
    assert heaviest["relative"] < 0.75


def test_ablation_dispatch_policies(benchmark):
    result = _bench(benchmark, ablations.dispatch_policy_study)
    rr = result.find(policy="round-robin")
    ll = result.find(policy="least-loaded")
    # least-loaded cuts the tail created by the 10x requests
    assert ll["p99_us"] <= rr["p99_us"]
    assert ll["krps"] >= 0.9 * rr["krps"]


def test_ablation_coalescing(benchmark):
    result = _bench(benchmark, ablations.coalescing_study)
    on = result.find(coalescing="on")
    off = result.find(coalescing="off")
    assert off["rdma_ops_per_msg"] == on["rdma_ops_per_msg"] + 1
    assert on["p50_us"] < off["p50_us"]


def test_ablation_ring_size(benchmark):
    result = _bench(benchmark, ablations.ring_size_study)
    drops = {r["ring_entries"]: r["drop_rate"] for r in result.rows}
    p50 = {r["ring_entries"]: r["p50_us"] for r in result.rows}
    # bigger rings -> fewer drops but more queueing delay
    assert drops[4] > drops[256]
    assert p50[256] > p50[4]
    # small rings shed most of the 8x bursts at the ring
    assert 0.5 <= drops[4] <= 0.95
    goodput = {r["ring_entries"]: r["goodput_krps"] for r in result.rows}
    assert goodput[256] > goodput[4]


def test_ablation_sweep_interval(benchmark):
    result = _bench(benchmark, ablations.sweep_interval_study)
    fast_poll = result.find(sweep_interval_us=0.5)
    slow_poll = result.find(sweep_interval_us=16.0)
    # doorbell arming keeps latency flat across poll cadences...
    assert abs(fast_poll["p50_us"] - slow_poll["p50_us"])         <= 0.2 * fast_poll["p50_us"]
    # ...while longer intervals batch into far fewer sweeps
    assert slow_poll["sweeps"] < 0.75 * fast_poll["sweeps"]


def test_ablation_connection_scaling(benchmark):
    result = _bench(benchmark, ablations.connection_scaling_study)
    rows = result.rows
    # accelerator-side state never grows with the connection count
    assert all(r["accel_rings"] == rows[0]["accel_rings"] for r in rows)
    # throughput saturates; the largest population does not collapse
    assert rows[-1]["krps"] >= 0.85 * max(r["krps"] for r in rows)


def test_ablation_driver_contention(benchmark):
    result = _bench(benchmark, ablations.driver_contention_study)
    by_cores = {r["cores"]: r["krps"] for r in result.rows}
    # §6.1/§6.4: best at 1-2 cores, then the driver lock wins
    assert max(by_cores, key=by_cores.get) in (1, 2)
    assert by_cores[6] < by_cores[2]


def test_ablation_projected_innova(benchmark):
    result = _bench(benchmark, ablations.projected_innova_study)
    innova = result.rows[0]
    bluefield = result.rows[1]
    # the AFU serves rx+tx through one pipeline: full loop ~= half the
    # 7.4M pps rx-only rate, still many times the Bluefield
    assert 3.0 <= innova["mpps"] <= 4.0
    assert bluefield["vs_bluefield"] >= 4.0
