"""Benchmark BRK — §6.2 latency breakdown (paper: 14us Bluefield vs
11us host from UDP-done to response-ready with a zero-time kernel)."""

from repro.experiments import breakdown as exp


def test_latency_breakdown(run_experiment):
    result = run_experiment(exp)
    bf = result.find(platform="bluefield")
    xeon = result.find(platform="xeon")
    assert 9.0 <= bf["snic_span_total"] <= 17.0   # paper: 14
    assert 7.0 <= xeon["snic_span_total"] <= 13.5  # paper: 11
    assert bf["snic_span_total"] > xeon["snic_span_total"]
    # stage accounting must cover the whole span
    for row in (bf, xeon):
        stages = (row["dispatch"] + row["rdma_delivery"]
                  + row["accel_poll"] + row["doorbell_sweep"])
        assert stages <= row["snic_span_total"] * 1.05
