"""Doorbell-batching benchmark for the Channel layer (§5.2).

Runs the two delivery-heavy experiments (E09 LeNet serving and the E04
saturation grid) in fast mode twice — ``LynxProfile.batch_size = 1``
(every ingress message posts its own RDMA doorbell) versus
``batch_size = 8`` (the RMQ manager coalesces backlogged deliveries
into one doorbell per batch) — and compares the DES kernel's own event
counters.  Coalescing collapses per-message RDMA op ladders into
per-batch ladders, so the simulated-event count must drop; wall-clock
should drop with it (bounded noise margin, recorded raw in
``benchmarks/results/channel_batching.json``).

The two experiments bracket the design intent: E04 drives the server
into saturation, where backlogs form and batching engages heavily
(~6% fewer kernel events); E09's moderate offered load coalesces only
occasionally — a batch of one posts immediately, so the reduction is
small but deterministic.  Both assertions are exact-count comparisons
under the fixed seed, not wall-clock heuristics.
"""

import json
import os
import time
from dataclasses import replace
from importlib import import_module

import pytest

from repro.config import DEFAULT_CONFIG
from repro.experiments import testbed
from repro.sim import kernel_totals, reset_kernel_totals

from conftest import RESULTS_DIR, SEED

RESULTS_PATH = os.path.join(RESULTS_DIR, "channel_batching.json")

BATCH_SIZE = 8


def _save(section, payload):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    data = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as fh:
            data = json.load(fh)
    data[section] = payload
    with open(RESULTS_PATH, "w") as fh:
        json.dump(data, fh, indent=2)


def _measured_run(module, batch_size):
    """(events_processed, wall_seconds) of one fast experiment run."""
    mod = import_module("repro.experiments." + module)
    config = DEFAULT_CONFIG.with_(
        lynx=replace(DEFAULT_CONFIG.lynx, batch_size=batch_size))
    testbed.set_active_config(config)
    reset_kernel_totals()
    t0 = time.perf_counter()
    try:
        mod.run(fast=True, seed=SEED)
    finally:
        testbed.set_active_config(None)
    wall = time.perf_counter() - t0
    return kernel_totals()["events_processed"], wall


@pytest.mark.parametrize("module", [
    "e09_fig8a_lenet",
    "e04_fig6_throughput_grid",
])
def test_batching_reduces_kernel_events(module):
    unbatched_events, unbatched_wall = _measured_run(module, 1)
    batched_events, batched_wall = _measured_run(module, BATCH_SIZE)
    reduction = 1.0 - batched_events / unbatched_events
    _save(module, {
        "batch_size": BATCH_SIZE,
        "unbatched_events": unbatched_events,
        "batched_events": batched_events,
        "event_reduction": round(reduction, 4),
        "unbatched_wall_seconds": round(unbatched_wall, 3),
        "batched_wall_seconds": round(batched_wall, 3),
    })
    assert batched_events < unbatched_events, (
        "%s: batch_size=%d processed %d events vs %d unbatched"
        % (module, BATCH_SIZE, batched_events, unbatched_events))
    # Fewer events must not cost wall-clock: allow measurement noise.
    assert batched_wall <= unbatched_wall * 1.15, (
        "%s: batched run slower (%.3fs vs %.3fs)"
        % (module, batched_wall, unbatched_wall))
