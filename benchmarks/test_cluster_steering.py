"""VIP steering benchmark: batched RX-ring drain vs one-wakeup-per-msg.

Isolates the :class:`~repro.net.cluster.L4LoadBalancer` hot path: a
preloaded VIP RX ring of keyed GETs steered across 8 mute replicas
through the full p2c pipeline (key extraction, ring lookup, two depth
probes, destination rewrite, fabric re-injection).  The A side drains
the ring in batches of up to 64 (one get-arm, one callback, one defer
per *batch*); the B side is the scalar baseline (``batched=False``, the
same ladder per *message*).  The simulated steering work is identical —
``steer_cost`` is charged per message in both modes — so the comparison
is pure host-side drain-loop overhead.

Two gates, strongest first:

* **kernel events** — batching must collapse the per-message wakeup
  ladder: exact counts under the fixed seed, deterministic on any
  machine (the same style as ``test_channel_batching``).
* **wall-clock** — rounds interleave the two modes (A/B/A/B...) so
  machine-speed drift lands on both sides; the recorded ``best_ratio``
  (best batched:scalar steered-per-wall-second across rounds) feeds
  ``tools/check_bench_regression.py``, with ``ratio_floor`` pinned
  well below the dev-machine band (measures 1.25-1.5x) so VM drift
  cannot flake the gate.
"""

import json
import os
import time

from repro.apps.memcached import encode_get
from repro.net import ConsistentHashRing, L4LoadBalancer, Network
from repro.net.packet import Address, Message
from repro.sim import (
    Environment,
    RngRegistry,
    Store,
    kernel_totals,
    reset_kernel_totals,
)

from conftest import RESULTS_DIR, SEED

RESULTS_PATH = os.path.join(RESULTS_DIR, "cluster_steering.json")

VIP = "10.0.0.100"
#: steered requests per round; hot-key space wraps at 512 users
MESSAGES = 40000
BACKENDS = 8
ROUNDS = 4
#: the batched drain must shed at least this fraction of kernel events
#: (measures 0.328 exactly under the fixed drain geometry)
EVENT_REDUCTION_FLOOR = 0.25
#: absolute wall-clock acceptance bar for check_bench_regression.py;
#: dev machine measures 1.25-1.5x, floor sits below the drift band
RATIO_FLOOR = 1.05


def _save(section, payload):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    data = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as fh:
            data = json.load(fh)
    data[section] = payload
    with open(RESULTS_PATH, "w") as fh:
        json.dump(data, fh, indent=2)


class _MutePort:
    """A replica that absorbs steered frames and never answers."""

    def __init__(self, env):
        self.rx = Store(env)


def _steer_round(batched, seed):
    """(steered_per_wall_second, events_processed) for one drain mode."""
    reset_kernel_totals()
    env = Environment()
    net = Network(env)
    ips = ["10.0.0.%d" % (i + 1) for i in range(BACKENDS)]
    ring = ConsistentHashRing(ips)
    lb = L4LoadBalancer(env, net, VIP, policy="p2c", rng=RngRegistry(seed),
                        ring=ring, replication=2, steer_cost=0.1,
                        rx_ring=MESSAGES + 1, batched=batched)
    for ip in ips:
        net.attach(ip, _MutePort(env))
        lb.add_backend(Address(ip, 11211))
    vip = Address(VIP, 11211)
    src = Address("10.0.9.9", 1000)
    msgs = [Message(src, vip, encode_get(b"user-%05d" % (i % 512)))
            for i in range(MESSAGES)]
    t0 = time.perf_counter()
    for msg in msgs:
        lb.rx.try_put(msg)
    env.run()
    wall = time.perf_counter() - t0
    assert lb.steered == MESSAGES, (
        "steered %d of %d messages" % (lb.steered, MESSAGES))
    return MESSAGES / wall, kernel_totals()["events_processed"]


def test_batched_steering_beats_scalar_drain():
    rounds = []
    best = None
    scalar_events = batched_events = None
    for i in range(ROUNDS):
        # Interleave within the round so drift hits both modes alike.
        s_rate, scalar_events = _steer_round(False, SEED + i)
        b_rate, batched_events = _steer_round(True, SEED + i)
        entry = {
            "scalar_steered_per_sec": round(s_rate),
            "batched_steered_per_sec": round(b_rate),
            "ratio": round(b_rate / s_rate, 2),
        }
        rounds.append(entry)
        if best is None or entry["ratio"] > best["ratio"]:
            best = entry
    event_reduction = 1.0 - batched_events / scalar_events
    _save("batched_vs_scalar_steering", {
        "messages": MESSAGES,
        "backends": BACKENDS,
        "policy": "p2c",
        "scalar_events": scalar_events,
        "batched_events": batched_events,
        "event_reduction": round(event_reduction, 4),
        "best_ratio": best["ratio"],
        "ratio_floor": RATIO_FLOOR,
        "rounds": rounds,
    })
    # Deterministic gate: the batch ladder must collapse wakeup events.
    assert batched_events < scalar_events
    assert event_reduction >= EVENT_REDUCTION_FLOOR, (
        "batched drain shed only %.1f%% of kernel events (floor %.0f%%)"
        % (100 * event_reduction, 100 * EVENT_REDUCTION_FLOOR))
    # Wall-clock gate: best-of-rounds ratio above the drift-proof floor.
    assert best["ratio"] >= RATIO_FLOOR, (
        "batched steering only %.2fx the scalar drain (floor %.2fx): "
        "%s/s vs %s/s"
        % (best["ratio"], RATIO_FLOOR, best["batched_steered_per_sec"],
           best["scalar_steered_per_sec"]))
