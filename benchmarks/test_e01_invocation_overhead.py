"""Benchmark E01 — §3.2 GPU invocation overhead (paper: 130us e2e,
~30us overhead for a 100us kernel)."""

from repro.experiments import e01_invocation_overhead as exp


def test_e01_invocation_overhead(run_experiment):
    result = run_experiment(exp)
    row = result.find(kernel_us=100.0)
    # overhead within +-40% of the paper's 30us and constant across rows
    assert 18 <= row["overhead_us"] <= 42
    overheads = result.column("overhead_us")
    assert max(overheads) - min(overheads) < 2.0
