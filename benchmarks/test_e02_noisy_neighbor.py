"""Benchmark E02 — §3.2 noisy neighbour (paper: 13x p99, 21% matmul
slowdown)."""

from repro.experiments import e02_noisy_neighbor as exp


def test_e02_noisy_neighbor(run_experiment):
    result = run_experiment(exp)
    noisy = result.find(config="with noisy neighbour")
    assert 7.0 <= noisy["p99_ratio"] <= 20.0
    assert 1.10 <= noisy["matmul_slowdown"] <= 1.35
