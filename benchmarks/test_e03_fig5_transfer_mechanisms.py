"""Benchmark E03 — Figure 5 mqueue access mechanisms (paper: RDMA wins,
most at small payloads)."""

from repro.experiments import e03_fig5_transfer_mechanisms as exp


def test_e03_fig5_transfer_mechanisms(run_experiment):
    result = run_experiment(exp)
    small = result.rows[0]
    large = result.rows[-1]
    # ordering at small payloads: rdma/rdma > rdma/gdr > cuda/gdr > base
    assert small["rdma_rdma"] > small["rdma_gdr"] > small["cuda_gdr"] > 1.0
    # the RDMA advantage shrinks as payloads grow
    assert large["rdma_rdma"] < small["rdma_rdma"]
    assert 1.5 <= large["rdma_rdma"] <= 4.0
