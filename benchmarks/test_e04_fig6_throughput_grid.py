"""Benchmark E04 — Figure 6 throughput grid (paper: BF ~2x host-centric
at 20us/1mq, up to ~15.3x with many mqueues)."""

from repro.experiments import e04_fig6_throughput_grid as exp


def test_e04_fig6_throughput_grid(run_experiment):
    result = run_experiment(exp)
    short_one = result.find(exec_us=20.0, mqueues=1)
    short_many = result.find(exec_us=20.0, mqueues=240)
    assert 1.4 <= short_one["lynx_bluefield"] <= 2.6  # paper: 2x
    assert 10.0 <= short_many["lynx_bluefield"] <= 25.0  # paper: 15.3x
    # Bluefield always beats a single Xeon core at high mqueue counts
    assert short_many["lynx_bluefield"] > short_many["lynx_xeon1"]
    # ...but trails 6 Xeon cores for short requests
    assert short_many["lynx_bluefield"] < short_many["lynx_xeon6"]
