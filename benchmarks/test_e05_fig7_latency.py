"""Benchmark E05 — Figure 7 Bluefield vs Xeon latency (paper: <=1.4x,
converging for runtimes >= ~150us)."""

import os

from repro.experiments import e05_fig7_latency as exp

FAST = os.environ.get("REPRO_FULL", "") != "1"


def test_e05_fig7_latency(run_experiment):
    result = run_experiment(exp)
    # The fast preset probes open-loop production load: arrivals land
    # mid-sweep, so high mqueue counts cost Bluefield more than the
    # paper's phase-locked ping-pong (which the full preset reproduces).
    cap, converged = (2.0, 1.2) if FAST else (1.75, 1.15)
    for row in result.rows:
        assert row["slowdown"] <= cap  # paper: <=1.4 (ping-pong)
        if row["runtime_us"] >= 200:
            assert row["slowdown"] <= converged
    short = result.find(runtime_us=result.rows[0]["runtime_us"], mqueues=1)
    assert short["slowdown"] >= 1.1  # Bluefield is slower for short reqs
