"""Benchmark E05 — Figure 7 Bluefield vs Xeon latency (paper: <=1.4x,
converging for runtimes >= ~150us)."""

from repro.experiments import e05_fig7_latency as exp


def test_e05_fig7_latency(run_experiment):
    result = run_experiment(exp)
    for row in result.rows:
        assert row["slowdown"] <= 1.75  # paper: <=1.4
        if row["runtime_us"] >= 200:
            assert row["slowdown"] <= 1.15
    short = result.find(runtime_us=result.rows[0]["runtime_us"], mqueues=1)
    assert short["slowdown"] >= 1.1  # Bluefield is slower for short reqs
