"""Benchmark E06 — §6.2 receive throughput (paper: Innova 7.4M pps,
Bluefield 0.5M, CPU-centric ~80x slower than Innova)."""

from repro.experiments import e06_innova as exp


def test_e06_innova_vs_bluefield(run_experiment):
    result = run_experiment(exp)
    innova = result.find(platform="innova-afu")
    bluefield = result.find(platform="bluefield")
    host = result.find(platform="host-centric-6core")
    assert 6.5 <= innova["mpps"] <= 8.0  # paper: 7.4
    assert 0.35 <= bluefield["mpps"] <= 0.85  # paper: 0.5
    assert host["vs_innova"] > 40  # paper: ~80x
    assert innova["mpps"] > bluefield["mpps"] > host["mpps"]
