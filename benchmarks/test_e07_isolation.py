"""Benchmark E07 — §6.2 performance isolation (paper: no interference
when Lynx runs on the Bluefield)."""

from repro.experiments import e07_isolation as exp


def test_e07_isolation(run_experiment):
    result = run_experiment(exp)
    noisy = result.find(config="lynx-bluefield + noisy neighbour")
    assert noisy["p99_ratio"] <= 1.10  # vs ~13x in the host-centric run
