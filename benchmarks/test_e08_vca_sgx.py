"""Benchmark E08 — §6.2 VCA SGX echo (paper: 56us p90 via Lynx, ~4.3x
lower than the host-bridge baseline)."""

from repro.experiments import e08_vca_sgx as exp


def test_e08_vca_sgx(run_experiment):
    result = run_experiment(exp)
    lynx = result.rows[0]
    assert 40 <= lynx["p90_us"] <= 75  # paper: 56
    assert 3.0 <= lynx["speedup"] <= 6.0  # paper: 4.3
