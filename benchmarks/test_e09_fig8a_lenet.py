"""Benchmark E09 — Figure 8a LeNet service (paper: 3.5K req/s Lynx vs
2.8K host-centric; p90 ~295-300us)."""

from repro.experiments import e09_fig8a_lenet as exp


def test_e09_fig8a_lenet(run_experiment):
    result = run_experiment(exp)
    hc = result.find(design="host-centric", proto="udp")
    bf = result.find(design="lynx-bluefield", proto="udp")
    xeon = result.find(design="lynx-xeon-1core", proto="udp")
    assert 3.3 <= bf["krps"] <= 3.65  # paper: 3.5, GPU max 3.6
    assert abs(bf["krps"] - xeon["krps"]) / xeon["krps"] < 0.05
    assert bf["krps"] / hc["krps"] >= 1.15  # paper: +25%
    assert 270 <= bf["p90_us"] <= 360  # paper: ~300
    assert hc["p90_us"] > bf["p90_us"]  # paper: 14% slower
