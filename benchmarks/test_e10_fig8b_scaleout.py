"""Benchmark E10 — Figure 8b remote-GPU scale-out (paper: linear up to
12 GPUs across 3 machines; +8us for remote GPUs)."""

from repro.experiments import e10_fig8b_scaleout as exp


def test_e10_fig8b_scaleout(run_experiment):
    result = run_experiment(exp)
    for row in result.rows:
        assert row["scaling_efficiency"] >= 0.93  # linear scaling
    twelve = result.find(gpus=12)
    assert 36.0 <= twelve["krps"] <= 43.0  # paper: ~39.6
