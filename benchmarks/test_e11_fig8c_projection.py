"""Benchmark E11 — Figure 8c scalability projection (paper knees: UDP
102/74 GPUs, TCP 15/7 for Bluefield / one Xeon core)."""

from repro.experiments import e11_fig8c_projection as exp


def test_e11_fig8c_projection(run_experiment):
    result = run_experiment(exp)
    knees = {(r["platform"], r["proto"]): r["knee_estimate"]
             for r in result.rows if r["gpus"] == "knee"}
    assert 80 <= knees[("bluefield", "udp")] <= 120  # paper: 102
    assert 60 <= knees[("xeon", "udp")] <= 88        # paper: 74
    assert 11 <= knees[("bluefield", "tcp")] <= 19   # paper: 15
    assert 5 <= knees[("xeon", "tcp")] <= 9          # paper: 7
    # orderings: BF > Xeon core; UDP >> TCP
    assert knees[("bluefield", "udp")] > knees[("xeon", "udp")]
    assert knees[("xeon", "udp")] > 3 * knees[("bluefield", "tcp")]
