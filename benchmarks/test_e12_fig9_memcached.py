"""Benchmark E12 — Figure 9 memcached placement (paper: 250Ktps/Xeon
core @15us; Bluefield 400Ktps @160us; LeNet constant 3.5K)."""

from repro.experiments import e12_fig9_memcached as exp


def test_e12_fig9_memcached(run_experiment):
    result = run_experiment(exp)
    config_a = result.rows[0]
    tput_opt = result.rows[1]
    lat_opt = result.rows[2]
    # ~250 Ktps per Xeon core
    assert 1200 <= config_a["memcached_ktps"] <= 1800
    # Bluefield: high throughput at much higher latency
    assert 250 <= tput_opt["bf_memcached_ktps"] <= 520  # paper: 400
    assert tput_opt["bf_p99_us"] > 5 * config_a["memcached_p99_us"]
    # under the latency SLO the Bluefield contributes nothing
    assert lat_opt["memcached_ktps"] < config_a["memcached_ktps"]
    # LeNet unaffected by placement
    for row in result.rows:
        assert 3.3 <= row["lenet_krps"] <= 3.65
