"""Benchmark E13 — §6.4 Face Verification (paper: Lynx 4.4-4.6x the
best host-centric config; measured ~3x, see the deviation note)."""

from repro.experiments import e13_facever as exp


def test_e13_facever(run_experiment):
    result = run_experiment(exp)
    hc2 = result.find(design="host-centric 2 cores (best)")
    xeon = result.find(design="lynx on xeon (2 cores)")
    bf = result.find(design="lynx on bluefield")
    assert xeon["speedup"] >= 2.0  # paper: 4.6 (see deviation note)
    assert bf["speedup"] >= 2.0    # paper: 4.4
    # Bluefield within ~10% of Xeon (paper: ~5% behind)
    assert abs(bf["krps"] - xeon["krps"]) / xeon["krps"] < 0.10
    assert hc2["krps"] > result.find(design="host-centric 1 core")["krps"]
