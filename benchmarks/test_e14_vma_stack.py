"""Benchmark E14 — §5.1.1 VMA bypass (paper: 4x on Bluefield ARM, 2x on
the host Xeon)."""

from repro.experiments import e14_vma_stack as exp


def test_e14_vma_stack(run_experiment):
    result = run_experiment(exp)
    bf = result.find(platform="bluefield")
    xeon = result.find(platform="xeon")
    assert bf["stack_cost_ratio"] == 4.0
    assert xeon["stack_cost_ratio"] == 2.0
    assert bf["e2e_ratio"] > xeon["e2e_ratio"] > 1.0
