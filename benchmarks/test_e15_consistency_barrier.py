"""Benchmark E15 — §5.1 GPU consistency write barrier (paper: ~5us
extra per message, coalescing disabled)."""

from repro.experiments import e15_consistency_barrier as exp


def test_e15_consistency_barrier(run_experiment):
    result = run_experiment(exp)
    fenced = result.find(mode="write barrier (3 transactions)")
    assert 4.0 <= fenced["extra_us"] <= 9.0  # paper: ~5
    plain = result.find(mode="coalesced (workaround off)")
    assert fenced["rdma_ops_per_msg"] == plain["rdma_ops_per_msg"] + 2
