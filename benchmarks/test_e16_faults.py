"""Benchmark E16 — goodput and p99 under escalating fault schedules
(extension beyond the paper: §5.1 error model end to end)."""

from repro.experiments import e16_faults as exp
from repro.experiments.common import HOST_CENTRIC, LYNX_BLUEFIELD


def test_e16_faults(run_experiment):
    result = run_experiment(exp)
    for design in (HOST_CENTRIC, LYNX_BLUEFIELD):
        clean = result.find(design=design, level="none")
        worst = result.find(design=design, level="loss+stall+outage")
        assert clean["injected"] == 0 and clean["retries"] == 0
        assert worst["injected"] > 0
        assert worst["goodput_krps"] < clean["goodput_krps"]
    # Lynx degrades gracefully: it sheds with error responses while the
    # accelerator is dark instead of parking requests.
    assert result.find(design=LYNX_BLUEFIELD,
                       level="loss+stall+outage")["shed"] > 0
