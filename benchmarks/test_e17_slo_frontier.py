"""Benchmark E17 — sustainable throughput at a p99 SLO, searched by
bisection over the flyweight population plane (extension beyond the
paper: the capacity-planning number behind Figs 8a/9)."""

from repro.experiments import e17_slo_frontier as exp
from repro.experiments.common import HOST_CENTRIC, LYNX_BLUEFIELD


def test_e17_slo_frontier(run_experiment):
    result = run_experiment(exp)
    for workload in exp.WORKLOADS:
        for design in (HOST_CENTRIC, LYNX_BLUEFIELD):
            row = result.find(workload=workload, design=design)
            assert row["sustainable_krps"] > 0
            assert row["p99_at_knee_us"] <= row["slo_p99_us"]
            assert row["goodput_at_knee"] >= exp.GOODPUT_FLOOR
    # The paper's §6.3 story restated as a frontier: Lynx's GPU service
    # sustains more load at the SLO than the host-centric baseline.
    lenet = {d: result.find(workload="lenet", design=d)["sustainable_krps"]
             for d in (HOST_CENTRIC, LYNX_BLUEFIELD)}
    assert lenet[LYNX_BLUEFIELD] > lenet[HOST_CENTRIC]
    # And §6.4's placement caution: under a tight tail SLO the host
    # Xeon cores out-sustain the Bluefield ARM placement.
    mc = {d: result.find(workload="memcached", design=d)["sustainable_krps"]
          for d in (HOST_CENTRIC, LYNX_BLUEFIELD)}
    assert mc[HOST_CENTRIC] > mc[LYNX_BLUEFIELD]
