"""Benchmark E18 — multi-rack cluster scale-out behind a SmartNIC L4
VIP (extension beyond the paper: the Lovelock-style cluster tier of
DESIGN.md §4.15)."""

from repro.experiments import e18_cluster as exp


def test_e18_cluster_scaleout(run_experiment):
    result = run_experiment(exp)
    # Queue-aware steering beats the depth-blind rotation on the tail.
    p2c = result.find(variant="baseline")
    rr = result.find(variant="policy=round_robin")
    assert p2c["p99_us"] < rr["p99_us"]
    # A quarter of the replicas cannot carry the same offered load.
    small = result.find(variant="nodes=2")
    assert small["goodput_krps"] < p2c["goodput_krps"]
    assert small["p99_us"] > p2c["p99_us"]
    # The rack-1 outage degrades but never zeroes the cluster.
    fo = result.find(variant="failover=True")
    assert 0 < fo["goodput_krps"] < p2c["goodput_krps"]
    assert fo["rack_down_drops"] > 0
