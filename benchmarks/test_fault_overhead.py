"""The fault layer's zero-overhead guarantee, measured.

Runs one Channel-heavy closed-loop workload twice per round — once
plain, once with a :class:`~repro.faults.FaultInjector` armed with an
empty schedule — interleaved, and records the ratio of the two
min-of-rounds wall-clocks in ``benchmarks/results/fault_overhead.json``.

The ratio is stored as the section's ``measured_seconds`` with a
``machine_speed_factor`` of 1.0: a ratio is machine-independent, so the
committed baseline pins 1.0 and ``tools/check_bench_regression.py
--threshold 0.02`` turns "unarmed fault hooks cost < 2%" into a CI
gate with no calibration loop needed.

The two runs must also process identical event counts — the armed
injector may not consume a single schedule slot — which doubles as a
cheap bit-identity check on every benchmark run.
"""

import json
import os
import time

from repro.config import XEON_E5_2620, XEON_VMA
from repro.faults import FaultInjector, FaultSchedule
from repro.hw.cpu import CorePool
from repro.hw.nic import Nic
from repro.net import Address, Client, ClosedLoopGenerator, Network
from repro.net.packet import UDP
from repro.net.stack import NetworkStack
from repro.sim import Environment, RngRegistry

from conftest import RESULTS_DIR

RESULTS_PATH = os.path.join(RESULTS_DIR, "fault_overhead.json")

ROUNDS = 12
HORIZON_US = 15000.0
CONCURRENCY = 16


class _EchoServer:
    def __init__(self, env, network, ip, port):
        self.nic = Nic(env, network, ip)
        self.env = env
        self.pool = CorePool(env, XEON_E5_2620, count=4)
        self.stack = NetworkStack(env, self.pool, XEON_VMA)
        self.stack.listen(port)
        env.process(self._loop())

    def _loop(self):
        while True:
            msg = yield self.nic.recv()
            if self.stack.handle_control(msg, self.nic):
                continue
            yield self.env.timeout(2.0)
            yield from self.nic.send(
                msg.reply(msg.payload, created_at=self.env.now))


def _workload(armed):
    env = Environment()
    network = Network(env)
    rng = RngRegistry(5)
    _EchoServer(env, network, "10.0.0.1", 7777)
    if armed:
        FaultInjector(FaultSchedule()).arm(env=env, network=network, rng=rng)
    client = Client(env, network, "10.0.1.1", rng=rng)
    ClosedLoopGenerator(env, client, Address("10.0.0.1", 7777),
                        concurrency=CONCURRENCY,
                        payload_fn=lambda i: b"x" * 64, proto=UDP)
    t0 = time.perf_counter()
    env.run(until=HORIZON_US)
    return time.perf_counter() - t0, env._eid


def test_unarmed_fault_layer_costs_nothing():
    plain_times, armed_times = [], []
    for round_no in range(ROUNDS):
        # Alternate which variant runs first: a fixed order folds CPU
        # warm-up and frequency drift into the ratio.
        order = (False, True) if round_no % 2 == 0 else (True, False)
        for armed in order:
            dt, eid = _workload(armed=armed)
            (armed_times if armed else plain_times).append(dt)
            if armed:
                armed_eid = eid
            else:
                plain_eid = eid
        # Bit-identity first: an armed-but-empty injector must not
        # consume a single schedule slot.
        assert armed_eid == plain_eid
    ratio = min(armed_times) / min(plain_times)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    data = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as fh:
            data = json.load(fh)
    data["fault_unarmed_overhead"] = {
        "measured_seconds": round(ratio, 4),
        "machine_speed_factor": 1.0,
        "plain_seconds": round(min(plain_times), 4),
        "armed_seconds": round(min(armed_times), 4),
        "rounds": ROUNDS,
        "events_per_run": plain_eid,
    }
    with open(RESULTS_PATH, "w") as fh:
        json.dump(data, fh, indent=2)
    # Loose local bound (min-of-N absorbs load spikes, but a sustained
    # burst can still skew one side); the CI gate compares the recorded
    # ratio against the committed 1.0 baseline at --threshold 0.02.
    assert ratio < 1.10, (
        "armed-but-empty fault layer cost %.1f%% wall-clock"
        % (100 * (ratio - 1)))
