"""Simulator-throughput benchmarks for the DES kernel fast path.

Five measurements, written to ``benchmarks/results/kernel_throughput.json``:

* **kernel churn** — a pure event ping-pong through the run loop
  (pooled charges, no model code), reported as events/second from the
  kernel's own counters; measured per scheduler backend (heap and
  wheel), each gated against its own recorded floor;
* **landing churn** — the workload the calendar-queue backend exists
  for: homogeneous 64-message Channel bursts coalesced by the landing
  table into vectorized deliveries.  Run as interleaved heap/wheel
  pairs and gated on the wheel:heap rate ratio (>= 2x, DESIGN.md
  §4.11) so the gate is immune to machine-speed drift;
* **E09 / E04 fast runs** — wall-clock of the two experiment runs the
  fast-path work targeted (LeNet serving and the Fig 6 saturation
  grid), compared against the pre-optimisation baseline.

The baseline numbers were measured on the development machine from the
pre-PR tree (git 244c300), back-to-back with the optimised runs on an
idle machine.  To compare fairly on other hardware, a short
pure-python calibration loop scales the baseline by the speed ratio
between this machine and the one the baseline was recorded on.
Wall-clock assertions keep a noise margin; the JSON records the raw
numbers.
"""

import json
import os
import time

import pytest

from repro.sim import Environment, WheelEnvironment
from repro.sim.channel import Channel

from conftest import RESULTS_DIR, SEED

#: pre-PR (git 244c300) fast-run wall-clock, idle dev machine, seed 42.
#: E09 is best-of-3; E04 is a single run (it takes ~45 s).
BASELINE_E09_SECONDS = 1.224
BASELINE_E04_SECONDS = 44.617

#: best-of-3 of :func:`_calibration_loop` on the machine the baselines
#: were recorded on.
BASELINE_CALIBRATION_SECONDS = 0.1944

#: post-optimisation dev-machine churn rate was ~1.07M events/s; the
#: floor asserts half of that, machine-scaled.
DEV_CHURN_EVENTS_PER_SEC = 1.07e6

#: the wheel backend's dev-machine rate on the same churn workload
#: (~1.09x the heap — the two-queue core wins modestly on charge
#: ping-pong; its big wins are the landing bursts gated below).
DEV_CHURN_WHEEL_EVENTS_PER_SEC = 1.15e6

#: minimum wheel:heap rate ratio on the landing-burst workload (dev
#: machine measured ~3.8x median over interleaved pairs; the gate
#: keeps margin for noisy hosts).
LANDING_RATIO_FLOOR = 2.0

RESULTS_PATH = os.path.join(RESULTS_DIR, "kernel_throughput.json")


def _calibration_loop(iterations=5_000_000):
    """A pure-python spin whose duration tracks interpreter speed."""
    t0 = time.perf_counter()
    x = 0
    for i in range(iterations):
        x += i
    return time.perf_counter() - t0


def _machine_speed_factor():
    """How much slower this machine is than the baseline machine.

    > 1.0 means slower (baselines are scaled up), < 1.0 means faster.
    """
    calib = min(_calibration_loop() for _ in range(3))
    return calib / BASELINE_CALIBRATION_SECONDS, calib


def _save(section, payload):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    data = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as fh:
            data = json.load(fh)
    data[section] = payload
    with open(RESULTS_PATH, "w") as fh:
        json.dump(data, fh, indent=2)


def _churn(env, chains=64, horizon=20000.0):
    """Pure kernel load: *chains* concurrent unit-charge ping-pongs."""

    def hop(event, env=env):
        if env.now < horizon:
            env.charge(1.0).callbacks.append(hop)

    for _ in range(chains):
        env.charge(1.0).callbacks.append(hop)
    env.run(until=horizon)
    return env.kernel_stats()


def _landing_churn(env, horizon=5000.0):
    """The landing table's target load: 64-push homogeneous bursts on
    one Channel every microsecond, drained in batches.  On the heap
    each burst costs 64 pooled defer events; on the wheel it coalesces
    into one flush entry plus a bulk sink extend."""
    chan = Channel(env, "bench", latency=1.0)

    def pump(_e, env=env, chan=chan):
        for _ in range(64):
            chan.push(0, 64)
        chan.recv_batch()
        if env.now < horizon:
            env.defer(1.0, pump)

    env.defer(1.0, pump)
    env.run()
    return env.kernel_stats()


def _churn_section(stats, factor, calib, floor, backend):
    rate = stats["events_processed"] / stats["wall_seconds"]
    return rate, {
        "backend": backend,
        "events_processed": stats["events_processed"],
        "wall_seconds": round(stats["wall_seconds"], 4),
        "events_per_second": round(rate),
        "heap_peak": stats["heap_peak"],
        "processes_spawned": stats["processes_spawned"],
        "machine_speed_factor": round(factor, 3),
        "calibration_seconds": round(calib, 4),
        "floor_events_per_second": round(floor),
    }


class TestKernelChurn:
    @pytest.mark.parametrize("section,make_env,dev_rate", [
        ("kernel_churn", Environment, DEV_CHURN_EVENTS_PER_SEC),
        ("kernel_churn_wheel", WheelEnvironment,
         DEV_CHURN_WHEEL_EVENTS_PER_SEC),
    ])
    def test_event_churn_rate(self, benchmark, section, make_env, dev_rate):
        stats = benchmark.pedantic(lambda: _churn(make_env()),
                                   rounds=3, iterations=1)
        factor, calib = _machine_speed_factor()
        floor = 0.5 * dev_rate / factor
        rate, payload = _churn_section(stats, factor, calib, floor,
                                       make_env.backend)
        _save(section, payload)
        # The churn path spawns no processes and keeps the heap small:
        # both are the point of the pooled fast path.
        assert stats["processes_spawned"] == 0
        assert rate >= floor, (
            "%s churn %.0f ev/s below machine-scaled floor %.0f"
            % (make_env.backend, rate, floor))

    def test_landing_burst_ratio(self):
        """Interleaved heap/wheel pairs; the gate is the best per-pair
        rate ratio, which cancels machine-speed drift entirely — both
        sides of a pair run within the same scheduling minute."""
        pairs = []
        for _ in range(5):
            heap_stats = _landing_churn(Environment())
            wheel_stats = _landing_churn(WheelEnvironment())
            assert (heap_stats["events_processed"]
                    == wheel_stats["events_processed"])
            heap_rate = (heap_stats["events_processed"]
                         / heap_stats["wall_seconds"])
            wheel_rate = (wheel_stats["events_processed"]
                          / wheel_stats["wall_seconds"])
            pairs.append((wheel_rate / heap_rate, heap_rate, wheel_rate))
        pairs.sort()
        best_ratio, heap_rate, wheel_rate = pairs[-1]
        _save("kernel_churn_landing", {
            "events_processed": heap_stats["events_processed"],
            "heap_events_per_second": round(heap_rate),
            "wheel_events_per_second": round(wheel_rate),
            "best_ratio": round(best_ratio, 2),
            "median_ratio": round(pairs[len(pairs) // 2][0], 2),
            "rounds": len(pairs),
            "ratio_floor": LANDING_RATIO_FLOOR,
        })
        assert best_ratio >= LANDING_RATIO_FLOOR, (
            "landing burst churn: wheel only %.2fx the heap (floor %.1fx)"
            % (best_ratio, LANDING_RATIO_FLOOR))


def _timed_run(module, rounds):
    from importlib import import_module

    mod = import_module("repro.experiments." + module)
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        mod.run(fast=True, seed=SEED)
        best = min(best, time.perf_counter() - t0)
    return best


def _paired_speedup(module, baseline, rounds):
    """Best speedup over *rounds*, each paired with its own calibration.

    Machine speed on shared VMs drifts by tens of percent over minutes,
    so a factor measured once up front can be stale by the time a long
    run finishes.  Calibrating immediately before each round and taking
    the best (factor-scaled) round keeps the gate about the *code*, not
    about which minute the suite happened to run in.
    """
    from importlib import import_module

    mod = import_module("repro.experiments." + module)
    best = None
    for _ in range(rounds):
        calib = min(_calibration_loop() for _ in range(2))
        factor = calib / BASELINE_CALIBRATION_SECONDS
        t0 = time.perf_counter()
        mod.run(fast=True, seed=SEED)
        measured = time.perf_counter() - t0
        speedup = baseline * factor / measured
        if best is None or speedup > best["speedup"]:
            best = {
                "machine_speed_factor": round(factor, 3),
                "calibration_seconds": round(calib, 4),
                "scaled_baseline_seconds": round(baseline * factor, 3),
                "measured_seconds": round(measured, 3),
                "speedup": round(speedup, 2),
            }
    return best


#: The dev-machine speedups were 2.16x (E09) and 2.01x (E04); the
#: asserted floors keep headroom below them because the calibration
#: loop (a pure-python spin) cannot fully track machine state for the
#: memory-bound E04 grid — interleaved A/B runs of the same tree swing
#: by several percent on a busy host.  Measured on an *unmodified*
#: baseline checkout, single E04 rounds range 1.73x-1.93x across a few
#: minutes of drift, so the floor sits below the slow end of that band
#: and three paired rounds keep the best-of from sampling only a slow
#: phase.  The floor is the regression gate; the recorded JSON carries
#: the actual measured speedup.
@pytest.mark.parametrize("module,baseline,rounds,floor", [
    ("e09_fig8a_lenet", BASELINE_E09_SECONDS, 3, 1.9),
    ("e04_fig6_throughput_grid", BASELINE_E04_SECONDS, 3, 1.65),
])
def test_experiment_speedup(module, baseline, rounds, floor):
    """Fast-run wall-clock vs the recorded pre-PR baseline."""
    best = _paired_speedup(module, baseline, rounds)
    payload = {"baseline_seconds": baseline, "baseline_commit": "244c300"}
    payload.update(best)
    _save(module, payload)
    assert best["speedup"] >= floor, (
        "%s: %.2fx speedup below %.1fx floor "
        "(measured %.3fs vs scaled baseline %.3fs)"
        % (module, best["speedup"], floor, best["measured_seconds"],
           best["scaled_baseline_seconds"]))
