"""Simulator-throughput benchmarks for the DES kernel fast path.

Six measurements, written to ``benchmarks/results/kernel_throughput.json``:

* **kernel churn** — a pure event ping-pong through the run loop
  (pooled charges, no model code), reported as events/second from the
  kernel's own counters; measured per scheduler backend (heap and
  wheel), each gated against its own recorded floor;
* **landing churn** — the workload the calendar-queue backend exists
  for: homogeneous 64-message Channel bursts coalesced by the landing
  table into vectorized deliveries.  Run as interleaved heap/wheel
  pairs and gated on the wheel:heap rate ratio (>= 2x, DESIGN.md
  §4.11) so the gate is immune to machine-speed drift;
* **frame churn** — the frame-execution workload (DESIGN.md §4.14): a
  synthetic data-plane op running a multi-stage grant+charge chain per
  message, interleaved scalar/frame pairs on one backend, gated on the
  frame:scalar message-rate ratio (>= 3x, machine-independent);
* **E09 / E04 fast runs** — wall-clock of the two experiment runs the
  fast-path work targeted (LeNet serving and the Fig 6 saturation
  grid), compared against the pre-optimisation baseline.

The baseline numbers were measured on the development machine from the
pre-PR tree (git 244c300), back-to-back with the optimised runs on an
idle machine.  To compare fairly on other hardware, a short
pure-python calibration loop scales the baseline by the speed ratio
between this machine and the one the baseline was recorded on.
Wall-clock assertions keep a noise margin; the JSON records the raw
numbers.
"""

import json
import os
import time

import pytest

from repro.sim import Environment, Resource, WheelEnvironment, batchexec
from repro.sim.channel import Channel

from conftest import RESULTS_DIR, SEED

#: pre-PR (git 244c300) fast-run wall-clock, idle dev machine, seed 42.
#: E09 is best-of-3; E04 is a single run (it takes ~45 s).
BASELINE_E09_SECONDS = 1.224
BASELINE_E04_SECONDS = 44.617

#: best-of-3 of :func:`_calibration_loop` on the machine the baselines
#: were recorded on.
BASELINE_CALIBRATION_SECONDS = 0.1944

#: post-optimisation dev-machine churn rate was ~1.07M events/s; the
#: floor asserts half of that, machine-scaled.
DEV_CHURN_EVENTS_PER_SEC = 1.07e6

#: the wheel backend's dev-machine rate on the same churn workload
#: (~1.09x the heap — the two-queue core wins modestly on charge
#: ping-pong; its big wins are the landing bursts gated below).
DEV_CHURN_WHEEL_EVENTS_PER_SEC = 1.15e6

#: minimum wheel:heap rate ratio on the landing-burst workload (dev
#: machine measured ~3.8x median over interleaved pairs; the gate
#: keeps margin for noisy hosts).
LANDING_RATIO_FLOOR = 2.0

#: minimum frame:scalar message-rate ratio on the frame-execution
#: workload (ISSUE 9 acceptance: >= 3.0x, machine-independent — both
#: sides of each interleaved pair run back to back).
FRAME_RATIO_FLOOR = 3.0

RESULTS_PATH = os.path.join(RESULTS_DIR, "kernel_throughput.json")


def _calibration_loop(iterations=5_000_000):
    """A pure-python spin whose duration tracks interpreter speed."""
    t0 = time.perf_counter()
    x = 0
    for i in range(iterations):
        x += i
    return time.perf_counter() - t0


def _machine_speed_factor():
    """How much slower this machine is than the baseline machine.

    > 1.0 means slower (baselines are scaled up), < 1.0 means faster.
    """
    calib = min(_calibration_loop() for _ in range(3))
    return calib / BASELINE_CALIBRATION_SECONDS, calib


def _save(section, payload):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    data = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as fh:
            data = json.load(fh)
    data[section] = payload
    with open(RESULTS_PATH, "w") as fh:
        json.dump(data, fh, indent=2)


def _churn(env, chains=64, horizon=20000.0):
    """Pure kernel load: *chains* concurrent unit-charge ping-pongs."""

    def hop(event, env=env):
        if env.now < horizon:
            env.charge(1.0).callbacks.append(hop)

    for _ in range(chains):
        env.charge(1.0).callbacks.append(hop)
    env.run(until=horizon)
    return env.kernel_stats()


def _landing_churn(env, horizon=5000.0):
    """The landing table's target load: 64-push homogeneous bursts on
    one Channel every microsecond, drained in batches.  On the heap
    each burst costs 64 pooled defer events; on the wheel it coalesces
    into one flush entry plus a bulk sink extend."""
    chan = Channel(env, "bench", latency=1.0)

    def pump(_e, env=env, chan=chan):
        for _ in range(64):
            chan.push(0, 64)
        chan.recv_batch()
        if env.now < horizon:
            env.defer(1.0, pump)

    env.defer(1.0, pump)
    env.run()
    return env.kernel_stats()


#: per-stage durations of the synthetic frame pipeline (span = 1.0us)
FRAME_STAGES = (0.4, 0.3, 0.3)
FRAME_MESSAGES = 20000


class _FramePipelineOp:
    """A synthetic data-plane op: each message runs a grant+charge
    chain over :data:`FRAME_STAGES` on a serialized pool — six
    scheduler events on the scalar oracle.  Under frame execution the
    whole span coalesces into ONE completion event at the exact scalar
    timestamp (``span_times`` + ``defer_at``), burning the other five
    sequence numbers — the same turbo-step shape the real planes use.
    """

    __slots__ = ("env", "res", "left", "stage", "request")

    def __init__(self, env, res, messages):
        self.env = env
        self.res = res
        self.left = messages
        self.stage = 0
        self.request = None
        env._kick(self._next)

    def _next(self, _event):
        if self.left <= 0:
            return
        env = self.env
        res = self.res
        if env.frame_exec:
            times = batchexec.span_times(env.now, FRAME_STAGES)
            if (batchexec.pool_ready(res)
                    and batchexec.clear_span(env, times[-1])):
                batchexec.seize(res)
                batchexec.burn(env, 2 * len(FRAME_STAGES) - 1)
                env.defer_at(times[-1], self._turbo_done)
                return
        self.stage = 0
        self._request()

    def _turbo_done(self, _event):
        batchexec.unseize(self.res)
        self.left -= 1
        self.env.requests_completed += 1
        self._next(_event)

    def _request(self):
        req = self.res.request(0)
        self.request = req
        req.callbacks.append(self._granted)

    def _granted(self, _event):
        self.env.charge(FRAME_STAGES[self.stage]).callbacks.append(
            self._charged)

    def _charged(self, _event):
        self.request.release()
        self.request = None
        self.stage += 1
        if self.stage < len(FRAME_STAGES):
            self._request()
        else:
            self.left -= 1
            self.env.requests_completed += 1
            self._next(_event)


def _frame_churn(env, frame, messages=FRAME_MESSAGES):
    """Drain *messages* through the synthetic pipeline; kernel stats."""
    env.frame_exec = frame
    res = Resource(env, 1, name="frame-bench")
    _FramePipelineOp(env, res, messages)
    env.run()
    return env.kernel_stats()


def _churn_section(stats, factor, calib, floor, backend):
    rate = stats["events_processed"] / stats["wall_seconds"]
    return rate, {
        "backend": backend,
        "events_processed": stats["events_processed"],
        "wall_seconds": round(stats["wall_seconds"], 4),
        "events_per_second": round(rate),
        "heap_peak": stats["heap_peak"],
        "processes_spawned": stats["processes_spawned"],
        "machine_speed_factor": round(factor, 3),
        "calibration_seconds": round(calib, 4),
        "floor_events_per_second": round(floor),
    }


class TestKernelChurn:
    @pytest.mark.parametrize("section,make_env,dev_rate", [
        ("kernel_churn", Environment, DEV_CHURN_EVENTS_PER_SEC),
        ("kernel_churn_wheel", WheelEnvironment,
         DEV_CHURN_WHEEL_EVENTS_PER_SEC),
    ])
    def test_event_churn_rate(self, benchmark, section, make_env, dev_rate):
        stats = benchmark.pedantic(lambda: _churn(make_env()),
                                   rounds=3, iterations=1)
        factor, calib = _machine_speed_factor()
        floor = 0.5 * dev_rate / factor
        rate, payload = _churn_section(stats, factor, calib, floor,
                                       make_env.backend)
        _save(section, payload)
        # The churn path spawns no processes and keeps the heap small:
        # both are the point of the pooled fast path.
        assert stats["processes_spawned"] == 0
        assert rate >= floor, (
            "%s churn %.0f ev/s below machine-scaled floor %.0f"
            % (make_env.backend, rate, floor))

    def test_landing_burst_ratio(self):
        """Interleaved heap/wheel pairs; the gate is the best per-pair
        rate ratio, which cancels machine-speed drift entirely — both
        sides of a pair run within the same scheduling minute."""
        pairs = []
        for _ in range(5):
            heap_stats = _landing_churn(Environment())
            wheel_stats = _landing_churn(WheelEnvironment())
            assert (heap_stats["events_processed"]
                    == wheel_stats["events_processed"])
            heap_rate = (heap_stats["events_processed"]
                         / heap_stats["wall_seconds"])
            wheel_rate = (wheel_stats["events_processed"]
                          / wheel_stats["wall_seconds"])
            pairs.append((wheel_rate / heap_rate, heap_rate, wheel_rate))
        pairs.sort()
        best_ratio, heap_rate, wheel_rate = pairs[-1]
        _save("kernel_churn_landing", {
            "events_processed": heap_stats["events_processed"],
            "heap_events_per_second": round(heap_rate),
            "wheel_events_per_second": round(wheel_rate),
            "best_ratio": round(best_ratio, 2),
            "median_ratio": round(pairs[len(pairs) // 2][0], 2),
            "rounds": len(pairs),
            "ratio_floor": LANDING_RATIO_FLOOR,
        })
        assert best_ratio >= LANDING_RATIO_FLOOR, (
            "landing burst churn: wheel only %.2fx the heap (floor %.1fx)"
            % (best_ratio, LANDING_RATIO_FLOOR))

    def test_frame_execution_ratio(self):
        """Interleaved scalar/frame pairs on the heap backend (so the
        gain is frame execution alone, not the landing table); the gate
        is the best per-pair message-rate ratio — machine-independent,
        like the landing gate above."""
        pairs = []
        for _ in range(5):
            scalar = _frame_churn(Environment(), frame=False)
            framed = _frame_churn(Environment(), frame=True)
            # Same simulated history either way: every message, and
            # the same virtual span; only scheduler events collapse.
            assert scalar["requests_completed"] == FRAME_MESSAGES
            assert framed["requests_completed"] == FRAME_MESSAGES
            assert framed["events_processed"] < scalar["events_processed"]
            scalar_rate = FRAME_MESSAGES / scalar["wall_seconds"]
            framed_rate = FRAME_MESSAGES / framed["wall_seconds"]
            pairs.append((framed_rate / scalar_rate, scalar, framed))
        pairs.sort(key=lambda p: p[0])
        best_ratio, scalar, framed = pairs[-1]
        _save("kernel_churn_frames", {
            "messages": FRAME_MESSAGES,
            "scalar_events_per_request": scalar["events_per_request"],
            "frame_events_per_request": framed["events_per_request"],
            "scalar_messages_per_second": round(
                FRAME_MESSAGES / scalar["wall_seconds"]),
            "frame_messages_per_second": round(
                FRAME_MESSAGES / framed["wall_seconds"]),
            "best_ratio": round(best_ratio, 2),
            "median_ratio": round(pairs[len(pairs) // 2][0], 2),
            "rounds": len(pairs),
            "ratio_floor": FRAME_RATIO_FLOOR,
        })
        assert best_ratio >= FRAME_RATIO_FLOOR, (
            "frame churn: frame execution only %.2fx the scalar chain "
            "(floor %.1fx)" % (best_ratio, FRAME_RATIO_FLOOR))


def _timed_run(module, rounds):
    from importlib import import_module

    mod = import_module("repro.experiments." + module)
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        mod.run(fast=True, seed=SEED)
        best = min(best, time.perf_counter() - t0)
    return best


def _paired_speedup(module, baseline, rounds):
    """Best speedup over *rounds*, each paired with its own calibration.

    Machine speed on shared VMs drifts by tens of percent over minutes,
    so a factor measured once up front can be stale by the time a long
    run finishes.  Calibrating immediately before each round and taking
    the best (factor-scaled) round keeps the gate about the *code*, not
    about which minute the suite happened to run in.
    """
    from importlib import import_module

    mod = import_module("repro.experiments." + module)
    best = None
    for _ in range(rounds):
        calib = min(_calibration_loop() for _ in range(2))
        factor = calib / BASELINE_CALIBRATION_SECONDS
        t0 = time.perf_counter()
        mod.run(fast=True, seed=SEED)
        measured = time.perf_counter() - t0
        speedup = baseline * factor / measured
        if best is None or speedup > best["speedup"]:
            best = {
                "machine_speed_factor": round(factor, 3),
                "calibration_seconds": round(calib, 4),
                "scaled_baseline_seconds": round(baseline * factor, 3),
                "measured_seconds": round(measured, 3),
                "speedup": round(speedup, 2),
            }
    return best


#: The dev-machine speedups were 2.16x (E09) and 2.01x (E04); the
#: asserted floors keep headroom below them because the calibration
#: loop (a pure-python spin) cannot fully track machine state for the
#: memory-bound experiment runs — interleaved A/B runs of the same
#: tree swing by several percent on a busy host.  Measured on an
#: *unmodified* baseline checkout, single E04 rounds range
#: 1.73x-1.93x and E09 gate runs range 1.66x-2.0x across a few
#: minutes of drift (the same checkout fails a 1.9 floor in one
#: minute and clears it the next; the low end lands when a CPU-turbo
#: phase speeds the calibration spin more than the memory-bound sim),
#: so each floor sits below the slow end of its band with margin —
#: losing the PR-6 win would read ~1.0-1.2, far below either floor —
#: and the paired rounds keep the best-of from sampling only a slow
#: phase.  The floor is the regression gate; the recorded JSON
#: carries the actual measured speedup.
@pytest.mark.parametrize("module,baseline,rounds,floor", [
    ("e09_fig8a_lenet", BASELINE_E09_SECONDS, 4, 1.6),
    ("e04_fig6_throughput_grid", BASELINE_E04_SECONDS, 3, 1.6),
])
def test_experiment_speedup(module, baseline, rounds, floor):
    """Fast-run wall-clock vs the recorded pre-PR baseline."""
    best = _paired_speedup(module, baseline, rounds)
    payload = {"baseline_seconds": baseline, "baseline_commit": "244c300"}
    payload.update(best)
    _save(module, payload)
    assert best["speedup"] >= floor, (
        "%s: %.2fx speedup below %.1fx floor "
        "(measured %.3fs vs scaled baseline %.3fs)"
        % (module, best["speedup"], floor, best["measured_seconds"],
           best["scaled_baseline_seconds"]))
