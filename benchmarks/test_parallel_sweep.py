"""Serial-vs-parallel wall-clock of the sweep executor on the E04 grid.

Runs the fast Fig 6 saturation grid twice through
:func:`repro.experiments.sweep.run_points` — once inline (``jobs=1``),
once requesting four workers — and records both times plus their ratio
to ``benchmarks/results/parallel_sweep.json``.

The worker request is clamped to :func:`sweep.usable_cores` exactly as
the executor clamps it, and the recorded section says what actually
ran: on a one-core runner both runs are inline, so the section records
``"clamped_serial": true`` with a nominal speedup of 1.0 and the raw
run-to-run ratio under ``rerun_ratio`` — a pool that never forked must
not be recorded as a sub-1.0 "speedup" for the regression checker to
trip over.

Two gates:

* the parallel run must return exactly the serial values (the executor
  contract, cheap to re-assert here since we have both runs anyway);
* on machines with enough cores the fan-out must actually pay: >= 2x
  with four usable cores, a softer floor with two.

The ``e04_parallel_jobs4`` section carries ``measured_seconds`` and
``machine_speed_factor``, so ``tools/check_bench_regression.py`` gates
the parallel-path wall-clock against the committed baseline like any
other timed benchmark.
"""

import json
import os
import time

from repro.experiments import e04_fig6_throughput_grid as e04
from repro.experiments import sweep

from conftest import RESULTS_DIR, SEED
from test_kernel_throughput import BASELINE_CALIBRATION_SECONDS, _calibration_loop

RESULTS_PATH = os.path.join(RESULTS_DIR, "parallel_sweep.json")

JOBS = 4


def _save(section, payload):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    data = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as fh:
            data = json.load(fh)
    data[section] = payload
    with open(RESULTS_PATH, "w") as fh:
        json.dump(data, fh, indent=2)


def test_parallel_sweep_speedup():
    calib = min(_calibration_loop() for _ in range(2))
    factor = calib / BASELINE_CALIBRATION_SECONDS

    points = e04.sweep_points(fast=True, seed=SEED)
    usable = sweep.usable_cores()
    effective = min(JOBS, usable, len(points))

    t0 = time.perf_counter()
    serial_values = sweep.run_points(points, jobs=1)
    serial_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel_values = sweep.run_points(points, jobs=JOBS)
    parallel_seconds = time.perf_counter() - t0

    ratio = serial_seconds / parallel_seconds
    clamped_serial = effective <= 1
    payload = {
        "points": len(points),
        "jobs": JOBS,
        "effective_jobs": effective,
        "cpu_count": os.cpu_count() or 1,
        "usable_cores": usable,
        "serial_seconds": round(serial_seconds, 3),
        "measured_seconds": round(parallel_seconds, 3),
        "machine_speed_factor": round(factor, 3),
        "calibration_seconds": round(calib, 4),
    }
    if clamped_serial:
        # Both runs were inline; the ratio is pure rerun noise, not a
        # parallel speedup, and must never be recorded below 1.0.
        payload["speedup"] = 1.0
        payload["rerun_ratio"] = round(ratio, 2)
        payload["clamped_serial"] = True
    else:
        payload["speedup"] = round(ratio, 2)
    _save("e04_parallel_jobs4", payload)

    assert parallel_values == serial_values, (
        "parallel sweep values diverged from the serial run")

    if clamped_serial:
        return  # no pool forked: values checked, nothing to time
    if usable >= JOBS:
        floor = 2.0
    elif usable >= 2:
        floor = 1.2
    else:
        return
    assert ratio >= floor, (
        "jobs=%d sweep only %.2fx faster than serial on %d usable cores "
        "(%.1fs vs %.1fs); floor %.1fx"
        % (effective, ratio, usable, parallel_seconds, serial_seconds,
           floor))
