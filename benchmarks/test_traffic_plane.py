"""Traffic-plane benchmark: flyweight population vs per-Client scalar.

Drives the same offered load — Poisson arrivals at a fixed aggregate
rate into a mute (non-responding) sink, so the measurement isolates the
*generation* path rather than the server — through two planes:

* **scalar**: four ``Client`` objects, each with an
  ``OpenLoopGenerator`` drawing one inter-arrival gap and one kernel
  event per request;
* **vector**: one ``ClientPopulation`` pre-generating arrivals in
  numpy chunks and injecting coalesced frames (one scheduler event per
  frame, struct-of-arrays in-flight tracking).

Rounds interleave the two planes (A/B/A/B...) so machine-speed drift
lands on both sides; the gate is the *best* vector:scalar
arrivals-per-wall-second ratio across rounds, which is
machine-independent and must stay >= ``RATIO_FLOOR`` (dev machine
measures 5.3-6.0x steady-state).  The recorded JSON
also carries a modeled-users-per-wall-second scalar: the same
generation work re-labeled as a million-user population (``users`` is
reporting-only flyweight state, so the cost is identical).
"""

import json
import os
import time

from repro.experiments.testbed import Testbed
from repro.net import (
    Address,
    ClientPopulation,
    Flow,
    OpenLoopGenerator,
    PayloadPool,
    PoissonPopulation,
)
from repro.sim import Channel

from conftest import RESULTS_DIR, SEED

RESULTS_PATH = os.path.join(RESULTS_DIR, "traffic_plane.json")

#: aggregate offered rate (requests/us) and simulated horizon (us) —
#: a high rate so generation dominates and frames carry real bursts
RATE = 8.0
HORIZON_US = 10000.0
#: frame width (us): ~16 arrivals share one landing event
COALESCE_US = 2.0
SCALAR_CLIENTS = 4
ROUNDS = 4
#: the acceptance bar; dev machine measures 5.3-6.0x steady-state
#: (the first round runs cold, which is what best-of-rounds absorbs)
RATIO_FLOOR = 5.0
#: flyweight population size for the users/wall-second scalar
MODELED_USERS = 1_000_000


def _save(section, payload):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    data = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as fh:
            data = json.load(fh)
    data[section] = payload
    with open(RESULTS_PATH, "w") as fh:
        json.dump(data, fh, indent=2)


def _mute_testbed(seed):
    """A Testbed whose only server is a sink that never responds."""
    tb = Testbed(seed=seed)

    class MuteSink:
        rx = Channel(tb.env, name="mute-rx")

    tb.network.attach("10.0.0.9", MuteSink())
    return tb, Address("10.0.0.9", 7777)


def _scalar_round(seed):
    """(arrivals, wall_seconds) for the per-Client plane."""
    tb, dst = _mute_testbed(seed)
    gens = []
    for i in range(SCALAR_CLIENTS):
        client = tb.client("10.0.9.%d" % (i + 1))
        gens.append(OpenLoopGenerator(tb.env, client, dst,
                                      RATE / SCALAR_CLIENTS,
                                      payload_fn=lambda i: b"x" * 64))
    t0 = time.perf_counter()
    tb.run(until=HORIZON_US)
    wall = time.perf_counter() - t0
    return sum(g.offered for g in gens), wall


def _vector_round(seed, users=1):
    """(arrivals, wall_seconds) for the population plane."""
    tb, dst = _mute_testbed(seed)
    flow = Flow("bench",
                PoissonPopulation(RATE, tb.rng.stream("bench"), users=users),
                PayloadPool.single(b"x" * 64))
    pop = ClientPopulation(tb.env, tb.network, "10.0.9.1", dst, [flow],
                           coalesce_us=COALESCE_US)
    t0 = time.perf_counter()
    tb.run(until=HORIZON_US)
    wall = time.perf_counter() - t0
    return pop.offered, wall


def test_vectorized_plane_beats_scalar():
    rounds = []
    best = None
    for i in range(ROUNDS):
        # Interleave within the round so drift hits both planes alike.
        s_arrivals, s_wall = _scalar_round(SEED + i)
        v_arrivals, v_wall = _vector_round(SEED + i, users=MODELED_USERS)
        s_rate = s_arrivals / s_wall
        v_rate = v_arrivals / v_wall
        entry = {
            "scalar_arrivals": int(s_arrivals),
            "scalar_wall_seconds": round(s_wall, 4),
            "scalar_arrivals_per_sec": round(s_rate),
            "vector_arrivals": int(v_arrivals),
            "vector_wall_seconds": round(v_wall, 4),
            "vector_arrivals_per_sec": round(v_rate),
            "ratio": round(v_rate / s_rate, 2),
            "users_per_wall_second": round(MODELED_USERS / v_wall),
        }
        rounds.append(entry)
        if best is None or entry["ratio"] > best["ratio"]:
            best = entry
    _save("population_vs_scalar", {
        "rate_per_us": RATE,
        "horizon_us": HORIZON_US,
        "coalesce_us": COALESCE_US,
        "scalar_clients": SCALAR_CLIENTS,
        "modeled_users": MODELED_USERS,
        "best_ratio": best["ratio"],
        "best_vector_arrivals_per_sec": best["vector_arrivals_per_sec"],
        "best_users_per_wall_second": best["users_per_wall_second"],
        "rounds": rounds,
    })
    assert best["ratio"] >= RATIO_FLOOR, (
        "population plane only %.2fx the scalar plane (floor %.1fx): "
        "%s arrivals/s vs %s arrivals/s"
        % (best["ratio"], RATIO_FLOOR, best["vector_arrivals_per_sec"],
           best["scalar_arrivals_per_sec"]))
