#!/usr/bin/env python3
"""Composing accelerators: a two-stage inference pipeline.

The paper closes by calling Lynx "a stepping stone for ... efficient
composition of accelerators" (§8).  This example builds that: a
denoising stage on GPU 0 feeds a LeNet classification stage on GPU 1
through the SNIC (client mqueues hairpinning through the switch), with
the host CPU idle throughout.

    client --UDP--> [GPU0: denoise] --mqueue--> [GPU1: LeNet] --> client

The denoiser is a real 3x3 box filter; classification accuracy on noisy
digits improves measurably versus sending them straight to LeNet.

Run:  python examples/accelerator_pipeline.py
"""

import numpy as np

from repro import Testbed, LeNetApp
from repro.apps.base import ServerApp
from repro.apps.lenet import MnistStream
from repro.lynx import PipelineStage
from repro.net import Address
from repro.net.packet import UDP


class DenoiseApp(ServerApp):
    """3x3 box filter over the 28x28 image (real numpy)."""

    name = "denoise"
    gpu_duration = 40.0  # small stencil kernel

    def compute(self, payload):
        img = np.frombuffer(bytes(payload), dtype=np.uint8)
        img = img.reshape(28, 28).astype(np.float32)
        padded = np.pad(img, 1, mode="edge")
        out = np.zeros_like(img)
        for dy in range(3):
            for dx in range(3):
                out += padded[dy:dy + 28, dx:dx + 28]
        return (out / 9.0).astype(np.uint8).tobytes()


def classify_batch(tb, env, address, app, stream, n):
    client = tb.client("10.0.1.%d" % (len(tb.clients) + 1))
    outcomes = []

    def drive(env):
        for i in range(n):
            image, label = stream.sample(i)
            response = yield from client.request(image, address, proto=UDP)
            outcomes.append(label == app.decode_response(response.payload))

    env.process(drive(env))
    env.run(until=env.now + n * 3000.0)
    return sum(outcomes), len(outcomes)


def denoised_lenet():
    """A LeNet calibrated on what the denoise stage actually emits."""
    from repro.apps.lenet import template_set

    denoiser = DenoiseApp()
    templates = {}
    for digit, images in template_set().items():
        templates[digit] = [
            np.frombuffer(denoiser.compute(np.asarray(img).tobytes()),
                          dtype=np.uint8).reshape(28, 28)
            for img in images
        ]
    app = LeNetApp(calibrated=False)
    app.model.calibrate_to_templates(templates)
    return app


def main():
    noisy_stream = MnistStream(seed=8, noise=0.35)  # heavily degraded

    # -- pipeline: denoise -> classify -----------------------------------
    tb = Testbed(seed=3)
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu0, gpu1 = host.add_gpu(), host.add_gpu()
    snic = tb.bluefield("10.0.0.100")
    runtime, server = tb.lynx_on_bluefield(snic)
    lenet = denoised_lenet()
    proc = env.process(runtime.start_pipeline(
        [PipelineStage(gpu0, DenoiseApp()), PipelineStage(gpu1, lenet)],
        port=7000))
    env.run(until=30_000)
    pipe = proc.value
    good, total = classify_batch(tb, env, Address("10.0.0.100", 7000),
                                 lenet, noisy_stream, 40)
    print("denoise->LeNet pipeline:  %d/%d noisy digits correct" %
          (good, total))
    busy = max(core.utilization for core in host.socket.cores)
    print("  stages: %d, relay errors: %d, host CPU: %.0f%%"
          % (pipe.depth, pipe.relay_errors, 100 * busy))

    # -- baseline: LeNet alone on the same noisy stream -------------------
    tb2 = Testbed(seed=3)
    host2 = tb2.machine("10.0.0.1")
    gpu = host2.add_gpu()
    snic2 = tb2.bluefield("10.0.0.100")
    runtime2, _ = tb2.lynx_on_bluefield(snic2)
    lenet2 = LeNetApp()
    tb2.env.process(runtime2.start_gpu_service(gpu, lenet2, port=7000))
    tb2.run(until=30_000)
    noisy_stream2 = MnistStream(seed=8, noise=0.35)
    good2, total2 = classify_batch(tb2, tb2.env,
                                   Address("10.0.0.100", 7000), lenet2,
                                   noisy_stream2, 40)
    print("LeNet alone:              %d/%d noisy digits correct"
          % (good2, total2))


if __name__ == "__main__":
    main()
