#!/usr/bin/env python3
"""The §6.4 workload: a multi-tier face-verification service.

The GPU-resident server receives (label, probe-photo) requests over
UDP, fetches the person's reference photo from a memcached tier over a
TCP client mqueue — networking *initiated by the accelerator* — and
runs real LBP verification.  The example checks genuine/impostor
decisions end to end and prints the tier-by-tier flow.

Run:  python examples/face_verification.py
"""

from repro import Testbed, FaceVerificationApp
from repro.apps.facever import (
    BACKEND,
    FaceDatabase,
    decode_result,
    encode_request,
    person_label,
)
from repro.apps.memcached import MemcachedServer
from repro.config import XEON_VMA
from repro.net import Address
from repro.net.packet import TCP, UDP


def main():
    tb = Testbed(seed=11)
    env = tb.env

    # -- tier 1: the GPU front-end behind a Bluefield ---------------------
    gpu_host = tb.machine("10.0.0.1")
    gpu = gpu_host.add_gpu()
    snic = tb.bluefield("10.0.0.100")
    runtime, server = tb.lynx_on_bluefield(snic)

    # -- tier 2: the photo database (memcached on another host) ----------
    db_host = tb.machine("10.0.0.2")
    memcached = MemcachedServer(env, db_host.nic,
                                db_host.pool(count=2, name="mc"), XEON_VMA)
    database = FaceDatabase(num_people=48)
    memcached.store.preload(database.items())
    print("database tier: %d reference photos preloaded"
          % len(memcached.store))

    # -- wire the GPU to both tiers (28 mqueues, like the paper) ---------
    app = FaceVerificationApp()
    env.process(runtime.start_gpu_service(
        gpu, app, port=8000, n_mqueues=28, proto=UDP,
        backends={BACKEND: (Address("10.0.0.2", 11211), TCP)}))
    tb.run(until=30_000)  # connection setup for 28 client mqueues

    # -- verify a mix of genuine probes and impostors --------------------
    client = tb.client("10.0.1.1")
    outcomes = []

    def drive(env):
        for pid in range(12):
            genuine = pid % 3 != 0
            probe = (database.probe(pid) if genuine
                     else database.impostor_probe(pid))
            request = encode_request(person_label(pid), probe)
            response = yield from client.request(
                request, Address("10.0.0.100", 8000), proto=UDP)
            same, distance = decode_result(response.payload)
            outcomes.append((pid, genuine, same, distance))

    env.process(drive(env))
    tb.run(until=300_000)

    print("\nverification results (GPU fetches references via its "
          "client mqueue):")
    correct = 0
    for pid, genuine, same, distance in outcomes:
        verdict = "ACCEPT" if same else "REJECT"
        expected = "genuine " if genuine else "impostor"
        ok = same == genuine
        correct += ok
        print("  person %2d (%s): %s  chi2=%7.1f  %s"
              % (pid, expected, verdict, distance,
                 "OK" if ok else "WRONG"))
    print("decisions correct: %d/%d" % (correct, len(outcomes)))
    print("memcached hits: %d, misses: %d"
          % (memcached.store.hits, memcached.store.misses))


if __name__ == "__main__":
    main()
