#!/usr/bin/env python3
"""Regenerate the paper's evaluation figures as terminal charts.

Runs the corresponding experiments (fast sweeps) and renders Figures
5-9 as ASCII plots.  Pass figure names to render a subset:

    python examples/generate_figures.py fig8b fig9
"""

import sys
import time

from repro.report import ALL_FIGURES


def main(argv):
    wanted = argv or ["fig8b", "fig9", "fig5"]  # cheap default subset
    if wanted == ["all"]:
        wanted = list(ALL_FIGURES)
    for name in wanted:
        fig = ALL_FIGURES.get(name)
        if fig is None:
            print("unknown figure %r (have: %s)" % (name,
                                                    ", ".join(ALL_FIGURES)))
            return 1
        start = time.time()
        print(fig())
        print("(%s rendered in %.1fs)\n" % (name, time.time() - start))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
