#!/usr/bin/env python3
"""A multi-GPU k-nearest-neighbour service behind one Lynx instance.

Real brute-force k-NN over a replicated vector dataset, with queries
fanned out across GPUs through per-GPU mqueues.  Demonstrates the
multi-accelerator story on a second workload: answers are verified
against a local computation, and adding GPUs scales throughput while
the host CPU stays idle.

Run:  python examples/knn_service.py
"""

from repro import Testbed
from repro.apps.knn import KnnApp, KnnDataset, decode_result, encode_query
from repro.net import Address, ClosedLoopGenerator
from repro.net.packet import UDP


def build(n_gpus, dataset, seed=13, compute_for_real=True):
    tb = Testbed(seed=seed)
    env = tb.env
    host = tb.machine("10.0.0.1")
    snic = tb.bluefield("10.0.0.100")
    runtime, server = tb.lynx_on_bluefield(snic)
    app = KnnApp(dataset=dataset, compute_for_real=compute_for_real)
    for _ in range(n_gpus):
        gpu = host.add_gpu()
        env.process(runtime.start_gpu_service(gpu, app, port=7000,
                                              n_mqueues=1))
    tb.run(until=500)
    return tb, host, Address("10.0.0.100", 7000)


def main():
    dataset = KnnDataset(size=4096)
    print("dataset: %d vectors, %d-dim; kernel ~%.0fus per query"
          % (len(dataset), dataset.vectors.shape[1],
             KnnApp(dataset=dataset).gpu_duration))

    # -- correctness: served answers == local answers --------------------
    tb, host, address = build(2, dataset)
    client = tb.client("10.0.1.1")
    checks = []

    def drive(env):
        for i in range(10):
            query = dataset.sample_query(i)
            response = yield from client.request(encode_query(query),
                                                 address, proto=UDP)
            served = decode_result(response.payload)
            local_idx, local_dist = dataset.query(query)
            checks.append([s[0] for s in served] == list(local_idx))

    tb.env.process(drive(tb.env))
    tb.run(until=100_000)
    print("served top-k matches local top-k: %d/%d queries"
          % (sum(checks), len(checks)))

    # -- scaling: 1 -> 4 GPUs ---------------------------------------------
    print("\nthroughput scaling (timing-only mode):")
    base = None
    for n_gpus in (1, 2, 4):
        tb, host, address = build(n_gpus, dataset, compute_for_real=False)
        client = tb.client("10.0.1.1")
        ClosedLoopGenerator(tb.env, client, address,
                            concurrency=2 * n_gpus,
                            payload_fn=lambda i: encode_query(
                                dataset.sample_query(i)),
                            proto=UDP)
        tb.warmup_then_measure([client.responses], 30_000, 100_000)
        tput = client.responses.per_sec()
        base = base or tput
        busy = max(core.utilization for core in host.socket.cores)
        print("  %d GPU(s): %6.0f queries/s  (%.2fx, host CPU %.0f%%)"
              % (n_gpus, tput, tput / base, 100 * busy))


if __name__ == "__main__":
    main()
