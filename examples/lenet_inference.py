#!/usr/bin/env python3
"""The §6.3 workload: LeNet digit-recognition serving on a GPU.

Sends real 28x28 digit images through the full Lynx data plane and
checks the returned classifications against the labels — the numpy
LeNet-5 actually runs inside the simulated persistent kernel.  Then
compares serving throughput of Lynx-on-Bluefield against the
traditional host-centric design (paper: 3.5K vs 2.8K req/s).

Run:  python examples/lenet_inference.py
"""

from repro import Testbed, LeNetApp, HostCentricServer
from repro.apps.lenet import MnistStream
from repro.net import Address, ClosedLoopGenerator
from repro.net.packet import UDP


def serve_digits():
    """Classify a real digit stream end to end through Lynx."""
    tb = Testbed(seed=1)
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu()
    snic = tb.bluefield("10.0.0.100")
    runtime, _ = tb.lynx_on_bluefield(snic)
    app = LeNetApp()  # real numpy forward pass per request
    env.process(runtime.start_gpu_service(gpu, app, port=7777, n_mqueues=1))
    tb.run(until=100)

    client = tb.client("10.0.1.1")
    stream = MnistStream(seed=3)
    outcomes = []

    def drive(env):
        for i in range(30):
            image, label = stream.sample(i)
            response = yield from client.request(
                image, Address("10.0.0.100", 7777), proto=UDP)
            digit = app.decode_response(response.payload)
            outcomes.append((label, digit))

    env.process(drive(env))
    tb.run(until=100_000)
    correct = sum(1 for label, digit in outcomes if label == digit)
    print("served %d images through the GPU: %d/%d classified correctly"
          % (len(outcomes), correct, len(outcomes)))
    print("  sample: %s" % ", ".join(
        "%d->%d" % pair for pair in outcomes[:10]))
    return correct, len(outcomes)


def compare_designs():
    """Saturation throughput: Lynx on Bluefield vs host-centric."""
    results = {}
    for design in ("lynx-on-bluefield", "host-centric"):
        tb = Testbed(seed=2)
        env = tb.env
        host = tb.machine("10.0.0.1")
        gpu = host.add_gpu()
        app = LeNetApp(compute_for_real=False)  # timing-only for speed
        if design == "lynx-on-bluefield":
            snic = tb.bluefield("10.0.0.100")
            runtime, _ = tb.lynx_on_bluefield(snic)
            env.process(runtime.start_gpu_service(gpu, app, port=7777))
            address = Address("10.0.0.100", 7777)
        else:
            HostCentricServer(env, host, [gpu], app, port=7777, cores=1)
            address = Address("10.0.0.1", 7777)
        tb.run(until=200)
        client = tb.client("10.0.1.1")
        stream = MnistStream(seed=4)
        ClosedLoopGenerator(env, client, address, concurrency=3,
                            payload_fn=lambda i: stream.sample(i)[0],
                            proto=UDP)
        tb.warmup_then_measure([client.responses], 50_000, 150_000)
        results[design] = client.responses.per_sec()
    print("\nsaturation throughput (paper: 3500 vs 2800 req/s):")
    for design, tput in results.items():
        print("  %-18s %6.0f req/s" % (design, tput))
    print("  lynx advantage: %.0f%%" % (
        100 * (results["lynx-on-bluefield"] / results["host-centric"] - 1)))


if __name__ == "__main__":
    serve_digits()
    compare_designs()
