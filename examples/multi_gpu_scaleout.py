#!/usr/bin/env python3
"""Scale-out beyond one machine (§5.5, Figure 8b).

A single Bluefield-resident Lynx instance drives LeNet on K80 GPUs in
three machines — 4 local, then 4 and 8 more reached through the remote
hosts' RDMA NICs.  Because mqueues are always accessed by one-sided
RDMA, a remote GPU is "indistinguishable from a local one" apart from a
few microseconds of extra latency; throughput scales linearly and no
host CPU anywhere touches the data path.

Run:  python examples/multi_gpu_scaleout.py
"""

from repro import Testbed
from repro.apps.lenet import LeNetApp, MnistStream
from repro.config import K80
from repro.net import Address, ClosedLoopGenerator
from repro.net.packet import UDP


def run_config(local_gpus, remote_gpus_per_host, seed=5):
    tb = Testbed(seed=seed)
    env = tb.env
    machines = [tb.machine("10.0.0.%d" % (i + 1)) for i in range(3)]
    snic = tb.bluefield("10.0.0.100")
    runtime, server = tb.lynx_on_bluefield(snic)
    app = LeNetApp(compute_for_real=False)

    total = 0
    for index, machine in enumerate(machines):
        count = local_gpus if index == 0 else remote_gpus_per_host
        for _ in range(count):
            gpu = machine.add_gpu(K80)
            env.process(runtime.start_gpu_service(
                gpu, app, port=7777, n_mqueues=1, remote=index > 0))
            total += 1
    tb.run(until=500)

    stream = MnistStream(seed=seed)
    clients = [tb.client("10.0.9.%d" % i) for i in (1, 2)]
    for client in clients:
        ClosedLoopGenerator(env, client, Address("10.0.0.100", 7777),
                            concurrency=2 * total,
                            payload_fn=lambda i: stream.sample(i)[0],
                            proto=UDP)
    meters = [c.responses for c in clients]
    tb.warmup_then_measure(meters, 60_000, 120_000)
    tput = sum(m.per_sec() for m in meters)
    host_busy = max(core.utilization for m in machines
                    for core in m.socket.cores)
    return total, tput, host_busy


def main():
    print("config                 gpus   req/s     per-GPU   host CPUs")
    print("-" * 62)
    baseline_per_gpu = None
    for label, local, remote in (("4 local", 4, 0),
                                 ("4 local + 4 remote", 4, 2),
                                 ("4 local + 8 remote", 4, 4)):
        total, tput, host_busy = run_config(local, remote)
        per_gpu = tput / total
        if baseline_per_gpu is None:
            baseline_per_gpu = per_gpu
        print("%-22s %4d  %7.0f  %7.0f    %4.1f%% busy (max)"
              % (label, total, tput, per_gpu, 100 * host_busy))
    print("\nlinear scaling: per-GPU rate stays ~constant as GPUs are "
          "added across machines (paper: 3.3K req/s per K80).")


if __name__ == "__main__":
    main()
