#!/usr/bin/env python3
"""Performance isolation (§3.2 vs §6.2).

Runs the same GPU vector-scale service twice next to a cache-thrashing
co-tenant (the 1140x1140 matmul):

  1. host-centric — the serving path shares the host LLC with the
     aggressor, and tail latency explodes (paper: 13x p99);
  2. Lynx on Bluefield — the path never touches the host CPU, so the
     aggressor cannot reach it.

Run:  python examples/noisy_neighbor.py
"""

from repro import Testbed, HostCentricServer
from repro.apps.vector_scale import (
    MatrixProductAggressor,
    VectorScaleApp,
    encode_vector,
)
from repro.net import Address, ClosedLoopGenerator
from repro.net.packet import UDP

VICTIM_WORKING_SET = 4 * 1024 * 1024


def measure(design, with_aggressor, seed=9):
    tb = Testbed(seed=seed)
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu()
    if design == "host-centric":
        server = HostCentricServer(env, host, [gpu], VectorScaleApp(),
                                   port=7777, cores=1)
        server.pool.default_memory_intensity = 0.85
        host.socket.llc.occupy(VICTIM_WORKING_SET)
        address = Address("10.0.0.1", 7777)
    else:
        snic = tb.bluefield("10.0.0.100")
        runtime, _ = tb.lynx_on_bluefield(snic)
        env.process(runtime.start_gpu_service(gpu, VectorScaleApp(),
                                              port=7777, n_mqueues=4))
        address = Address("10.0.0.100", 7777)
    tb.run(until=tb.env.now + 200)
    if with_aggressor:
        MatrixProductAggressor(env, host.pool(count=2, name="aggr"))
    client = tb.client("10.0.1.1")
    payload = encode_vector(list(range(256)))
    ClosedLoopGenerator(env, client, address, concurrency=4,
                        payload_fn=lambda i: payload, proto=UDP,
                        timeout=100_000)
    tb.warmup_then_measure([client.latency], 30_000, 300_000)
    return client.latency


def main():
    print("vector-scale server p99 latency, alone vs with a noisy "
          "neighbour:\n")
    for design in ("host-centric", "lynx-on-bluefield"):
        alone = measure(design, with_aggressor=False)
        shared = measure(design, with_aggressor=True)
        ratio = shared.p99() / alone.p99()
        print("  %-18s  alone p99 %7.1fus   shared p99 %8.1fus   "
              "inflation %5.1fx" % (design, alone.p99(), shared.p99(),
                                    ratio))
    print("\npaper: 13x inflation host-centric; no interference with "
          "Lynx on the SNIC.")


if __name__ == "__main__":
    main()
