#!/usr/bin/env python3
"""Quickstart: a GPU echo service behind Lynx on a Bluefield SmartNIC.

Builds the smallest complete deployment from the paper's Figure 3:

    client --UDP--> Bluefield (Lynx server) --RDMA--> mqueues in GPU
    memory --> persistent-kernel echo --> back to the client

and shows the two headline properties: end-to-end payload integrity
through the accelerator-centric data plane, and a *completely idle*
host CPU while requests are served.

Run:  python examples/quickstart.py
"""

from repro import Testbed, EchoApp
from repro.net import Address, ClosedLoopGenerator
from repro.net.packet import UDP


def main():
    tb = Testbed(seed=7)
    env = tb.env

    # -- hardware: one host with a K40m, one Bluefield SNIC -------------
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu()
    snic = tb.bluefield("10.0.0.100")

    # -- Lynx: runtime setup runs on the host CPU, then it goes idle ----
    runtime, server = tb.lynx_on_bluefield(snic)
    env.process(runtime.start_gpu_service(
        gpu, EchoApp(), port=7777, n_mqueues=4))
    tb.run(until=100)

    # -- a few explicit request/response round trips ---------------------
    client = tb.client("10.0.1.1")
    echoes = []

    def round_trips(env):
        for i in range(5):
            payload = b"lynx says hi #%d" % i
            response = yield from client.request(
                payload, Address("10.0.0.100", 7777), proto=UDP)
            echoes.append((payload, bytes(response.payload)))

    env.process(round_trips(env))
    tb.run(until=10_000)
    print("echo round trips:")
    for sent, received in echoes:
        status = "OK " if sent == received else "BAD"
        print("  [%s] %r -> %r" % (status, sent, received))

    # -- sustained load: measure latency, prove the host CPU is idle ----
    gen = ClosedLoopGenerator(env, client, Address("10.0.0.100", 7777),
                              concurrency=8,
                              payload_fn=lambda i: b"x" * 64, proto=UDP)
    tb.warmup_then_measure([client.latency, client.responses],
                           warmup=20_000, measure=100_000)

    print("\nunder load (8 outstanding requests):")
    print("  throughput : %8.0f req/s" % client.responses.per_sec())
    print("  latency    : p50 %.1fus  p99 %.1fus"
          % (client.latency.p50(), client.latency.p99()))
    print("  SNIC cores : %.0f%% busy" % (100 * snic.workers.utilization))
    print("  host cores : %s  <- the whole point of Lynx"
          % ", ".join("%.1f%%" % (100 * core.utilization)
                      for core in host.socket.cores))


if __name__ == "__main__":
    main()
