#!/usr/bin/env python3
"""Secure serving on the Intel VCA (§5.4, §6.2).

An SGX enclave on a VCA node serves AES-encrypted multiply requests.
The Lynx I/O library is small enough to be statically linked *into the
enclave*, so the node just polls an mqueue; the baseline tunnels every
message through the host's IP-over-PCIe network bridge.  The example
round-trips real AES-128 ciphertexts through both paths and compares
latency (paper: 56us p90 via Lynx, ~4.3x better).

Run:  python examples/sgx_enclave.py
"""

from repro import Testbed
from repro.apps.sgx_echo import SgxEchoApp, VcaBridgeBaseline, VcaLynxService
from repro.lynx.mqueue import MQueue
from repro.net import Address, OpenLoopGenerator
from repro.net.packet import UDP


def lynx_path(app, seed=21):
    tb = Testbed(seed=seed)
    env = tb.env
    tb.machine("10.0.0.1")
    vca = tb.vca()
    snic = tb.bluefield("10.0.0.100")
    runtime, server = tb.lynx_on_bluefield(snic)
    manager = runtime.attach_accelerator(vca.nodes[0],
                                         memory=vca.mqueue_memory)
    mq = MQueue(env, vca.mqueue_memory, entries=64, name="vca-mq")
    manager.register(mq)
    server.bind(9000, [mq])
    VcaLynxService(env, vca.nodes[0], mq, app)
    return tb, Address("10.0.0.100", 9000)


def bridge_path(app, seed=21):
    tb = Testbed(seed=seed)
    host = tb.machine("10.0.0.1")
    vca = tb.vca()
    VcaBridgeBaseline(tb.env, host, vca.nodes[0], app, port=9000)
    return tb, Address("10.0.0.1", 9000)


def main():
    app = SgxEchoApp(key=b"demo-enclave-key", multiplier=7)

    # one explicit secure round trip, checking the crypto end to end
    tb, address = lynx_path(app)
    client = tb.client("10.0.1.1")
    answers = []

    def secure_call(env):
        for value in (3, 10, -4):
            ciphertext = app.encrypt_value(value)
            response = yield from client.request(ciphertext, address,
                                                 proto=UDP)
            answers.append((value, app.decrypt_value(response.payload)))

    tb.env.process(secure_call(tb.env))
    tb.run(until=50_000)
    print("secure multiply-by-7 (AES-128 both ways):")
    for value, result in answers:
        print("  E(%3d) -> enclave -> E(%3d)  %s"
              % (value, result, "OK" if result == value * 7 else "WRONG"))

    # latency comparison at 1K req/s
    print("\np90 latency at 1K req/s (paper: 56us vs ~4.3x worse):")
    for label, builder in (("lynx mqueue path", lynx_path),
                           ("host bridge path", bridge_path)):
        tb, address = builder(app)
        client = tb.client("10.0.1.1")
        payload = app.encrypt_value(6)
        OpenLoopGenerator(tb.env, client, address, 1000 / 1e6,
                          lambda i: payload, proto=UDP)
        tb.warmup_then_measure([client.latency], 30_000, 300_000)
        print("  %-18s p50 %6.1fus   p90 %6.1fus"
              % (label, client.latency.p50(), client.latency.p90()))


if __name__ == "__main__":
    main()
