"""Lynx (ASPLOS'20) reproduction.

A microsecond-resolution discrete-event simulation of SmartNIC-driven,
accelerator-centric network servers, plus the Lynx system itself
(mqueues, SNIC network server, RDMA-backed remote queue management,
accelerator-side I/O), the host-centric baseline, the paper's
application workloads, and an experiment harness reproducing every
table and figure of the evaluation.

Quickstart::

    from repro import Testbed, LeNetApp
    from repro.net import Address, ClosedLoopGenerator

    tb = Testbed()
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu()
    snic = tb.bluefield("10.0.0.100")
    runtime, server = tb.lynx_on_bluefield(snic)
    tb.env.process(runtime.start_gpu_service(gpu, LeNetApp(), port=7777))
    tb.run(until=50)
    # ... attach clients, run, read latencies (see examples/).
"""

from . import units
from .config import (
    DEFAULT_CONFIG,
    SimConfig,
    BluefieldProfile,
    InnovaProfile,
    VcaProfile,
    GpuProfile,
    K40M,
    K80,
    XEON_E5_2620,
    BLUEFIELD_ARM,
    XEON_VMA,
    XEON_KERNEL,
    ARM_VMA,
    ARM_KERNEL,
)
from .errors import (
    ReproError,
    SimulationError,
    ConfigError,
    CapacityError,
    NetworkError,
    AcceleratorError,
)
from .sim import Environment
from .experiments.testbed import Testbed
from .lynx import LynxRuntime, LynxServer, MQueue
from .baseline import HostCentricServer
from .apps import (
    EchoApp,
    SpinApp,
    LeNetApp,
    FaceVerificationApp,
    VectorScaleApp,
    MemcachedServer,
    SgxEchoApp,
)

__version__ = "0.1.0"

__all__ = [
    "units",
    "DEFAULT_CONFIG",
    "SimConfig",
    "BluefieldProfile",
    "InnovaProfile",
    "VcaProfile",
    "GpuProfile",
    "K40M",
    "K80",
    "XEON_E5_2620",
    "BLUEFIELD_ARM",
    "XEON_VMA",
    "XEON_KERNEL",
    "ARM_VMA",
    "ARM_KERNEL",
    "ReproError",
    "SimulationError",
    "ConfigError",
    "CapacityError",
    "NetworkError",
    "AcceleratorError",
    "Environment",
    "Testbed",
    "LynxRuntime",
    "LynxServer",
    "MQueue",
    "HostCentricServer",
    "EchoApp",
    "SpinApp",
    "LeNetApp",
    "FaceVerificationApp",
    "VectorScaleApp",
    "MemcachedServer",
    "SgxEchoApp",
    "__version__",
]
