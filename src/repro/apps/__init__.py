"""Application workloads from the paper's evaluation (§6)."""

from .base import EchoApp, ServerApp, SpinApp
from .vector_scale import (
    MatrixProductAggressor,
    VectorScaleApp,
    decode_vector,
    encode_vector,
)
from .memcached import (
    KeyValueStore,
    MemcachedServer,
    encode_get,
    encode_set,
    MISS,
    STORED,
)
from .sgx_echo import SgxEchoApp, VcaBridgeBaseline, VcaLynxService
from .lenet import LeNetApp
from .facever import FaceVerificationApp
from .knn import KnnApp, KnnDataset

__all__ = [
    "ServerApp",
    "EchoApp",
    "SpinApp",
    "VectorScaleApp",
    "MatrixProductAggressor",
    "encode_vector",
    "decode_vector",
    "KeyValueStore",
    "MemcachedServer",
    "encode_get",
    "encode_set",
    "MISS",
    "STORED",
    "SgxEchoApp",
    "VcaLynxService",
    "VcaBridgeBaseline",
    "LeNetApp",
    "FaceVerificationApp",
    "KnnApp",
    "KnnDataset",
]
