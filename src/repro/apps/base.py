"""Application model shared by Lynx and the host-centric baseline.

A :class:`ServerApp` separates the two things a request costs:

* :meth:`compute` — the *real* computation, executed in Python so the
  response payload is genuine (tests verify end-to-end integrity);
* :attr:`gpu_duration` — the simulated time the kernel occupies the
  accelerator (calibrated from the paper, see
  :class:`repro.config.AppTimings`).

``handle`` is the accelerator-resident coroutine used by Lynx's
persistent-kernel service loop; apps with backend I/O (Face
Verification) override it.
"""

from ..errors import ConfigError


class ServerApp:
    """Base class for accelerated server applications."""

    #: short identifier (used in process names and stats)
    name = "app"
    #: simulated kernel duration per request, in K40m microseconds
    gpu_duration = 0.0
    #: launch per-request work as a device-side child kernel (§6.3)
    use_dynamic_parallelism = False

    def compute(self, payload):
        """The real computation: payload in, response payload out."""
        raise NotImplementedError

    def handle(self, ctx, entry):
        """Generator: process one request inside the accelerator."""
        result = self.compute(entry.payload)
        yield from ctx.compute(self.gpu_duration,
                               self.use_dynamic_parallelism)
        return result

    def handle_host(self, ctx, msg):
        """Generator: process one request in the host-centric baseline."""
        from ..baseline.host_centric import default_handle_host

        return (yield from default_handle_host(self, ctx, msg))


class EchoApp(ServerApp):
    """The §3.2 microbenchmark kernel: copy input to output, optionally
    spinning for a configurable emulated processing time."""

    name = "echo"

    def __init__(self, delay=0.0):
        if delay < 0:
            raise ConfigError("negative echo delay")
        self.gpu_duration = delay

    def compute(self, payload):
        return payload


class SpinApp(ServerApp):
    """Fig 6/7/8c emulation kernel: a single thread that blocks for a
    predefined request runtime; the response is a 4-byte status."""

    name = "spin"

    def __init__(self, runtime_us, response=b"ok!\x00"):
        if runtime_us < 0:
            raise ConfigError("negative runtime")
        self.gpu_duration = runtime_us
        self._response = response

    def compute(self, payload):
        return self._response
