"""From-scratch cryptographic primitives (for the SGX workload)."""

from .aes import AES128, BLOCK_SIZE, decrypt_block, encrypt_block, expand_key

__all__ = ["AES128", "BLOCK_SIZE", "decrypt_block", "encrypt_block",
           "expand_key"]
