"""Face verification over LBP with a memcached tier (the §6.4 workload)."""

from .lbp import (
    DEFAULT_THRESHOLD,
    chi_square,
    lbp_codes,
    lbp_histogram,
    verify,
)
from .dataset import FaceDatabase, face_bytes, face_image, person_label
from .server import (
    BACKEND,
    FaceVerificationApp,
    decode_request,
    decode_result,
    encode_request,
    encode_result,
)

__all__ = [
    "DEFAULT_THRESHOLD",
    "chi_square",
    "lbp_codes",
    "lbp_histogram",
    "verify",
    "FaceDatabase",
    "face_bytes",
    "face_image",
    "person_label",
    "BACKEND",
    "FaceVerificationApp",
    "decode_request",
    "decode_result",
    "encode_request",
    "encode_result",
]
