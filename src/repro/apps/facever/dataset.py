"""Synthetic face dataset standing in for color FERET (§6.4).

The paper resizes FERET faces to 32x32 and keys them by random 12-byte
labels.  FERET cannot be redistributed, so we synthesize per-person
face-like images: a seeded base pattern per person (stable identity
structure) plus small per-photo noise.  Same-person pairs are close
under LBP/chi-square, different-person pairs are far — the property the
workload needs.
"""

import numpy as np

from ...errors import ConfigError
from .lbp import IMAGE_SIDE


def person_label(person_id):
    """The 12-byte database key of a person (mirrors the paper)."""
    return b"person-%05d" % person_id


#: per-process cache of rendered faces, keyed by the full parameter
#: tuple.  Every experiment point preloads the whole database and every
#: client request re-renders its probe; the cosine-field synthesis is by
#: far the most expensive part, and it is a pure function of the key —
#: sweep workers (which rebuild the database per point) hit this cache
#: after their first point.
_FACE_CACHE = {}


def face_image(person_id, variant=0, noise=6.0):
    """A 32x32 uint8 "photograph" of *person_id*.

    The identity is a deterministic smooth random field (per-person
    facial structure); *variant* adds photo-to-photo noise.
    """
    if person_id < 0:
        raise ConfigError("person_id must be non-negative")
    key = (person_id, variant, noise)
    cached = _FACE_CACHE.get(key)
    if cached is None:
        base_rng = np.random.default_rng(100000 + person_id)
        # Smooth per-person structure: sum of a few random 2D cosines.
        yy, xx = np.mgrid[0:IMAGE_SIDE, 0:IMAGE_SIDE]
        img = np.full((IMAGE_SIDE, IMAGE_SIDE), 128.0)
        for _ in range(6):
            fy, fx = base_rng.uniform(0.05, 0.45, size=2)
            phase = base_rng.uniform(0, 2 * np.pi)
            amp = base_rng.uniform(20, 45)
            img += amp * np.cos(2 * np.pi * (fy * yy + fx * xx) + phase)
        if variant:
            var_rng = np.random.default_rng((person_id + 1) * 7919 + variant)
            img += var_rng.standard_normal(img.shape) * noise
        cached = _FACE_CACHE[key] = np.clip(img, 0, 255).astype(np.uint8)
        cached.setflags(write=False)
    return cached


def face_bytes(person_id, variant=0, noise=6.0):
    """The 1024-byte wire/database payload of a face."""
    return face_image(person_id, variant=variant, noise=noise).tobytes()


class FaceDatabase:
    """The reference-photo database loaded into memcached."""

    def __init__(self, num_people=256):
        if num_people < 1:
            raise ConfigError("need at least one person")
        self.num_people = num_people

    def items(self):
        """Yield (label, reference_image_bytes) for preloading."""
        for pid in range(self.num_people):
            yield person_label(pid), face_bytes(pid, variant=0)

    def probe(self, person_id, variant=1):
        """A fresh photo of *person_id* (same person, different shot)."""
        return face_bytes(person_id % self.num_people, variant=variant)

    def impostor_probe(self, person_id, variant=1):
        """A photo of someone else, for negative verification tests."""
        return face_bytes((person_id + 1) % self.num_people, variant=variant)
