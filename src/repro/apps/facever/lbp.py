"""Local Binary Patterns face verification (§6.4, [Ahonen'06]).

The real algorithm, from scratch in numpy: each pixel is encoded by
comparing it with its 8 neighbours (clockwise bits), the image is cut
into cells, per-cell 256-bin histograms are concatenated, and two faces
are compared by chi-square distance between their histograms.  Lower
distance = more similar; a threshold turns it into verification.
"""

import numpy as np

from ...errors import ConfigError

IMAGE_SIDE = 32
CELL = 8
BINS = 256

#: chi-square distance below this verifies as "same person"
DEFAULT_THRESHOLD = 350.0


def _as_image(data):
    if isinstance(data, (bytes, bytearray, memoryview)):
        data = np.frombuffer(bytes(data), dtype=np.uint8)
    arr = np.asarray(data)
    if arr.size != IMAGE_SIDE * IMAGE_SIDE:
        raise ConfigError("LBP expects %dx%d images, got %d values"
                          % (IMAGE_SIDE, IMAGE_SIDE, arr.size))
    return arr.reshape(IMAGE_SIDE, IMAGE_SIDE).astype(np.int32)


def lbp_codes(image):
    """The 8-bit LBP code of every interior pixel (H-2 x W-2)."""
    img = _as_image(image)
    center = img[1:-1, 1:-1]
    # Clockwise from top-left; bit i set if neighbour >= center.
    neighbours = [
        img[0:-2, 0:-2], img[0:-2, 1:-1], img[0:-2, 2:],
        img[1:-1, 2:],
        img[2:, 2:], img[2:, 1:-1], img[2:, 0:-2],
        img[1:-1, 0:-2],
    ]
    codes = np.zeros(center.shape, dtype=np.uint8)
    for bit, nb in enumerate(neighbours):
        codes |= ((nb >= center).astype(np.uint8) << bit)
    return codes


def lbp_histogram(image):
    """Concatenated per-cell LBP histograms (the face descriptor)."""
    codes = lbp_codes(image)
    h, w = codes.shape
    hists = []
    for y in range(0, h - h % CELL, CELL):
        for x in range(0, w - w % CELL, CELL):
            cell = codes[y:y + CELL, x:x + CELL]
            hist = np.bincount(cell.reshape(-1), minlength=BINS)
            hists.append(hist)
    return np.concatenate(hists).astype(np.float64)


def chi_square(h1, h2):
    """Chi-square distance between two histograms."""
    denom = h1 + h2
    mask = denom > 0
    diff = h1 - h2
    return float(np.sum(diff[mask] ** 2 / denom[mask]))


def verify(probe, reference, threshold=DEFAULT_THRESHOLD):
    """Full verification: returns (is_same, distance)."""
    dist = chi_square(lbp_histogram(probe), lbp_histogram(reference))
    return dist <= threshold, dist
