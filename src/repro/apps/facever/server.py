"""The Face Verification server application (§6.4).

Request: 12-byte person label + a 1024-byte probe photo.
The server fetches the person's reference photo from the memcached
backend (over a client mqueue on Lynx; over the host stack in the
baseline), runs LBP verification on the GPU, and returns the result.

The Lynx version runs *entirely* on the accelerator: the persistent
kernel issues the memcached GET through its client mqueue mid-request —
the paper's showcase of accelerator-side networking.
"""

import struct

from ...config import DEFAULT_APP_TIMINGS
from ...errors import ConfigError
from ..base import ServerApp
from ..memcached import encode_get, MISS
from .lbp import DEFAULT_THRESHOLD, chi_square, lbp_histogram

LABEL_BYTES = 12
BACKEND = "facedb"


def encode_request(label, probe_image):
    """Build the wire payload: label + probe photo."""
    label = bytes(label)
    if len(label) != LABEL_BYTES:
        raise ConfigError("labels are %d bytes, got %d" % (LABEL_BYTES, len(label)))
    return label + bytes(probe_image)


def decode_request(payload):
    payload = bytes(payload)
    return payload[:LABEL_BYTES], payload[LABEL_BYTES:]


def encode_result(is_same, distance):
    return struct.pack("<if", int(is_same), float(distance))


def decode_result(payload):
    is_same, distance = struct.unpack("<if", bytes(payload))
    return bool(is_same), distance


class FaceVerificationApp(ServerApp):
    """GPU LBP face verification with a memcached photo database."""

    name = "facever"
    #: the LBP compare kernel runs "about 50us" (§6.4)
    use_dynamic_parallelism = False

    def __init__(self, timings=DEFAULT_APP_TIMINGS,
                 threshold=DEFAULT_THRESHOLD, compute_for_real=True):
        self.gpu_duration = timings.facever_gpu
        self.threshold = threshold
        self.compute_for_real = compute_for_real
        self.verified = 0
        self.rejected = 0
        self.misses = 0
        self.backend_errors = 0

    # -- pure compare (shared by both designs) -------------------------------

    def compare(self, probe, reference):
        if not self.compute_for_real:
            return encode_result(True, 0.0)
        dist = chi_square(lbp_histogram(probe), lbp_histogram(reference))
        same = dist <= self.threshold
        if same:
            self.verified += 1
        else:
            self.rejected += 1
        return encode_result(same, dist)

    def compute(self, payload):  # pragma: no cover - not used directly
        raise ConfigError("FaceVerificationApp needs its backend-aware "
                          "handlers, not bare compute()")

    # -- Lynx: everything on the accelerator ------------------------------------

    def handle(self, ctx, entry):
        label, probe = decode_request(entry.payload)
        reply = yield from ctx.call(BACKEND, encode_get(label))
        if reply.error:
            # the SNIC flagged a backend connection error / timeout in
            # the mqueue metadata (§5.1) — fail the request cleanly
            self.backend_errors += 1
            return encode_result(False, float("inf"))
        reference = bytes(reply.payload)
        if reference == MISS:
            self.misses += 1
            return encode_result(False, float("inf"))
        result = self.compare(probe, reference)
        yield from ctx.compute(self.gpu_duration,
                               self.use_dynamic_parallelism)
        return result

    # -- host-centric: CPU fetches, then launches the compare kernel -----------

    def handle_host(self, ctx, msg):
        label, probe = decode_request(msg.payload)
        reply = yield from ctx.backend_call(BACKEND, encode_get(label))
        reference = bytes(reply.payload)
        if reference == MISS:
            self.misses += 1
            return encode_result(False, float("inf"))
        result = self.compare(probe, reference)
        # H2D: probe + reference; D2H: the 8-byte result.  The baseline
        # (as in prior GPUnet-style servers) drives the GPU with
        # synchronous copies and a per-request device sync, so the CPU
        # blocks for the whole leg — §6.4's "overhead of kernel
        # invocation and GPU data transfers is high vs the 50us kernel".
        yield from ctx.gpu_pipeline_blocking(len(probe) + len(reference), 8,
                                             self.gpu_duration)
        return result
