"""A k-nearest-neighbour search service (multi-GPU workload).

The paper motivates Lynx with multi-GPU network services and cites
k-NN serving (Centaur [50]) as the workload whose scaling is wrecked by
kernel-invocation overheads.  This app serves real brute-force k-NN:
each GPU holds a replica of a seeded vector dataset; queries are 256B
vectors; responses carry the top-k (index, distance) pairs, computed
with numpy for real so end-to-end correctness is testable.

Deployed behind Lynx, queries fan out over per-GPU mqueues with zero
host-CPU involvement — the Figure 8b pattern applied to a second
workload.
"""

import struct

import numpy as np

from ..errors import ConfigError
from .base import ServerApp

DIM = 64
DEFAULT_K = 4
DEFAULT_DATASET = 4096


def encode_query(vector):
    arr = np.asarray(vector, dtype=np.float32)
    if arr.shape != (DIM,):
        raise ConfigError("queries are %d-dim float32 vectors" % DIM)
    return arr.tobytes()


def decode_query(payload):
    return np.frombuffer(bytes(payload), dtype=np.float32)


def encode_result(indices, distances):
    out = bytearray(struct.pack("<i", len(indices)))
    for idx, dist in zip(indices, distances):
        out.extend(struct.pack("<if", int(idx), float(dist)))
    return bytes(out)


def decode_result(payload):
    payload = bytes(payload)
    (count,) = struct.unpack_from("<i", payload, 0)
    pairs = []
    for i in range(count):
        idx, dist = struct.unpack_from("<if", payload, 4 + 8 * i)
        pairs.append((idx, dist))
    return pairs


class KnnDataset:
    """A seeded, replicated vector dataset."""

    def __init__(self, size=DEFAULT_DATASET, seed=77):
        rng = np.random.default_rng(seed)
        self.vectors = rng.standard_normal((size, DIM)).astype(np.float32)
        #: precomputed squared norms for the distance kernel
        self._norms = np.einsum("ij,ij->i", self.vectors, self.vectors)

    def __len__(self):
        return len(self.vectors)

    def query(self, vector, k=DEFAULT_K):
        """Exact top-k by L2 distance; returns (indices, distances)."""
        v = np.asarray(vector, dtype=np.float32)
        dists = self._norms - 2.0 * (self.vectors @ v) + float(v @ v)
        np.maximum(dists, 0.0, out=dists)
        top = np.argpartition(dists, k)[:k]
        order = top[np.argsort(dists[top])]
        return order, np.sqrt(dists[order])

    def sample_query(self, index, noise=0.05):
        """A query near dataset vector *index* (its own nearest hit)."""
        rng = np.random.default_rng(1000 + index)
        base = self.vectors[index % len(self.vectors)]
        return base + rng.standard_normal(DIM).astype(np.float32) * noise


class KnnApp(ServerApp):
    """Brute-force k-NN serving on GPUs."""

    name = "knn"
    use_dynamic_parallelism = True

    def __init__(self, dataset=None, k=DEFAULT_K, compute_for_real=True):
        self.dataset = dataset or KnnDataset()
        self.k = k
        self.compute_for_real = compute_for_real
        # Brute-force distance kernel time on a K40m: the dataset scan
        # is memory-bound; ~0.12us per vector at DIM=64.
        self.gpu_duration = 0.12 * len(self.dataset)

    def compute(self, payload):
        if not self.compute_for_real:
            return encode_result([0] * self.k, [0.0] * self.k)
        query = decode_query(payload)
        indices, distances = self.dataset.query(query, self.k)
        return encode_result(indices, distances)
