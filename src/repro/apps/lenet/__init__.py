"""LeNet-5 digit-recognition serving (the §6.3 workload)."""

from .model import (
    LeNet5,
    conv2d_valid,
    conv2d_valid_batch,
    maxpool2,
    maxpool2_batch,
    relu,
)
from .mnist import MnistStream, image_bytes, render_digit, template_set
from .server import LeNetApp

__all__ = [
    "LeNet5",
    "conv2d_valid",
    "conv2d_valid_batch",
    "maxpool2",
    "maxpool2_batch",
    "relu",
    "MnistStream",
    "image_bytes",
    "render_digit",
    "template_set",
    "LeNetApp",
]
