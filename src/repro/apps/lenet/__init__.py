"""LeNet-5 digit-recognition serving (the §6.3 workload)."""

from .model import LeNet5, conv2d_valid, maxpool2, relu
from .mnist import MnistStream, image_bytes, render_digit, template_set
from .server import LeNetApp

__all__ = [
    "LeNet5",
    "conv2d_valid",
    "maxpool2",
    "relu",
    "MnistStream",
    "image_bytes",
    "render_digit",
    "template_set",
    "LeNetApp",
]
