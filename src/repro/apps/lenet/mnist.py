"""Synthetic MNIST-like digit images.

The paper's clients send 28x28 grayscale MNIST images.  The dataset is
not bundled offline, so we render digits from a 5x7 bitmap font,
upscale to 28x28, and add seeded noise/jitter — same payload size, same
value range, deterministic, and classifiable by the prototype-
calibrated LeNet (see :meth:`LeNet5.calibrate_to_templates`).
"""

import numpy as np

from ...errors import ConfigError

# 5x7 font, one string per digit row; '#' marks an on pixel.
_FONT = {
    0: [" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "],
    1: ["  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "],
    2: [" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"],
    3: [" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "],
    4: ["   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "],
    5: ["#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "],
    6: [" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "],
    7: ["#####", "    #", "   # ", "  #  ", "  #  ", "  #  ", "  #  "],
    8: [" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "],
    9: [" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "],
}

IMAGE_SIDE = 28

#: (digit, shift) -> pre-noise float64 glyph image.  Rendering is a pure
#: function of its arguments, and load generators re-render the same few
#: dozen variants for every request.
_GLYPH_CACHE = {}


def _base_image(digit, shift):
    key = (digit, shift)
    img = _GLYPH_CACHE.get(key)
    if img is None:
        glyph = _FONT[digit]
        img = np.zeros((IMAGE_SIDE, IMAGE_SIDE), dtype=np.float64)
        # Upscale 5x7 -> 20x21(ish): each font pixel becomes a 4x3 block.
        cell_h, cell_w = 3, 4
        top = (IMAGE_SIDE - len(glyph) * cell_h) // 2 + shift[0]
        left = (IMAGE_SIDE - len(glyph[0]) * cell_w) // 2 + shift[1]
        for r, row in enumerate(glyph):
            for c, ch in enumerate(row):
                if ch == "#":
                    y0 = top + r * cell_h
                    x0 = left + c * cell_w
                    img[max(0, y0):y0 + cell_h, max(0, x0):x0 + cell_w] = 255.0
        _GLYPH_CACHE[key] = img
    return img


def render_digit(digit, noise=0.0, shift=(0, 0), rng=None):
    """Render *digit* as a 28x28 uint8 image.

    *noise* in [0, 1) adds seeded gaussian pixel noise; *shift* moves
    the glyph by (dy, dx) pixels (|shift| <= 3 keeps it in frame).
    """
    if digit not in _FONT:
        raise ConfigError("digit must be 0..9, got %r" % (digit,))
    img = _base_image(digit, tuple(shift)).copy()
    if noise > 0:
        if rng is None:
            rng = np.random.default_rng(digit)
        img += rng.standard_normal(img.shape) * 255.0 * noise
    return np.clip(img, 0, 255).astype(np.uint8)


def image_bytes(digit, noise=0.0, shift=(0, 0), rng=None):
    """The 784-byte wire payload of a rendered digit."""
    return render_digit(digit, noise=noise, shift=shift, rng=rng).tobytes()


class MnistStream:
    """Deterministic stream of (payload, label) pairs for load clients."""

    def __init__(self, seed=0, noise=0.02, max_shift=1):
        self._rng = np.random.default_rng(seed)
        self.noise = noise
        self.max_shift = max_shift

    def sample(self, index):
        digit = index % 10
        shift = (int(self._rng.integers(-self.max_shift, self.max_shift + 1)),
                 int(self._rng.integers(-self.max_shift, self.max_shift + 1)))
        return image_bytes(digit, noise=self.noise, shift=shift,
                           rng=self._rng), digit


def template_set(max_shift=1):
    """Digit -> list of images, for LeNet prototype calibration.

    Covers every glyph shift the default :class:`MnistStream` emits so
    the prototype readout sees each variant.
    """
    out = {}
    for digit in range(10):
        images = []
        for dy in range(-max_shift, max_shift + 1):
            for dx in range(-max_shift, max_shift + 1):
                images.append(render_digit(digit, shift=(dy, dx)))
        out[digit] = images
    return out
