"""LeNet-5 forward pass, implemented from scratch in numpy (§6.3).

The paper serves LeNet [LeCun'98] inference compiled by TVM to run
entirely on the GPU.  We reproduce the *computation* exactly (conv 5x5
-> pool -> conv 5x5 -> pool -> fc120 -> fc84 -> fc10 over a 28x28
grayscale image) so the served responses are real classifications, and
charge the calibrated K40m duration (~278us) as simulated kernel time.

Weights are deterministic (seeded He initialization): an untrained
network classifies arbitrarily but *reproducibly*, which is what the
end-to-end integrity tests need.  ``train_digit_templates`` nudges the
final layer so the bundled synthetic digit set classifies correctly,
making the examples meaningful.
"""

import numpy as np

from ...errors import ConfigError

IMAGE_SIDE = 28
NUM_CLASSES = 10


def _he(rng, *shape):
    fan_in = int(np.prod(shape[1:])) or 1
    return rng.standard_normal(shape) * np.sqrt(2.0 / fan_in)


def conv2d_valid(x, weights, bias):
    """Valid-mode 2D convolution: x[C,H,W] * w[K,C,R,S] + b[K]."""
    c, h, w = x.shape
    k, wc, r, s = weights.shape
    if wc != c:
        raise ConfigError("conv channel mismatch: %d vs %d" % (wc, c))
    oh, ow = h - r + 1, w - s + 1
    # im2col: gather all RxS patches, then one matmul.  The window view
    # is indexed [ci, ri, si, oy, ox], so reshaping in C order yields
    # rows in exactly (ci, ri, si) order — the same cols matrix the
    # per-patch gather loop produced, without c*r*s python iterations.
    windows = np.lib.stride_tricks.sliding_window_view(x, (oh, ow),
                                                       axis=(1, 2))
    cols = windows.reshape(c * r * s, oh * ow)
    out = weights.reshape(k, -1) @ cols + bias[:, None]
    return out.reshape(k, oh, ow)


def conv2d_valid_batch(x, weights, bias):
    """Valid-mode 2D convolution over a batch: x[N,C,H,W] * w[K,C,R,S].

    Same im2col trick as :func:`conv2d_valid`, with the window view
    taken over the two spatial axes and the batch axis broadcast
    through one stacked matmul ``(K,CRS) @ (N,CRS,OHOW)``.
    """
    n, c, h, w = x.shape
    k, wc, r, s = weights.shape
    if wc != c:
        raise ConfigError("conv channel mismatch: %d vs %d" % (wc, c))
    oh, ow = h - r + 1, w - s + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (oh, ow),
                                                       axis=(2, 3))
    cols = windows.reshape(n, c * r * s, oh * ow)
    out = weights.reshape(k, -1) @ cols + bias[:, None]
    return out.reshape(n, k, oh, ow)


def maxpool2(x):
    """2x2 max pooling with stride 2 over x[C,H,W]."""
    c, h, w = x.shape
    x = x[:, :h - h % 2, :w - w % 2]
    return x.reshape(c, h // 2, 2, w // 2, 2).max(axis=(2, 4))


def maxpool2_batch(x):
    """2x2 max pooling with stride 2 over x[N,C,H,W]."""
    n, c, h, w = x.shape
    x = x[:, :, :h - h % 2, :w - w % 2]
    return x.reshape(n, c, h // 2, 2, w // 2, 2).max(axis=(3, 5))


def relu(x):
    return np.maximum(x, 0.0)


#: per-process cache of He-initialized weight tensors, keyed by seed.
#: Sweep workers build a fresh ``LeNet5`` per point; re-drawing the
#: same seeded weights each time is pure waste, and copying out of the
#: cache keeps instances free to mutate (calibration rewrites fc3).
_WEIGHT_CACHE = {}


def _init_weights(seed):
    cached = _WEIGHT_CACHE.get(seed)
    if cached is None:
        rng = np.random.default_rng(seed)
        cached = _WEIGHT_CACHE[seed] = (
            _he(rng, 6, 1, 5, 5),
            _he(rng, 16, 6, 5, 5),
            _he(rng, 120, 16 * 4 * 4),
            _he(rng, 84, 120),
            _he(rng, 10, 84),
        )
    return tuple(w.copy() for w in cached)


class LeNet5:
    """The classic LeNet-5 architecture (28x28 grayscale -> 10 logits)."""

    def __init__(self, seed=1998):
        (self.conv1_w, self.conv2_w, self.fc1_w, self.fc2_w,
         self.fc3_w) = _init_weights(seed)
        self.conv1_b = np.zeros(6)
        self.conv2_b = np.zeros(16)
        self.fc1_b = np.zeros(120)
        self.fc2_b = np.zeros(84)
        self.fc3_b = np.zeros(10)

    def forward(self, image):
        """Run inference on one image; returns the 10 class logits."""
        x = self._prepare(image)
        x = relu(conv2d_valid(x, self.conv1_w, self.conv1_b))   # 6x24x24
        x = maxpool2(x)                                          # 6x12x12
        x = relu(conv2d_valid(x, self.conv2_w, self.conv2_b))   # 16x8x8
        x = maxpool2(x)                                          # 16x4x4
        x = x.reshape(-1)
        x = relu(self.fc1_w @ x + self.fc1_b)
        x = relu(self.fc2_w @ x + self.fc2_b)
        return self.fc3_w @ x + self.fc3_b

    def forward_batch(self, images):
        """Batched inference; returns an [N, 10] logit matrix.

        *images* is an ``[N, 28, 28]`` array (or any iterable of the
        per-image formats :meth:`forward` accepts).  One vectorized
        pass through the batched im2col conv stack — identical math to
        N calls of :meth:`forward`, minus the python loop.
        """
        feats = self._features_batch(self._prepare_batch(images))
        return feats @ self.fc3_w.T + self.fc3_b

    def classify(self, image):
        """Most likely digit for *image* (28x28 bytes or float array)."""
        return int(np.argmax(self.forward(image)))

    def classify_batch(self, images):
        """Most likely digit per image; returns a length-N int array."""
        return np.argmax(self.forward_batch(images), axis=1)

    def _features_batch(self, x):
        """Penultimate (fc2) activations for a prepared [N,1,28,28] batch."""
        x = relu(conv2d_valid_batch(x, self.conv1_w, self.conv1_b))
        x = maxpool2_batch(x)                                    # Nx6x12x12
        x = relu(conv2d_valid_batch(x, self.conv2_w, self.conv2_b))
        x = maxpool2_batch(x)                                    # Nx16x4x4
        x = x.reshape(x.shape[0], -1)
        x = relu(x @ self.fc1_w.T + self.fc1_b)
        return relu(x @ self.fc2_w.T + self.fc2_b)

    @staticmethod
    def _prepare(image):
        if isinstance(image, (bytes, bytearray, memoryview)):
            image = np.frombuffer(bytes(image), dtype=np.uint8)
        arr = np.asarray(image, dtype=np.float64)
        if arr.size != IMAGE_SIDE * IMAGE_SIDE:
            raise ConfigError("LeNet expects a %dx%d image, got %d values"
                              % (IMAGE_SIDE, IMAGE_SIDE, arr.size))
        arr = arr.reshape(1, IMAGE_SIDE, IMAGE_SIDE)
        return arr / 255.0 - 0.5

    @staticmethod
    def _prepare_batch(images):
        if isinstance(images, np.ndarray) and images.ndim == 3:
            if images.shape[1:] != (IMAGE_SIDE, IMAGE_SIDE):
                raise ConfigError(
                    "LeNet batch expects [N, %d, %d] images, got %r"
                    % (IMAGE_SIDE, IMAGE_SIDE, images.shape))
            return np.asarray(images, dtype=np.float64)[:, None] \
                / 255.0 - 0.5
        return np.stack([LeNet5._prepare(image) for image in images])

    def calibrate_to_templates(self, images_by_digit):
        """Teach the last layer to separate the given digit templates.

        A tiny prototype-based readout: replaces fc3 with rows that
        score similarity against each digit's mean penultimate features.
        Enough for the synthetic MNIST generator's glyphs to classify
        correctly without a training loop.
        """
        feats = {}
        for digit, images in images_by_digit.items():
            batch = self._prepare_batch(list(images))
            feats[digit] = self._features_batch(batch).mean(axis=0)
        for digit in range(NUM_CLASSES):
            if digit not in feats:
                raise ConfigError("missing templates for digit %d" % digit)
            proto = feats[digit]
            norm = np.linalg.norm(proto) or 1.0
            self.fc3_w[digit] = proto / norm
            self.fc3_b[digit] = 0.0
        return self
