"""The LeNet model-serving application (§6.3).

Requests are 784-byte images; the response is the recognized digit.
On Lynx, the persistent kernel's polling thread launches the actual
inference kernels through dynamic parallelism — faithfully mirrored by
``use_dynamic_parallelism``.
"""

import struct

from ...config import DEFAULT_APP_TIMINGS
from ..base import ServerApp
from .mnist import template_set
from .model import LeNet5


#: seed -> calibrated (fc3_w, fc3_b).  Calibration is a pure function
#: of the weight seed and the default template set, and experiments
#: build a fresh LeNetApp per measured design — without the cache each
#: run pays 90 numpy forward passes for bit-identical weights.
_CALIBRATION_CACHE = {}


class LeNetApp(ServerApp):
    """GPU LeNet inference server application."""

    name = "lenet"
    use_dynamic_parallelism = True
    #: the TVM-generated host-centric code issues one launch per fused
    #: layer group; on Lynx the whole network is one device-side child
    #: launch chain (§6.3)
    host_kernel_launches = 5

    def __init__(self, timings=DEFAULT_APP_TIMINGS, calibrated=True,
                 seed=1998, compute_for_real=True):
        self.gpu_duration = timings.lenet_gpu
        self.model = LeNet5(seed=seed)
        if calibrated:
            cached = _CALIBRATION_CACHE.get(seed)
            if cached is None:
                self.model.calibrate_to_templates(template_set())
                _CALIBRATION_CACHE[seed] = (self.model.fc3_w.copy(),
                                            self.model.fc3_b.copy())
            else:
                # calibrate_to_templates only rewrites the fc3 readout.
                self.model.fc3_w = cached[0].copy()
                self.model.fc3_b = cached[1].copy()
        #: throughput experiments can skip the numpy forward pass (the
        #: simulated timing is unchanged; the response becomes digit 0)
        self.compute_for_real = compute_for_real

    def handle_host(self, ctx, msg):
        """Host-centric LeNet: H2D, a launch per layer group, D2H.

        The TVM-generated layer kernels are grid-sized (they fill the
        GPU), so kernels of concurrent requests serialize — which is why
        the paper's host-centric LeNet (2.8 Kreq/s) lands *below* the
        3.6 Kreq/s serial single-GPU maximum.
        """
        result = self.compute(msg.payload)
        yield from ctx.gpu.memcpy_async(ctx.pool, msg.size)
        per_launch = self.gpu_duration / self.host_kernel_launches
        yield from ctx.gpu.run_kernel_chain(
            ctx.pool, [per_launch] * self.host_kernel_launches)
        yield from ctx.gpu.memcpy_async(ctx.pool, len(result))
        return result

    def compute(self, payload):
        """Classify the image; the response is a 4-byte digit."""
        if not self.compute_for_real:
            return struct.pack("<i", 0)
        digit = self.model.classify(payload)
        return struct.pack("<i", digit)

    @staticmethod
    def decode_response(payload):
        """Digit encoded in a response payload."""
        return struct.unpack("<i", bytes(payload))[0]
