"""A memcached-style key-value server.

Two roles in the paper:

* the Face Verification server's database backend (§6.4), accessed over
  TCP via Lynx client mqueues;
* the co-tenant server workload of the Fig 9 efficiency experiment,
  running on host Xeon cores and/or on the Bluefield's ARM cores.

The store is real (an in-process dict of bytes); per-op CPU cost is
calibrated per platform (Fig 9: ~250 Ktps per Xeon core, ~400 Ktps for
the whole Bluefield at much higher latency).

Wire protocol (binary-ish, minimal):
    b"get \x00" + key                    -> value (or b"" miss)
    b"set \x00" + key + b"\x00" + value  -> b"STORED"
    b"del \x00" + key                    -> b"DELETED" / b"" miss
    b"stat\x00"                          -> b"items=<n> hits=<h> misses=<m>"
"""

from ..config import DEFAULT_APP_TIMINGS
from ..errors import ConfigError
from ..net.stack import NetworkStack
from ..sim import RateMeter

GET = b"get \x00"
SET = b"set \x00"
DELETE = b"del \x00"
STATS = b"stat\x00"
STORED = b"STORED"
DELETED = b"DELETED"
MISS = b""


def encode_get(key):
    return GET + bytes(key)


def encode_set(key, value):
    return SET + bytes(key) + b"\x00" + bytes(value)


def encode_delete(key):
    return DELETE + bytes(key)


def encode_stats():
    return STATS


class KeyValueStore:
    """The actual storage engine (exact, in-memory)."""

    def __init__(self):
        self._data = {}
        self.hits = 0
        self.misses = 0

    def execute(self, request):
        """Run one wire-format command; returns the response bytes."""
        request = bytes(request)
        if request.startswith(GET):
            key = request[len(GET):]
            value = self._data.get(key)
            if value is None:
                self.misses += 1
                return MISS
            self.hits += 1
            return value
        if request.startswith(SET):
            body = request[len(SET):]
            key, _, value = body.partition(b"\x00")
            self._data[key] = value
            return STORED
        if request.startswith(DELETE):
            key = request[len(DELETE):]
            if self._data.pop(key, None) is None:
                self.misses += 1
                return MISS
            return DELETED
        if request.startswith(STATS):
            return b"items=%d hits=%d misses=%d" % (
                len(self._data), self.hits, self.misses)
        raise ConfigError("bad memcached request %r" % request[:16])

    def preload(self, items):
        for key, value in items:
            self._data[bytes(key)] = bytes(value)

    def __len__(self):
        return len(self._data)


class MemcachedServer:
    """The network-facing server bound to a platform's cores + stack."""

    def __init__(self, env, nic, pool, stack_profile, port=11211,
                 op_cost=None, op_cost_fn=None, timings=DEFAULT_APP_TIMINGS,
                 memory_intensity=0.25, working_set=0, name=None):
        self.env = env
        self.nic = nic
        self.pool = pool
        self.port = port
        self.name = name or "memcached@%s:%d" % (nic.ip, port)
        self.stack = NetworkStack(env, pool, stack_profile,
                                  name="%s-stack" % self.name)
        self.stack.listen(port)
        self.store = KeyValueStore()
        #: per-op service cost in *platform* us (calibrated, Fig 9)
        if op_cost is None:
            op_cost = (timings.memcached_op_arm
                       if "arm" in pool.profile.name
                       else timings.memcached_op_xeon)
        self.op_cost = op_cost
        #: optional per-request cost: ``op_cost_fn(msg, result) -> us``
        #: (heterogeneous service times, e.g. value-size-dependent ops
        #: in the cluster tier); ``None`` keeps the flat calibrated cost
        self.op_cost_fn = op_cost_fn
        self.memory_intensity = memory_intensity
        self.working_set = working_set
        self.ops = RateMeter(env, name="%s-ops" % self.name)
        for i in range(pool.count):
            env.process(self._worker(), name="%s-w%d" % (self.name, i))

    def _worker(self):
        while True:
            msg = yield self.nic.recv()
            if self.stack.handle_control(msg, self.nic):
                continue
            if msg.dst.port != self.port:
                continue
            yield from self.stack.process_rx(msg)
            result = self.store.execute(msg.payload)
            # The dict op itself plus the request parse: calibrated
            # cost, with the LLC pressure of a large working set.
            yield from self.pool.run_calibrated(
                self.op_cost_fn(msg, result) if self.op_cost_fn is not None
                else self.op_cost,
                memory_intensity=self.memory_intensity,
                working_set=self.working_set)
            response = msg.reply(result, created_at=self.env.now)
            if response.conn is not None:
                response.meta["tcp_seq"] = response.conn.next_seq(response.src)
            yield from self.pool.run_calibrated(self.stack.tx_cost(response),
                                                priority=-1)
            self.ops.tick()
            yield from self.nic.send(response)
