"""The Intel VCA secure-computation server (§6.2 "Integration with the
Intel VCA").

A client sends a 4-byte AES-encrypted integer; the enclave decrypts it,
multiplies by a constant, re-encrypts, and replies.  SGX keeps the key
inside the enclave.  Crypto is real (:mod:`repro.apps.crypto.aes`).

Two deployments:

* :class:`VcaLynxService` — the Lynx path: the tiny I/O library is
  statically linked into the enclave; the node polls an mqueue (in host
  memory, per the paper's RDMA-into-VCA workaround) and never touches a
  network stack.
* :class:`VcaBridgeBaseline` — Intel's stock path: the node's Linux
  stack behind the host's IP-over-PCIe network bridge, one enclave
  ecall per request.
"""

import struct

from ..config import DEFAULT_APP_TIMINGS, XEON_KERNEL
from ..errors import ConfigError
from ..lynx.iolib import AcceleratorIO
from ..net.stack import NetworkStack
from ..sim import LatencyRecorder, RateMeter
from .crypto.aes import AES128

MULTIPLIER = 7


class SgxEchoApp:
    """The enclave logic: decrypt -> multiply -> encrypt."""

    name = "sgx-echo"

    def __init__(self, key=b"lynx-enclave-key", multiplier=MULTIPLIER,
                 timings=DEFAULT_APP_TIMINGS):
        if len(key) != 16:
            raise ConfigError("AES-128 key must be 16 bytes")
        self._cipher = AES128(key)
        self.multiplier = multiplier
        #: enclave compute time per request (AES + multiply), in E3 us
        self.compute_us = 2 * timings.sgx_aes_block + 0.5

    def encrypt_value(self, value):
        """Client-side helper: encrypt a 4-byte integer."""
        return self._cipher.encrypt(struct.pack("<i", value))

    def decrypt_value(self, ciphertext):
        return struct.unpack("<i", self._cipher.decrypt(bytes(ciphertext)))[0]

    def process(self, ciphertext):
        """What runs inside the enclave (real crypto)."""
        value = self.decrypt_value(ciphertext)
        return self._cipher.encrypt(struct.pack("<i", value * self.multiplier))


class VcaLynxService:
    """The Lynx deployment: node polls its mqueue, enclave included."""

    def __init__(self, env, node, mq, app, name=None):
        self.env = env
        self.node = node
        self.mq = mq
        self.app = app
        self.name = name or "%s-lynx-sgx" % node.name
        self.io = AcceleratorIO(env, node.mqueue_access_latency())
        self.served = RateMeter(env, name="%s-served" % self.name)
        env.process(self._loop(), name=self.name)

    def _loop(self):
        while True:
            entry = yield from self.io.recv(self.mq)
            result = self.app.process(entry.payload)
            # The Lynx I/O library is statically linked into the TCB, so
            # one enclave activation covers I/O and compute (§6.2).
            yield from self.node.enclave_call(self.app.compute_us)
            yield from self.io.send(self.mq, result, reply_to=entry)
            self.served.tick()


class VcaBridgeBaseline:
    """Intel's preferred path: host bridge + node Linux stack + per-
    request enclave invocation."""

    def __init__(self, env, host_machine, node, app, port,
                 host_stack=XEON_KERNEL, name=None):
        self.env = env
        self.machine = host_machine
        self.node = node
        self.app = app
        self.port = port
        self.name = name or "%s-bridge-sgx" % node.name
        # the host forwards bridge traffic with a (kernel) stack core
        self.host_pool = host_machine.pool(count=1,
                                           name="%s-bridge" % self.name)
        self.host_stack = NetworkStack(env, self.host_pool, host_stack,
                                       name="%s-hstack" % self.name)
        self.node_stack = NetworkStack(env, node.pool, node.vca.profile.stack,
                                       name="%s-nstack" % self.name)
        self.node_stack.listen(port)
        self.served = RateMeter(env, name="%s-served" % self.name)
        env.process(self._loop(), name=self.name)

    def _loop(self):
        nic = self.machine.nic
        bridge = self.node.vca.profile.bridge_latency
        while True:
            msg = yield nic.recv()
            if msg.dst.port != self.port:
                continue
            # host side: kernel stack + bridge forwarding into the card
            yield from self.host_stack.process_rx(msg)
            yield self.env.charge(bridge)
            # node side: its own Linux stack, then the enclave ecall
            yield from self.node_stack.process_rx(msg)
            # baseline pays an extra enclave transition for marshalling
            # the request buffer in and out of the untrusted runtime
            yield self.env.charge(self.node.vca.profile.enclave_transition)
            result = self.app.process(msg.payload)
            yield from self.node.enclave_call(self.app.compute_us)
            response = msg.reply(result, created_at=self.env.now)
            yield from self.node_stack.process_tx(response)
            yield self.env.charge(bridge)
            yield from self.host_stack.process_tx(response)
            self.served.tick()
            yield from nic.send(response)
