"""The §3.2 noisy-neighbour victim: multiply a vector by a constant.

Each request carries 256 int32 values; the server returns the scaled
vector.  The GPU kernel is trivial, so end-to-end latency is dominated
by the CPU-side serving path — exactly what makes it sensitive to LLC
interference in the host-centric design.
"""

import numpy as np

from ..errors import ConfigError
from .base import ServerApp

VECTOR_LEN = 256
SCALE = 3


def encode_vector(values):
    arr = np.asarray(values, dtype=np.int32)
    if arr.size != VECTOR_LEN:
        raise ConfigError("vector must have %d elements" % VECTOR_LEN)
    return arr.tobytes()


def decode_vector(payload):
    return np.frombuffer(bytes(payload), dtype=np.int32)


class VectorScaleApp(ServerApp):
    """Multiply the input vector by a constant (real numpy math)."""

    name = "vector-scale"
    #: the kernel itself is tiny
    gpu_duration = 3.0

    def __init__(self, scale=SCALE):
        self.scale = scale

    def compute(self, payload):
        vec = decode_vector(payload)
        return (vec * self.scale).astype(np.int32).tobytes()


class MatrixProductAggressor:
    """The §3.2 noisy neighbour: 1140x1140 int matmul filling the LLC.

    Runs repeatedly on dedicated host cores, occupying a working set
    that (together with the victim) overflows the 15MB LLC.  The matmul
    itself slows ~21% under contention — tracked for the experiment.
    """

    #: 1140 x 1140 x 4B x 3 matrices ~ 15.6MB: fills the Xeon LLC
    WORKING_SET = 3 * 1140 * 1140 * 4
    #: one product takes ~230ms on a Xeon core; we slice it into
    #: scheduler-friendly chunks of simulated compute
    DURATION_XEON_US = 230000.0
    CHUNK_US = 200.0

    def __init__(self, env, pool, name="matmul-aggressor"):
        self.env = env
        self.pool = pool
        self.name = name
        self.completed = 0
        self.total_busy = 0.0
        self._proc = env.process(self._run(), name=name)

    def _run(self):
        chunks = int(self.DURATION_XEON_US / self.CHUNK_US)
        while True:
            start = self.env.now
            for _ in range(chunks):
                yield from self.pool.run_compute(
                    self.CHUNK_US, working_set=self.WORKING_SET,
                    aggressor=True)
            self.completed += 1
            self.total_busy += self.env.now - start

    def mean_product_time(self):
        """Average time per completed matrix product (us)."""
        if not self.completed:
            return float("nan")
        return self.total_busy / self.completed
