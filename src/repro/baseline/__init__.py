"""Baseline server designs the paper compares Lynx against."""

from .host_centric import HostCentricServer, HostContext, default_handle_host
from .gpu_centric import GpuCentricServer, RDMA_PROTO

__all__ = ["HostCentricServer", "HostContext", "default_handle_host",
           "GpuCentricServer", "RDMA_PROTO"]
