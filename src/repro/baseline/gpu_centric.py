"""The GPU-centric server design (§3.3): GPUnet/GPUrdma-style.

The GPU runs the *entire* server, including a GPU-side networking
layer.  The paper credits this design with removing the CPU from the
request path, but identifies four costs, all modelled here:

1. the GPU-resident network stack occupies threadblocks that are then
   unavailable to application logic (``io_threadblocks``);
2. every message costs GPU time in the I/O layer (rx/tx processing on
   the I/O threadblocks);
3. a few host CPU helper cores are still required to drive the NIC on
   the GPU's behalf (doorbells, QP bookkeeping);
4. the transport is InfiniBand RDMA only — clients cannot connect with
   UDP/TCP (`RDMA_PROTO`); deploying behind a datacenter front-end is
   therefore restricted.

Lynx keeps the first three budgets near zero and adds UDP/TCP by moving
the server logic to the SNIC.
"""

from ..errors import ConfigError
from ..sim import Channel, RateMeter

#: the only transport GPU-side network stacks support (§3.3)
RDMA_PROTO = "rdma"

#: GPU time spent in the GPU-side network stack, per message direction
GPU_STACK_RX_US = 3.5
GPU_STACK_TX_US = 2.5
#: host helper-core CPU cost per message (NIC doorbells, QP refill)
HELPER_COST_US = 1.1


class GpuCentricServer:
    """A server running entirely on the GPU over RDMA transport."""

    def __init__(self, env, machine, gpu, app, port, app_threadblocks=200,
                 io_threadblocks=32, helper_cores=2, name=None):
        if app_threadblocks + io_threadblocks > gpu.profile.max_threadblocks:
            raise ConfigError(
                "app (%d) + I/O (%d) threadblocks exceed the GPU's %d"
                % (app_threadblocks, io_threadblocks,
                   gpu.profile.max_threadblocks))
        if io_threadblocks < 1:
            raise ConfigError("the GPU-side stack needs I/O threadblocks")
        self.env = env
        self.machine = machine
        self.gpu = gpu
        self.app = app
        self.port = port
        self.name = name or "gpucentric@%s" % machine.ip
        self.app_threadblocks = app_threadblocks
        self.io_threadblocks = io_threadblocks
        self.helpers = machine.pool(count=helper_cores,
                                    name="%s-helpers" % self.name)
        self.nic = machine.nic
        # one unified work ring for the GPU-side stack (rx + tx events);
        # both rings are Channels so traces and drop stats line up with
        # the Lynx data plane's
        self._work = Channel(env, capacity=4096, name="%s-work" % self.name)
        self._app_ring = Channel(env, capacity=4096,
                                 name="%s-app" % self.name)
        self.requests = RateMeter(env, name="%s-reqs" % self.name)
        self.responses = RateMeter(env, name="%s-resps" % self.name)
        self.dropped = 0
        # host helpers: NIC <-> GPU proxying (§3.3 point 3)
        for i in range(helper_cores):
            env.process(self._helper_loop(), name="%s-h%d" % (self.name, i))
        # the persistent GPU kernel: I/O blocks + application blocks
        gpu.persistent_kernel(io_threadblocks, self._io_block,
                              name="%s-io" % self.name)
        gpu.persistent_kernel(app_threadblocks, self._app_block,
                              name="%s-app" % self.name)

    # -- host helpers ------------------------------------------------------------

    def _helper_loop(self):
        while True:
            msg = yield self.nic.recv()
            if msg.proto != RDMA_PROTO:
                # §3.3: "do not support UDP/TCP, which significantly
                # restricts their use in data center systems".
                self.dropped += 1
                continue
            if msg.dst.port != self.port:
                self.dropped += 1
                continue
            yield from self.helpers.run_calibrated(HELPER_COST_US)
            if not self._work.try_put(("rx", msg)):
                self.dropped += 1

    # -- GPU-side network stack ----------------------------------------------------

    # Frame execution (DESIGN.md §4.14), generator-native: the two ring
    # hops of each loop — a get with an item already queued, a put into
    # a ring with no parked consumer — resolve at the current instant
    # anyway; under the clear-span guard Channel.frame_pop/frame_push
    # do them inline, burn the skipped event's sequence number, and the
    # generator keeps running instead of round-tripping the schedule.

    def _io_block(self, tb_index):
        env = self.env
        work = self._work
        app_ring = self._app_ring
        while True:
            popped = work.frame_pop()
            if popped is None:
                popped = yield work.get()
            kind, item = popped
            if kind == "rx":
                yield env.charge(self.gpu.scaled(GPU_STACK_RX_US))
                self.requests.tick()
                if not app_ring.frame_push(item):
                    yield app_ring.put(item)
            else:  # "tx": a response produced by an application block
                yield env.charge(self.gpu.scaled(GPU_STACK_TX_US))
                yield from self.helpers.run_calibrated(HELPER_COST_US)
                self.responses.tick()
                env.requests_completed += 1
                self.nic.send_async(item)

    def _app_block(self, tb_index):
        env = self.env
        work = self._work
        app_ring = self._app_ring
        while True:
            msg = app_ring.frame_pop()
            if msg is None:
                msg = yield app_ring.get()
            result = self.app.compute(msg.payload)
            yield env.charge(self.gpu.scaled(self.app.gpu_duration))
            response = msg.reply(result, created_at=env.now)
            if not work.frame_push(("tx", response)):
                yield work.put(("tx", response))
