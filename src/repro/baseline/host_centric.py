"""The traditional host-centric accelerated server (Figure 1a, §6.1).

Network messages are received by host CPU cores; for each request the
CPU copies the payload to the GPU, invokes a kernel on a CUDA stream
from a pool, copies the result back, and replies.  Every step interacts
with the GPU driver, whose lock serializes the CPU-side work — this is
the §3.2 accelerator-invocation bottleneck, and the paper runs this
server on one core because "more threads result in a slowdown due to an
NVIDIA driver bottleneck".
"""

from itertools import count

from ..config import XEON_VMA
from ..errors import ConfigError, NetworkError
from ..net.packet import Address, Message, TCP, UDP, payload_size
from ..net.stack import NetworkStack, TcpConnection
from ..sim import RateMeter, Resource, batchexec


class HostContext:
    """What a host-centric app handler can use."""

    def __init__(self, server, gpu):
        self.server = server
        self.env = server.env
        self.pool = server.pool
        self.gpu = gpu

    def gpu_pipeline(self, in_bytes, out_bytes, duration):
        """Generator: H2D copy, kernel, D2H copy — one request's GPU leg.

        While the kernel runs, the CPU spins in cudaStreamSynchronize:
        that burns core time concurrently with the kernel (hurting
        throughput under load) without adding single-request latency.
        """
        gpu = self.gpu
        yield from gpu.memcpy_async(self.pool, in_bytes)
        yield from gpu.driver.op(self.pool, gpu.profile.driver_op_cost)
        # Spin starts once the launch call returns, so it overlaps the
        # kernel instead of delaying the launch itself.
        spin = self.env.process(
            self.pool.run_calibrated(gpu.profile.sync_poll_cost),
            name="sync-spin")
        yield from gpu._execute(duration, 1)
        yield self.env.charge(gpu.profile.sync_latency)
        yield spin
        yield from gpu.memcpy_async(self.pool, out_bytes)

    def gpu_pipeline_blocking(self, in_bytes, out_bytes, duration):
        """Synchronous variant: the CPU blocks through the whole GPU leg.

        Models baselines written with synchronous cudaMemcpy +
        cudaDeviceSynchronize per request (the GPUnet-style Face
        Verification baseline): the worker core is busy for the full
        kernel duration, so CPU concurrency — not the GPU — bounds
        throughput.
        """
        gpu = self.gpu
        yield from gpu.memcpy_async(self.pool, in_bytes)
        yield from gpu.driver.op(self.pool, gpu.profile.driver_op_cost)
        spin = self.env.process(self.pool.run_calibrated(
            gpu.profile.launch_latency + gpu.scaled(duration)
            + gpu.profile.sync_latency), name="sync-block")
        yield from gpu._execute(duration, 1)
        yield self.env.charge(gpu.profile.sync_latency)
        yield spin
        yield from gpu.memcpy_async(self.pool, out_bytes)

    def backend_call(self, backend, payload):
        """Generator: asynchronous RPC to a backend service."""
        return (yield from self.server.backend_request(backend, payload))


class _HostRxOp:
    """One serving core's ingress loop as a callback state machine.

    Mirrors the retired ``_rx_loop`` generator process event for event:
    NIC recv, control handling, stack rx cost on the serving pool (with
    the pool's cache defaults, so E02's noisy-neighbor setup still
    applies), CUDA-stream claim, then the detached per-request GPU
    stage.  The app-specific ``_gpu_stage`` stays a generator — it is
    spawned through the pooled detached-task path, which consumes the
    same schedule slot the old inline ``env.detached`` call did.
    """

    __slots__ = ("server", "env", "pool", "msg", "request", "duration",
                 "mi", "ws", "token")

    def __init__(self, server):
        self.server = server
        self.env = server.env
        self.pool = server.pool
        self.msg = None
        self.request = None
        self.duration = 0.0
        self.mi = 0.0
        self.ws = 0
        self.token = None

    def start(self):
        # URGENT kick at now: the slot Process.__init__ used to consume.
        self.env._kick(self._begin)

    def _begin(self, _event):
        self._arm()

    def _arm(self):
        get = self.server.nic.rx.get()
        get.callbacks.append(self._on_msg)

    def _on_msg(self, get):
        server = self.server
        server.nic.rx_rate.count += 1       # inlined nic.recv() rate tick
        msg = get._value
        if msg.kind == "tcp-synack":
            waiter = server._waiters.pop(("synack", msg.conn.conn_id), None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(msg)
            self._arm()
            return
        waiter = server._waiters.pop(msg.meta.get("in_reply_to"), None)
        if waiter is not None:
            # Backend response: the requesting coroutine pays stack RX.
            if not waiter.triggered:
                waiter.succeed(msg)
            self._arm()
            return
        if server.stack.handle_control(msg, server.nic):
            self._arm()
            return
        if msg.dst.port != server.port:
            server.dropped += 1
            self._arm()
            return
        # stack.process_rx: run_calibrated(rx_cost) on the serving pool.
        pool = self.pool
        self.msg = msg
        duration = server.stack.rx_cost(msg)
        # Frame execution (DESIGN.md §4.14): grant + charge collapse to
        # one event when the slot is free and the window is clear.
        if self.env.frame_exec and batchexec.try_stage(
                self.env, pool._res, duration, self._rx_stage_done,
                pool=pool):
            return
        self.duration = duration
        self.mi = pool.default_memory_intensity
        self.ws = pool.default_working_set
        req = pool._res.request(0)
        self.request = req
        req.callbacks.append(self._rx_granted)

    def _rx_granted(self, _event):
        llc = self.pool.llc
        duration = self.duration
        if llc is None or self.ws <= 0:
            if llc is not None and self.mi > 0:
                duration *= llc.penalty(self.mi)
        else:
            # _timed leg: LLC occupancy held for the span of the charge.
            self.token = llc.occupy(self.ws)
            if self.mi > 0:
                duration *= llc.penalty(self.mi)
        self.env.charge(duration).callbacks.append(self._rx_charged)

    def _rx_charged(self, _event):
        token = self.token
        if token is not None:
            self.pool.llc.release(token)
            self.token = None
        self.request.release()
        self.request = None
        self._after_rx()

    def _rx_stage_done(self, _event):
        batchexec.unseize(self.pool._res)
        self._after_rx()

    def _after_rx(self):
        server = self.server
        msg = self.msg
        if msg.proto == TCP and msg.conn is not None:
            msg.conn.deliver(msg)
        server.requests.count += 1          # inlined RateMeter.tick()
        # Claim a CUDA stream (blocking claims backpressure into the
        # RX ring, which then drops — classic overloaded server).
        stream = server.streams.request()
        stream.callbacks.append(self._stream_granted)

    def _stream_granted(self, stream):
        server = self.server
        msg = self.msg
        self.msg = None
        server.env.detached(server._gpu_stage(msg, stream))
        self._arm()


class HostCentricServer:
    """CPU-driven GPU server (the baseline in every §6 experiment)."""

    def __init__(self, env, machine, gpus, app, port, cores=1,
                 streams_per_gpu=256, stack_profile=XEON_VMA, proto=UDP,
                 name=None):
        if not gpus:
            raise ConfigError("host-centric server needs at least one GPU")
        self.env = env
        self.machine = machine
        self.gpus = list(gpus)
        self.app = app
        self.port = port
        self.proto = proto
        self.name = name or "hostcentric@%s" % machine.ip
        self.pool = machine.pool(count=cores, name="%s-pool" % self.name)
        self.stack = NetworkStack(env, self.pool, stack_profile,
                                  name="%s-stack" % self.name)
        self.stack.listen(port)
        self.nic = machine.nic
        #: CUDA stream pool — bounds concurrently in-flight GPU requests
        self.streams = Resource(env, streams_per_gpu * len(self.gpus),
                                name="%s-streams" % self.name)
        self.requests = RateMeter(env, name="%s-reqs" % self.name)
        self.responses = RateMeter(env, name="%s-resps" % self.name)
        self.dropped = 0
        self._rr = count()
        self._backends = {}
        self._waiters = {}
        self._next_port = 30000
        # One ingress loop per serving core; overload sheds at the NIC
        # RX ring, and in-flight GPU work is bounded by the stream pool.
        for _ in range(cores):
            _HostRxOp(self).start()

    # -- backends (multi-tier support, §6.4) -----------------------------------

    def add_backend(self, name, destination, proto=TCP):
        """Generator: register + connect a backend service."""
        conn = None
        if proto == TCP:
            self._next_port += 1
            src = Address(self.machine.ip, self._next_port)
            conn = TcpConnection(client=src, server=destination)
            syn = Message(src=src, dst=destination, payload=b"", proto=TCP,
                          created_at=self.env.now, conn=conn, kind="tcp-syn")
            syn.meta["conn"] = conn
            waiter = self.env.event()
            self._waiters[("synack", conn.conn_id)] = waiter
            yield from self.nic.send(syn)
            yield waiter
            if not conn.established:
                raise NetworkError("backend %s connect failed" % name)
        self._backends[name] = (destination, proto, conn)

    def backend_request(self, name, payload):
        """Generator: send a request to a named backend; returns response."""
        try:
            destination, proto, conn = self._backends[name]
        except KeyError:
            raise ConfigError("unknown backend %r" % name)
        if conn is not None:
            src = conn.client
        else:
            self._next_port += 1
            src = Address(self.machine.ip, self._next_port)
        msg = Message(src=src, dst=destination, payload=payload, proto=proto,
                      created_at=self.env.now, conn=conn)
        waiter = self.env.event()
        self._waiters[msg.msg_id] = waiter
        yield from self.stack.process_tx(msg)
        yield from self.nic.send(msg)
        response = yield waiter
        yield from self.stack.process_rx(response)
        return response

    # -- request path ---------------------------------------------------------------
    # Ingress lives in :class:`_HostRxOp`; only the per-request GPU
    # stage below still runs as a (detached) generator.

    def _gpu_stage(self, msg, stream):
        """The per-request asynchronous stream pipeline + reply."""
        try:
            gpu = self.gpus[next(self._rr) % len(self.gpus)]
            ctx = HostContext(self, gpu)
            result = yield from self.app.handle_host(ctx, msg)
        finally:
            stream.release()
        if result is None:
            return
        response = msg.reply(result, created_at=self.env.now)
        if response.conn is not None:
            response.meta["tcp_seq"] = response.conn.next_seq(response.src)
        yield from self.pool.run_calibrated(self.stack.tx_cost(response),
                                            priority=-1)
        self.responses.tick()
        self.env.requests_completed += 1
        yield from self.nic.send(response)


def default_handle_host(app, ctx, msg):
    """Default host-side handler: real compute + the GPU pipeline."""
    result = app.compute(msg.payload)
    yield from ctx.gpu_pipeline(msg.size, payload_size(result),
                                app.gpu_duration)
    return result
