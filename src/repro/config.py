"""Calibrated device and platform profiles.

Every timing constant in the simulator lives here, together with the
paper section or public spec it was calibrated from.  The evaluation
*results* (speedups, knees, crossovers) are never written down in this
file — they emerge from running the protocols with these primitive
costs.

Calibration sources (Lynx, ASPLOS'20):

* §3.2  echo microbenchmark: ~30us GPU management overhead per request.
* §5.1  Fig 5 discussion: cudaMemcpyAsync has a 7-8us fixed overhead;
  CPU-side RDMA post is <1us; the GPU consistency write barrier adds
  ~5us per message.
* §5.1.1 VMA kernel bypass cuts UDP latency 4x on Bluefield ARM cores
  and 2x on the host Xeon.
* §6.2  Innova AFU receives 7.4M 64B packets/s.
* §6.3  single-GPU LeNet peak is ~3.6K req/s (=> ~278us per inference);
  K80 peaks at 3.3K req/s (=> ~303us); remote GPUs add ~8us.
* Fig 8c knees: one Xeon core drives 74 GPUs x 3.5K req/s over UDP
  (=> ~3.9us/request total CPU cost) and 7 GPUs over TCP (=> ~41us);
  seven Bluefield ARM cores drive 102 GPUs over UDP and 15 over TCP.
* Fig 9: memcached does ~250 Ktps per Xeon core at ~15us p99; on
  Bluefield it peaks at ~400 Ktps at ~160us p99.
"""

from dataclasses import dataclass, field, replace

from . import units


# ---------------------------------------------------------------------------
# CPU
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CpuProfile:
    """A CPU core type.

    ``speed_factor`` scales *compute-bound* work relative to one Xeon
    E5-2620v2 core (1.0).  Network-stack costs are NOT derived from it —
    they are calibrated separately per platform (see StackProfile),
    because the paper shows the ARM/Xeon gap differs between compute and
    I/O paths.
    """

    name: str
    cores: int
    speed_factor: float
    #: bytes of last-level cache shared by all cores of the socket
    llc_bytes: int = 15 * units.MB


#: Host CPU in all paper testbeds (Xeon E5-2620 v2: 6 cores, 15MB LLC).
XEON_E5_2620 = CpuProfile(name="xeon-e5-2620v2", cores=6, speed_factor=1.0,
                          llc_bytes=15 * units.MB)

#: Bluefield's 8x ARM A72 @ 800MHz.  One core is reserved for the OS in
#: the paper's experiments (they use 7 of 8).  Compute speed per core is
#: roughly a third of the Xeon's.
BLUEFIELD_ARM = CpuProfile(name="bluefield-arm-a72", cores=8, speed_factor=0.33,
                           llc_bytes=1 * units.MB)

#: Intel VCA: each of the three nodes is an Intel E3 (we model one core
#: per node for the serving path).
VCA_E3 = CpuProfile(name="vca-e3", cores=4, speed_factor=0.85,
                    llc_bytes=8 * units.MB)


# ---------------------------------------------------------------------------
# Network stacks (per-message CPU costs, in us on the *owning* platform)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StackProfile:
    """Per-message network stack processing costs for one platform.

    ``rx``/``tx`` costs are charged on a core of the platform running
    the stack.  ``fixed`` components are per message; ``per_byte``
    components scale with payload size.
    """

    name: str
    udp_rx_fixed: float
    udp_tx_fixed: float
    udp_per_byte: float
    tcp_rx_fixed: float
    tcp_tx_fixed: float
    tcp_per_byte: float
    #: cost of establishing a TCP connection (handshake CPU work)
    tcp_connect_cost: float = 15.0


# One Xeon core drives ~259K LeNet req/s over UDP (Fig 8c) => the whole
# Lynx loop costs ~3.9us; the stack share of that budget is below.  The
# TCP knee (7 GPUs => ~41us/req) calibrates the TCP costs.
XEON_VMA = StackProfile(
    name="xeon-vma",
    udp_rx_fixed=1.30, udp_tx_fixed=0.80, udp_per_byte=0.0006,
    tcp_rx_fixed=24.0, tcp_tx_fixed=11.0, tcp_per_byte=0.0020,
)

#: §5.1.1: the kernel stack doubles UDP latency on the host.
XEON_KERNEL = StackProfile(
    name="xeon-kernel",
    udp_rx_fixed=2.60, udp_tx_fixed=1.60, udp_per_byte=0.0012,
    tcp_rx_fixed=48.0, tcp_tx_fixed=22.0, tcp_per_byte=0.0040,
)

# Seven ARM cores drive ~357K LeNet req/s over UDP (Fig 8c) => ~19.6us
# per request per core; 64B-message experiments (Fig 6) imply a lower
# fixed cost with a significant per-byte component.
ARM_VMA = StackProfile(
    name="bluefield-vma",
    udp_rx_fixed=8.90, udp_tx_fixed=1.40, udp_per_byte=0.0106,
    tcp_rx_fixed=78.0, tcp_tx_fixed=34.0, tcp_per_byte=0.0180,
    tcp_connect_cost=60.0,
)

#: §5.1.1: VMA cuts minimum-size UDP processing latency 4x on Bluefield.
ARM_KERNEL = StackProfile(
    name="bluefield-kernel",
    udp_rx_fixed=35.6, udp_tx_fixed=5.6, udp_per_byte=0.0424,
    tcp_rx_fixed=312.0, tcp_tx_fixed=136.0, tcp_per_byte=0.0720,
    tcp_connect_cost=240.0,
)

#: VCA node runs a plain Linux kernel stack over the host IP bridge.
VCA_KERNEL = StackProfile(
    name="vca-kernel",
    udp_rx_fixed=4.0, udp_tx_fixed=2.5, udp_per_byte=0.0015,
    tcp_rx_fixed=55.0, tcp_tx_fixed=26.0, tcp_per_byte=0.0045,
)


# ---------------------------------------------------------------------------
# PCIe / interconnect
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PcieProfile:
    """A PCIe link (one direction modelled at a time)."""

    name: str
    bandwidth: float  # bytes/us
    latency: float  # us, per traversal

    @staticmethod
    def gen3_x16():
        return PcieProfile("pcie3-x16", bandwidth=units.gbytes_per_sec(12.0),
                           latency=0.5)

    @staticmethod
    def gen3_x8():
        return PcieProfile("pcie3-x8", bandwidth=units.gbytes_per_sec(6.0),
                           latency=0.5)


# ---------------------------------------------------------------------------
# RDMA
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RdmaProfile:
    """One-sided RDMA engine characteristics (ConnectX-4/5 class)."""

    name: str = "connectx"
    #: CPU cost of posting a work request (§5.1: "<1us to invoke").
    post_cost: float = 0.4
    #: engine fixed latency per one-sided op to a PCIe-local peer
    op_latency: float = 1.6
    #: engine bandwidth for payload movement
    bandwidth: float = units.gbps(40)
    #: max ops in flight in the engine pipeline
    pipeline_depth: int = 32
    #: extra one-way latency when the peer is behind another NIC/switch.
    #: A remote request crosses it 5x (delivery write, doorbell-
    #: detection read x2, payload fetch x2), and §6.3 reports ~8us total
    #: per request for remote GPUs => ~1.6us per crossing.
    remote_extra_latency: float = 1.6
    #: §5.1: consistency write barrier (RDMA read fence) per message.
    barrier_latency: float = 5.0


DEFAULT_RDMA = RdmaProfile()


# ---------------------------------------------------------------------------
# GPU
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GpuProfile:
    """An NVIDIA GPU device model."""

    name: str
    #: max concurrently resident threadblocks (K40m: 15 SMs x 16 = 240)
    max_threadblocks: int = 240
    #: host-side driver CPU cost per operation (launch/copy/sync); these
    #: serialized driver interactions are the §3.2 bottleneck.
    driver_op_cost: float = 8.0
    #: device-side latency from launch command to kernel start
    launch_latency: float = 7.0
    #: fixed cost of cudaMemcpyAsync (§5.1: 7-8us) on top of DMA time
    memcpy_fixed: float = 7.5
    #: synchronization/completion detection cost (stream sync / event)
    sync_latency: float = 4.0
    #: device-side (dynamic parallelism) child kernel launch latency
    device_launch_latency: float = 6.0
    #: CPU burnt polling stream completion per request; overlaps the
    #: kernel (a spinning cudaStreamSynchronize costs core time but not
    #: single-request latency)
    sync_poll_cost: float = 14.0
    #: local memory access latency seen by a polling threadblock
    local_poll_latency: float = 0.6
    #: DMA engine bandwidth for H2D/D2H copies
    copy_bandwidth: float = units.gbytes_per_sec(10.0)
    #: relative compute speed (K40m = 1.0; K80 die is slower)
    speed_factor: float = 1.0
    #: whether the PCIe-ordering consistency workaround is required
    needs_write_barrier: bool = False


K40M = GpuProfile(name="k40m", speed_factor=1.0)
#: Fig 8b footnote: "Tesla K80 is slower than K40m, 3300 req/s at most".
K80 = GpuProfile(name="k80", speed_factor=278.0 / 303.0)


# ---------------------------------------------------------------------------
# SmartNICs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BluefieldProfile:
    """Mellanox Bluefield: 8 ARM cores + ConnectX NIC ASIC (Fig 2b)."""

    name: str = "bluefield"
    cpu: CpuProfile = BLUEFIELD_ARM
    stack: StackProfile = ARM_VMA
    rdma: RdmaProfile = DEFAULT_RDMA
    #: cores available to Lynx (§6.1: "we use 7 ARM cores out of 8")
    worker_cores: int = 7
    link_rate: float = units.gbps(25)


@dataclass(frozen=True)
class InnovaProfile:
    """Mellanox Innova Flex: bump-in-the-wire FPGA AFU (Fig 2a, §5.2).

    The paper's prototype implements the receive path only and needs a
    host CPU helper thread per custom ring; both limitations are part of
    the model.
    """

    name: str = "innova"
    #: sustained AFU message rate (§6.2: 7.4M 64B packets/s)
    afu_rate_pps: float = units.mpps(7.4)
    #: cut-through pipeline latency through the AFU UDP stack
    pipeline_latency: float = 2.0
    rdma: RdmaProfile = DEFAULT_RDMA
    link_rate: float = units.gbps(40)
    rx_only: bool = True
    needs_cpu_helper: bool = True


#: §5.2's projected full Innova: custom rings over one-sided RDMA (no
#: CPU helper) and a transmit path in the AFU.
INNOVA_PROJECTED = InnovaProfile(name="innova-projected", rx_only=False,
                                 needs_cpu_helper=False)


@dataclass(frozen=True)
class VcaProfile:
    """Intel Visual Compute Accelerator (§5.4): 3 E3 nodes on PCIe."""

    name: str = "vca"
    nodes: int = 3
    cpu: CpuProfile = VCA_E3
    stack: StackProfile = VCA_KERNEL
    #: SGX enclave transition cost (ecall+ocall round trip)
    enclave_transition: float = 8.0
    #: extra per-message latency of the host network bridge (IP-over-
    #: PCIe tunnelling through the host kernel: virtio queues, softirq
    #: and bridge forwarding — the "Intel preferred way")
    bridge_latency: float = 62.0
    #: the paper could not RDMA into VCA memory; mqueues live in host
    #: memory mapped into the VCA, adding a PCIe crossing per access.
    mqueue_in_host_memory: bool = True
    #: mean doorbell-detection lag of the node's poll loop over the
    #: mapped (uncached) host memory
    mqueue_poll_overhead: float = 6.0


# ---------------------------------------------------------------------------
# Lynx runtime costs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LynxProfile:
    """Costs of Lynx's own SNIC-side logic (platform-independent parts
    are charged on the platform's cores and therefore scale with the
    stack profile chosen)."""

    #: dispatcher work per message (policy lookup + WQE build)
    dispatch_cost: float = 0.35
    #: forwarder work per message (metadata parse + route lookup)
    forward_cost: float = 0.45
    #: cost to visit one mqueue during a TX doorbell sweep
    mqueue_visit_cost: float = 0.035
    #: minimum interval between TX sweeps of one accelerator's rings
    sweep_interval: float = 1.0
    #: mqueue entries per ring
    ring_entries: int = 64
    #: 4-byte metadata coalescing enabled (§5.1)
    coalesce_metadata: bool = True
    #: ingress deliveries coalesced into one RDMA doorbell (§5.2's
    #: "fetch up to N entries" applied to the delivery path); 1 keeps
    #: the paper's per-message delivery and is bit-identical to the
    #: pre-batching model
    batch_size: int = 1
    #: max TX entries fetched per mqueue per egress sweep (§5.2);
    #: 0 drains every pending entry, matching the paper's prototype
    poll_batch: int = 0
    #: credit-based backpressure: with a full RX ring, park deliveries
    #: until the accelerator frees a slot instead of dropping (the UDP
    #: drop-tail default); parked messages are bounded by one ring's
    #: worth per mqueue
    backpressure: bool = False
    #: backend-response deadline for client mqueues; on expiry the SNIC
    #: delivers an entry with the error flag set (§5.1: the metadata
    #: carries "error status from the Bluefield if a connection error
    #: is detected"), so accelerator code never blocks forever
    backend_timeout: float = 10000.0


DEFAULT_LYNX = LynxProfile()


# ---------------------------------------------------------------------------
# Applications
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AppTimings:
    """GPU/CPU durations of the paper's application kernels."""

    #: LeNet inference on K40m (§6.3: 3.6 Kreq/s single-GPU max)
    lenet_gpu: float = 278.0
    #: LBP face verification kernel (§6.4: "about 50us")
    facever_gpu: float = 50.0
    #: memcached service cost (on top of stack costs) per op on one
    #: Xeon core; stack + op total ~4us => 250 Ktps/core (Fig 9)
    memcached_op_xeon: float = 1.7
    #: per-ARM-core service cost: with the ARM stack costs the total is
    #: ~17.5us/op/core => ~400 Ktps across 7 cores (Fig 9)
    memcached_op_arm: float = 7.5
    #: AES-128 block encrypt/decrypt inside the SGX enclave
    sgx_aes_block: float = 1.5


DEFAULT_APP_TIMINGS = AppTimings()


# ---------------------------------------------------------------------------
# Noisy neighbour / LLC interference (§3.2)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CacheProfile:
    """Shared-LLC interference model.

    When the combined working set of co-running tasks exceeds the LLC,
    memory-intensive tasks suffer a multiplicative, heavy-tailed
    slowdown.  Calibrated so the §3.2 experiment reproduces a ~13x p99
    latency inflation for the victim server and ~21% slowdown for the
    matmul aggressor.
    """

    #: mean slowdown applied to fully memory-bound work under full
    #: contention (both tasks thrash the LLC)
    mean_slowdown: float = 6.0
    #: lognormal sigma of the jitter (drives the p99 tail)
    jitter_sigma: float = 2.3
    #: slowdown of the aggressor itself (it loses cache too)
    aggressor_slowdown: float = 1.21


DEFAULT_CACHE = CacheProfile()


# ---------------------------------------------------------------------------
# Top-level experiment configuration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SimConfig:
    """Root configuration: seeds and profile bundle used by testbeds."""

    seed: int = 42
    lynx: LynxProfile = DEFAULT_LYNX
    rdma: RdmaProfile = DEFAULT_RDMA
    app: AppTimings = DEFAULT_APP_TIMINGS
    cache: CacheProfile = DEFAULT_CACHE
    trace: bool = False
    #: scheduler backend for testbeds built from this config: "heap",
    #: "wheel", or None to follow the process-wide selection
    #: (``--sim-backend`` / ``$REPRO_SIM_BACKEND``; heap by default).
    #: Both backends produce bit-identical fixed-seed results — the
    #: wheel is the fast path, the heap the determinism oracle.
    sim_backend: str = None
    #: frame-native (batched) execution of the data-plane hot loops:
    #: True/False to force, or None to follow the backend default
    #: (on for "wheel", off for "heap" golden runs) and the
    #: ``$REPRO_FRAME_EXEC`` override.  Frame execution coalesces the
    #: per-message Charge chains into one vectorized charge per frame
    #: span; fixed-seed rows are bit-identical either way (DESIGN.md
    #: §4.14), only the scheduler-event counts differ.
    frame_exec: bool = None

    def with_(self, **kwargs):
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


DEFAULT_CONFIG = SimConfig()
