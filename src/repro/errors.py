"""Exception hierarchy for the Lynx reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly."""


class ConfigError(ReproError):
    """An invalid configuration was supplied to a model."""


class CapacityError(ReproError):
    """A bounded buffer or ring would overflow."""


class NetworkError(ReproError):
    """A message could not be delivered (connection error, bad address)."""


class AcceleratorError(ReproError):
    """Accelerator-side failure (bad kernel, out of SM slots, ...)."""


class FaultError(ConfigError):
    """An invalid fault schedule or fault-injection target."""
