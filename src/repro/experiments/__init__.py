"""Experiment harness: one module per paper table/figure.

Every module exposes ``run(fast=True, seed=42) -> ExperimentResult``.
The registry below maps experiment ids to modules; ``run_all`` drives
the whole evaluation (the benchmarks wrap individual entries).
"""

from . import (
    e01_invocation_overhead,
    e02_noisy_neighbor,
    e03_fig5_transfer_mechanisms,
    e04_fig6_throughput_grid,
    e05_fig7_latency,
    e06_innova,
    e07_isolation,
    e08_vca_sgx,
    e09_fig8a_lenet,
    e10_fig8b_scaleout,
    e11_fig8c_projection,
    e12_fig9_memcached,
    e13_facever,
    e14_vma_stack,
    e15_consistency_barrier,
    e16_faults,
    e17_slo_frontier,
    e18_cluster,
)
from .base import ExperimentResult
from .testbed import Testbed

REGISTRY = {
    "E01": e01_invocation_overhead,
    "E02": e02_noisy_neighbor,
    "E03": e03_fig5_transfer_mechanisms,
    "E04": e04_fig6_throughput_grid,
    "E05": e05_fig7_latency,
    "E06": e06_innova,
    "E07": e07_isolation,
    "E08": e08_vca_sgx,
    "E09": e09_fig8a_lenet,
    "E10": e10_fig8b_scaleout,
    "E11": e11_fig8c_projection,
    "E12": e12_fig9_memcached,
    "E13": e13_facever,
    "E14": e14_vma_stack,
    "E15": e15_consistency_barrier,
    "E16": e16_faults,
    "E17": e17_slo_frontier,
    "E18": e18_cluster,
}


def run_all(fast=True, seed=42, report=print):
    """Run every experiment; returns {exp_id: ExperimentResult}."""
    results = {}
    for exp_id in sorted(REGISTRY):
        result = REGISTRY[exp_id].run(fast=fast, seed=seed)
        results[exp_id] = result
        if report is not None:
            report(result.render())
            report("")
    return results


__all__ = ["REGISTRY", "run_all", "ExperimentResult", "Testbed"]
