"""Command-line experiment runner.

Usage::

    python -m repro.experiments                 # run everything (fast)
    python -m repro.experiments E09 E11         # a subset
    python -m repro.experiments --full E04      # full figure axes
    python -m repro.experiments --list
    python -m repro.experiments --extras        # breakdown + ablations
"""

import argparse
import sys
import time

from . import REGISTRY
from . import ablations, breakdown
from ..sim import kernel_totals, reset_kernel_totals
from ..sim.stats import format_kernel_stats


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the Lynx (ASPLOS'20) evaluation.")
    parser.add_argument("experiments", nargs="*", metavar="EXX",
                        help="experiment ids (default: all)")
    parser.add_argument("--full", action="store_true",
                        help="run the full figure axes instead of the "
                             "trimmed fast sweeps")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--extras", action="store_true",
                        help="also run the latency breakdown and the "
                             "design-choice ablations")
    parser.add_argument("--kernel-stats", action="store_true",
                        help="after the runs, print the simulator kernel's "
                             "own throughput counters (events processed, "
                             "spawns, heap peak, events/sec)")
    args = parser.parse_args(argv)

    if args.list:
        for exp_id in sorted(REGISTRY):
            module = REGISTRY[exp_id]
            title = (module.__doc__ or "").strip().splitlines()[0]
            print("%s  %s" % (exp_id, title))
        return 0

    wanted = [e.upper() for e in args.experiments] or sorted(REGISTRY)
    unknown = [e for e in wanted if e not in REGISTRY]
    if unknown:
        parser.error("unknown experiment id(s): %s (use --list)"
                     % ", ".join(unknown))

    if args.kernel_stats:
        reset_kernel_totals()

    for exp_id in wanted:
        start = time.time()
        result = REGISTRY[exp_id].run(fast=not args.full, seed=args.seed)
        print(result.render())
        print("(%.1fs)\n" % (time.time() - start))

    if args.extras:
        print(breakdown.run(fast=not args.full, seed=args.seed).render())
        print()
        for study in ablations.ALL_STUDIES:
            print(study(fast=not args.full, seed=args.seed).render())
            print()

    if args.kernel_stats:
        print(format_kernel_stats(kernel_totals()))
    return 0


def _cli():
    """Entry-point wrapper: exit quietly when the pipe closes."""
    try:
        return main()
    except BrokenPipeError:
        return 0


if __name__ == "__main__":
    sys.exit(_cli())
