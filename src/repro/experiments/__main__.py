"""Command-line experiment runner.

Usage::

    python -m repro.experiments                 # run everything (fast)
    python -m repro.experiments E09 E11         # a subset
    python -m repro.experiments --full E04      # full figure axes
    python -m repro.experiments --list
    python -m repro.experiments --extras        # breakdown + ablations
    python -m repro.experiments campaign --fast # declarative ablations
                                                # + importance table
"""

import argparse
import sys
import time
from dataclasses import replace

from . import REGISTRY
from . import ablations, breakdown, sweep
from . import testbed as testbed_mod
from .. import telemetry
from ..config import DEFAULT_CONFIG
from ..sim import active_backend, configure_backend, kernel_totals, \
    reset_kernel_totals
from ..sim.environment import BACKENDS
from ..sim import trace as trace_mod
from ..telemetry.export import format_kernel_stats


def _print_trace(exp_id, needle, limit):
    """Print (bounded) trace rows whose channel name contains *needle*."""
    rows = []
    dropped = 0
    for tracer in trace_mod.enabled_tracers():
        rows.extend(tracer.filter(contains=needle))
        dropped += tracer.dropped
    rows.sort(key=lambda rec: rec[0])
    shown = rows if limit <= 0 else rows[:limit]
    print("trace[%s] channel~%r: %d records" % (exp_id, needle, len(rows)))
    for when, channel, event, msg_id, detail in shown:
        print("  %12.3f  %-24s %-10s %-8s %s"
              % (when, channel, event,
                 "-" if msg_id is None else msg_id,
                 "" if detail is None else detail))
    if len(rows) > len(shown):
        print("  ... %d more (raise --trace-limit)" % (len(rows) - len(shown)))
    if dropped:
        print("  ... %d records dropped by the tracer ring limit" % dropped)
    print()


def campaign_main(argv):
    """The ``campaign`` subcommand: declarative ablation campaigns.

    Runs the requested campaigns (default: the full ablation suite),
    prints each study's classic table plus the ranked per-component
    importance table, and optionally writes the ``repro.campaign/1``
    JSON document for the report scorecard.
    """
    from ..report.scorecard import render_importance
    from .campaign import CAMPAIGNS

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments campaign",
        description="Run declarative ablation campaigns and rank "
                    "per-component importance (DESIGN.md §4.12).")
    parser.add_argument("campaigns", nargs="*", metavar="ID",
                        help="campaign ids (default: the whole ablation "
                             "suite; use --list to see them)")
    parser.add_argument("--fast", action="store_true",
                        help="trimmed grids and measurement windows "
                             "(the default; kept explicit for scripts)")
    parser.add_argument("--full", action="store_true",
                        help="run the full grids instead of the trimmed "
                             "fast ones")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="fan grid points across N worker processes "
                             "(bit-identical to a serial run)")
    parser.add_argument("--pairwise", action="store_true",
                        help="also run two-knob-off interaction points "
                             "(multi-knob campaigns only)")
    parser.add_argument("--sim-backend", choices=BACKENDS, default=None,
                        metavar="{heap,wheel}",
                        help="event-scheduler backend (rows and "
                             "importance are bit-identical across "
                             "backends)")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the %s JSON document (rows, run ids, "
                             "importance) for the report scorecard"
                             % telemetry.CAMPAIGN_SCHEMA)
    parser.add_argument("--list", action="store_true",
                        help="list campaign ids and exit")
    args = parser.parse_args(argv)

    if args.list:
        for exp_id, camp in CAMPAIGNS.items():
            print("%s  %s" % (exp_id, camp.title))
        return 0
    jobs = args.jobs
    if jobs is not None and jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.fast and args.full:
        parser.error("--fast and --full are mutually exclusive")
    wanted = ([c.upper() for c in args.campaigns]
              or [c.exp_id for c in ablations.ALL_STUDIES])
    unknown = [c for c in wanted if c not in CAMPAIGNS]
    if unknown:
        parser.error("unknown campaign id(s): %s (use --list)"
                     % ", ".join(unknown))

    telemetry.push_scope()
    if args.sim_backend is not None:
        configure_backend(args.sim_backend)
    sweep.configure(jobs)
    docs = []
    try:
        for exp_id in wanted:
            start = time.time()
            with telemetry.scope() as reg:
                outcome = CAMPAIGNS[exp_id].run(
                    fast=not args.full, seed=args.seed, jobs=jobs,
                    pairwise=True if args.pairwise else None)
                snap = reg.snapshot()
            telemetry.registry().merge(snap)
            outcome.result.attach_metrics(snap)
            docs.append(outcome.to_doc())
            print(outcome.result.render())
            for variant in outcome.variants:
                print("run %s  %s%s" % (variant.run_id, variant.token,
                                        "  (baseline)"
                                        if variant.is_baseline else ""))
            print("(%.1fs)\n" % (time.time() - start))
        print(render_importance(docs))
        if args.out:
            telemetry.dump_campaign(
                docs, args.out,
                meta={"seed": args.seed, "fast": not args.full,
                      "sim_backend": active_backend()})
            print("\ncampaign document written to %s" % args.out)
    finally:
        sweep.configure(None)
        if args.sim_backend is not None:
            configure_backend(None)
        telemetry.pop_scope()
    return 0


def slo_main(argv):
    """The ``slo`` subcommand: one sustainable-load bisection.

    Bisects offered λ for a (workload, design) pair under any arrival
    shape the population plane speaks — including recorded traces via
    ``--arrivals trace:<path>`` — and prints every probe plus the knee.
    """
    from . import e17_slo_frontier as e17

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments slo",
        description="Bisect offered load to the highest rate whose p99 "
                    "meets an SLO (the E17 search, single point, "
                    "DESIGN.md §4.13).")
    parser.add_argument("--workload", choices=e17.WORKLOADS,
                        default="memcached")
    parser.add_argument("--design", choices=e17.DESIGNS,
                        default="lynx-bluefield")
    parser.add_argument("--arrivals", default="poisson", metavar="SPEC",
                        help="arrival shape: poisson | onoff[:on_us,off_us] "
                             "| diurnal[:period_us] | bmodel[:b,levels] "
                             "| trace:<path> "
                             "(.npy or CSV timestamps; the trace's shape "
                             "is rescaled to each probed rate)")
    parser.add_argument("--slo-us", type=float, default=None, metavar="US",
                        help="p99 target (default: the workload's E17 "
                             "target)")
    parser.add_argument("--lo", type=float, default=None, metavar="RATE",
                        help="bracket low end, requests/us")
    parser.add_argument("--hi", type=float, default=None, metavar="RATE",
                        help="bracket high end, requests/us")
    parser.add_argument("--iters", type=int, default=7, metavar="N",
                        help="bisection probes after the bracket ends "
                             "(default 7)")
    parser.add_argument("--measure", type=float, default=None, metavar="US",
                        help="measure window per probe (default: the "
                             "workload's full-preset window)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--sim-backend", choices=BACKENDS, default=None,
                        metavar="{heap,wheel}",
                        help="event-scheduler backend (the knee is "
                             "bit-identical across backends)")
    args = parser.parse_args(argv)
    if args.iters < 1:
        parser.error("--iters must be >= 1")

    warmup, measure = e17.WINDOWS_FULL[args.workload]
    if args.measure is not None:
        measure = args.measure
        warmup = min(warmup, measure / 2.0)
    telemetry.push_scope()
    if args.sim_backend is not None:
        configure_backend(args.sim_backend)
    try:
        start = time.time()
        outcome = e17.measure_frontier(
            args.workload, args.design, args.seed, warmup, measure,
            args.iters, arrivals=args.arrivals, slo_us=args.slo_us,
            lo=args.lo, hi=args.hi)
        print("SLO frontier: %s on %s, arrivals=%s, p99 <= %gus"
              % (args.workload, args.design, args.arrivals,
                 outcome["slo_us"]))
        print("%10s  %10s  %11s  %8s  %8s  %s"
              % ("rate/us", "offered/s", "delivered/s", "p99 us",
                 "goodput", "ok"))
        for t in outcome["trials"]:
            print("%10.4f  %10.0f  %11.0f  %8.1f  %8.3f  %s"
                  % (t["rate_per_us"], t["offered_per_sec"],
                     t["delivered_per_sec"], t["p_tail_us"],
                     t["goodput_ratio"], "yes" if t["ok"] else "NO"))
        if outcome["sustainable_per_sec"] > 0:
            print("sustainable: %.0f req/s (p99 %.1fus at the knee, "
                  "goodput %.3f)"
                  % (outcome["sustainable_per_sec"],
                     outcome["p99_at_knee_us"], outcome["goodput_at_knee"]))
        else:
            print("no sustainable rate in the bracket (lower --lo or "
                  "relax --slo-us)")
        print("(%.1fs)" % (time.time() - start))
    finally:
        if args.sim_backend is not None:
            configure_backend(None)
        telemetry.pop_scope()
    return 0


def main(argv=None):
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "campaign":
        return campaign_main(argv[1:])
    if argv and argv[0] == "slo":
        return slo_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the Lynx (ASPLOS'20) evaluation.")
    parser.add_argument("experiments", nargs="*", metavar="EXX",
                        help="experiment ids (default: all)")
    parser.add_argument("--full", action="store_true",
                        help="run the full figure axes instead of the "
                             "trimmed fast sweeps")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--extras", action="store_true",
                        help="also run the latency breakdown and the "
                             "design-choice ablations")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="fan sweep points across N worker processes "
                             "(default: $REPRO_JOBS or 1; results are "
                             "bit-identical to a serial run)")
    parser.add_argument("--sim-backend", choices=BACKENDS, default=None,
                        metavar="{heap,wheel}",
                        help="event-scheduler backend: 'heap' (binary "
                             "heap, the default and determinism oracle) "
                             "or 'wheel' (calendar queue + vectorized "
                             "Channel landings; bit-identical rows, "
                             "~2x kernel throughput).  Default: "
                             "$REPRO_SIM_BACKEND or heap")
    parser.add_argument("--kernel-stats", action="store_true",
                        help="after the runs, print the simulator kernel's "
                             "own throughput counters (events processed, "
                             "spawns, heap peak, events/sec)")
    parser.add_argument("--metrics", nargs="?", const="-", default=None,
                        metavar="PATH",
                        help="after the runs, dump the merged telemetry "
                             "registry: bare --metrics pretty-prints it, "
                             "--metrics PATH writes the JSON snapshot "
                             "(schema %s) for report tooling"
                             % telemetry.SCHEMA)
    parser.add_argument("--batch-size", type=int, default=None, metavar="N",
                        help="coalesce up to N ingress deliveries into one "
                             "RDMA doorbell (LynxProfile.batch_size, §5.2)")
    parser.add_argument("--poll-batch", type=int, default=None, metavar="N",
                        help="fetch at most N TX entries per mqueue per "
                             "egress sweep (0 = drain all)")
    parser.add_argument("--backpressure", action="store_true",
                        help="park deliveries on RX-ring credits instead of "
                             "dropping when a ring is full")
    parser.add_argument("--trace-channel", metavar="NAME",
                        help="enable tracing and, after each run, print the "
                             "records of channels whose name contains NAME")
    parser.add_argument("--trace-limit", type=int, default=40, metavar="ROWS",
                        help="max trace rows printed per run "
                             "(with --trace-channel; default 40)")
    args = parser.parse_args(argv)

    overrides = {}
    lynx_fields = {}
    if args.batch_size is not None:
        if args.batch_size < 1:
            parser.error("--batch-size must be >= 1")
        lynx_fields["batch_size"] = args.batch_size
    if args.poll_batch is not None:
        if args.poll_batch < 0:
            parser.error("--poll-batch must be >= 0")
        lynx_fields["poll_batch"] = args.poll_batch
    if args.backpressure:
        lynx_fields["backpressure"] = True
    if lynx_fields:
        overrides["lynx"] = replace(DEFAULT_CONFIG.lynx, **lynx_fields)
    if args.trace_channel:
        overrides["trace"] = True

    jobs = args.jobs
    if jobs is not None and jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.trace_channel and (jobs or sweep.active_jobs()) > 1:
        # Tracers live in the worker processes; their records would be
        # lost.  Tracing implies a serial run.
        print("note: --trace-channel forces --jobs 1 "
              "(traces live in worker processes)", file=sys.stderr)
        jobs = 1

    if args.list:
        for exp_id in sorted(REGISTRY):
            module = REGISTRY[exp_id]
            title = (module.__doc__ or "").strip().splitlines()[0]
            print("%s  %s" % (exp_id, title))
        return 0

    wanted = [e.upper() for e in args.experiments] or sorted(REGISTRY)
    unknown = [e for e in wanted if e not in REGISTRY]
    if unknown:
        parser.error("unknown experiment id(s): %s (use --list)"
                     % ", ".join(unknown))

    # The whole invocation runs inside its own telemetry scope, so the
    # final --metrics / --kernel-stats dump covers exactly this run and
    # repeated main() calls (tests, notebooks) do not bleed into each
    # other through the root registry.
    telemetry.push_scope()
    if args.kernel_stats:
        reset_kernel_totals()
    if args.sim_backend is not None:
        configure_backend(args.sim_backend)

    if overrides:
        testbed_mod.set_active_config(DEFAULT_CONFIG.with_(**overrides))
    sweep.configure(jobs)
    try:
        for exp_id in wanted:
            start = time.time()
            trace_mod.clear_enabled_tracers()
            with telemetry.scope() as exp_reg:
                result = REGISTRY[exp_id].run(fast=not args.full,
                                              seed=args.seed)
                exp_snap = exp_reg.snapshot()
            telemetry.registry().merge(exp_snap)
            result.attach_metrics(exp_snap)
            print(result.render())
            print("(%.1fs)\n" % (time.time() - start))
            if args.trace_channel:
                _print_trace(exp_id, args.trace_channel, args.trace_limit)

        if args.extras:
            # Forward --jobs explicitly: the studies would otherwise
            # fall back to the ambient sweep configuration, and callers
            # invoking them outside this CLI (ablations.run, notebooks)
            # used to silently run serial.
            print(breakdown.run(fast=not args.full, seed=args.seed,
                                jobs=jobs).render())
            print()
            for study in ablations.ALL_STUDIES:
                print(study(fast=not args.full, seed=args.seed,
                            jobs=jobs).render())
                print()

        if args.kernel_stats:
            print(format_kernel_stats(kernel_totals()))
        if args.metrics is not None:
            snap = telemetry.snapshot()
            if args.metrics == "-":
                print(telemetry.format_snapshot(
                    snap, title="telemetry [sim-backend=%s]" % active_backend()))
            else:
                telemetry.dump_metrics(snap, args.metrics,
                                       meta={"sim_backend": active_backend()})
                print("metrics written to %s" % args.metrics)
    finally:
        sweep.configure(None)
        if args.sim_backend is not None:
            configure_backend(None)
        if overrides:
            testbed_mod.set_active_config(None)
        trace_mod.clear_enabled_tracers()
        telemetry.pop_scope()
    return 0


def _cli():
    """Entry-point wrapper: exit quietly when the pipe closes."""
    try:
        return main()
    except BrokenPipeError:
        return 0


if __name__ == "__main__":
    sys.exit(_cli())
