"""Ablation studies of Lynx's design choices, as campaign declarations.

These go beyond the paper's tables: each isolates one design decision
DESIGN.md calls out and quantifies it on the simulator.  Every study is
a :class:`~.campaign.Campaign` declaration (DESIGN.md §4.12): a
component registers its knobs against the config surface or the
scenario signature, the engine generates the grid as sweep
:class:`~.sweep.Point`\\ s (module-level scenario builders, picklable
kwargs, so ``--jobs N`` fans the whole ``--extras`` suite across worker
processes), and per-component importance scores fall out of the
telemetry snapshot deltas.

The study list at the bottom of this docstring is generated from the
campaign registry at import time — it cannot drift from the code.
"""

from ..apps.base import SpinApp
from ..baseline.gpu_centric import GpuCentricServer, RDMA_PROTO
from ..config import K40M
from ..lynx.dispatch import make_policy
from ..net import Address, ClosedLoopGenerator, OpenLoopGenerator
from ..net.packet import UDP
from .base import krps
from .campaign import Campaign, Component, Knob, describe, merged_result, \
    run_campaigns
from .common import LYNX_BLUEFIELD, LYNX_XEON_6, deploy, measure_closed_loop
from .testbed import Testbed


# ---------------------------------------------------------------------------
# Lynx vs GPU-centric
# ---------------------------------------------------------------------------

_GC_KERNEL_US = 200.0


def _gc_scenario(design, measure, seed=42):
    """One grid point of the §3.3 comparison.

    ``design == "lynx"`` runs Lynx on the host Xeon (every threadblock
    serves the app); an integer runs the GPU-centric server with that
    many I/O threadblocks carved out of the GPU.
    """
    if design == "lynx":
        dep = deploy(LYNX_XEON_6, app=SpinApp(_GC_KERNEL_US), n_mqueues=240,
                     proto=UDP, seed=seed)
        clients = [dep.tb.client("10.0.9.%d" % i) for i in (1, 2)]
        for c in clients:
            ClosedLoopGenerator(dep.env, c, dep.address, concurrency=300,
                                payload_fn=lambda i: b"x" * 64, proto=UDP,
                                timeout=100000)
        dep.tb.warmup_then_measure([c.responses for c in clients], 20000.0,
                                   measure)
        return sum(c.responses.per_sec() for c in clients)
    io_tbs = design
    tb = Testbed(seed=seed)
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu(K40M)
    GpuCentricServer(env, host, gpu, SpinApp(_GC_KERNEL_US), port=7777,
                     app_threadblocks=240 - io_tbs,
                     io_threadblocks=io_tbs, helper_cores=3)
    gc_clients = [tb.client("10.0.9.%d" % i) for i in (1, 2)]
    for c in gc_clients:
        ClosedLoopGenerator(env, c, Address("10.0.0.1", 7777),
                            concurrency=300,
                            payload_fn=lambda i: b"x" * 64,
                            proto=RDMA_PROTO, timeout=100000)
    tb.warmup_then_measure([c.responses for c in gc_clients], 20000.0,
                           measure)
    return sum(c.responses.per_sec() for c in gc_clients)


def _gc_row(ctx, variant, value):
    if variant.is_baseline:
        return dict(design="lynx-on-xeon-6core", app_threadblocks=240,
                    krps=krps(value), relative=1.0)
    io_tbs = variant.assignment["design"]
    return dict(design="gpu-centric (%d I/O TBs)" % io_tbs,
                app_threadblocks=240 - io_tbs, krps=krps(value),
                relative=round(value / ctx.baseline_value, 3))


gpu_centric_comparison = Campaign(
    "ABL-GC", "Lynx vs GPU-centric (GPU-side network stack)",
    "§3.3 ablation",
    scenario=_gc_scenario,
    slug="gpu_centric_comparison",
    summary="Lynx vs the §3.3 GPU-centric design (GPU-side network "
            "stack): I/O threadblocks and per-message GPU stack time "
            "cost application throughput",
    components=[Component(
        "host-termination",
        # Compare on equal CPU silicon (Lynx on the host Xeon) so the
        # delta isolates the GPU resources the GPU-centric stack
        # consumes, not ARM-vs-Xeon speed.
        [Knob("design", values=("lynx", 16, 40, 80), baseline="lynx",
              kwarg="design",
              doc="who runs the network stack: Lynx on host cores, or "
                  "the GPU itself with N I/O threadblocks")],
        doc="terminating the network off the GPU keeps all 240 "
            "threadblocks serving the application")],
    settings=lambda fast: dict(measure=60000.0 if fast else 200000.0),
    row=_gc_row,
    metric="krps",
    notes=("the GPU-centric design also forfeits UDP/TCP clients "
           "entirely (RDMA transport only)",),
)


# ---------------------------------------------------------------------------
# Dispatch policies under skew
# ---------------------------------------------------------------------------

class SkewedApp(SpinApp):
    """1 in 8 requests is 10x more expensive."""

    name = "skewed"

    def __init__(self):
        super().__init__(40.0)
        self._count = 0

    def handle(self, ctx, entry):
        self._count += 1
        duration = 400.0 if self._count % 8 == 0 else 40.0
        yield from ctx.compute(duration)
        return b"done"


def _dispatch_scenario(policy_name, measure, seed=42):
    dep = deploy(LYNX_BLUEFIELD, app=SkewedApp(), n_mqueues=8,
                 proto=UDP, seed=seed)
    binding = dep.server._ports[7777]
    binding.policy = make_policy(policy_name)
    tput, latency = measure_closed_loop(
        dep, lambda i: b"x" * 64, concurrency=16, warmup=20000.0,
        measure=measure)
    return tput, latency.p50(), latency.p99()


def _dispatch_row(ctx, variant, value):
    tput, p50, p99 = value
    return dict(policy=variant.assignment["dispatch.policy"],
                krps=krps(tput), p50_us=round(p50, 1), p99_us=round(p99, 1))


dispatch_policy_study = Campaign(
    "ABL-DP", "Dispatch policies under skewed request cost",
    "§4.2 ablation",
    scenario=_dispatch_scenario,
    slug="dispatch_policy_study",
    summary="round-robin vs least-loaded vs client-steering under a "
            "skewed client population (§4.2's policies)",
    components=[Component(
        "dispatcher",
        [Knob("dispatch.policy",
              values=("round-robin", "least-loaded", "steering"),
              baseline="round-robin", kwarg="policy_name",
              doc="mqueue selection policy for ingress dispatch")],
        doc="skewed per-request service times: least-loaded shines, "
            "steering pins clients, round-robin splits the difference")],
    settings=lambda fast: dict(measure=60000.0 if fast else 200000.0),
    row=_dispatch_row,
    metric="p99_us",
    higher_is_better=False,
    notes=("least-loaded avoids queueing behind the 10x requests; "
           "steering trades balance for per-client affinity",),
)


# ---------------------------------------------------------------------------
# Metadata coalescing
# ---------------------------------------------------------------------------

def _coalescing_scenario(config, measure, seed=42):
    dep = deploy(LYNX_BLUEFIELD, app=SpinApp(20.0), n_mqueues=1,
                 proto=UDP, seed=seed, config=config)
    tput, latency = measure_closed_loop(
        dep, lambda i: b"x" * 64, concurrency=1, warmup=10000.0,
        measure=measure)
    ops = dep.service.manager.qp.ops / max(1, dep.service.delivered)
    return latency.p50(), ops


def _coalescing_row(ctx, variant, value):
    p50, ops = value
    return dict(coalescing="on" if variant.assignment["coalescing"]
                else "off",
                p50_us=round(p50, 1), rdma_ops_per_msg=round(ops, 2))


def _coalescing_finish(ctx, result):
    on = result.find(coalescing="on")
    off = result.find(coalescing="off")
    result.note("coalescing saves %.1fus and %.1f RDMA ops per message"
                % (off["p50_us"] - on["p50_us"],
                   off["rdma_ops_per_msg"] - on["rdma_ops_per_msg"]))


coalescing_study = Campaign(
    "ABL-CO", "Metadata/data coalescing on vs off", "§5.1 ablation",
    scenario=_coalescing_scenario,
    slug="coalescing_study",
    summary="the §5.1 metadata/data coalescing optimization on vs off "
            "(1 vs 2 RDMA writes per delivery)",
    components=[Component(
        "coalescing",
        [Knob("coalescing", values=(True, False), baseline=True,
              config="lynx.coalesce_metadata",
              doc="append the 4B metadata to the payload (§5.1), "
                  "halving the RDMA writes per delivery")])],
    settings=lambda fast: dict(measure=40000.0 if fast else 120000.0),
    row=_coalescing_row,
    metric="p50_us",
    higher_is_better=False,
    finish=_coalescing_finish,
)


# ---------------------------------------------------------------------------
# Ring sizing
# ---------------------------------------------------------------------------

def _ring_scenario(config, measure, seed=42):
    from ..net.arrivals import OnOffBurst
    from ..sim import RngRegistry

    kernel_us = 100.0
    service_rate = 1.0 / (kernel_us + 10.0)
    dep = deploy(LYNX_BLUEFIELD, app=SpinApp(kernel_us), n_mqueues=1,
                 proto=UDP, seed=seed, config=config)
    client = dep.tb.client("10.0.9.1")
    # bursts at 8x the service rate, on 1/4 of the time => ~2x mean
    arrivals = OnOffBurst(8.0 * service_rate, on_mean_us=2000.0,
                          off_mean_us=6000.0,
                          rng=RngRegistry(seed))
    OpenLoopGenerator(dep.env, client, dep.address,
                      payload_fn=lambda i: b"x" * 64, proto=UDP,
                      arrivals=arrivals)
    dep.tb.warmup_then_measure([client.responses, client.latency],
                               20000.0, measure)
    delivered = dep.service.delivered
    dropped = dep.service.dropped
    return (client.responses.per_sec(),
            dropped / max(1, dropped + delivered),
            client.latency.p50())


def _ring_row(ctx, variant, value):
    goodput, drop_rate, p50 = value
    return dict(ring_entries=variant.assignment["mqueue.ring_entries"],
                goodput_krps=krps(goodput), drop_rate=round(drop_rate, 3),
                p50_us=round(p50, 1))


ring_size_study = Campaign(
    "ABL-RS", "mqueue ring depth under bursty 2x overload",
    "§4.2 ablation",
    scenario=_ring_scenario,
    slug="ring_size_study",
    summary="mqueue ring depth vs drop rate and latency under bursty "
            "overload",
    components=[Component(
        "mqueue",
        [Knob("mqueue.ring_entries", values=(4, 16, 64, 256), baseline=64,
              config="lynx.ring_entries",
              doc="entries per mqueue ring: trades drop rate against "
                  "queueing delay under bursty overload")])],
    settings=lambda fast: dict(measure=50000.0 if fast else 150000.0),
    row=_ring_row,
    metric="goodput_krps",
    notes=("bigger rings shed the same overload but convert drops "
           "into queueing delay — classic buffer sizing",),
)


# ---------------------------------------------------------------------------
# Sweep interval
# ---------------------------------------------------------------------------

def _sweep_interval_scenario(config, measure, seed=42):
    dep = deploy(LYNX_BLUEFIELD, app=SpinApp(20.0), n_mqueues=8,
                 proto=UDP, seed=seed, config=config)
    tput, latency = measure_closed_loop(
        dep, lambda i: b"x" * 64, concurrency=8, warmup=10000.0,
        measure=measure)
    return tput, latency.p50(), dep.service.manager.sweeps


def _sweep_interval_row(ctx, variant, value):
    tput, p50, sweeps = value
    return dict(sweep_interval_us=variant.assignment["rmq.sweep_interval"],
                krps=krps(tput), p50_us=round(p50, 1), sweeps=sweeps)


sweep_interval_study = Campaign(
    "ABL-SW", "Remote MQ Manager sweep interval", "§5.1 ablation",
    scenario=_sweep_interval_scenario,
    slug="sweep_interval_study",
    summary="the Remote MQ Manager's TX poll cadence vs latency and "
            "SNIC core burn — sweeps are doorbell-armed, so the "
            "interval buys fewer, larger sweeps rather than latency",
    components=[Component(
        "rmq-manager",
        [Knob("rmq.sweep_interval", values=(0.5, 1.0, 4.0, 16.0),
              baseline=1.0, config="lynx.sweep_interval",
              doc="minimum interval between TX doorbell sweeps of one "
                  "accelerator's rings")])],
    settings=lambda fast: dict(measure=40000.0 if fast else 120000.0),
    row=_sweep_interval_row,
    metric="krps",
)


# ---------------------------------------------------------------------------
# Connection scaling
# ---------------------------------------------------------------------------

def _connection_scenario(n_conns, n_mqueues, measure, seed=42):
    from ..net.packet import TCP

    dep = deploy(LYNX_BLUEFIELD, app=SpinApp(100.0),
                 n_mqueues=n_mqueues, proto=TCP, seed=seed)
    clients = [dep.tb.client("10.0.9.%d" % i) for i in (1, 2)]
    for c in clients:
        # each closed-loop worker owns one TCP connection
        ClosedLoopGenerator(dep.env, c, dep.address,
                            concurrency=n_conns // 2,
                            payload_fn=lambda i: b"x" * 64,
                            proto=TCP, timeout=200000)
    dep.tb.warmup_then_measure([c.responses for c in clients],
                               30000.0, measure)
    tput = sum(c.responses.per_sec() for c in clients)
    return tput, len(dep.service.mqueues)


def _connection_row(ctx, variant, value):
    tput, rings = value
    return dict(connections=variant.assignment["net.connections"],
                mqueues=4, krps=krps(tput), accel_rings=rings)


connection_scaling_study = Campaign(
    "ABL-CS", "TCP connection scaling over a fixed mqueue pool",
    "§4.5 ablation",
    scenario=_connection_scenario,
    slug="connection_scaling_study",
    summary="§4.5: multiplexing many TCP connections over a fixed "
            "mqueue pool must not collapse throughput or grow "
            "accelerator-side state",
    components=[Component(
        "connection-mux",
        [Knob("net.connections",
              values=lambda fast: (4, 32, 128) if fast
              else (4, 16, 64, 128, 256),
              baseline=4, kwarg="n_conns",
              doc="TCP client connections multiplexed over the fixed "
                  "4-mqueue pool")])],
    settings=lambda fast: dict(n_mqueues=4,
                               measure=50000.0 if fast else 150000.0),
    row=_connection_row,
    metric="krps",
    notes=("accelerator-side state stays at 4 rings regardless of "
           "the connection count; throughput saturates at the SNIC "
           "TCP limit without collapsing",),
)


# ---------------------------------------------------------------------------
# Host-centric core scaling (the driver bottleneck)
# ---------------------------------------------------------------------------

def _driver_contention_scenario(cores, measure, seed=42):
    from .common import HOST_CENTRIC

    dep = deploy(HOST_CENTRIC, app=SpinApp(20.0), proto=UDP, seed=seed,
                 hc_cores=cores)
    clients = [dep.tb.client("10.0.9.%d" % i) for i in (1, 2)]
    for c in clients:
        ClosedLoopGenerator(dep.env, c, dep.address, concurrency=32,
                            payload_fn=lambda i: b"x" * 64, proto=UDP,
                            timeout=100000)
    dep.tb.warmup_then_measure([c.responses for c in clients],
                               15000.0, measure)
    tput = sum(c.responses.per_sec() for c in clients)
    driver = dep.host.driver
    return tput, driver.contended_ops / max(1, driver.ops)


def _driver_contention_row(ctx, variant, value):
    tput, share = value
    return dict(cores=variant.assignment["host.serving_cores"],
                krps=krps(tput), contended_op_share=round(share, 2))


driver_contention_study = Campaign(
    "ABL-DC", "Host-centric serving cores vs the driver lock",
    "§6.1 ablation",
    scenario=_driver_contention_scenario,
    slug="driver_contention_study",
    summary="§6.1: \"more threads result in a slowdown due to an "
            "NVIDIA driver bottleneck\" — measured",
    components=[Component(
        "host-driver",
        [Knob("host.serving_cores", values=(1, 2, 4, 6), baseline=1,
              kwarg="cores",
              doc="host-centric serving cores contending on the "
                  "driver lock")])],
    settings=lambda fast: dict(measure=40000.0 if fast else 120000.0),
    row=_driver_contention_row,
    metric="krps",
    notes=("adding serving cores increases driver-lock contention "
           "faster than it adds useful work",),
)


# ---------------------------------------------------------------------------
# Projected full Innova (§5.2)
# ---------------------------------------------------------------------------

def _innova_scenario(platform, measure, seed=42):
    """64B echo on the projected full Innova or on Bluefield."""
    if platform == "bluefield":
        from .common import measure_saturation

        dep = deploy(LYNX_BLUEFIELD, app=SpinApp(0.0), n_mqueues=240,
                     proto=UDP, seed=seed)
        return measure_saturation(dep, lambda i: b"x" * 64, 1.5e6,
                                  warmup=10000.0, measure=measure)
    from ..config import INNOVA_PROJECTED, K40M
    from ..lynx.innova import InnovaLynxServer
    from ..lynx.iolib import AcceleratorIO
    from ..lynx.mqueue import MQueue
    from ..net.packet import Address, Message

    tb = Testbed(seed=seed)
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu(K40M)
    snic = tb.innova("10.0.0.101", profile=INNOVA_PROJECTED)
    server = InnovaLynxServer(env, snic, helper_pool=None)
    n_mq = 240
    mqs = [MQueue(env, gpu.memory, entries=64, name="fmq%d" % i)
           for i in range(n_mq)]
    server.bind(7777, mqs)
    io = AcceleratorIO(env, gpu.poll_latency)

    def body(tb_index):
        mq = mqs[tb_index]
        while True:
            entry = yield from io.recv(mq)
            yield from io.send(mq, entry.payload, reply_to=entry)

    gpu.persistent_kernel(n_mq, body)

    src = Address("10.0.8.1", 5555)

    def flood(env):
        while True:
            tb.network.deliver(Message(src, Address("10.0.0.101", 7777),
                                       b"x" * 64, proto=UDP))
            yield env.charge(0.2)  # 5M/s offered

    env.process(flood(env), name="flood")
    tb.warmup_then_measure([server.responses], 4000.0, measure)
    return server.responses.per_sec()


def _innova_row(ctx, variant, value):
    if variant.assignment["platform"] == "innova":
        return dict(platform="innova-projected (full loop)",
                    mpps=round(value / 1e6, 2), vs_bluefield=None)
    return dict(platform="bluefield (full loop)",
                mpps=round(value / 1e6, 3),
                vs_bluefield=round(ctx.value("innova") / value, 1))


def _innova_point_kwargs(fast, variant):
    # the Bluefield loop is ~15x slower; give it a 4x longer window so
    # the measured rate settles
    if variant.assignment["platform"] == "bluefield":
        return dict(measure=(8000.0 if fast else 20000.0) * 4)
    return {}


projected_innova_study = Campaign(
    "ABL-IN", "Projected full-duplex Innova vs Bluefield (64B echo)",
    "§5.2 projection",
    scenario=_innova_scenario,
    slug="projected_innova_study",
    summary="§5.2/§6.2: the projected full Innova (no CPU helper, TX "
            "in the AFU) vs Bluefield on the complete echo loop",
    components=[Component(
        "snic-platform",
        [Knob("platform", values=("innova", "bluefield"),
              baseline="bluefield", kwarg="platform",
              doc="which SmartNIC terminates the echo loop; Bluefield "
                  "is what the paper ships, the projected Innova is "
                  "the §5.2 what-if")])],
    settings=lambda fast: dict(measure=8000.0 if fast else 20000.0),
    row=_innova_row,
    metric="mpps",
    point_kwargs=_innova_point_kwargs,
    notes=("the paper's RX-only measurement showed 15x headroom "
           "(7.4M vs 0.5M pps); the projected full loop keeps a "
           "large specialized-hardware advantage",),
)


ALL_STUDIES = (gpu_centric_comparison, dispatch_policy_study,
               coalescing_study, ring_size_study, sweep_interval_study,
               connection_scaling_study, driver_contention_study,
               projected_innova_study)


def run(fast=True, seed=42, jobs=None):
    """Aggregate ablation runner (one ExperimentResult per study)."""
    outcomes = run_campaigns([c.exp_id for c in ALL_STUDIES], fast=fast,
                             seed=seed, jobs=jobs)
    return merged_result(outcomes)


# The study list is generated from the registry so it cannot drift from
# the declarations above (it used to: the hand-written version listed
# five of the eight studies).
__doc__ += "\n\n" + describe(ALL_STUDIES)
