"""Ablation studies of Lynx's design choices.

These go beyond the paper's tables: each isolates one design decision
DESIGN.md calls out and quantifies it on the simulator.

* :func:`gpu_centric_comparison` — Lynx vs the §3.3 GPU-centric design
  (GPU-side network stack): I/O threadblocks and per-message GPU stack
  time cost application throughput.
* :func:`dispatch_policy_study` — round-robin vs least-loaded vs
  client-steering under a skewed client population (§4.2's policies).
* :func:`coalescing_study` — the §5.1 metadata/data coalescing
  optimization on vs off (1 vs 2 RDMA writes per delivery).
* :func:`ring_size_study` — mqueue ring depth vs drop rate and latency
  under bursty overload.
* :func:`sweep_interval_study` — the Remote MQ Manager's TX poll cadence
  vs latency and SNIC core burn.

Every study declares its grid as sweep :class:`~.sweep.Point`\\ s
(module-level builders, picklable kwargs), so ``--jobs N`` fans the
whole ``--extras`` suite across worker processes.
"""

from dataclasses import replace

from ..apps.base import SpinApp
from ..baseline.gpu_centric import GpuCentricServer, RDMA_PROTO
from ..config import K40M
from ..lynx.dispatch import make_policy
from ..net import Address, ClosedLoopGenerator, OpenLoopGenerator
from ..net.packet import UDP
from .base import ExperimentResult, krps
from .common import LYNX_BLUEFIELD, LYNX_XEON_6, deploy, measure_closed_loop
from .sweep import Point, run_points
from .testbed import Testbed


# ---------------------------------------------------------------------------
# Lynx vs GPU-centric
# ---------------------------------------------------------------------------

_GC_KERNEL_US = 200.0


def _gc_lynx_point(measure, seed=42):
    """Lynx on the host Xeon: every threadblock serves the app."""
    dep = deploy(LYNX_XEON_6, app=SpinApp(_GC_KERNEL_US), n_mqueues=240,
                 proto=UDP, seed=seed)
    clients = [dep.tb.client("10.0.9.%d" % i) for i in (1, 2)]
    for c in clients:
        ClosedLoopGenerator(dep.env, c, dep.address, concurrency=300,
                            payload_fn=lambda i: b"x" * 64, proto=UDP,
                            timeout=100000)
    dep.tb.warmup_then_measure([c.responses for c in clients], 20000.0,
                               measure)
    return sum(c.responses.per_sec() for c in clients)


def _gc_point(io_tbs, measure, seed=42):
    """GPU-centric: *io_tbs* I/O threadblocks carved out of the GPU."""
    tb = Testbed(seed=seed)
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu(K40M)
    GpuCentricServer(env, host, gpu, SpinApp(_GC_KERNEL_US), port=7777,
                     app_threadblocks=240 - io_tbs,
                     io_threadblocks=io_tbs, helper_cores=3)
    gc_clients = [tb.client("10.0.9.%d" % i) for i in (1, 2)]
    for c in gc_clients:
        ClosedLoopGenerator(env, c, Address("10.0.0.1", 7777),
                            concurrency=300,
                            payload_fn=lambda i: b"x" * 64,
                            proto=RDMA_PROTO, timeout=100000)
    tb.warmup_then_measure([c.responses for c in gc_clients], 20000.0,
                           measure)
    return sum(c.responses.per_sec() for c in gc_clients)


def gpu_centric_comparison(fast=True, seed=42, jobs=None):
    """Compute-bound service: Lynx frees the GPU resources the
    GPU-centric design spends on its network stack."""
    result = ExperimentResult(
        "ABL-GC", "Lynx vs GPU-centric (GPU-side network stack)",
        "§3.3 ablation")
    measure = 60000.0 if fast else 200000.0
    io_tb_counts = (16, 40, 80)
    # Compare on equal CPU silicon (Lynx on the host Xeon) so the delta
    # isolates the GPU resources the GPU-centric stack consumes, not
    # ARM-vs-Xeon speed.
    points = [Point(("ABL-GC", "lynx"), _gc_lynx_point,
                    dict(measure=measure), root_seed=seed)]
    points += [Point(("ABL-GC", io_tbs), _gc_point,
                     dict(io_tbs=io_tbs, measure=measure), root_seed=seed)
               for io_tbs in io_tb_counts]
    values = run_points(points, jobs=jobs)
    lynx_tput = values[0]
    result.add(design="lynx-on-xeon-6core", app_threadblocks=240,
               krps=krps(lynx_tput), relative=1.0)
    for io_tbs, tput in zip(io_tb_counts, values[1:]):
        result.add(design="gpu-centric (%d I/O TBs)" % io_tbs,
                   app_threadblocks=240 - io_tbs, krps=krps(tput),
                   relative=round(tput / lynx_tput, 3))
    result.note("the GPU-centric design also forfeits UDP/TCP clients "
                "entirely (RDMA transport only)")
    return result


# ---------------------------------------------------------------------------
# Dispatch policies under skew
# ---------------------------------------------------------------------------

class SkewedApp(SpinApp):
    """1 in 8 requests is 10x more expensive."""

    name = "skewed"

    def __init__(self):
        super().__init__(40.0)
        self._count = 0

    def handle(self, ctx, entry):
        self._count += 1
        duration = 400.0 if self._count % 8 == 0 else 40.0
        yield from ctx.compute(duration)
        return b"done"


def _dispatch_point(policy_name, measure, seed=42):
    dep = deploy(LYNX_BLUEFIELD, app=SkewedApp(), n_mqueues=8,
                 proto=UDP, seed=seed)
    binding = dep.server._ports[7777]
    binding.policy = make_policy(policy_name)
    tput, latency = measure_closed_loop(
        dep, lambda i: b"x" * 64, concurrency=16, warmup=20000.0,
        measure=measure)
    return tput, latency.p50(), latency.p99()


def dispatch_policy_study(fast=True, seed=42, jobs=None):
    """Skewed per-request service times: least-loaded shines, steering
    pins clients, round-robin splits the difference."""
    result = ExperimentResult(
        "ABL-DP", "Dispatch policies under skewed request cost",
        "§4.2 ablation")
    measure = 60000.0 if fast else 200000.0
    policies = ("round-robin", "least-loaded", "steering")
    points = [Point(("ABL-DP", policy), _dispatch_point,
                    dict(policy_name=policy, measure=measure),
                    root_seed=seed)
              for policy in policies]
    for policy, (tput, p50, p99) in zip(policies,
                                        run_points(points, jobs=jobs)):
        result.add(policy=policy, krps=krps(tput),
                   p50_us=round(p50, 1),
                   p99_us=round(p99, 1))
    result.note("least-loaded avoids queueing behind the 10x requests; "
                "steering trades balance for per-client affinity")
    return result


# ---------------------------------------------------------------------------
# Metadata coalescing
# ---------------------------------------------------------------------------

def _coalescing_point(coalesce, measure, seed=42):
    from ..config import DEFAULT_CONFIG

    config = DEFAULT_CONFIG.with_(
        lynx=replace(DEFAULT_CONFIG.lynx, coalesce_metadata=coalesce))
    dep = deploy(LYNX_BLUEFIELD, app=SpinApp(20.0), n_mqueues=1,
                 proto=UDP, seed=seed, config=config)
    tput, latency = measure_closed_loop(
        dep, lambda i: b"x" * 64, concurrency=1, warmup=10000.0,
        measure=measure)
    ops = dep.service.manager.qp.ops / max(1, dep.service.delivered)
    return latency.p50(), ops


def coalescing_study(fast=True, seed=42, jobs=None):
    """§5.1: appending the 4B metadata to the payload halves the RDMA
    writes per delivery."""
    result = ExperimentResult(
        "ABL-CO", "Metadata/data coalescing on vs off", "§5.1 ablation")
    measure = 40000.0 if fast else 120000.0
    points = [Point(("ABL-CO", coalesce), _coalescing_point,
                    dict(coalesce=coalesce, measure=measure),
                    root_seed=seed)
              for coalesce in (True, False)]
    for coalesce, (p50, ops) in zip((True, False),
                                    run_points(points, jobs=jobs)):
        result.add(coalescing="on" if coalesce else "off",
                   p50_us=round(p50, 1),
                   rdma_ops_per_msg=round(ops, 2))
    on = result.find(coalescing="on")
    off = result.find(coalescing="off")
    result.note("coalescing saves %.1fus and %.1f RDMA ops per message"
                % (off["p50_us"] - on["p50_us"],
                   off["rdma_ops_per_msg"] - on["rdma_ops_per_msg"]))
    return result


# ---------------------------------------------------------------------------
# Ring sizing
# ---------------------------------------------------------------------------

def _ring_point(entries, measure, seed=42):
    from ..config import DEFAULT_CONFIG
    from ..net.arrivals import OnOffBurst
    from ..sim import RngRegistry

    kernel_us = 100.0
    service_rate = 1.0 / (kernel_us + 10.0)
    config = DEFAULT_CONFIG.with_(
        lynx=replace(DEFAULT_CONFIG.lynx, ring_entries=entries))
    dep = deploy(LYNX_BLUEFIELD, app=SpinApp(kernel_us), n_mqueues=1,
                 proto=UDP, seed=seed, config=config)
    client = dep.tb.client("10.0.9.1")
    # bursts at 8x the service rate, on 1/4 of the time => ~2x mean
    arrivals = OnOffBurst(8.0 * service_rate, on_mean_us=2000.0,
                          off_mean_us=6000.0,
                          rng=RngRegistry(seed))
    OpenLoopGenerator(dep.env, client, dep.address,
                      payload_fn=lambda i: b"x" * 64, proto=UDP,
                      arrivals=arrivals)
    dep.tb.warmup_then_measure([client.responses, client.latency],
                               20000.0, measure)
    delivered = dep.service.delivered
    dropped = dep.service.dropped
    return (client.responses.per_sec(),
            dropped / max(1, dropped + delivered),
            client.latency.p50())


def ring_size_study(fast=True, seed=42, jobs=None):
    """Ring depth trades drop rate against queueing delay under bursty
    ~2x overload (Markov-modulated on/off arrivals)."""
    result = ExperimentResult(
        "ABL-RS", "mqueue ring depth under bursty 2x overload",
        "§4.2 ablation")
    measure = 50000.0 if fast else 150000.0
    depths = (4, 16, 64, 256)
    points = [Point(("ABL-RS", entries), _ring_point,
                    dict(entries=entries, measure=measure), root_seed=seed)
              for entries in depths]
    for entries, (goodput, drop_rate, p50) in zip(
            depths, run_points(points, jobs=jobs)):
        result.add(ring_entries=entries,
                   goodput_krps=krps(goodput),
                   drop_rate=round(drop_rate, 3),
                   p50_us=round(p50, 1))
    result.note("bigger rings shed the same overload but convert drops "
                "into queueing delay — classic buffer sizing")
    return result


# ---------------------------------------------------------------------------
# Sweep interval
# ---------------------------------------------------------------------------

def _sweep_interval_point(interval, measure, seed=42):
    from ..config import DEFAULT_CONFIG

    config = DEFAULT_CONFIG.with_(
        lynx=replace(DEFAULT_CONFIG.lynx, sweep_interval=interval))
    dep = deploy(LYNX_BLUEFIELD, app=SpinApp(20.0), n_mqueues=8,
                 proto=UDP, seed=seed, config=config)
    tput, latency = measure_closed_loop(
        dep, lambda i: b"x" * 64, concurrency=8, warmup=10000.0,
        measure=measure)
    return tput, latency.p50(), dep.service.manager.sweeps


def sweep_interval_study(fast=True, seed=42, jobs=None):
    """The TX doorbell sweep cadence.

    Because sweeps are doorbell-armed, request latency is nearly
    insensitive to the interval; what the interval buys is *fewer,
    larger sweeps* — less SNIC core time burnt in scans and RDMA
    doorbell reads for the same delivered load."""
    result = ExperimentResult(
        "ABL-SW", "Remote MQ Manager sweep interval", "§5.1 ablation")
    measure = 40000.0 if fast else 120000.0
    intervals = (0.5, 1.0, 4.0, 16.0)
    points = [Point(("ABL-SW", interval), _sweep_interval_point,
                    dict(interval=interval, measure=measure),
                    root_seed=seed)
              for interval in intervals]
    for interval, (tput, p50, sweeps) in zip(
            intervals, run_points(points, jobs=jobs)):
        result.add(sweep_interval_us=interval, krps=krps(tput),
                   p50_us=round(p50, 1),
                   sweeps=sweeps)
    return result


# ---------------------------------------------------------------------------
# Connection scaling
# ---------------------------------------------------------------------------

def _connection_point(n_conns, n_mqueues, measure, seed=42):
    from ..net.packet import TCP

    dep = deploy(LYNX_BLUEFIELD, app=SpinApp(100.0),
                 n_mqueues=n_mqueues, proto=TCP, seed=seed)
    clients = [dep.tb.client("10.0.9.%d" % i) for i in (1, 2)]
    for c in clients:
        # each closed-loop worker owns one TCP connection
        ClosedLoopGenerator(dep.env, c, dep.address,
                            concurrency=n_conns // 2,
                            payload_fn=lambda i: b"x" * 64,
                            proto=TCP, timeout=200000)
    dep.tb.warmup_then_measure([c.responses for c in clients],
                               30000.0, measure)
    tput = sum(c.responses.per_sec() for c in clients)
    return tput, len(dep.service.mqueues)


def connection_scaling_study(fast=True, seed=42, jobs=None):
    """§4.5: "Lynx allows multiplexing multiple connections over the
    same server mqueue" — unlike prior GPU-networking systems, which
    pinned a QP or socket per connection.  Scaling the TCP client
    population with a fixed mqueue pool must not collapse throughput or
    grow accelerator-side state."""
    result = ExperimentResult(
        "ABL-CS", "TCP connection scaling over a fixed mqueue pool",
        "§4.5 ablation")
    measure = 50000.0 if fast else 150000.0
    n_mqueues = 4
    counts = (4, 32, 128) if fast else (4, 16, 64, 128, 256)
    points = [Point(("ABL-CS", n_conns), _connection_point,
                    dict(n_conns=n_conns, n_mqueues=n_mqueues,
                         measure=measure),
                    root_seed=seed)
              for n_conns in counts]
    for n_conns, (tput, rings) in zip(counts, run_points(points, jobs=jobs)):
        result.add(connections=n_conns, mqueues=n_mqueues,
                   krps=krps(tput),
                   accel_rings=rings)
    result.note("accelerator-side state stays at %d rings regardless of "
                "the connection count; throughput saturates at the SNIC "
                "TCP limit without collapsing" % n_mqueues)
    return result


# ---------------------------------------------------------------------------
# Host-centric core scaling (the driver bottleneck)
# ---------------------------------------------------------------------------

def _driver_contention_point(cores, measure, seed=42):
    from .common import HOST_CENTRIC

    dep = deploy(HOST_CENTRIC, app=SpinApp(20.0), proto=UDP, seed=seed,
                 hc_cores=cores)
    clients = [dep.tb.client("10.0.9.%d" % i) for i in (1, 2)]
    for c in clients:
        ClosedLoopGenerator(dep.env, c, dep.address, concurrency=32,
                            payload_fn=lambda i: b"x" * 64, proto=UDP,
                            timeout=100000)
    dep.tb.warmup_then_measure([c.responses for c in clients],
                               15000.0, measure)
    tput = sum(c.responses.per_sec() for c in clients)
    driver = dep.host.driver
    return tput, driver.contended_ops / max(1, driver.ops)


def driver_contention_study(fast=True, seed=42, jobs=None):
    """§6.1: "we run on one CPU core because more threads result in a
    slowdown due to an NVIDIA driver bottleneck" — measured."""
    result = ExperimentResult(
        "ABL-DC", "Host-centric serving cores vs the driver lock",
        "§6.1 ablation")
    measure = 40000.0 if fast else 120000.0
    core_counts = (1, 2, 4, 6)
    points = [Point(("ABL-DC", cores), _driver_contention_point,
                    dict(cores=cores, measure=measure), root_seed=seed)
              for cores in core_counts]
    for cores, (tput, share) in zip(core_counts,
                                    run_points(points, jobs=jobs)):
        result.add(cores=cores, krps=krps(tput),
                   contended_op_share=round(share, 2))
    result.note("adding serving cores increases driver-lock contention "
                "faster than it adds useful work")
    return result


# ---------------------------------------------------------------------------
# Projected full Innova (§5.2)
# ---------------------------------------------------------------------------

def _innova_full_loop_point(measure, seed=42):
    """The projected full-duplex Innova echo loop (§5.2)."""
    from ..config import INNOVA_PROJECTED, K40M
    from ..lynx.innova import InnovaLynxServer
    from ..lynx.iolib import AcceleratorIO
    from ..lynx.mqueue import MQueue
    from ..net.packet import Address, Message

    tb = Testbed(seed=seed)
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu(K40M)
    snic = tb.innova("10.0.0.101", profile=INNOVA_PROJECTED)
    server = InnovaLynxServer(env, snic, helper_pool=None)
    n_mq = 240
    mqs = [MQueue(env, gpu.memory, entries=64, name="fmq%d" % i)
           for i in range(n_mq)]
    server.bind(7777, mqs)
    io = AcceleratorIO(env, gpu.poll_latency)

    def body(tb_index):
        mq = mqs[tb_index]
        while True:
            entry = yield from io.recv(mq)
            yield from io.send(mq, entry.payload, reply_to=entry)

    gpu.persistent_kernel(n_mq, body)

    src = Address("10.0.8.1", 5555)

    def flood(env):
        while True:
            tb.network.deliver(Message(src, Address("10.0.0.101", 7777),
                                       b"x" * 64, proto=UDP))
            yield env.charge(0.2)  # 5M/s offered

    env.process(flood(env), name="flood")
    tb.warmup_then_measure([server.responses], 4000.0, measure)
    return server.responses.per_sec()


def _innova_bluefield_point(measure, seed=42):
    """Bluefield full echo at the same message size / mqueue count."""
    from .common import measure_saturation

    dep = deploy(LYNX_BLUEFIELD, app=SpinApp(0.0), n_mqueues=240, proto=UDP,
                 seed=seed)
    return measure_saturation(dep, lambda i: b"x" * 64, 1.5e6,
                              warmup=10000.0, measure=measure)


def projected_innova_study(fast=True, seed=42, jobs=None):
    """§5.2/§6.2: how fast would a *full* Innova Lynx be?  The paper
    projects that removing the prototype's limitations (UC rings + CPU
    helper, RX only) unlocks the FPGA's headroom; we build that
    configuration and measure the complete echo loop."""
    result = ExperimentResult(
        "ABL-IN", "Projected full-duplex Innova vs Bluefield (64B echo)",
        "§5.2 projection")
    measure = 8000.0 if fast else 20000.0
    points = [
        Point(("ABL-IN", "innova"), _innova_full_loop_point,
              dict(measure=measure), root_seed=seed),
        Point(("ABL-IN", "bluefield"), _innova_bluefield_point,
              dict(measure=measure * 4), root_seed=seed),
    ]
    innova_rate, bf_rate = run_points(points, jobs=jobs)
    result.add(platform="innova-projected (full loop)",
               mpps=round(innova_rate / 1e6, 2),
               vs_bluefield=None)
    result.add(platform="bluefield (full loop)",
               mpps=round(bf_rate / 1e6, 3),
               vs_bluefield=round(innova_rate / bf_rate, 1))
    result.note("the paper's RX-only measurement showed 15x headroom "
                "(7.4M vs 0.5M pps); the projected full loop keeps a "
                "large specialized-hardware advantage")
    return result


ALL_STUDIES = (gpu_centric_comparison, dispatch_policy_study,
               coalescing_study, ring_size_study, sweep_interval_study,
               connection_scaling_study, driver_contention_study,
               projected_innova_study)


def run(fast=True, seed=42):
    """Aggregate ablation runner (one ExperimentResult per study)."""
    merged = ExperimentResult("ABL", "Design-choice ablations", "DESIGN.md")
    for study in ALL_STUDIES:
        sub = study(fast=fast, seed=seed)
        merged.note(sub.render())
    return merged
