"""Experiment harness plumbing.

Every paper table/figure has a module here exposing::

    run(fast=True, seed=42) -> ExperimentResult

``fast`` trims sweep points and measurement windows so the whole bench
suite runs in minutes; the full sweep reproduces each figure's complete
axis.  Results carry rows (dicts) plus the paper's reference numbers so
benchmarks can print paper-vs-measured tables and assert on shape.
"""


class ExperimentResult:
    """Rows + metadata from one experiment run."""

    def __init__(self, exp_id, title, paper_ref, rows=None, notes=None):
        self.exp_id = exp_id
        self.title = title
        self.paper_ref = paper_ref
        self.rows = rows or []
        self.notes = notes or []
        #: merged telemetry snapshot for the whole run (DESIGN.md §4.9);
        #: attached by the CLI, empty when the experiment ran bare
        self.metrics = {}

    def add(self, **fields):
        self.rows.append(fields)
        return fields

    def note(self, text):
        self.notes.append(text)

    def column(self, name):
        return [row[name] for row in self.rows]

    def find(self, **match):
        """First row whose fields include all of *match*."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row
        raise KeyError("no row matching %r" % (match,))

    def table(self):
        """Human-readable table (printed by the benchmarks)."""
        if not self.rows:
            return "(no rows)"
        # Union of all rows' keys, in first-seen order: later rows may
        # introduce columns the first row lacks (e.g. knee summaries).
        columns = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        widths = {c: max(len(str(c)), *(len(_fmt(r.get(c))) for r in self.rows))
                  for c in columns}
        lines = []
        header = "  ".join(str(c).ljust(widths[c]) for c in columns)
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(_fmt(row.get(c)).ljust(widths[c])
                                   for c in columns))
        return "\n".join(lines)

    def attach_metrics(self, snapshot):
        """Attach the run's merged telemetry snapshot (name -> snap)."""
        self.metrics = dict(snapshot)
        return self

    def metric(self, name, field="value"):
        """One field from an attached metric snapshot (KeyError if absent)."""
        return self.metrics[name][field]

    def to_dict(self, include_metrics=False):
        """JSON-serializable form (written next to the text tables).

        Metrics stay out by default: the golden serial-vs-parallel
        identity checks compare ``to_dict()`` and wall-clock metrics
        (``sim.kernel.wall_seconds``) are host-dependent.
        """
        out = {
            "exp_id": self.exp_id,
            "title": self.title,
            "paper_ref": self.paper_ref,
            "rows": self.rows,
            "notes": self.notes,
        }
        if include_metrics:
            out["metrics"] = self.metrics
        return out

    def render(self):
        """Full report block: title, table, notes."""
        parts = ["[%s] %s  (%s)" % (self.exp_id, self.title, self.paper_ref),
                 self.table()]
        for note in self.notes:
            parts.append("note: %s" % note)
        return "\n".join(parts)


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return "%.0f" % value
        if abs(value) >= 10:
            return "%.1f" % value
        return "%.2f" % value
    return str(value)


def krps(per_sec):
    """Requests/s -> Kreq/s, rounded for table display."""
    return round(per_sec / 1000.0, 2)
