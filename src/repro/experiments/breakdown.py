"""Per-request latency breakdown (the §6.2 "latency breakdown" text).

The Lynx data plane stamps each request as it crosses stage boundaries
(`t_rx_done`, `t_dispatched`, `t_delivered`, `t_accel_start`,
`t_accel_done`, `t_tx_ready`) and ships the stamps back in the
response's ``breakdown`` metadata.  The paper's anchor: with a
zero-time GPU kernel, the span from the end of UDP processing until the
response is ready to send is **14us on Bluefield vs 11us on the host**.
"""

import numpy as np

from ..apps.base import SpinApp
from ..net.packet import UDP
from .base import ExperimentResult
from .common import LYNX_BLUEFIELD, LYNX_XEON_6, deploy
from .sweep import Point, run_points

PAPER_SNIC_SPAN = {"bluefield": 14.0, "xeon": 11.0}

STAGES = (
    ("dispatch", "t_rx_done", "t_dispatched"),
    ("rdma_delivery", "t_dispatched", "t_delivered"),
    ("accel_poll", "t_delivered", "t_accel_start"),
    ("accel_compute", "t_accel_start", "t_accel_done"),
    ("doorbell_sweep", "t_accel_done", "t_tx_ready"),
)


def collect(design, kernel_us=0.0, samples=300, seed=42):
    """Mean per-stage spans (us) for one deployment."""
    dep = deploy(design, app=SpinApp(kernel_us), n_mqueues=1, proto=UDP,
                 seed=seed)
    dep.server.collect_breakdowns = True
    client = dep.tb.client("10.0.9.1")
    breakdowns = []

    def driver(env):
        while len(breakdowns) < samples:
            response = yield from client.request(b"x" * 20, dep.address,
                                                 proto=UDP)
            bd = response.meta.get("breakdown")
            if bd is not None:
                breakdowns.append(bd)

    dep.env.process(driver(dep.env))
    dep.tb.run(until=dep.env.now + samples * 400.0)
    spans = {}
    for stage, start_key, end_key in STAGES:
        values = [bd[end_key] - bd[start_key] for bd in breakdowns
                  if start_key in bd and end_key in bd]
        spans[stage] = float(np.mean(values)) if values else float("nan")
    totals = [bd["t_tx_ready"] - bd["t_rx_done"] for bd in breakdowns
              if "t_tx_ready" in bd and "t_rx_done" in bd]
    spans["snic_span_total"] = float(np.mean(totals)) if totals else float("nan")
    return spans


PLATFORMS = ((LYNX_BLUEFIELD, "bluefield"), (LYNX_XEON_6, "xeon"))


def sweep_points(fast=True, seed=42, samples=None):
    """One stamp-collection point per platform."""
    if samples is None:
        samples = 200 if fast else 1000
    return [Point(("BRK", label), collect,
                  dict(design=design, samples=samples), root_seed=seed)
            for design, label in PLATFORMS]


def run(fast=True, seed=42, samples=None, jobs=None):
    """Collect the per-stage latency breakdown on both platforms."""
    result = ExperimentResult(
        "BRK", "Latency breakdown: UDP-done -> response-ready (0us kernel)",
        "§6.2 text")
    points = sweep_points(fast, seed, samples=samples)
    all_spans = run_points(points, jobs=jobs)
    for (design, label), spans in zip(PLATFORMS, all_spans):
        result.add(platform=label,
                   dispatch=round(spans["dispatch"], 2),
                   rdma_delivery=round(spans["rdma_delivery"], 2),
                   accel_poll=round(spans["accel_poll"], 2),
                   doorbell_sweep=round(spans["doorbell_sweep"], 2),
                   snic_span_total=round(spans["snic_span_total"], 2),
                   paper_span=PAPER_SNIC_SPAN[label])
    result.note("paper: 14us (Bluefield) vs 11us (host) from the end of "
                "UDP processing until the GPU response is ready to send")
    return result
