"""Declarative ablation campaigns (DESIGN.md §4.12).

An ablation used to be a hand-written module: build the grid, derive
seeds, fan out, format rows — ~60 lines of boilerplate per design
question.  This engine turns a study into a *declaration*: components
register named knobs (on/off or variant) against the simulator's
config surface, a :class:`Campaign` spec auto-generates the grid as
sweep :class:`~.sweep.Point`\\ s with stable blake2s run ids, fans it
out through :func:`~.sweep.run_points` (``--jobs N`` bit-identical by
the §4.8 contract), and computes per-component importance scores from
telemetry-registry snapshot deltas (§4.9).

The moving parts:

* :class:`Knob` — one named setting.  A knob either targets a field of
  the frozen config tree (``config="lynx.coalesce_metadata"``, applied
  by building a :class:`~repro.config.SimConfig` and passing it to the
  scenario as ``config=``) or a plain scenario keyword
  (``kwarg="policy_name"``).  ``values`` is the ordered grid axis (a
  tuple, or a callable of ``fast``); ``baseline`` marks the unablated
  setting.
* :class:`Component` — a named design choice owning one or more knobs;
  importance is reported per (component, knob).
* :class:`Campaign` — the study spec: scenario builder + components +
  row formatting.  Calling it (``campaign(fast=, seed=, jobs=)``)
  returns a classic :class:`~.base.ExperimentResult`, so declared
  studies drop into the benchmarks unchanged; the full
  :class:`CampaignOutcome` (run ids, per-variant snapshots, importance
  table) hangs off ``result.campaign``.

Grid shape: a single-knob campaign enumerates the knob's values in
declared order (the baseline is one of them), which keeps fixed-seed
rows bit-identical with the hand-written predecessors the eight
``ablations`` studies replaced.  A multi-knob campaign produces the
canonical baseline + one-knob-off grid, plus opt-in pairwise points
(``pairwise=True``) for interaction hunting.

Importance: for each knob, every one-off variant is compared against
the baseline on the campaign's primary metric and on the standard
telemetry signals (client goodput, p99 latency via the mergeable
LogHistogram, kernel events processed, core burn from the CPU-pool
utilization gauges).  Positive importance means the baseline setting
outperforms the ablated one — the component earns its keep; negative
importance flags a *harmful* component (removing it helps), which the
scorecard surfaces first.
"""

import hashlib
import os

from dataclasses import replace

from .. import telemetry
from ..config import DEFAULT_CONFIG
from ..errors import ConfigError
from .base import ExperimentResult
from .sweep import Point, run_points

__all__ = ["Knob", "Component", "Campaign", "CampaignOutcome", "CAMPAIGNS",
           "run_campaigns", "describe", "find_campaign", "run_id_for",
           "snapshot_signals", "HARMFUL_EPS"]

#: components whose mean importance falls below ``-HARMFUL_EPS`` are
#: flagged harmful: ablating them *improves* the primary metric.
HARMFUL_EPS = 0.01

#: the global campaign registry, in declaration order.  Re-declaring an
#: exp_id replaces the old entry (latest wins, like the telemetry
#: registry), which keeps test fixtures from pinning stale objects.
CAMPAIGNS = {}

#: standard telemetry signals reported per component (snapshot deltas)
SIGNAL_KEYS = ("goodput", "p99_us", "kernel_events", "core_burn")


class Knob:
    """One named setting of a component.

    Exactly one of *config* (dotted path into the frozen
    :data:`~repro.config.DEFAULT_CONFIG` tree, validated at declaration
    time) or *kwarg* (scenario keyword) must be given.  *values* is the
    ordered grid axis — a tuple, or a callable of ``fast`` for studies
    whose full sweep widens the axis.  *baseline* is the unablated
    value (default: the first value); for an on/off knob declare
    ``values=(True, False), baseline=True``.
    """

    __slots__ = ("name", "kwarg", "config", "_values", "_baseline", "doc")

    def __init__(self, name, values, baseline=None, kwarg=None, config=None,
                 doc=""):
        if (kwarg is None) == (config is None):
            raise ConfigError("knob %r must target exactly one of kwarg= "
                              "or config=" % name)
        if config is not None:
            _resolve_config_path(DEFAULT_CONFIG, config)  # raises if bogus
        self.name = name
        self.kwarg = kwarg
        self.config = config
        self._values = values
        self._baseline = baseline
        self.doc = doc

    def values(self, fast=True):
        values = self._values(fast) if callable(self._values) else self._values
        values = tuple(values)
        if len(values) < 2:
            raise ConfigError("knob %r needs at least two values (baseline "
                              "plus one ablation)" % self.name)
        return values

    def baseline(self, fast=True):
        values = self.values(fast)
        if self._baseline is None:
            return values[0]
        if self._baseline not in values:
            raise ConfigError("knob %r baseline %r is not one of its values"
                              % (self.name, self._baseline))
        return self._baseline

    def __repr__(self):
        target = ("config=%r" % self.config if self.config
                  else "kwarg=%r" % self.kwarg)
        return "Knob(%r, %s)" % (self.name, target)


class Component:
    """A named design choice owning one or more :class:`Knob`\\ s."""

    __slots__ = ("name", "knobs", "doc")

    def __init__(self, name, knobs, doc=""):
        knobs = tuple(knobs)
        if not knobs:
            raise ConfigError("component %r declares no knobs" % name)
        self.name = name
        self.knobs = knobs
        self.doc = doc

    def __repr__(self):
        return "Component(%r, %d knob(s))" % (self.name, len(self.knobs))


class Variant:
    """One generated grid point: a full knob assignment."""

    __slots__ = ("token", "assignment", "changed", "is_baseline", "run_id")

    def __init__(self, token, assignment, changed):
        self.token = token
        self.assignment = assignment
        self.changed = tuple(changed)
        self.is_baseline = not self.changed
        self.run_id = None  # stamped by Campaign.run (needs the seed)

    def __repr__(self):
        return "Variant(%r, changed=%r)" % (self.token, self.changed)


def run_id_for(exp_id, assignment, seed):
    """Stable run id: blake2s over (exp_id, canonical assignment, seed).

    Canonicalization sorts by knob name and uses ``repr`` values, the
    same convention :func:`~.sweep.derive_seed` keys on, so the id is
    identical in every process, python version, and platform.
    """
    canon = "|".join("%s=%r" % (name, assignment[name])
                     for name in sorted(assignment))
    text = "%s|%r|%s" % (exp_id, seed, canon)
    return hashlib.blake2s(text.encode("utf-8")).hexdigest()[:12]


class Campaign:
    """A declared ablation study.

    Parameters
    ----------
    exp_id, title, paper_ref:
        The classic :class:`~.base.ExperimentResult` header fields.
    scenario:
        Module-level builder run once per variant:
        ``scenario(seed=..., **kwargs)`` where the kwargs are
        ``settings(fast)`` plus the knob targets.  Its return value is
        whatever the row formatter expects.
    components:
        Iterable of :class:`Component`; their knobs span the grid.
    slug:
        The module-level name the campaign is bound to (used by the
        auto-generated module docstring, :func:`describe`).
    settings:
        ``callable(fast) -> dict`` of shared scenario kwargs (measure
        windows and friends).
    row:
        ``callable(ctx, variant, value) -> dict`` mapping one measured
        value to an :class:`ExperimentResult` row.  ``ctx`` exposes the
        whole grid (``ctx.value(token)``, ``ctx.baseline_value``) for
        cross-row math.  Default: ``{"variant": token, "value": value}``.
    metric:
        Row field name (or ``callable(row) -> float``) scoring one
        variant for importance; *higher_is_better* orients the sign.
    notes / finish:
        Static note strings, and an optional ``callable(ctx, result)``
        for notes computed from the rows.
    point_kwargs:
        Optional ``callable(fast, variant) -> dict`` merged over the
        default scenario kwargs — the escape hatch for per-variant
        measurement windows.
    pairwise:
        Also generate two-knob-off interaction points (multi-knob
        campaigns only); they ride in rows but stay out of the
        per-component importance means.
    summary:
        One-line description for registries and docstrings.
    """

    def __init__(self, exp_id, title, paper_ref, scenario, components,
                 slug=None, settings=None, row=None, metric=None,
                 higher_is_better=True, notes=(), finish=None,
                 point_kwargs=None, pairwise=False, summary=""):
        self.exp_id = exp_id
        self.title = title
        self.paper_ref = paper_ref
        self.scenario = scenario
        self.components = tuple(components)
        self.slug = slug or getattr(scenario, "__name__", exp_id)
        self.settings = settings
        self.row = row
        self.metric = metric
        self.higher_is_better = higher_is_better
        self.notes = tuple(notes)
        self.finish = finish
        self.point_kwargs = point_kwargs
        self.pairwise = pairwise
        self.summary = summary
        self.module = getattr(scenario, "__module__", None)
        knobs = self.knobs()
        if len({k.name for k in knobs}) != len(knobs):
            raise ConfigError("campaign %r has duplicate knob names" % exp_id)
        CAMPAIGNS[exp_id] = self

    # -- declaration surface ----------------------------------------------

    def knobs(self):
        return tuple(k for comp in self.components for k in comp.knobs)

    def variants(self, fast=True, pairwise=None):
        """The generated grid, in deterministic declaration order."""
        pairwise = self.pairwise if pairwise is None else pairwise
        knobs = self.knobs()
        baseline = {k.name: k.baseline(fast) for k in knobs}
        if len(knobs) == 1:
            # Single-knob study: the axis IS the grid; enumerate the
            # declared values in order so rows (and derived seeds) match
            # the hand-written predecessors.
            knob = knobs[0]
            return [Variant(v, dict(baseline, **{knob.name: v}),
                            [knob.name] if v != baseline[knob.name] else [])
                    for v in knob.values(fast)]
        out = [Variant("baseline", dict(baseline), [])]
        for knob in knobs:
            for value in knob.values(fast):
                if value == baseline[knob.name]:
                    continue
                out.append(Variant("%s=%s" % (knob.name, value),
                                   dict(baseline, **{knob.name: value}),
                                   [knob.name]))
        if pairwise:
            for i, a in enumerate(knobs):
                va = _first_off(a, baseline, fast)
                if va is None:
                    continue
                for b in knobs[i + 1:]:
                    vb = _first_off(b, baseline, fast)
                    if vb is None:
                        continue
                    token = "%s=%s+%s=%s" % (a.name, va, b.name, vb)
                    out.append(Variant(
                        token, dict(baseline, **{a.name: va, b.name: vb}),
                        [a.name, b.name]))
        return out

    def scenario_kwargs(self, fast, variant):
        """The picklable kwargs one variant's scenario runs with."""
        kwargs = dict(self.settings(fast)) if self.settings else {}
        config = None
        for knob in self.knobs():
            value = variant.assignment[knob.name]
            if knob.kwarg is not None:
                kwargs[knob.kwarg] = value
            else:
                config = _config_with(config or DEFAULT_CONFIG,
                                      knob.config, value)
        if config is not None:
            kwargs["config"] = config
        if self.point_kwargs is not None:
            kwargs.update(self.point_kwargs(fast, variant))
        return kwargs

    # -- execution ---------------------------------------------------------

    def run(self, fast=True, seed=42, jobs=None, pairwise=None):
        """Run the campaign; returns a :class:`CampaignOutcome`."""
        variants = self.variants(fast, pairwise=pairwise)
        points = []
        for variant in variants:
            variant.run_id = run_id_for(self.exp_id, variant.assignment, seed)
            points.append(Point(
                (self.exp_id, variant.token), _run_variant,
                dict(module=self.module, exp_id=self.exp_id,
                     scenario_kwargs=self.scenario_kwargs(fast, variant)),
                root_seed=seed))
        outs = run_points(points, jobs=jobs)
        values = [value for value, _snap in outs]
        snapshots = [snap for _value, snap in outs]
        ctx = CampaignContext(self, fast, seed, variants, values, snapshots)
        result = ExperimentResult(self.exp_id, self.title, self.paper_ref)
        rows = []
        for variant, value in zip(variants, values):
            if self.row is not None:
                row = self.row(ctx, variant, value)
            else:
                row = {"variant": str(variant.token), "value": value}
            rows.append(result.add(**row))
        for note in self.notes:
            result.note(note)
        if self.finish is not None:
            self.finish(ctx, result)
        outcome = CampaignOutcome(self, fast, seed, variants, values,
                                  snapshots, rows, result)
        result.campaign = outcome
        return outcome

    def __call__(self, fast=True, seed=42, jobs=None):
        """Benchmark-compatible entry point: the classic result object."""
        return self.run(fast=fast, seed=seed, jobs=jobs).result

    def __repr__(self):
        return "Campaign(%r, %d component(s))" % (self.exp_id,
                                                  len(self.components))


class CampaignContext:
    """What row formatters and finish hooks see: the whole grid."""

    __slots__ = ("campaign", "fast", "seed", "variants", "values",
                 "snapshots")

    def __init__(self, campaign, fast, seed, variants, values, snapshots):
        self.campaign = campaign
        self.fast = fast
        self.seed = seed
        self.variants = variants
        self.values = values
        self.snapshots = snapshots

    def value(self, token):
        """The measured value of the variant with *token* (KeyError if
        absent)."""
        for variant, value in zip(self.variants, self.values):
            if variant.token == token:
                return value
        raise KeyError("no variant %r in campaign %r"
                       % (token, self.campaign.exp_id))

    @property
    def baseline_value(self):
        for variant, value in zip(self.variants, self.values):
            if variant.is_baseline:
                return value
        raise KeyError("campaign %r generated no baseline variant"
                       % self.campaign.exp_id)


class CampaignOutcome:
    """Everything one campaign run produced, importance included."""

    def __init__(self, campaign, fast, seed, variants, values, snapshots,
                 rows, result):
        self.campaign = campaign
        self.fast = fast
        self.seed = seed
        self.variants = variants
        self.values = values
        self.snapshots = snapshots
        self.rows = rows
        self.result = result
        self.importance = self._importance()

    # -- scoring -----------------------------------------------------------

    def _score(self, row):
        metric = self.campaign.metric
        if metric is None:
            return None
        if callable(metric):
            return metric(row)
        value = row.get(metric)
        return float(value) if isinstance(value, (int, float)) else None

    def _baseline_index(self):
        for index, variant in enumerate(self.variants):
            if variant.is_baseline:
                return index
        raise KeyError("campaign %r generated no baseline variant"
                       % self.campaign.exp_id)

    def _importance(self):
        """Per-(component, knob) importance entries, declaration order.

        ``importance`` is the mean, over the knob's one-off variants,
        of the signed relative change of the primary metric: positive
        means the baseline setting wins (the component helps), negative
        means ablating the component *improved* the metric — harmful.
        ``signals`` carries the raw relative telemetry deltas (variant
        vs baseline; positive = the variant measured higher).
        """
        base_index = self._baseline_index()
        base_score = self._score(self.rows[base_index])
        base_signals = snapshot_signals(self.snapshots[base_index])
        sign = -1.0 if self.campaign.higher_is_better else 1.0
        entries = []
        for component in self.campaign.components:
            for knob in component.knobs:
                deltas, tokens, scores = [], [], {}
                signal_deltas = {key: [] for key in SIGNAL_KEYS}
                for index, variant in enumerate(self.variants):
                    if variant.changed != (knob.name,):
                        continue
                    tokens.append(str(variant.token))
                    score = self._score(self.rows[index])
                    scores[str(variant.token)] = score
                    rel = telemetry.relative_delta(base_score, score)
                    if rel is not None:
                        deltas.append(sign * rel)
                    var_signals = snapshot_signals(self.snapshots[index])
                    for key in SIGNAL_KEYS:
                        rel = telemetry.relative_delta(base_signals[key],
                                                       var_signals[key])
                        if rel is not None:
                            signal_deltas[key].append(rel)
                importance = (sum(deltas) / len(deltas)) if deltas else None
                entries.append({
                    "component": component.name,
                    "knob": knob.name,
                    "baseline": repr(knob.baseline(self.fast)),
                    "variants": tokens,
                    "scores": scores,
                    "importance": importance,
                    "harmful": (importance is not None
                                and importance < -HARMFUL_EPS),
                    "signals": {key: (sum(vals) / len(vals)) if vals else None
                                for key, vals in signal_deltas.items()},
                })
        return entries

    # -- export ------------------------------------------------------------

    def to_doc(self):
        """The ``repro.campaign/1`` per-campaign document entry."""
        campaign = self.campaign
        return {
            "exp_id": campaign.exp_id,
            "slug": campaign.slug,
            "title": campaign.title,
            "paper_ref": campaign.paper_ref,
            "seed": self.seed,
            "fast": self.fast,
            "metric": (campaign.metric if isinstance(campaign.metric, str)
                       else None),
            "higher_is_better": campaign.higher_is_better,
            "baseline": str(self.variants[self._baseline_index()].token),
            "variants": [
                {"token": str(variant.token),
                 "run_id": variant.run_id,
                 "assignment": dict(variant.assignment),
                 "baseline": variant.is_baseline,
                 "row": row,
                 "score": self._score(row)}
                for variant, row in zip(self.variants, self.rows)
            ],
            "importance": self.importance,
            "notes": list(self.result.notes),
        }


# ---------------------------------------------------------------------------
# standard telemetry signals
# ---------------------------------------------------------------------------

def snapshot_signals(snap):
    """Reduce one variant's registry snapshot to the standard signals.

    * ``goodput`` — summed ``net.client.*.responses`` rates (req/s);
    * ``p99_us`` — p99 of the merged ``net.client.*.latency``
      LogHistograms;
    * ``kernel_events`` — ``sim.kernel.events_processed``;
    * ``core_burn`` — summed time-weighted means of the CPU-pool
      ``*.utilization`` gauges (≈ busy cores).

    Signals a run never produced come back ``None`` (e.g. flood-driven
    studies with no closed-loop clients have no client goodput).
    """
    goodput, saw_rate = 0.0, False
    latency = telemetry.LogHistogram()
    core_burn, saw_gauge = 0.0, False
    for name, entry in snap.items():
        kind = entry.get("kind")
        if (kind == "rate" and name.startswith("net.client.")
                and name.endswith(".responses") and entry["elapsed"] > 0):
            goodput += entry["count"] / entry["elapsed"] * 1e6
            saw_rate = True
        elif (kind == "histogram" and name.startswith("net.client.")
                and name.endswith(".latency")):
            latency.merge(entry)
        elif kind == "gauge" and name.endswith(".utilization"):
            core_burn += telemetry.scalar_of(entry)
            saw_gauge = True
    kernel = snap.get("sim.kernel.events_processed")
    return {
        "goodput": goodput if saw_rate else None,
        "p99_us": latency.p99() if latency.count else None,
        "kernel_events": kernel["value"] if kernel is not None else None,
        "core_burn": core_burn if saw_gauge else None,
    }


# ---------------------------------------------------------------------------
# registry-level runners
# ---------------------------------------------------------------------------

def find_campaign(exp_id, module=None):
    """Look up a declared campaign, importing *module* on a miss.

    Worker processes resolve points this way: declarations are
    module-level, so importing the declaring module (already resident
    under the ``fork`` start method) rebuilds the registry entry.
    """
    campaign = CAMPAIGNS.get(exp_id)
    if campaign is None and module:
        import importlib

        importlib.import_module(module)
        campaign = CAMPAIGNS.get(exp_id)
    if campaign is None:
        raise ConfigError("no campaign %r declared%s"
                          % (exp_id,
                             " (after importing %s)" % module if module
                             else ""))
    return campaign


def run_campaigns(exp_ids=None, fast=True, seed=42, jobs=None,
                  pairwise=None):
    """Run declared campaigns; returns their outcomes in order.

    *exp_ids* of ``None`` runs every registered campaign in declaration
    order; unknown ids raise :class:`~repro.errors.ConfigError`.
    """
    if exp_ids is None:
        campaigns = list(CAMPAIGNS.values())
    else:
        unknown = [e for e in exp_ids if e not in CAMPAIGNS]
        if unknown:
            raise ConfigError("unknown campaign id(s): %s (declared: %s)"
                              % (", ".join(unknown),
                                 ", ".join(CAMPAIGNS) or "none"))
        campaigns = [CAMPAIGNS[e] for e in exp_ids]
    return [campaign.run(fast=fast, seed=seed, jobs=jobs, pairwise=pairwise)
            for campaign in campaigns]


def merged_result(outcomes, exp_id="ABL", title="Design-choice ablations",
                  paper_ref="DESIGN.md"):
    """Fold campaign outcomes into one aggregate ExperimentResult (the
    shape ``ablations.run`` has always returned)."""
    merged = ExperimentResult(exp_id, title, paper_ref)
    for outcome in outcomes:
        merged.note(outcome.result.render())
    return merged


def describe(campaigns=None):
    """reST listing of declared campaigns for module docstrings.

    ``ablations.__doc__`` appends this at import time, so the study
    list can never drift from the registry again.
    """
    campaigns = list(CAMPAIGNS.values()) if campaigns is None else campaigns
    lines = ["Declared studies (generated from the campaign registry):", ""]
    for campaign in campaigns:
        knobs = ", ".join("``%s``" % k.name for k in campaign.knobs())
        lines.append("* [%s] :data:`%s` — %s (%s; knobs: %s)"
                     % (campaign.exp_id, campaign.slug,
                        campaign.summary or campaign.title,
                        campaign.paper_ref, knobs))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# point builder (module-level: sweep points must pickle)
# ---------------------------------------------------------------------------

def _run_variant(module, exp_id, scenario_kwargs, seed=42):
    """Run one variant inside its sweep-point telemetry scope.

    Returns ``(value, snapshot)``: the scenario's measured value plus
    the point-local registry snapshot the importance scores diff.  The
    executor's scope (§4.8) guarantees the snapshot covers exactly this
    variant, inline or in a worker.
    """
    campaign = find_campaign(exp_id, module)
    # Importance scores diff kernel churn across variants
    # (snapshot_signals' ``kernel_events``): pin the scalar oracle so
    # the signal measures the canonical per-message event chain,
    # invariant across scheduler backends and their frame-execution
    # defaults (DESIGN.md §4.14).  Model observables are identical
    # either way; only the churn diagnostics depend on the mode.
    prior = os.environ.get("REPRO_FRAME_EXEC")
    os.environ["REPRO_FRAME_EXEC"] = "0"
    try:
        value = campaign.scenario(seed=seed, **scenario_kwargs)
    finally:
        if prior is None:
            os.environ.pop("REPRO_FRAME_EXEC", None)
        else:
            os.environ["REPRO_FRAME_EXEC"] = prior
    return value, telemetry.snapshot()


# ---------------------------------------------------------------------------
# config plumbing
# ---------------------------------------------------------------------------

def _resolve_config_path(config, path):
    """Validate a dotted knob path against the frozen config tree."""
    node = config
    for field_name in path.split("."):
        if not hasattr(node, field_name):
            raise ConfigError("config knob path %r does not resolve on "
                              "%s (no field %r)"
                              % (path, type(config).__name__, field_name))
        node = getattr(node, field_name)
    return node


def _config_with(config, path, value):
    """A copy of *config* with the dotted *path* field set to *value*."""
    head, _, rest = path.partition(".")
    new = value if not rest else _config_with(getattr(config, head), rest,
                                              value)
    if hasattr(config, "with_"):
        return config.with_(**{head: new})
    return replace(config, **{head: new})


def _first_off(knob, baseline, fast):
    """The knob's first non-baseline value (for pairwise points)."""
    for value in knob.values(fast):
        if value != baseline[knob.name]:
            return value
    return None
