"""Shared builders for the experiment suite: deploy a GPU service on any
of the paper's four server designs (§6.1) and drive it with load."""

from .. import telemetry
from ..apps.base import SpinApp
from ..baseline import HostCentricServer
from ..config import K40M
from ..net import Address, ClientPopulation, ClosedLoopGenerator, Flow, \
    OpenLoopGenerator, PayloadPool, PoissonPopulation
from ..net.packet import UDP
from .testbed import Testbed

#: the four evaluated designs (§6.1)
HOST_CENTRIC = "host-centric"
LYNX_BLUEFIELD = "lynx-bluefield"
LYNX_XEON_1 = "lynx-xeon-1core"
LYNX_XEON_6 = "lynx-xeon-6core"

ALL_DESIGNS = (HOST_CENTRIC, LYNX_XEON_1, LYNX_XEON_6, LYNX_BLUEFIELD)


class Deployment:
    """A deployed GPU service plus the handles experiments need."""

    def __init__(self, tb, design, server, service, address, host, gpu):
        self.tb = tb
        self.env = tb.env
        self.design = design
        self.server = server
        self.service = service
        self.address = address
        self.host = host
        self.gpu = gpu

    def served_per_sec(self):
        """Responses/s measured at the server egress."""
        return self.server.responses.per_sec()


def deploy(design, app=None, n_mqueues=1, proto=UDP, port=7777, seed=42,
           gpu_profile=K40M, config=None, hc_cores=1):
    """Stand up one of the four §6.1 server designs around *app*."""
    tb = Testbed(config=config, seed=seed)
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu(gpu_profile)
    app = app or SpinApp(100.0)
    if design == HOST_CENTRIC:
        server = HostCentricServer(env, host, [gpu], app, port=port,
                                   cores=hc_cores, proto=proto)
        service = None
        address = Address("10.0.0.1", port)
    else:
        if design == LYNX_BLUEFIELD:
            snic = tb.bluefield("10.0.0.100")
            runtime, server = tb.lynx_on_bluefield(snic)
            address = Address("10.0.0.100", port)
        else:
            cores = 1 if design == LYNX_XEON_1 else 6
            runtime, server = tb.lynx_on_host(host, cores=cores)
            address = Address("10.0.0.1", port)
        proc = env.process(runtime.start_gpu_service(
            gpu, app, port=port, n_mqueues=n_mqueues, proto=proto))
        env.run(until=200)
        service = proc.value
    return Deployment(tb, design, server, service, address, host, gpu)


def measure_saturation(dep, payload_fn, offered_per_sec, proto=UDP,
                       warmup=20000.0, measure=60000.0, clients=2):
    """Open-loop overload: returns delivered responses/s."""
    reg = telemetry.registry()
    meters = []
    for i in range(clients):
        client = dep.tb.client("10.0.9.%d" % (i + 1))
        OpenLoopGenerator(dep.env, client, dep.address,
                          offered_per_sec / clients / 1e6, payload_fn,
                          proto=proto)
        # Fetched through the registry (DESIGN.md §4.9): the client
        # registers its live meters at construction, so this is the
        # same object — one measurement path, identical floats.
        meters.append(reg.get("net.client.%s.responses" % client.ip))
    dep.tb.warmup_then_measure(meters, warmup, measure)
    return sum(m.per_sec() for m in meters)


def measure_population(dep, payload, rate_per_us, warmup=20000.0,
                       measure=60000.0, timeout=None, source=None):
    """Flyweight open-loop drive (DESIGN.md §4.13).

    One :class:`ClientPopulation` offers Poisson load at *rate_per_us*
    (or from an explicit arrival *source*), every request carrying
    *payload*; returns the population with its measurement-window
    instruments populated (``percentile``/``delivered_per_sec``).
    Injection is frame-coalesced, so the load generator costs O(1)
    scheduler events per burst instead of ~5 per request.
    """
    tb = dep.tb
    if source is None:
        source = PoissonPopulation(rate_per_us, tb.rng.stream("population"))
    pop = ClientPopulation(tb.env, tb.network, "10.0.9.1", dep.address,
                           [Flow("load", source, PayloadPool.single(payload))],
                           timeout=timeout)
    tb.warmup_then_measure([pop], warmup, measure)
    pop.flush()
    return pop


def measure_closed_loop(dep, payload_fn, concurrency, proto=UDP,
                        warmup=20000.0, measure=60000.0, timeout=None):
    """Closed-loop drive: returns (throughput/s, latency recorder)."""
    reg = telemetry.registry()
    client = dep.tb.client("10.0.9.1")
    ClosedLoopGenerator(dep.env, client, dep.address, concurrency,
                        payload_fn, proto=proto, timeout=timeout)
    responses = reg.get("net.client.%s.responses" % client.ip)
    latency = reg.get("net.client.%s.latency" % client.ip)
    dep.tb.warmup_then_measure([responses, latency], warmup, measure)
    return responses.per_sec(), latency
