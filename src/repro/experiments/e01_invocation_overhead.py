"""E01 — §3.2 GPU management overhead microbenchmark.

The paper runs an echo kernel (copy 4 bytes) with a 100us in-kernel
delay through the host-centric pipeline (H2D copy, launch, D2H copy)
and measures 130us end to end => ~30us of pure GPU management overhead
per request.
"""

from ..apps.base import SpinApp
from ..config import K40M
from .base import ExperimentResult
from .testbed import Testbed

PAPER_KERNEL_US = 100.0
PAPER_E2E_US = 130.0
PAPER_OVERHEAD_US = 30.0


def pipeline_once(kernel_us, payload_bytes=4, seed=42):
    """Time one host-driven GPU request pipeline (no network)."""
    tb = Testbed(seed=seed)
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu(K40M)
    pool = host.pool(count=1, name="driver-pool")

    def proc(env):
        start = env.now
        yield from gpu.memcpy_async(pool, payload_bytes)       # H2D
        yield from gpu.launch_kernel(pool, kernel_us)          # kernel
        yield from gpu.memcpy_async(pool, payload_bytes)       # D2H
        return env.now - start

    p = env.process(proc(env))
    env.run()
    return p.value


def run(fast=True, seed=42):
    """Run this experiment; see the module docstring for the paper context."""
    result = ExperimentResult(
        "E01", "GPU invocation overhead (echo kernel + 100us delay)",
        "§3.2")
    kernels = [0.0, 20.0, 100.0] if fast else [0.0, 10.0, 20.0, 50.0, 100.0,
                                               200.0, 400.0]
    for kernel_us in kernels:
        e2e = pipeline_once(kernel_us, seed=seed)
        result.add(kernel_us=kernel_us, e2e_us=round(e2e, 2),
                   overhead_us=round(e2e - kernel_us, 2),
                   paper_e2e_us=PAPER_E2E_US if kernel_us == 100.0 else None,
                   paper_overhead_us=PAPER_OVERHEAD_US
                   if kernel_us == 100.0 else None)
    result.note("paper: 130us e2e for a 100us kernel => 30us management "
                "overhead; overhead is constant across kernel durations")
    return result
