"""E02 — §3.2 noisy neighbour interference.

A host-centric GPU vector-scale server (256 ints/request) co-executes
with an 1140x1140 integer matmul that fills the Xeon's LLC.  The paper
measures a 13x higher 99th-percentile response latency for the server
(0.13ms -> 1.7ms) and a 21% slowdown for the matmul.
"""

from ..apps.vector_scale import (
    MatrixProductAggressor,
    VectorScaleApp,
    encode_vector,
)
from ..baseline import HostCentricServer
from ..config import K40M
from ..net import Address, ClosedLoopGenerator
from ..net.packet import UDP
from .base import ExperimentResult
from .testbed import Testbed

PAPER_P99_RATIO = 13.0
PAPER_AGGRESSOR_SLOWDOWN = 1.21

#: serving-path buffers + GPU staging: enough to tip the LLC over once
#: the aggressor has filled it
VICTIM_WORKING_SET = 4 * 1024 * 1024
VICTIM_MEMORY_INTENSITY = 0.85


def _run_config(with_aggressor, seed, measure):
    tb = Testbed(seed=seed)
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu(K40M)
    app = VectorScaleApp()
    server = HostCentricServer(env, host, [gpu], app, port=7777, cores=1)
    # The victim's serving path is cache-sensitive, and its buffers stay
    # resident between requests (persistent occupancy).
    server.pool.default_memory_intensity = VICTIM_MEMORY_INTENSITY
    host.socket.llc.occupy(VICTIM_WORKING_SET)
    aggressor = None
    if with_aggressor:
        aggressor_pool = host.pool(count=2, name="aggressor-pool")
        aggressor = MatrixProductAggressor(env, aggressor_pool)
    client = tb.client("10.0.1.1")
    payload = encode_vector(list(range(256)))
    ClosedLoopGenerator(env, client, Address("10.0.0.1", 7777),
                        concurrency=4, payload_fn=lambda i: payload,
                        proto=UDP, timeout=100000)
    tb.warmup_then_measure([client.latency], 30000, measure)
    mean_product = (aggressor.mean_product_time() if aggressor else None)
    return client.latency, mean_product


def run(fast=True, seed=42):
    """Run this experiment; see the module docstring for the paper context."""
    result = ExperimentResult(
        "E02", "Noisy neighbour: LLC interference on the victim server",
        "§3.2")
    measure = 400000 if fast else 2000000
    alone, _ = _run_config(False, seed, measure)
    shared, product_time = _run_config(True, seed, measure)
    # The aggressor is a single sequential computation: its uncontended
    # duration is the calibrated product time.
    solo_product = MatrixProductAggressor.DURATION_XEON_US
    ratio = shared.p99() / alone.p99()
    result.add(config="victim alone", p99_ms=round(alone.p99() / 1000, 3),
               p50_ms=round(alone.p50() / 1000, 3), p99_ratio=1.0,
               matmul_slowdown=None)
    result.add(config="with noisy neighbour",
               p99_ms=round(shared.p99() / 1000, 3),
               p50_ms=round(shared.p50() / 1000, 3),
               p99_ratio=round(ratio, 1),
               matmul_slowdown=round(product_time / solo_product, 2))
    result.note("paper: p99 0.13ms -> 1.7ms (13x); matmul slows 21%")
    return result
