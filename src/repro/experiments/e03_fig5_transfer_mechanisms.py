"""E03 — Figure 5: data-transfer mechanisms for managing mqueues.

The paper compares CPU-side mechanisms for accessing an mqueue in GPU
memory, running a single-threadblock GPU echo server and measuring
end-to-end throughput for payloads of 20..1416 bytes.  Mechanism pairs
(data path : control path):

  1. cudaMemcpyAsync : cudaMemcpyAsync   (baseline, speedup 1.0)
  2. cudaMemcpyAsync : gdrcopy
  3. RDMA            : gdrcopy
  4. RDMA            : RDMA              (with metadata coalescing)

Mechanism cost model (per §5.1): cudaMemcpyAsync pays a 7-8us fixed
driver cost per call; gdrcopy is a blocking CPU store/load through the
PCIe BAR (reads are much slower than writes); one-sided RDMA costs
<1us to post and ~2us to complete.  The GPU side is the paper's 1-thread
echo kernel, whose byte-by-byte copy time caps large-payload gains.
"""

from ..config import K40M
from ..sim import Channel
from .base import ExperimentResult
from .sweep import Point, run_points
from .testbed import Testbed

PAYLOAD_SIZES = (20, 116, 516, 1016, 1416)
COMBOS = (
    ("cuda", "cuda"),
    ("cuda", "gdr"),
    ("rdma", "gdr"),
    ("rdma", "rdma"),
)

#: CPU BAR store/load bandwidths (bytes/us): writes combine, reads stall
GDR_WRITE_BW = 900.0
GDR_READ_BW = 350.0
GDR_WRITE_FIXED = 0.35
GDR_READ_FIXED = 0.5
#: a single GPU thread copies ~100 MB/s (0.01 us/byte)
GPU_THREAD_COPY_US_PER_BYTE = 0.01
CONTROL_BYTES = 4


class _Mechanisms:
    """The three access mechanisms, bound to one testbed's devices."""

    def __init__(self, env, pool, gpu, engine, qp):
        self.env = env
        self.pool = pool
        self.gpu = gpu
        self.engine = engine
        self.qp = qp

    def write(self, mech, nbytes):
        if mech == "cuda":
            yield from self.gpu.memcpy_async(self.pool, nbytes)
        elif mech == "gdr":
            yield from self.pool.run_calibrated(
                GDR_WRITE_FIXED + nbytes / GDR_WRITE_BW)
        else:
            yield from self.pool.run_calibrated(self.engine.profile.post_cost)
            yield from self.engine.write(self.qp, nbytes)

    def read(self, mech, nbytes):
        if mech == "cuda":
            yield from self.gpu.memcpy_async(self.pool, nbytes)
        elif mech == "gdr":
            yield from self.pool.run_calibrated(
                GDR_READ_FIXED + nbytes / GDR_READ_BW)
        else:
            yield from self.pool.run_calibrated(self.engine.profile.post_cost)
            yield from self.engine.read(self.qp, nbytes)


def throughput(data_mech, ctrl_mech, payload_bytes, seed=42,
               measure=30000.0, ring_depth=16):
    """Sustained echo throughput (req/s) for one mechanism pair."""
    tb = Testbed(seed=seed)
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu(K40M)
    pool = host.pool(count=1, name="mq-manager")
    qp = host.nic.rdma.connect(gpu.memory)
    mech = _Mechanisms(env, pool, gpu, host.nic.rdma, qp)
    coalesce = data_mech == "rdma" and ctrl_mech == "rdma"

    rx_ring = Channel(env, name="e03-rx", capacity=ring_depth)
    tx_ring = Channel(env, name="e03-tx", capacity=ring_depth)
    tokens = Channel(env, name="e03-credits", capacity=ring_depth)
    done = [0]
    for _ in range(ring_depth):
        tokens.try_put(None)

    def ingress(env):
        while True:
            yield tokens.get()
            if coalesce:
                # §5.1: metadata appended to the payload, one RDMA write.
                yield from mech.write(data_mech,
                                      payload_bytes + CONTROL_BYTES)
            else:
                yield from mech.write(data_mech, payload_bytes)
                yield from mech.write(ctrl_mech, CONTROL_BYTES)
            yield rx_ring.put(payload_bytes)

    def gpu_echo(env):
        # the paper's kernel: one GPU thread copies input to output
        while True:
            nbytes = yield rx_ring.get()
            yield env.charge(gpu.poll_latency
                             + nbytes * GPU_THREAD_COPY_US_PER_BYTE)
            yield tx_ring.put(nbytes)

    def egress(env):
        while True:
            nbytes = yield tx_ring.get()
            if coalesce:
                # Full-RDMA path: one read returns doorbell + payload.
                yield from mech.read(data_mech, nbytes + CONTROL_BYTES)
            else:
                if ctrl_mech == "gdr":
                    # gdrcopy maps the flag and busy-polls it over the
                    # BAR: detection costs an extra read on average.
                    yield from mech.read(ctrl_mech, CONTROL_BYTES)
                yield from mech.read(ctrl_mech, CONTROL_BYTES)
                yield from mech.read(data_mech, nbytes)
            done[0] += 1
            yield tokens.put(None)

    env.process(ingress(env), name="ingress")
    env.process(gpu_echo(env), name="gpu-echo")
    env.process(egress(env), name="egress")
    env.run(until=5000)  # warmup
    start_count, start_time = done[0], env.now
    env.run(until=env.now + measure)
    return (done[0] - start_count) / (env.now - start_time) * 1e6


def sweep_points(fast=True, seed=42, measure=None):
    """One point per (payload size, mechanism pair) echo measurement."""
    sizes = (20, 516, 1416) if fast else PAYLOAD_SIZES
    if measure is None:
        measure = 20000.0 if fast else 60000.0
    return [Point(("E03", data_mech, ctrl_mech, size), throughput,
                  dict(data_mech=data_mech, ctrl_mech=ctrl_mech,
                       payload_bytes=size, measure=measure),
                  root_seed=seed)
            for size in sizes
            for data_mech, ctrl_mech in COMBOS]


def run(fast=True, seed=42, measure=None, jobs=None):
    """Run this experiment; see the module docstring for the paper context."""
    result = ExperimentResult(
        "E03", "mqueue access mechanisms (speedup vs cudaMemcpyAsync)",
        "Fig 5")
    sizes = (20, 516, 1416) if fast else PAYLOAD_SIZES
    points = sweep_points(fast, seed, measure=measure)
    values = dict(zip((p.key for p in points), run_points(points, jobs=jobs)))
    for size in sizes:
        rates = {(dm, cm): values[("E03", dm, cm, size)]
                 for dm, cm in COMBOS}
        base = rates[("cuda", "cuda")]
        result.add(payload=size,
                   cuda_cuda=1.0,
                   cuda_gdr=round(rates[("cuda", "gdr")] / base, 2),
                   rdma_gdr=round(rates[("rdma", "gdr")] / base, 2),
                   rdma_rdma=round(rates[("rdma", "rdma")] / base, 2),
                   base_krps=round(base / 1000, 1))
    result.note("paper: RDMA fastest, ~5x at small payloads, gap narrows "
                "with size; cudaMemcpy fixed cost dominates small transfers")
    return result
