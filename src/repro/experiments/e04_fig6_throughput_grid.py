"""E04 — Figure 6: relative throughput of the four GPU server designs.

Grid: request execution time {20, 200, 800, 1600}us x mqueue count
{1, 120, 240}, 64B UDP messages, open-loop saturation.  Throughput is
reported relative to the host-centric baseline of the same column.

Paper headlines: Lynx-on-Bluefield is ~2x host-centric for short
requests with one mqueue and up to ~15.3x with many mqueues; Bluefield
always beats a single Xeon core but trails 6 Xeon cores for short
requests; a single Xeon core cannot handle 240 mqueues even at 1.6ms.
"""

from ..apps.base import SpinApp
from ..net.packet import UDP
from .base import ExperimentResult, krps
from .common import (
    ALL_DESIGNS,
    HOST_CENTRIC,
    LYNX_BLUEFIELD,
    LYNX_XEON_1,
    LYNX_XEON_6,
    deploy,
    measure_saturation,
)
from .sweep import Point, run_points

EXEC_TIMES = (20.0, 200.0, 800.0, 1600.0)
MQUEUE_COUNTS = (1, 120, 240)
MESSAGE_BYTES = 64

#: rough per-design capacity guesses used ONLY to size offered load
_CAP_GUESS = {
    HOST_CENTRIC: 60e3,
    LYNX_XEON_1: 400e3,
    LYNX_XEON_6: 2.2e6,
    LYNX_BLUEFIELD: 900e3,
}


def _offered_rate(design, exec_us, n_mq):
    demand = n_mq / exec_us * 1e6  # what the GPU could possibly consume
    return 1.4 * min(demand * 1.2 + 20e3, _CAP_GUESS[design])


def measure_design(design, exec_us, n_mq, seed=42, measure=40000.0,
                   warmup=15000.0):
    dep = deploy(design, app=SpinApp(exec_us),
                 n_mqueues=(1 if design == HOST_CENTRIC else n_mq),
                 proto=UDP, seed=seed)
    offered = _offered_rate(design, exec_us, n_mq)
    return measure_saturation(dep, _payload, offered,
                              warmup=warmup, measure=measure)


def _payload(i):
    return b"x" * MESSAGE_BYTES


def _axes(fast):
    exec_times = (20.0, 200.0) if fast else EXEC_TIMES
    mq_counts = (1, 240) if fast else MQUEUE_COUNTS
    return exec_times, mq_counts


def sweep_points(fast=True, seed=42, measure=None, warmup=15000.0):
    """Declare the Fig 6 grid as independent sweep points.

    One point per (design, exec time, mqueue count) measurement; the
    host-centric baseline does not depend on the mqueue count, so it is
    measured once per column.
    """
    exec_times, mq_counts = _axes(fast)
    if measure is None:
        measure = 30000.0 if fast else 50000.0
    points = []
    for exec_us in exec_times:
        points.append(Point(
            ("E04", HOST_CENTRIC, exec_us, 1), measure_design,
            dict(design=HOST_CENTRIC, exec_us=exec_us, n_mq=1,
                 measure=measure, warmup=warmup),
            root_seed=seed))
        for n_mq in mq_counts:
            for design in (LYNX_XEON_1, LYNX_XEON_6, LYNX_BLUEFIELD):
                points.append(Point(
                    ("E04", design, exec_us, n_mq), measure_design,
                    dict(design=design, exec_us=exec_us, n_mq=n_mq,
                         measure=measure, warmup=warmup),
                    root_seed=seed))
    return points


def run(fast=True, seed=42, measure=None, warmup=15000.0, jobs=None):
    """Run this experiment; see the module docstring for the paper context."""
    result = ExperimentResult(
        "E04", "GPU server throughput grid, relative to host-centric",
        "Fig 6")
    points = sweep_points(fast, seed, measure=measure, warmup=warmup)
    rates = dict(zip((p.key for p in points), run_points(points, jobs=jobs)))
    exec_times, mq_counts = _axes(fast)
    for exec_us in exec_times:
        base = rates[("E04", HOST_CENTRIC, exec_us, 1)]
        for n_mq in mq_counts:
            result.add(
                exec_us=exec_us, mqueues=n_mq,
                host_centric_krps=krps(base),
                host_centric=1.0,
                lynx_xeon1=round(
                    rates[("E04", LYNX_XEON_1, exec_us, n_mq)] / base, 2),
                lynx_xeon6=round(
                    rates[("E04", LYNX_XEON_6, exec_us, n_mq)] / base, 2),
                lynx_bluefield=round(
                    rates[("E04", LYNX_BLUEFIELD, exec_us, n_mq)] / base, 2),
            )
    result.note("paper: BF ~2x host-centric @20us/1mq, ~15.3x with many "
                "mqueues; 1 Xeon core saturates below 240 mqueues' demand")
    return result
