"""E05 — Figure 7: latency of Lynx on Bluefield vs Lynx on 6 Xeon cores.

64B UDP messages, request runtimes 5..1600us.  The mqueue count
{1, 120, 240} scales the round-robin bookkeeping both platforms do per
message — "both platforms spend more time on handling multiple mqueues"
— not the offered load.  The paper reports Bluefield up to ~1.4x slower
for the shortest requests, the gap vanishing for runtimes >=
~150-200us and staying within ~10%% once the mqueue sweep dominates on
both platforms.

Two load shapes probe the same grid:

* the **full** preset reproduces the paper's measurement — closed-loop
  ping-pong with one outstanding request (``measure_closed_loop``);
* the **fast** preset asks the production question instead — p50 under
  *open-loop* Poisson load at ~25%% utilization, driven by a flyweight
  :class:`~repro.net.population.ClientPopulation` whose frame-coalesced
  injection keeps the grid cheap (DESIGN.md §4.13).  Light load keeps
  p50 near the unloaded round trip, so the paper's slowdown bounds
  still apply point for point.

Absolute anchors (§6.2 text): with a zero-time kernel the end-to-end
latency is ~25us via Bluefield and ~19us via the host, of which the
SNIC-side span is 14us vs 11us.
"""

from ..apps.base import SpinApp
from ..net.packet import UDP
from .base import ExperimentResult
from .common import LYNX_BLUEFIELD, LYNX_XEON_6, deploy, \
    measure_closed_loop, measure_population
from .sweep import Point, run_points

RUNTIMES = (5.0, 20.0, 50.0, 200.0, 400.0, 800.0, 1600.0)
MQUEUE_COUNTS = (1, 120, 240)
MESSAGE_BYTES = 64

PAPER_E2E_BLUEFIELD_ZERO_KERNEL = 25.0
PAPER_E2E_XEON_ZERO_KERNEL = 19.0

#: fast preset: open-loop utilization target and the per-request
#: service-time estimate its Little's-law rate computation uses
POP_UTILIZATION = 0.25
POP_BASE_OVERHEAD_US = 25.0
#: fast preset: minimum expected responses per measurement window
POP_MIN_SAMPLES = 100.0


def _latency(design, runtime_us, n_mq, seed, measure):
    """Full preset: the paper's closed-loop ping-pong measurement."""
    dep = deploy(design, app=SpinApp(runtime_us), n_mqueues=n_mq, proto=UDP,
                 seed=seed)
    _, latency = measure_closed_loop(
        dep, lambda i: b"x" * MESSAGE_BYTES, concurrency=1,
        warmup=10000.0, measure=measure)
    return latency.p50()


def _population_latency(design, runtime_us, n_mq, seed, measure):
    """Fast preset: p50 under flyweight open-loop production load."""
    dep = deploy(design, app=SpinApp(runtime_us), n_mqueues=n_mq, proto=UDP,
                 seed=seed)
    service_us = runtime_us + POP_BASE_OVERHEAD_US
    pop = measure_population(
        dep, b"x" * MESSAGE_BYTES, POP_UTILIZATION / service_us,
        warmup=10000.0,
        measure=max(measure,
                    POP_MIN_SAMPLES * service_us / POP_UTILIZATION))
    return pop.percentile(50)


def sweep_points(fast=True, seed=42, measure=None):
    """One point per (platform, runtime, mqueue count)."""
    runtimes = (5.0, 200.0, 1600.0) if fast else RUNTIMES
    mq_counts = (1, 240) if fast else MQUEUE_COUNTS
    if measure is None:
        measure = 30000.0 if fast else 80000.0
    probe = _population_latency if fast else _latency
    points = []
    for runtime_us in runtimes:
        for n_mq in mq_counts:
            for design in (LYNX_BLUEFIELD, LYNX_XEON_6):
                points.append(Point(
                    ("E05", design, runtime_us, n_mq), probe,
                    dict(design=design, runtime_us=runtime_us, n_mq=n_mq,
                         measure=measure),
                    root_seed=seed))
    return points


def run(fast=True, seed=42, measure=None, jobs=None):
    """Run this experiment; see the module docstring for the paper context."""
    result = ExperimentResult(
        "E05", "Lynx latency: Bluefield vs 6 Xeon cores (p50 slowdown)",
        "Fig 7")
    points = sweep_points(fast, seed, measure=measure)
    p50s = dict(zip((p.key for p in points), run_points(points, jobs=jobs)))
    runtimes = (5.0, 200.0, 1600.0) if fast else RUNTIMES
    mq_counts = (1, 240) if fast else MQUEUE_COUNTS
    for runtime_us in runtimes:
        for n_mq in mq_counts:
            bf = p50s[("E05", LYNX_BLUEFIELD, runtime_us, n_mq)]
            xeon = p50s[("E05", LYNX_XEON_6, runtime_us, n_mq)]
            result.add(runtime_us=runtime_us, mqueues=n_mq,
                       bluefield_p50=round(bf, 1), xeon6_p50=round(xeon, 1),
                       slowdown=round(bf / xeon, 3))
    result.note("paper: slowdown <=1.4, converging to ~1.0 for runtimes "
                ">=150us; within 10% at high mqueue counts")
    return result


def zero_kernel_anchor(seed=42):
    """The §6.2 absolute numbers: e2e latency with a zero-time kernel."""
    out = {}
    for design, label in ((LYNX_BLUEFIELD, "bluefield"),
                          (LYNX_XEON_6, "xeon")):
        dep = deploy(design, app=SpinApp(0.0), n_mqueues=1, proto=UDP,
                     seed=seed)
        _, latency = measure_closed_loop(dep, lambda i: b"x" * 20,
                                         concurrency=1, warmup=5000.0,
                                         measure=20000.0)
        out[label] = latency.p50()
    return out
