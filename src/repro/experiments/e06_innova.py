"""E06 — §6.2 "Bluefield vs Innova FPGA": receive-path throughput.

64B UDP messages into 240 mqueues on a single GPU; only the receive
path is measured (the Innova prototype has no TX).  Paper: the Innova
AFU sustains 7.4M packets/s, Bluefield 0.5M, and the CPU-centric design
on six cores is ~80x slower than Innova.
"""

from ..apps.base import SpinApp
from ..config import K40M
from ..lynx.innova import InnovaLynxServer
from ..lynx.mqueue import MQueue
from ..net.packet import Address, Message, UDP
from .base import ExperimentResult
from .common import HOST_CENTRIC, LYNX_BLUEFIELD, deploy
from .testbed import Testbed

PAPER_INNOVA_PPS = 7.4e6
PAPER_BLUEFIELD_PPS = 0.5e6
PAPER_CPU_SLOWDOWN_VS_INNOVA = 80.0

N_MQUEUES = 240
MESSAGE_BYTES = 64


class _ConsumeApp(SpinApp):
    """Receive-path measurement: consume requests, never respond."""

    name = "consume"

    def __init__(self):
        super().__init__(0.0)

    def handle(self, ctx, entry):
        return None
        yield  # pragma: no cover - makes this a generator


def _flood(env, network, dst, rate_per_us, nbytes, name="flood"):
    """Inject raw datagrams at line rate without client-side overheads."""
    src = Address("10.0.8.1", 5555)

    def proc(env):
        gap = 1.0 / rate_per_us
        while True:
            msg = Message(src, dst, b"x" * nbytes, proto=UDP,
                          created_at=env.now)
            network.deliver(msg)
            yield env.charge(gap)

    return env.process(proc(env), name=name)


def _measure_innova(seed, measure):
    tb = Testbed(seed=seed)
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu(K40M)
    snic = tb.innova("10.0.0.101")
    helper = host.pool(count=1, name="innova-helper")
    server = InnovaLynxServer(env, snic, helper)
    mqs = [MQueue(env, gpu.memory, entries=64, name="innova-mq%d" % i)
           for i in range(N_MQUEUES)]
    server.bind(7777, mqs)

    def consumer(tb_index):
        mq = mqs[tb_index]
        while True:
            yield mq.pop_rx()
            yield env.charge(gpu.poll_latency)

    gpu.persistent_kernel(N_MQUEUES, consumer)
    _flood(env, tb.network, Address("10.0.0.101", 7777), 10.0, MESSAGE_BYTES)
    tb.warmup_then_measure([server.delivered], 5000, measure)
    return server.delivered.per_sec()


def _measure_bluefield(seed, measure):
    dep = deploy(LYNX_BLUEFIELD, app=_ConsumeApp(), n_mqueues=N_MQUEUES,
                 proto=UDP, seed=seed)
    _flood(dep.env, dep.tb.network, dep.address, 2.0, MESSAGE_BYTES)
    dep.tb.warmup_then_measure([dep.server.requests], 5000, measure)
    return dep.server.requests.per_sec()


def _measure_host_centric(seed, measure):
    # "CPU-centric design running on six cores": receive-side admission
    # rate of the host-centric server with a zero-time kernel.
    dep = deploy(HOST_CENTRIC, app=SpinApp(0.0), proto=UDP, seed=seed,
                 hc_cores=6)
    _flood(dep.env, dep.tb.network, dep.address, 1.0, MESSAGE_BYTES)
    dep.tb.warmup_then_measure([dep.server.requests], 5000, measure)
    return dep.server.requests.per_sec()


def run(fast=True, seed=42):
    """Run this experiment; see the module docstring for the paper context."""
    result = ExperimentResult(
        "E06", "Receive throughput: Innova AFU vs Bluefield vs host CPU",
        "§6.2")
    measure = 8000.0 if fast else 20000.0
    innova = _measure_innova(seed, measure)
    bluefield = _measure_bluefield(seed, measure)
    host = _measure_host_centric(seed, measure * 3)
    result.add(platform="innova-afu", mpps=round(innova / 1e6, 2),
               paper_mpps=7.4, vs_innova=1.0)
    result.add(platform="bluefield", mpps=round(bluefield / 1e6, 2),
               paper_mpps=0.5, vs_innova=round(innova / bluefield, 1))
    result.add(platform="host-centric-6core", mpps=round(host / 1e6, 3),
               paper_mpps=round(7.4 / 80, 3),
               vs_innova=round(innova / host, 1))
    result.note("paper: Innova 7.4M pps; Bluefield 0.5M; CPU-centric on "
                "six cores ~80x slower than Innova")
    return result
