"""E07 — §6.2 performance isolation.

Re-runs the §3.2 noisy-neighbour scenario, but with the GPU server
managed by Lynx on the Bluefield: the serving path never touches the
host CPU, so the host-side LLC aggressor cannot hurt it.  The paper
"observes no interference", in contrast to the host-centric run.
"""

from ..apps.vector_scale import MatrixProductAggressor, VectorScaleApp, encode_vector
from ..config import K40M
from ..net import Address, ClosedLoopGenerator
from ..net.packet import UDP
from .base import ExperimentResult
from .e02_noisy_neighbor import VICTIM_WORKING_SET
from .testbed import Testbed


def _run_config(with_aggressor, seed, measure):
    tb = Testbed(seed=seed)
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu(K40M)
    snic = tb.bluefield("10.0.0.100")
    runtime, server = tb.lynx_on_bluefield(snic)
    app = VectorScaleApp()
    env.process(runtime.start_gpu_service(gpu, app, port=7777, n_mqueues=4))
    env.run(until=200)
    if with_aggressor:
        # the aggressor hammers the *host* LLC, where nothing of the
        # serving path lives any more
        host.socket.llc.occupy(VICTIM_WORKING_SET)
        MatrixProductAggressor(env, host.pool(count=2, name="aggressor"))
    client = tb.client("10.0.1.1")
    payload = encode_vector(list(range(256)))
    ClosedLoopGenerator(env, client, Address("10.0.0.100", 7777),
                        concurrency=4, payload_fn=lambda i: payload,
                        proto=UDP, timeout=100000)
    tb.warmup_then_measure([client.latency], 30000, measure)
    return client.latency


def run(fast=True, seed=42):
    """Run this experiment; see the module docstring for the paper context."""
    result = ExperimentResult(
        "E07", "Performance isolation: Lynx on Bluefield + noisy neighbour",
        "§6.2")
    measure = 300000 if fast else 1500000
    alone = _run_config(False, seed, measure)
    shared = _run_config(True, seed, measure)
    ratio = shared.p99() / alone.p99()
    result.add(config="lynx-bluefield alone",
               p99_us=round(alone.p99(), 1), p99_ratio=1.0)
    result.add(config="lynx-bluefield + noisy neighbour",
               p99_us=round(shared.p99(), 1), p99_ratio=round(ratio, 2))
    result.note("paper: no interference (cf. 13x p99 inflation in the "
                "host-centric run, experiment E02)")
    return result
