"""E08 — §6.2 Intel VCA integration: secure AES echo inside SGX.

A 4-byte AES-encrypted value is decrypted, multiplied and re-encrypted
inside an SGX enclave on a VCA node, at a 1K req/s offered load.
Paper: Lynx reaches 56us 90th-percentile latency, ~4.3x lower than the
host-bridge baseline.  Crypto is real (from-scratch AES-128).
"""

from ..apps.sgx_echo import SgxEchoApp, VcaBridgeBaseline, VcaLynxService
from ..lynx.mqueue import MQueue
from ..net import Address, OpenLoopGenerator
from ..net.packet import UDP
from .base import ExperimentResult
from .testbed import Testbed

PAPER_LYNX_P90 = 56.0
PAPER_SPEEDUP = 4.3
OFFERED_PER_SEC = 1000.0


def _measure_lynx(app, seed, measure):
    tb = Testbed(seed=seed)
    env = tb.env
    tb.machine("10.0.0.1")
    vca = tb.vca()
    snic = tb.bluefield("10.0.0.100")
    runtime, server = tb.lynx_on_bluefield(snic)
    manager = runtime.attach_accelerator(vca.nodes[0],
                                         memory=vca.mqueue_memory)
    mq = MQueue(env, vca.mqueue_memory, entries=64, name="vca-mq")
    manager.register(mq)
    server.bind(9000, [mq])
    service = VcaLynxService(env, vca.nodes[0], mq, app)
    client = tb.client("10.0.1.1")
    payload = app.encrypt_value(6)
    OpenLoopGenerator(env, client, Address("10.0.0.100", 9000),
                      OFFERED_PER_SEC / 1e6, lambda i: payload, proto=UDP)
    tb.warmup_then_measure([client.latency], 30000, measure)
    return client.latency, service


def _measure_bridge(app, seed, measure):
    tb = Testbed(seed=seed)
    host = tb.machine("10.0.0.1")
    vca = tb.vca()
    VcaBridgeBaseline(tb.env, host, vca.nodes[0], app, port=9000)
    client = tb.client("10.0.1.1")
    payload = app.encrypt_value(6)
    OpenLoopGenerator(tb.env, client, Address("10.0.0.1", 9000),
                      OFFERED_PER_SEC / 1e6, lambda i: payload, proto=UDP)
    tb.warmup_then_measure([client.latency], 30000, measure)
    return client.latency


def run(fast=True, seed=42):
    """Run this experiment; see the module docstring for the paper context."""
    result = ExperimentResult(
        "E08", "SGX secure echo on the Intel VCA @1K req/s",
        "§6.2")
    measure = 200000 if fast else 1000000
    app = SgxEchoApp()
    lynx_lat, service = _measure_lynx(app, seed, measure)
    bridge_lat = _measure_bridge(app, seed, measure)
    result.add(path="lynx (mqueue, enclave-linked I/O)",
               p90_us=round(lynx_lat.p90(), 1),
               p50_us=round(lynx_lat.p50(), 1),
               paper_p90_us=PAPER_LYNX_P90, speedup=round(
                   bridge_lat.p90() / lynx_lat.p90(), 2))
    result.add(path="host bridge baseline",
               p90_us=round(bridge_lat.p90(), 1),
               p50_us=round(bridge_lat.p50(), 1),
               paper_p90_us=round(PAPER_LYNX_P90 * PAPER_SPEEDUP, 0),
               speedup=1.0)
    result.note("paper: Lynx p90 = 56us, 4.3x lower than the baseline; "
                "payloads are genuinely AES-encrypted end to end")
    return result
