"""E09 — §6.3 + Figure 8a: LeNet inference service.

MNIST-sized (784B) UDP requests served by LeNet on one K40m, at
saturation.  Paper: Lynx reaches 3.5 Kreq/s on both Bluefield and a
Xeon core (25% over the 2.8 Kreq/s host-centric baseline, within 3% of
the 3.6 Kreq/s single-GPU maximum); p90 latency 295-300us vs ~14%
slower host-centric.  Over TCP, throughput drops ~10% on Bluefield and
~5% on Xeon.
"""

from ..apps.lenet import LeNetApp, MnistStream
from ..net.packet import TCP, UDP
from .base import ExperimentResult, krps
from .common import (
    HOST_CENTRIC,
    LYNX_BLUEFIELD,
    LYNX_XEON_1,
    deploy,
    measure_closed_loop,
)
from .sweep import Point, run_points

PAPER = {
    (HOST_CENTRIC, "udp"): 2.8,
    (LYNX_BLUEFIELD, "udp"): 3.5,
    (LYNX_XEON_1, "udp"): 3.5,
    (LYNX_BLUEFIELD, "tcp"): 3.1,
    (LYNX_XEON_1, "tcp"): 3.3,
}
PAPER_P90 = {
    (HOST_CENTRIC, "udp"): 340.0,  # "14% slower" than ~298us
    (LYNX_BLUEFIELD, "udp"): 300.0,
    (LYNX_XEON_1, "udp"): 295.0,
    (LYNX_BLUEFIELD, "tcp"): 346.0,
    (LYNX_XEON_1, "tcp"): 322.0,
}
SINGLE_GPU_MAX_KRPS = 3.6


def measure(design, proto, seed=42, measure_us=200000.0,
            compute_for_real=False, concurrency=3):
    """Saturation throughput (closed loop) for one design."""
    app = LeNetApp(compute_for_real=compute_for_real)
    dep = deploy(design, app=app, n_mqueues=1, proto=proto, seed=seed)
    stream = MnistStream(seed=seed)
    tput, latency = measure_closed_loop(
        dep, lambda i: stream.sample(i)[0], concurrency=concurrency,
        proto=proto, warmup=50000.0, measure=measure_us)
    return tput, latency


def measure_latency_at_load(design, proto, offered_per_sec, seed=42,
                            measure_us=200000.0):
    """Latency under paced (sockperf-style uniform) open-loop load."""
    from ..net import OpenLoopGenerator

    app = LeNetApp(compute_for_real=False)
    dep = deploy(design, app=app, n_mqueues=1, proto=proto, seed=seed)
    stream = MnistStream(seed=seed)
    client = dep.tb.client("10.0.9.1")
    conn = None
    if proto == TCP:
        proc = dep.env.process(client.connect(dep.address))
        dep.env.run(until=dep.env.now + 2000)
        conn = proc.value
    OpenLoopGenerator(dep.env, client, dep.address, offered_per_sec / 1e6,
                      lambda i: stream.sample(i)[0], proto=proto, conn=conn,
                      poisson=False)
    dep.tb.warmup_then_measure([client.latency], 50000.0, measure_us)
    return client.latency


def _tput_point(design, proto, measure_us, seed=42):
    """Sweep builder: saturation throughput only (picklable result)."""
    tput, _ = measure(design, proto, seed, measure_us)
    return tput


def _latency_point(design, proto, offered_per_sec, measure_us, seed=42):
    """Sweep builder: (p50, p90) under paced open-loop load."""
    latency = measure_latency_at_load(design, proto, offered_per_sec, seed,
                                      measure_us)
    return latency.p50(), latency.p90()


def _configs(fast):
    configs = [(HOST_CENTRIC, UDP), (LYNX_XEON_1, UDP),
               (LYNX_BLUEFIELD, UDP)]
    if not fast:
        configs += [(LYNX_XEON_1, TCP), (LYNX_BLUEFIELD, TCP)]
    return configs


def run(fast=True, seed=42, measure_us=None, jobs=None):
    """Run this experiment; see the module docstring for the paper context."""
    result = ExperimentResult(
        "E09", "LeNet inference service: throughput and latency",
        "Fig 8a + §6.3")
    if measure_us is None:
        measure_us = 150000.0 if fast else 600000.0
    configs = _configs(fast)
    # Two sweep stages: the paced-load latency points depend on the
    # measured saturation throughput of the same (design, proto).
    tput_points = [Point(("E09", "tput", design, proto), _tput_point,
                         dict(design=design, proto=proto,
                              measure_us=measure_us),
                         root_seed=seed)
                   for design, proto in configs]
    tputs = run_points(tput_points, jobs=jobs)
    # Fig 8a: "latency distribution at maximum throughput" with a
    # paced load generator — drive at ~95% of the measured peak.
    latency_points = [Point(("E09", "latency", design, proto),
                            _latency_point,
                            dict(design=design, proto=proto,
                                 offered_per_sec=0.95 * tput,
                                 measure_us=measure_us),
                            root_seed=seed)
                      for (design, proto), tput in zip(configs, tputs)]
    latencies = run_points(latency_points, jobs=jobs)
    for (design, proto), tput, (p50, p90) in zip(configs, tputs, latencies):
        result.add(design=design, proto=proto,
                   krps=krps(tput), paper_krps=PAPER[(design, proto)],
                   p50_us=round(p50, 1),
                   p90_us=round(p90, 1),
                   paper_p90_us=PAPER_P90[(design, proto)])
    result.note("paper: Lynx 3.5K (UDP) = +25%% over host-centric 2.8K; "
                "single-GPU max 3.6K; p90 ~295-300us vs 14%% slower baseline")
    return result


def latency_distribution(design, proto=UDP, seed=42, measure_us=200000.0):
    """Latency samples for the Fig 8a CDF (used by examples/plots)."""
    _, latency = measure(design, proto, seed, measure_us)
    return latency.samples
