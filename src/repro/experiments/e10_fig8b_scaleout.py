"""E10 — Figure 8b: scale-out to remote GPUs.

One Bluefield-resident Lynx serves LeNet on up to 12 Tesla K80 GPUs
spread over three machines (4 local + 4 + 4 remote), with remote GPU
mqueues reached through the remote hosts' RDMA NICs (§5.5).  Paper:
throughput scales linearly (each K80 peaks at ~3.3 Kreq/s) and remote
GPUs add ~8us latency.
"""

from ..apps.lenet import LeNetApp, MnistStream
from ..config import K80
from ..net import Address, ClosedLoopGenerator
from ..net.packet import UDP
from .base import ExperimentResult, krps
from .sweep import Point, run_points
from .testbed import Testbed

PAPER_K80_KRPS = 3.3
PAPER_REMOTE_EXTRA_US = 8.0

CONFIGS = (
    ("4 local", (4, 0, 0)),
    ("4 local + 4 remote", (4, 4, 0)),
    ("4 local + 8 remote", (4, 4, 4)),
)


def _build(counts, seed):
    tb = Testbed(seed=seed)
    env = tb.env
    local = tb.machine("10.0.0.1")
    remote1 = tb.machine("10.0.0.2")
    remote2 = tb.machine("10.0.0.3")
    snic = tb.bluefield("10.0.0.100")
    runtime, server = tb.lynx_on_bluefield(snic)
    app = LeNetApp(compute_for_real=False)
    gpus = []
    for machine, n_gpus, remote in ((local, counts[0], False),
                                    (remote1, counts[1], True),
                                    (remote2, counts[2], True)):
        for _ in range(n_gpus):
            gpu = machine.add_gpu(K80)
            env.process(runtime.start_gpu_service(
                gpu, app, port=7777, n_mqueues=1, remote=remote))
            gpus.append((gpu, remote))
    env.run(until=500)
    return tb, server, gpus


def measure_config(counts, seed=42, measure_us=120000.0):
    tb, server, gpus = _build(counts, seed)
    stream = MnistStream(seed=seed)
    total_gpus = sum(counts)
    clients = [tb.client("10.0.9.%d" % i) for i in (1, 2)]
    for client in clients:
        ClosedLoopGenerator(tb.env, client, Address("10.0.0.100", 7777),
                            concurrency=2 * total_gpus,
                            payload_fn=lambda i: stream.sample(i)[0],
                            proto=UDP, timeout=100000)
    meters = [c.responses for c in clients]
    tb.warmup_then_measure(meters, 60000.0, measure_us)
    return sum(m.per_sec() for m in meters)


def remote_latency_delta(seed=42, measure_us=80000.0):
    """Single-request latency on a local vs a remote K80."""
    lat = {}
    for label, counts in (("local", (1, 0, 0)), ("remote", (0, 1, 0))):
        tb, server, gpus = _build(counts, seed)
        stream = MnistStream(seed=seed)
        client = tb.client("10.0.9.1")
        ClosedLoopGenerator(tb.env, client, Address("10.0.0.100", 7777),
                            concurrency=1,
                            payload_fn=lambda i: stream.sample(i)[0],
                            proto=UDP)
        tb.warmup_then_measure([client.latency], 30000.0, measure_us)
        lat[label] = client.latency.p50()
    return lat["remote"] - lat["local"]


def sweep_points(fast=True, seed=42, measure_us=None):
    """One throughput point per GPU placement, plus the latency delta."""
    if measure_us is None:
        measure_us = 120000.0 if fast else 400000.0
    points = [Point(("E10", label), measure_config,
                    dict(counts=counts, measure_us=measure_us),
                    root_seed=seed)
              for label, counts in CONFIGS]
    points.append(Point(("E10", "remote-delta"), remote_latency_delta,
                        dict(measure_us=measure_us // 2), root_seed=seed))
    return points


def run(fast=True, seed=42, measure_us=None, jobs=None):
    """Run this experiment; see the module docstring for the paper context."""
    result = ExperimentResult(
        "E10", "LeNet scale-out over local + remote K80 GPUs",
        "Fig 8b")
    points = sweep_points(fast, seed, measure_us=measure_us)
    values = run_points(points, jobs=jobs)
    tputs, delta = values[:len(CONFIGS)], values[-1]
    per_gpu = None
    for (label, counts), tput in zip(CONFIGS, tputs):
        total = sum(counts)
        if per_gpu is None:
            per_gpu = tput / total
        result.add(config=label, gpus=total, krps=krps(tput),
                   linear_ideal_krps=krps(per_gpu * total),
                   scaling_efficiency=round(tput / (per_gpu * total), 3),
                   paper_krps=round(PAPER_K80_KRPS * total, 1))
    result.note("remote GPU adds %.1fus latency (paper: ~%.0fus)"
                % (delta, PAPER_REMOTE_EXTRA_US))
    result.note("paper: linear scaling; each K80 peaks at ~3.3 Kreq/s")
    return result
