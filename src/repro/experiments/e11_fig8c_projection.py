"""E11 — Figure 8c: multi-GPU scalability projection.

How many LeNet GPUs can one Lynx instance drive?  Following the paper's
methodology, request processing is *emulated*: each "GPU" runs a
single-thread kernel blocking for the LeNet duration behind its own
mqueue, and GPUs are added until the SNIC/CPU saturates.  Paper knees:

    UDP: ~102 GPUs on Bluefield, ~74 on one Xeon core
    TCP: ~15 GPUs on Bluefield,  ~7 on one Xeon core

(The paper validates the emulation against the 12 real GPUs of E10.)
"""

from ..apps.base import SpinApp
from ..config import DEFAULT_APP_TIMINGS, K40M
from ..net import Address, ClosedLoopGenerator
from ..net.packet import TCP, UDP
from .base import ExperimentResult, krps
from .sweep import Point, run_points
from .testbed import Testbed

PAPER_KNEES = {
    ("bluefield", "udp"): 102,
    ("xeon", "udp"): 74,
    ("bluefield", "tcp"): 15,
    ("xeon", "tcp"): 7,
}

UDP_POINTS = (1, 15, 30, 45, 60, 75, 90, 105, 120)
TCP_POINTS = (1, 3, 5, 7, 9, 12, 15, 18, 22)
UDP_POINTS_FAST = (30, 75, 105)
TCP_POINTS_FAST = (5, 10, 16)

PER_GPU_KRPS = 3.5  # one emulated LeNet GPU's peak


def measure_point(platform, proto, n_gpus, seed=42, measure_us=60000.0):
    """Delivered throughput with *n_gpus* emulated GPUs attached."""
    tb = Testbed(seed=seed)
    env = tb.env
    host = tb.machine("10.0.0.1")
    if platform == "bluefield":
        snic = tb.bluefield("10.0.0.100")
        runtime, server = tb.lynx_on_bluefield(snic)
        address = Address("10.0.0.100", 7777)
    else:
        runtime, server = tb.lynx_on_host(host, cores=1)
        address = Address("10.0.0.1", 7777)
    app = SpinApp(DEFAULT_APP_TIMINGS.lenet_gpu)
    for _ in range(n_gpus):
        gpu = host.add_gpu(K40M)
        env.process(runtime.start_gpu_service(gpu, app, port=7777,
                                              n_mqueues=1, proto=proto))
    env.run(until=1000)
    clients = [tb.client("10.0.9.%d" % i) for i in (1, 2)]
    payload = b"x" * 784
    for client in clients:
        ClosedLoopGenerator(env, client, address,
                            concurrency=max(2, n_gpus),
                            payload_fn=lambda i: payload, proto=proto,
                            timeout=100000)
    meters = [c.responses for c in clients]
    tb.warmup_then_measure(meters, 30000.0, measure_us)
    return sum(m.per_sec() for m in meters)


def knee_from_series(points, rates, per_gpu_rate):
    """Largest GPU count still within 90% of linear scaling,
    extrapolated between measured points via the saturation plateau."""
    plateau = max(rates)
    return plateau / per_gpu_rate


def _grid(fast):
    udp_points = UDP_POINTS_FAST if fast else UDP_POINTS
    tcp_points = TCP_POINTS_FAST if fast else TCP_POINTS
    return [(platform, proto, gpu_counts)
            for platform in ("xeon", "bluefield")
            for proto, gpu_counts in (("udp", udp_points),
                                      ("tcp", tcp_points))]


def sweep_points(fast=True, seed=42, measure_us=None):
    """One point per (platform, proto, emulated GPU count)."""
    if measure_us is None:
        measure_us = 50000.0 if fast else 150000.0
    return [Point(("E11", platform, proto, n_gpus), measure_point,
                  dict(platform=platform, proto=proto, n_gpus=n_gpus,
                       measure_us=measure_us),
                  root_seed=seed)
            for platform, proto, gpu_counts in _grid(fast)
            for n_gpus in gpu_counts]


def run(fast=True, seed=42, measure_us=None, jobs=None):
    """Run this experiment; see the module docstring for the paper context."""
    result = ExperimentResult(
        "E11", "Multi-GPU scalability projection (emulated LeNet GPUs)",
        "Fig 8c")
    points = sweep_points(fast, seed, measure_us=measure_us)
    values = dict(zip((p.key for p in points), run_points(points, jobs=jobs)))
    for platform, proto, gpu_counts in _grid(fast):
        rates = []
        for n_gpus in gpu_counts:
            rate = values[("E11", platform, proto, n_gpus)]
            rates.append(rate)
            result.add(platform=platform, proto=proto, gpus=n_gpus,
                       krps=krps(rate),
                       linear_krps=round(PER_GPU_KRPS * n_gpus, 1),
                       knee_estimate=None,
                       paper_knee=None)
        knee = knee_from_series(gpu_counts, rates, PER_GPU_KRPS * 1000)
        result.add(platform=platform, proto=proto, gpus="knee",
                   krps=None, linear_krps=None,
                   knee_estimate=round(knee, 1),
                   paper_knee=PAPER_KNEES[(platform, proto)])
    result.note("paper knees: UDP 102 (BF) / 74 (Xeon core); "
                "TCP 15 (BF) / 7 (Xeon core)")
    return result
