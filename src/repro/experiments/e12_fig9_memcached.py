"""E12 — Figure 9: system efficiency — who should run where?

Two placements of a GPU LeNet service (via Lynx) and a memcached
co-tenant on one six-core Xeon host with a Bluefield:

  A. "6 cores":          LeNet managed by the Bluefield (Lynx-on-SNIC);
                         memcached gets all six host cores.
  B. "5 cores + BF":     Lynx runs on one host core; memcached gets the
                         other five host cores *plus* the Bluefield's
                         ARM cores (throughput- or latency-optimized).

Paper: LeNet serves 3.5 Kreq/s in both; memcached does ~250 Ktps per
Xeon core at ~15us p99, while on Bluefield it peaks at ~400 Ktps but at
~160us p99 — so under a 15us latency target the Bluefield contributes
nothing, and placement A wins.
"""

from ..apps.lenet import LeNetApp, MnistStream
from ..apps.memcached import MemcachedServer, encode_get, encode_set
from ..config import XEON_VMA
from ..net import Address, ClosedLoopGenerator
from ..net.packet import UDP
from .base import ExperimentResult, krps
from .sweep import Point, run_points
from .testbed import Testbed

PAPER_XEON_KTPS_PER_CORE = 250.0
PAPER_XEON_P99 = 15.0
PAPER_BF_KTPS = 400.0
PAPER_BF_P99 = 160.0
PAPER_LENET_KRPS = 3.5

#: closed-loop depth per memcached core (sets the latency/throughput
#: trade-off exactly as the paper's load generator does)
XEON_CONC_PER_CORE = 4
BF_CONC = 64
LATENCY_TARGET_US = 15.0


def _drive_memcached(tb, address, concurrency, client_ip):
    client = tb.client(client_ip)
    ClosedLoopGenerator(tb.env, client, address, concurrency,
                        payload_fn=lambda i: encode_get(b"key-%d" % (i % 64)),
                        proto=UDP)
    return client


def _preload(server):
    for i in range(64):
        server.store.execute(encode_set(b"key-%d" % i, b"v" * 32))


def _lenet_load(tb, address, seed):
    stream = MnistStream(seed=seed)
    client = tb.client("10.0.9.9")
    ClosedLoopGenerator(tb.env, client, address, concurrency=3,
                        payload_fn=lambda i: stream.sample(i)[0], proto=UDP)
    return client


def _config_a(seed, measure):
    """LeNet on Bluefield; memcached on all 6 host cores."""
    tb = Testbed(seed=seed)
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu()
    snic = tb.bluefield("10.0.0.100")
    runtime, server = tb.lynx_on_bluefield(snic)
    app = LeNetApp(compute_for_real=False)
    env.process(runtime.start_gpu_service(gpu, app, port=7777, n_mqueues=1))
    env.run(until=500)
    mc_nic = host.add_nic("10.0.0.11")
    mc = MemcachedServer(env, mc_nic, host.pool(count=6, name="mc6"),
                         XEON_VMA)
    _preload(mc)
    mc_client = _drive_memcached(tb, Address("10.0.0.11", 11211),
                                 6 * XEON_CONC_PER_CORE, "10.0.9.1")
    lenet_client = _lenet_load(tb, Address("10.0.0.100", 7777), seed)
    tb.warmup_then_measure([mc_client.responses, mc_client.latency,
                            lenet_client.responses], 30000.0, measure)
    return (mc_client.responses.per_sec(), mc_client.latency.p99(),
            lenet_client.responses.per_sec())


def _config_b(seed, measure, latency_optimized):
    """Lynx on one host core; memcached on 5 host cores + Bluefield."""
    tb = Testbed(seed=seed)
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu()
    snic = tb.bluefield("10.0.0.100")
    runtime, server = tb.lynx_on_host(host, cores=1)
    app = LeNetApp(compute_for_real=False)
    env.process(runtime.start_gpu_service(gpu, app, port=7777, n_mqueues=1))
    env.run(until=500)
    mc_nic = host.add_nic("10.0.0.11")
    mc_host = MemcachedServer(env, mc_nic, host.pool(count=5, name="mc5"),
                              XEON_VMA)
    _preload(mc_host)
    mc_bf = MemcachedServer(env, snic.nic, snic.workers,
                            snic.profile.stack)
    _preload(mc_bf)
    host_client = _drive_memcached(tb, Address("10.0.0.11", 11211),
                                   5 * XEON_CONC_PER_CORE, "10.0.9.1")
    bf_conc = 2 if latency_optimized else BF_CONC
    bf_client = _drive_memcached(tb, Address("10.0.0.100", 11211),
                                 bf_conc, "10.0.9.2")
    lenet_client = _lenet_load(tb, Address("10.0.0.1", 7777), seed)
    tb.warmup_then_measure([host_client.responses, host_client.latency,
                            bf_client.responses, bf_client.latency,
                            lenet_client.responses], 30000.0, measure)
    bf_tput = bf_client.responses.per_sec()
    bf_p99 = bf_client.latency.p99()
    if latency_optimized and bf_p99 > LATENCY_TARGET_US:
        # The paper's point: the target cannot be met on Bluefield, so
        # under the SLO it contributes no usable throughput.
        usable_bf = 0.0
    else:
        usable_bf = bf_tput
    return (host_client.responses.per_sec(), host_client.latency.p99(),
            bf_tput, bf_p99, usable_bf,
            lenet_client.responses.per_sec())


def sweep_points(fast=True, seed=42, measure=None):
    """Three points: placement A, placement B x {tput, latency} tuned."""
    if measure is None:
        measure = 60000.0 if fast else 250000.0
    return [
        Point(("E12", "A"), _config_a, dict(measure=measure),
              root_seed=seed),
        Point(("E12", "B", "throughput"), _config_b,
              dict(measure=measure, latency_optimized=False),
              root_seed=seed),
        Point(("E12", "B", "latency"), _config_b,
              dict(measure=measure, latency_optimized=True),
              root_seed=seed),
    ]


def run(fast=True, seed=42, measure=None, jobs=None):
    """Run this experiment; see the module docstring for the paper context."""
    result = ExperimentResult(
        "E12", "memcached placement vs Lynx offload (system efficiency)",
        "Fig 9")
    points = sweep_points(fast, seed, measure=measure)
    values = run_points(points, jobs=jobs)
    a_tput, a_p99, a_lenet = values[0]
    result.add(config="A: memcached on 6 cores, LeNet on BF",
               memcached_ktps=round(a_tput / 1000, 0),
               memcached_p99_us=round(a_p99, 1),
               bf_memcached_ktps=None, bf_p99_us=None,
               lenet_krps=krps(a_lenet),
               paper_ktps=6 * PAPER_XEON_KTPS_PER_CORE)
    b_variants = (("throughput-optimized", False), ("latency-optimized", True))
    for (label, latency_optimized), (h_tput, h_p99, bf_tput, bf_p99,
                                     usable_bf, lenet) in zip(
            b_variants, values[1:]):
        result.add(config="B: 5 cores + BF (%s)" % label,
                   memcached_ktps=round((h_tput + usable_bf) / 1000, 0),
                   memcached_p99_us=round(h_p99, 1),
                   bf_memcached_ktps=round(bf_tput / 1000, 0),
                   bf_p99_us=round(bf_p99, 1),
                   lenet_krps=krps(lenet),
                   paper_ktps=5 * PAPER_XEON_KTPS_PER_CORE
                   + (0 if latency_optimized else PAPER_BF_KTPS))
    result.note("paper: ~250 Ktps/Xeon core @15us p99; Bluefield ~400 Ktps "
                "@160us p99; LeNet constant at 3.5 Kreq/s in either config")
    return result
