"""E13 — §6.4 Face Verification: a multi-tier accelerated server.

Requests carry a 12-byte person label + a 1024-byte probe photo; the
server fetches the reference photo from a memcached tier (TCP) and runs
LBP verification on the GPU (~50us kernel).  On Lynx the GPU itself
performs the memcached access through client mqueues (28 server
mqueues, one threadblock of 1024 threads each); the baseline fetches on
the CPU and launches a compare kernel per request.

Paper: Lynx achieves 4.4x (Bluefield) / 4.6x (Xeon core) the
host-centric throughput (which peaks at two CPU cores); Lynx on
Bluefield is ~5% slower than on Xeon due to its slower TCP stack.
"""

from ..apps.facever import (
    BACKEND,
    FaceDatabase,
    FaceVerificationApp,
    encode_request,
    person_label,
)
from ..apps.memcached import MemcachedServer
from ..baseline import HostCentricServer
from ..config import K40M, XEON_VMA
from ..net import Address, ClosedLoopGenerator
from ..net.packet import TCP, UDP
from .base import ExperimentResult, krps
from .sweep import Point, run_points
from .testbed import Testbed

PAPER_SPEEDUP_BLUEFIELD = 4.4
PAPER_SPEEDUP_XEON = 4.6
N_MQUEUES = 28
NUM_PEOPLE = 64


def _base(seed, compute_for_real):
    tb = Testbed(seed=seed)
    env = tb.env
    gpu_host = tb.machine("10.0.0.1")
    gpu = gpu_host.add_gpu(K40M)
    db_host = tb.machine("10.0.0.2")
    # The database tier must not be the bottleneck: give it the whole
    # six-core machine (the paper runs it "on a different host").
    mc = MemcachedServer(env, db_host.nic, db_host.pool(count=6, name="mc"),
                         XEON_VMA)
    db = FaceDatabase(num_people=NUM_PEOPLE)
    mc.store.preload(db.items())
    app = FaceVerificationApp(compute_for_real=compute_for_real)
    return tb, gpu_host, gpu, db, app


def _drive(tb, address, db, seed, measure, concurrency):
    def payload(i):
        pid = i % NUM_PEOPLE
        return encode_request(person_label(pid), db.probe(pid))

    clients = [tb.client("10.0.9.%d" % i) for i in (1, 2)]
    for client in clients:
        ClosedLoopGenerator(tb.env, client, address,
                            concurrency=concurrency // 2,
                            payload_fn=payload, proto=UDP, timeout=200000)
    meters = [c.responses for c in clients]
    tb.warmup_then_measure(meters, 30000.0, measure)
    return sum(m.per_sec() for m in meters)


def measure_lynx(platform, seed=42, measure=80000.0, cores=1,
                 compute_for_real=False):
    tb, gpu_host, gpu, db, app = _base(seed, compute_for_real)
    env = tb.env
    if platform == "bluefield":
        snic = tb.bluefield("10.0.0.100")
        runtime, server = tb.lynx_on_bluefield(snic)
        address = Address("10.0.0.100", 8000)
    else:
        runtime, server = tb.lynx_on_host(gpu_host, cores=cores)
        address = Address("10.0.0.1", 8000)
    env.process(runtime.start_gpu_service(
        gpu, app, port=8000, n_mqueues=N_MQUEUES, proto=UDP,
        backends={BACKEND: (Address("10.0.0.2", 11211), TCP)}))
    env.run(until=20000)
    return _drive(tb, address, db, seed, measure, concurrency=2 * N_MQUEUES)


def measure_host_centric(cores=2, seed=42, measure=80000.0,
                         compute_for_real=False):
    tb, gpu_host, gpu, db, app = _base(seed, compute_for_real)
    env = tb.env
    server = HostCentricServer(env, gpu_host, [gpu], app, port=8000,
                               cores=cores)
    setup = env.process(server.add_backend(
        BACKEND, Address("10.0.0.2", 11211), proto=TCP))
    env.run(until=5000)
    return _drive(tb, Address("10.0.0.1", 8000), db, seed, measure,
                  concurrency=2 * N_MQUEUES)


def sweep_points(fast=True, seed=42, measure=None):
    """Four points: host-centric x {1,2} cores, Lynx on Xeon/Bluefield."""
    if measure is None:
        measure = 80000.0 if fast else 300000.0
    return [
        Point(("E13", "host-centric", 1), measure_host_centric,
              dict(cores=1, measure=measure), root_seed=seed),
        Point(("E13", "host-centric", 2), measure_host_centric,
              dict(cores=2, measure=measure), root_seed=seed),
        Point(("E13", "lynx", "xeon"), measure_lynx,
              dict(platform="xeon", cores=2, measure=measure),
              root_seed=seed),
        Point(("E13", "lynx", "bluefield"), measure_lynx,
              dict(platform="bluefield", measure=measure), root_seed=seed),
    ]


def run(fast=True, seed=42, measure=None, jobs=None):
    """Run this experiment; see the module docstring for the paper context."""
    result = ExperimentResult(
        "E13", "Face Verification (GPU + memcached tier) throughput",
        "§6.4")
    points = sweep_points(fast, seed, measure=measure)
    hc1, hc2, xeon, bluefield = run_points(points, jobs=jobs)
    base = max(hc1, hc2)
    result.add(design="host-centric 1 core", krps=krps(hc1),
               speedup=round(hc1 / base, 2), paper_speedup=None)
    result.add(design="host-centric 2 cores (best)", krps=krps(hc2),
               speedup=round(hc2 / base, 2), paper_speedup=1.0)
    result.add(design="lynx on xeon (2 cores)", krps=krps(xeon),
               speedup=round(xeon / base, 2),
               paper_speedup=PAPER_SPEEDUP_XEON)
    result.add(design="lynx on bluefield", krps=krps(bluefield),
               speedup=round(bluefield / base, 2),
               paper_speedup=PAPER_SPEEDUP_BLUEFIELD)
    result.note("paper: Lynx 4.4x (BF) / 4.6x (Xeon) over the best "
                "host-centric config; BF ~5% behind Xeon (slower TCP)")
    result.note("deviation: with TCP per-message costs calibrated to the "
                "Fig 8c knees, a single Xeon core cannot carry the "
                "paper's FaceVer backend traffic, so we give Lynx-on-"
                "Xeon two cores; absolute speedups land at ~3x instead "
                "of ~4.5x, orderings and the BF-vs-Xeon ~5% gap hold")
    return result
