"""E14 — §5.1.1: the VMA kernel-bypass library.

Minimum-size UDP echo through Lynx with the kernel stack vs the VMA
user-level stack.  Paper: VMA cuts UDP processing latency ~4x on the
Bluefield's ARM cores and ~2x on the host Xeon.
"""

from dataclasses import replace

from ..apps.base import EchoApp
from ..config import (
    ARM_KERNEL,
    ARM_VMA,
    BluefieldProfile,
    K40M,
    XEON_KERNEL,
    XEON_VMA,
)
from ..net import Address, ClosedLoopGenerator
from ..net.packet import UDP
from .base import ExperimentResult
from .testbed import Testbed

PAPER_ARM_FACTOR = 4.0
PAPER_XEON_FACTOR = 2.0
MIN_UDP_BYTES = 4


def _measure(platform, stack, seed, measure):
    tb = Testbed(seed=seed)
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu(K40M)
    if platform == "bluefield":
        profile = BluefieldProfile(stack=stack)
        snic = tb.bluefield("10.0.0.100", profile=profile)
        runtime, server = tb.lynx_on_bluefield(snic)
        address = Address("10.0.0.100", 7777)
    else:
        runtime, server = tb.lynx_on_host(host, cores=6, stack=stack)
        address = Address("10.0.0.1", 7777)
    env.process(runtime.start_gpu_service(gpu, EchoApp(), port=7777,
                                          n_mqueues=1))
    env.run(until=200)
    client = tb.client("10.0.9.1")
    ClosedLoopGenerator(env, client, address, concurrency=1,
                        payload_fn=lambda i: b"x" * MIN_UDP_BYTES, proto=UDP)
    tb.warmup_then_measure([client.latency], 10000.0, measure)
    stack_cost = (stack.udp_rx_fixed + stack.udp_tx_fixed
                  + 2 * MIN_UDP_BYTES * stack.udp_per_byte)
    return client.latency.p50(), stack_cost


def run(fast=True, seed=42):
    """Run this experiment; see the module docstring for the paper context."""
    result = ExperimentResult(
        "E14", "VMA kernel bypass vs the kernel stack (min-size UDP)",
        "§5.1.1")
    measure = 30000.0 if fast else 100000.0
    for platform, vma, kernel, paper in (
            ("bluefield", ARM_VMA, ARM_KERNEL, PAPER_ARM_FACTOR),
            ("xeon", XEON_VMA, XEON_KERNEL, PAPER_XEON_FACTOR)):
        vma_e2e, vma_cost = _measure(platform, vma, seed, measure)
        kern_e2e, kern_cost = _measure(platform, kernel, seed, measure)
        result.add(platform=platform,
                   vma_e2e_us=round(vma_e2e, 1),
                   kernel_e2e_us=round(kern_e2e, 1),
                   stack_cost_ratio=round(kern_cost / vma_cost, 2),
                   e2e_ratio=round(kern_e2e / vma_e2e, 2),
                   paper_processing_ratio=paper)
    result.note("paper factors apply to stack *processing* latency; the "
                "e2e ratio is diluted by GPU/RDMA/wire components")
    return result
