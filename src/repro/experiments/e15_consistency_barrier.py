"""E15 — §5.1: the GPU PCIe-ordering consistency workaround.

Delivering a message into GPU memory with strict write ordering takes
three RDMA transactions (payload write, barrier read, doorbell write)
instead of one coalesced write, costing ~5us extra per message and
disabling the metadata coalescing optimization.  The paper measures the
overhead and then disables the workaround for its evaluation (persistent
kernels merely emulate accelerators); we reproduce both the latency and
the RDMA-operation inflation.
"""

from ..apps.base import SpinApp
from ..config import GpuProfile, K40M
from ..net import Address, ClosedLoopGenerator
from ..net.packet import UDP
from .base import ExperimentResult
from .testbed import Testbed

PAPER_EXTRA_US = 5.0


def _measure(profile, seed, measure):
    tb = Testbed(seed=seed)
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu(profile)
    snic = tb.bluefield("10.0.0.100")
    runtime, server = tb.lynx_on_bluefield(snic)
    proc = env.process(runtime.start_gpu_service(
        gpu, SpinApp(20.0), port=7777, n_mqueues=1))
    env.run(until=200)
    service = proc.value
    client = tb.client("10.0.9.1")
    ClosedLoopGenerator(env, client, Address("10.0.0.100", 7777),
                        concurrency=1, payload_fn=lambda i: b"x" * 64,
                        proto=UDP)
    tb.warmup_then_measure([client.latency], 10000.0, measure)
    ops_per_msg = service.manager.qp.ops / max(1, service.delivered)
    return client.latency.p50(), ops_per_msg


def run(fast=True, seed=42):
    """Run this experiment; see the module docstring for the paper context."""
    result = ExperimentResult(
        "E15", "GPU consistency write-barrier overhead",
        "§5.1")
    measure = 30000.0 if fast else 100000.0
    plain, plain_ops = _measure(K40M, seed, measure)
    barrier_profile = GpuProfile(name="k40m-ordered",
                                 needs_write_barrier=True)
    fenced, fenced_ops = _measure(barrier_profile, seed, measure)
    result.add(mode="coalesced (workaround off)", p50_us=round(plain, 1),
               rdma_ops_per_msg=round(plain_ops, 2), extra_us=0.0,
               paper_extra_us=0.0)
    result.add(mode="write barrier (3 transactions)",
               p50_us=round(fenced, 1),
               rdma_ops_per_msg=round(fenced_ops, 2),
               extra_us=round(fenced - plain, 2),
               paper_extra_us=PAPER_EXTRA_US)
    result.note("paper: the barrier adds ~5us per message and disables "
                "metadata/data coalescing")
    return result
