"""E16 — goodput and p99 latency under escalating fault schedules.

An extension beyond the paper's tables, exercising the §5.1 error
model end to end: the same closed-loop drive runs against Lynx on the
Bluefield and against the host-centric baseline while a deterministic
fault schedule escalates across four levels —

* ``none``            — clean run (the control row);
* ``loss``            — packet-loss and corruption bursts on the
                        server's wire link;
* ``loss+stall``      — plus an RX-ring stall, an SNIC dispatcher/
                        forwarder pause, and an SNIC restart that
                        flushes the NIC RX ring;
* ``loss+stall+outage`` — plus an accelerator crash with a restart:
                        Lynx drains the mqueues, sheds with
                        ``ERR_UNAVAILABLE`` error responses while the
                        accelerator is dark, and the client's
                        retry-with-backoff recovers the load.

Clients retry failed attempts (timeout or error response) with
exponential backoff and RNG-drawn jitter, so each row also reports the
recovery traffic: retries, shed errors, timeouts, and the injector's
``faults.injected/dropped/recovered`` totals.  Every fault decision
draws from named RNG streams and every window rides the event kernel,
so a fixed seed reproduces each row bit-identically — serial or
fanned across sweep workers.
"""

from .. import telemetry
from ..apps.base import SpinApp
from ..faults import (
    AcceleratorOutage,
    FaultInjector,
    FaultSchedule,
    LinkCorruption,
    LinkLoss,
    RxRingStall,
    SnicPause,
    SnicRestart,
)
from ..net import ClosedLoopGenerator
from ..net.packet import UDP
from .base import ExperimentResult, krps
from .common import HOST_CENTRIC, LYNX_BLUEFIELD, LYNX_XEON_6, deploy
from .sweep import Point, run_points

#: escalation levels, in presentation order
LEVELS = ("none", "loss", "loss+stall", "loss+stall+outage")

MESSAGE_BYTES = 64
KERNEL_US = 100.0
N_MQUEUES = 4
CONCURRENCY = 4
TIMEOUT_US = 2500.0
RETRIES = 3
RETRY_BACKOFF_US = 400.0


def _schedule_for(level, ip, t0, span):
    """The fault windows of one escalation level, laid inside the
    measurement window [t0, t0 + span) so every row measures the same
    mix of faulted and fault-free time."""
    specs = []
    if "loss" in level:
        specs.append(LinkLoss(ip, start=t0 + 0.10 * span,
                              duration=0.20 * span, probability=0.10))
        specs.append(LinkCorruption(ip, start=t0 + 0.32 * span,
                                    duration=0.10 * span, probability=0.08))
    if "stall" in level:
        specs.append(RxRingStall(ip, start=t0 + 0.48 * span,
                                 duration=1200.0))
        specs.append(SnicPause(start=t0 + 0.58 * span, duration=1000.0))
        specs.append(SnicRestart(start=t0 + 0.66 * span, duration=800.0))
    if "outage" in level:
        specs.append(AcceleratorOutage(start=t0 + 0.78 * span,
                                       duration=0.12 * span, mode="crash"))
    return FaultSchedule(specs)


def measure_faulted(design, level, measure, warmup, seed):
    """One point: deploy *design*, arm *level*'s schedule, drive it."""
    dep = deploy(design, app=SpinApp(KERNEL_US), n_mqueues=N_MQUEUES,
                 proto=UDP, seed=seed)
    t0 = dep.env.now + warmup
    schedule = _schedule_for(level, dep.address.ip, t0, measure)
    injector = FaultInjector(schedule).arm(dep)
    reg = telemetry.registry()
    client = dep.tb.client("10.0.9.1")
    gen = ClosedLoopGenerator(dep.env, client, dep.address, CONCURRENCY,
                              lambda i: b"x" * MESSAGE_BYTES, proto=UDP,
                              timeout=TIMEOUT_US, retries=RETRIES,
                              retry_backoff=RETRY_BACKOFF_US)
    responses = reg.get("net.client.%s.responses" % client.ip)
    latency = reg.get("net.client.%s.latency" % client.ip)
    dep.tb.warmup_then_measure([responses, latency], warmup, measure)
    return {
        "goodput": responses.per_sec(),
        "p99": latency.percentile(99) if latency.count else 0.0,
        "retries": client.retries,
        "timeouts": gen.timeouts,
        "errors": gen.errors,
        "shed": getattr(dep.server, "shed", 0),
        "injected": injector.total("injected"),
        "lost": injector.total("dropped"),
        "recovered": injector.total("recovered"),
    }


def sweep_points(fast=True, seed=42, measure=None):
    """One point per (design, escalation level)."""
    designs = ((HOST_CENTRIC, LYNX_BLUEFIELD) if fast
               else (HOST_CENTRIC, LYNX_XEON_6, LYNX_BLUEFIELD))
    if measure is None:
        measure = 30000.0 if fast else 60000.0
    warmup = 15000.0 if fast else 20000.0
    points = []
    for design in designs:
        for level in LEVELS:
            points.append(Point(
                ("E16", design, level), measure_faulted,
                dict(design=design, level=level, measure=measure,
                     warmup=warmup),
                root_seed=seed))
    return points, designs


def run(fast=True, seed=42, measure=None, jobs=None):
    """Run this experiment; see the module docstring for the context."""
    result = ExperimentResult(
        "E16", "goodput and p99 latency under escalating fault schedules",
        "extension (§5.1 error model)")
    points, designs = sweep_points(fast, seed, measure=measure)
    values = dict(zip((p.key for p in points), run_points(points, jobs=jobs)))
    for design in designs:
        for level in LEVELS:
            v = values[("E16", design, level)]
            result.add(design=design, level=level,
                       goodput_krps=krps(v["goodput"]),
                       p99_us=round(v["p99"], 1),
                       retries=v["retries"], timeouts=v["timeouts"],
                       errors=v["errors"], shed=v["shed"],
                       injected=v["injected"], lost=v["lost"],
                       recovered=v["recovered"])
    result.note("while the accelerator is dark, Lynx sheds with "
                "ERR_UNAVAILABLE error responses instead of parking "
                "requests; client retry-with-backoff recovers goodput "
                "once each fault window clears")
    result.note("fixed seed => identical rows for --jobs 1 and --jobs 4; "
                "E01-E15 are bit-identical with this layer present but "
                "unarmed")
    return result
