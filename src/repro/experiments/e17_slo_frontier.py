"""E17 — SLO frontier: sustainable throughput at a latency target.

An extension beyond the paper's tables, motivated by λ-NIC's
interactive-serverless framing (PAPERS.md): instead of latency curves
over fixed rate grids, report the *highest offered load whose p99 stays
under an SLO* — the number a capacity planner actually provisions to.
Each point drives a server design with the flyweight population plane
(``repro.net.population``: aggregate Poisson arrivals, Zipf keys,
struct-of-arrays in-flight tracking) and bisects offered λ with
:func:`repro.experiments.slo.find_sustainable_load`.

Workloads × designs:

* ``memcached`` — the §6.4/Fig 9 placement question restated as a
  frontier: the same ``MemcachedServer`` on two host Xeon cores
  (``host-centric``) vs on the Bluefield's ARM cores
  (``lynx-bluefield``).  The paper's numbers say Xeon sustains its
  ~250 Ktps/core at ~15us p99 while Bluefield's extra throughput only
  exists past a ~160us tail — so under a tight SLO the Xeon placement
  wins, which is exactly what the sustainable-rate column shows.
* ``lenet`` — the §6.3/Fig 8a GPU inference service behind the full
  Lynx stack vs the host-centric baseline: Lynx's sustainable rate at
  the SLO lands above the baseline's, mirroring the paper's 3.5 vs
  2.8 Kreq/s saturation gap.

Determinism: a whole bisection is one sweep point; every trial inside
it derives its seed from the point seed and trial index, all arrival
generation rides named numpy streams, and the population plane is
bit-identical across scheduler backends — so rows are bit-identical
across ``--jobs 1/N`` and ``--sim-backend heap/wheel`` at a fixed
seed (pinned by ``tests/experiments/test_e17_slo.py``).
"""

from ..apps.lenet import LeNetApp, MnistStream
from ..apps.memcached import MemcachedServer, encode_get, encode_set
from ..config import XEON_VMA
from ..errors import ConfigError
from ..net import Address, ClientPopulation, Flow, PayloadPool, \
    arrival_factory
from .base import ExperimentResult
from .common import HOST_CENTRIC, LYNX_BLUEFIELD, deploy
from .slo import find_sustainable_load
from .sweep import Point, derive_seed, run_points
from .testbed import Testbed

WORKLOADS = ("memcached", "lenet")
DESIGNS = (HOST_CENTRIC, LYNX_BLUEFIELD)

#: p99 targets (us): memcached is an in-memory tier (tens of us);
#: LeNet tolerates queueing on top of its ~300us service time
SLO_US = {"memcached": 50.0, "lenet": 4000.0}
#: bisection brackets (requests/us) spanning each workload's knee
BRACKET = {"memcached": (0.05, 0.8), "lenet": (0.001, 0.005)}
#: request deadline per workload (us): bounds the in-flight table and
#: declares deeply-queued requests lost
TIMEOUT_US = {"memcached": 2000.0, "lenet": 20000.0}

#: per-workload (warmup_us, measure_us) windows: LeNet arrives ~100x
#: slower than memcached, so its windows must be ~100x longer to catch
#: a comparable sample count at the knee
WINDOWS_FAST = {"memcached": (10000.0, 30000.0),
                "lenet": (40000.0, 120000.0)}
WINDOWS_FULL = {"memcached": (20000.0, 80000.0),
                "lenet": (60000.0, 300000.0)}

MC_HOST_CORES = 2
MC_KEYS = 64
MC_VALUE_BYTES = 32
MC_ZIPF_SKEW = 0.99
LENET_IMAGES = 16
GOODPUT_FLOOR = 0.98


def _drive(pop, tb, warmup, measure):
    """Warmup/measure one population; the SLO driver's trial dict."""
    tb.warmup_then_measure([pop], warmup, measure)
    pop.flush()
    return {
        "p_tail_us": pop.percentile(99),
        "offered_per_sec": pop.offered_per_sec(),
        "delivered_per_sec": pop.delivered_per_sec(),
    }


def _memcached_trial(design, arrivals, rate, seed, warmup, measure):
    """One memcached probe: GET traffic with Zipf-hot keys."""
    tb = Testbed(seed=seed)
    env = tb.env
    if design == HOST_CENTRIC:
        host = tb.machine("10.0.0.1")
        server = MemcachedServer(env, host.nic,
                                 host.pool(count=MC_HOST_CORES, name="mc"),
                                 XEON_VMA)
        address = Address("10.0.0.1", 11211)
    elif design == LYNX_BLUEFIELD:
        snic = tb.bluefield("10.0.0.100")
        server = MemcachedServer(env, snic.nic, snic.workers,
                                 snic.profile.stack)
        address = Address("10.0.0.100", 11211)
    else:
        raise ConfigError("unknown memcached placement %r" % (design,))
    for i in range(MC_KEYS):
        server.store.execute(encode_set(b"key-%d" % i, b"v" * MC_VALUE_BYTES))
    gets = [encode_get(b"key-%d" % i) for i in range(MC_KEYS)]
    pool = PayloadPool.zipf(gets, tb.rng.stream("population.keys"),
                            skew=MC_ZIPF_SKEW)
    source = arrival_factory(arrivals)(rate, tb.rng.stream("population"))
    pop = ClientPopulation(env, tb.network, "10.0.9.1", address,
                           [Flow("memcached", source, pool)],
                           timeout=TIMEOUT_US["memcached"])
    return _drive(pop, tb, warmup, measure)


def _lenet_trial(design, arrivals, rate, seed, warmup, measure):
    """One LeNet probe: MNIST tensors through the GPU service."""
    dep = deploy(design, app=LeNetApp(compute_for_real=False), n_mqueues=1,
                 seed=seed)
    tb = dep.tb
    mnist = MnistStream(seed=seed)
    images = [mnist.sample(i)[0] for i in range(LENET_IMAGES)]
    pool = PayloadPool.uniform(images, tb.rng.stream("population.keys"))
    source = arrival_factory(arrivals)(rate, tb.rng.stream("population"))
    pop = ClientPopulation(dep.env, tb.network, "10.0.9.1", dep.address,
                           [Flow("lenet", source, pool)],
                           timeout=TIMEOUT_US["lenet"])
    return _drive(pop, tb, warmup, measure)


TRIALS = {"memcached": _memcached_trial, "lenet": _lenet_trial}


def measure_frontier(workload, design, seed, warmup, measure, iters,
                     arrivals="poisson", slo_us=None, lo=None, hi=None):
    """One sweep point: the full bisection for (workload, design)."""
    trial_fn = TRIALS[workload]
    if slo_us is None:
        slo_us = SLO_US[workload]
    blo, bhi = BRACKET[workload]
    lo = blo if lo is None else lo
    hi = bhi if hi is None else hi

    def trial(rate, trial_seed):
        return trial_fn(design, arrivals, rate, trial_seed, warmup, measure)

    found = find_sustainable_load(trial, lo, hi, slo_us,
                                  goodput_floor=GOODPUT_FLOOR, iters=iters,
                                  seed=seed)
    widened = False
    if found.bracket_saturated:
        # The whole bracket sustained: the knee lies above hi.  Widen
        # once — re-search [hi, 4*hi] — so the reported rate is a real
        # knee, not an artifact of a too-narrow bracket.
        widened = True
        found = find_sustainable_load(
            trial, hi, 4.0 * hi, slo_us, goodput_floor=GOODPUT_FLOOR,
            iters=iters, seed=derive_seed(seed, "slo-widen"))
    knee = found.knee
    return {
        "sustainable_per_sec": found.per_sec,
        "slo_us": slo_us,
        "p99_at_knee_us": knee.p_tail if knee is not None else None,
        "goodput_at_knee": knee.goodput_ratio if knee is not None else None,
        "bracket_saturated": found.bracket_saturated,
        "bracket_widened": widened,
        "trials": [t.as_dict() for t in found.trials],
    }


def sweep_points(fast=True, seed=42, measure=None, iters=None,
                 arrivals="poisson"):
    """One point per (workload, design) — a point is a whole bisection.

    ``measure``, when given, overrides every workload's measure window
    (tests use tiny windows); the paired warmup scales down with it.
    """
    windows = WINDOWS_FAST if fast else WINDOWS_FULL
    if iters is None:
        iters = 5 if fast else 7
    points = []
    for workload in WORKLOADS:
        warmup, meas = windows[workload]
        if measure is not None:
            meas = measure
            warmup = min(warmup, measure / 2.0)
        for design in DESIGNS:
            points.append(Point(
                ("E17", workload, design), measure_frontier,
                dict(workload=workload, design=design, warmup=warmup,
                     measure=meas, iters=iters, arrivals=arrivals),
                root_seed=seed))
    return points


def run(fast=True, seed=42, measure=None, iters=None, arrivals="poisson",
        jobs=None):
    """Run this experiment; see the module docstring for the context."""
    result = ExperimentResult(
        "E17", "SLO frontier: sustainable throughput at a p99 target",
        "extension (population traffic plane)")
    points = sweep_points(fast, seed, measure=measure, iters=iters,
                          arrivals=arrivals)
    values = dict(zip((p.key for p in points), run_points(points, jobs=jobs)))
    for workload in WORKLOADS:
        for design in DESIGNS:
            v = values[("E17", workload, design)]
            knee_p99 = v["p99_at_knee_us"]
            goodput = v["goodput_at_knee"]
            result.add(workload=workload, design=design,
                       slo_p99_us=v["slo_us"],
                       sustainable_krps=round(
                           v["sustainable_per_sec"] / 1000.0, 2),
                       p99_at_knee_us=(round(knee_p99, 1)
                                       if knee_p99 is not None else None),
                       goodput_at_knee=(round(goodput, 3)
                                        if goodput is not None else None),
                       arrivals=arrivals,
                       trials=len(v["trials"]))
    result.note("sustainable = highest offered rate with p99 <= SLO and "
                "delivered/offered >= %.2f (drop-tail RX rings keep p99 "
                "low past saturation; the goodput floor catches it)"
                % GOODPUT_FLOOR)
    result.note("driven by the flyweight population plane "
                "(repro.net.population): aggregate arrivals, Zipf keys, "
                "struct-of-arrays in-flight tracking; rows bit-identical "
                "across --jobs 1/N and heap/wheel backends at a fixed seed")
    return result
