"""E18 — multi-rack cluster scale-out behind a SmartNIC L4 VIP.

An extension beyond the paper's single-server tables, following the
Lovelock/E-cube line of work (PAPERS.md): if a SmartNIC can own one
server's network control loop, it can own a *cluster's* — hosting the
L4 load balancer that steers a sharded, replicated memcached tier
spread across racks (DESIGN.md §4.15).  The deployment:

* a :class:`~repro.net.network.MultiRackNetwork` with two ToRs behind
  a spine; every cross-rack frame rides two extra spine hops;
* ``nodes`` single-core memcached replicas placed round-robin across
  the racks, sharded by a :class:`~repro.net.cluster.ConsistentHashRing`
  with 2-way replication — per-request service cost scales with the
  value size, and every 4th key (including the Zipf-hottest) carries
  an 8x value, so replica queues are genuinely heterogeneous;
* an :class:`~repro.net.cluster.L4LoadBalancer` VIP on the rack-0
  SmartNIC steering each key within its replica set by one of three
  policies (``round_robin`` / ``least_loaded`` / ``p2c``); replies
  return direct-server-return, bypassing the VIP;
* one flyweight :class:`~repro.net.population.ClientPopulation` per
  ToR port (DESIGN.md §4.13) driving Zipf-keyed GET traffic at the VIP.

The campaign's three knobs ask the three scale-out questions:

* ``policy`` — under skewed keys and heterogeneous service times,
  queue-aware steering (p2c, least-loaded) must beat depth-blind
  round-robin on p99 at the full replica count;
* ``nodes`` — goodput and p99 versus cluster size at fixed offered
  load (2 replicas saturate; 8 ride well under the knee);
* ``failover`` — a :class:`~repro.faults.RackFailure` kills rack 1
  mid-measurement: the ring rehomes its shards to live successors, the
  VIP's health checks steer around the dead replicas, and the
  per-bucket goodput timeline shows the dip and the recovery.

Determinism: arrivals, Zipf draws, and p2c candidate picks all ride
named RNG streams; the failover window and the timeline sampler ride
``env.defer`` — rows are bit-identical across ``--jobs 1/N`` and
heap/wheel backends at a fixed seed (pinned by
``tests/experiments/test_e18_cluster.py``).
"""

from ..apps.memcached import MemcachedServer, encode_get
from ..config import XEON_VMA
from ..faults import FaultInjector, FaultSchedule, RackFailure
from ..net import Address, ClientPopulation, ConsistentHashRing, Flow, \
    L4LoadBalancer, PayloadPool, arrival_factory, shard_preload
from ..telemetry.instruments import LogHistogram
from .base import krps
from .campaign import Campaign, Component, Knob

RACKS = 2
VIP = "10.0.0.100"
PORT = 11211

KEYS = 128
VALUE_BYTES = 32
#: every HEAVY_EVERY-th key (key 0 included — the Zipf-hottest) holds
#: an 8x value, making per-request service cost genuinely skewed
HEAVY_EVERY = 4
HEAVY_SCALE = 8
ZIPF_SKEW = 0.99
REPLICATION = 2

#: offered load across both ToR ports (requests/us); sized so the
#: 8-replica baseline runs hot (queue-depth differences matter to the
#: tail) while staying under its knee
TOTAL_RATE = 0.40
TIMEOUT_US = 4000.0
#: fixed-width goodput buckets sampled over the measure window
TIMELINE_BUCKETS = 10
#: the rack-1 outage, as fractions of the measure window
FAIL_AT, FAIL_FOR = 0.40, 0.30


def _key(i):
    return b"user-%03d" % i


def _value(i):
    scale = HEAVY_SCALE if i % HEAVY_EVERY == 0 else 1
    return b"v" * (VALUE_BYTES * scale)


def _op_cost(msg, result):
    """Per-request service cost (us): base dict op plus value movement.

    GETs return the value, so heavy keys cost ~5x a light one — the
    heterogeneity that separates queue-aware steering from round-robin.
    """
    return 1.5 + 0.04 * len(result)


class _GoodputTimeline:
    """Deterministic per-bucket goodput sampler (failover timeline).

    Rides recursive ``env.defer`` at fixed sim-time boundaries — never
    wall clock — so the timeline is bit-identical across backends and
    job counts.  Each sample is the response count landed in one
    bucket, across every population.
    """

    __slots__ = ("env", "pops", "bucket_us", "left", "samples", "_last")

    def __init__(self, env, pops, bucket_us, buckets):
        self.env = env
        self.pops = pops
        self.bucket_us = bucket_us
        self.left = buckets
        self.samples = []
        self._last = 0

    def _total(self):
        total = 0
        for pop in self.pops:
            pop.flush()
            total += pop.responses.count
        return total

    def start(self):
        """Begin sampling (call at the measurement-window start)."""
        self._last = self._total()
        self.env.defer(self.bucket_us, self._tick)

    def _tick(self, _event):
        total = self._total()
        self.samples.append(total - self._last)
        self._last = total
        self.left -= 1
        if self.left > 0:
            self.env.defer(self.bucket_us, self._tick)

    def finish(self):
        """Flush the final bucket: its boundary tick lands exactly at
        the run's ``until`` and the kernel stops before processing it,
        so the tail sample is taken here (same instant, same state)."""
        if self.left > 0:
            self._tick(None)

    def krps(self):
        """Per-bucket goodput in Kreq/s."""
        return [round(n / self.bucket_us * 1e3, 1) for n in self.samples]


def cluster_scenario(policy, nodes, failover, warmup, measure, seed=42,
                     rate=TOTAL_RATE):
    """One grid point: a full cluster deployment, driven and measured."""
    from .testbed import Testbed

    tb = Testbed(seed=seed, racks=RACKS)
    env = tb.env
    net = tb.network
    net.place(VIP, 0)

    # Replicas, round-robin across racks, one Xeon core each.
    backends = []
    for i in range(nodes):
        rack = i % RACKS
        ip = "10.0.%d.%d" % (rack, 10 + i)
        net.place(ip, rack)
        machine = tb.machine(ip)
        server = MemcachedServer(env, machine.nic,
                                 machine.pool(count=1, name="mc%d" % i),
                                 XEON_VMA, op_cost_fn=_op_cost)
        backends.append((ip, machine, server))

    # Consistent-hash sharding with 2-way replication; the preload puts
    # each key on exactly its ring owners.
    ring = ConsistentHashRing([ip for ip, _, _ in backends])
    items = [(_key(i), _value(i)) for i in range(KEYS)]
    shard_preload(ring, {ip: server.store for ip, _, server in backends},
                  items, replication=REPLICATION)

    lb = L4LoadBalancer(env, net, VIP, port=PORT, policy=policy,
                        rng=tb.rng, ring=ring, replication=REPLICATION)
    for ip, machine, _server in backends:
        # Steering signal: the replica's NIC RX-ring occupancy.
        lb.add_backend(Address(ip, PORT),
                       depth=lambda rx=machine.nic.rx: len(rx._items))

    # One flyweight population per ToR port, each carrying half the
    # offered load at the VIP with Zipf-hot keys.
    gets = [encode_get(_key(i)) for i in range(KEYS)]
    vip_addr = Address(VIP, PORT)
    pops = []
    for rack in range(RACKS):
        ip = "10.0.%d.200" % rack
        net.place(ip, rack)
        pool = PayloadPool.zipf(
            gets, tb.rng.stream("population.keys.r%d" % rack),
            skew=ZIPF_SKEW)
        source = arrival_factory("poisson")(
            rate / RACKS, tb.rng.stream("population.r%d" % rack))
        pops.append(ClientPopulation(env, net, ip, vip_addr,
                                     [Flow("kv", source, pool)],
                                     timeout=TIMEOUT_US))

    injector = None
    if failover:
        t0 = env.now + warmup
        schedule = FaultSchedule([
            RackFailure(rack=1, start=t0 + FAIL_AT * measure,
                        duration=FAIL_FOR * measure)])
        injector = FaultInjector(schedule).arm(env=env, network=net,
                                               rng=tb.rng)

    timeline = _GoodputTimeline(env, pops, measure / TIMELINE_BUCKETS,
                                TIMELINE_BUCKETS)
    env.run(until=env.now + warmup)
    for pop in pops:
        pop.reset()
    timeline.start()
    env.run(until=env.now + measure)
    timeline.finish()
    for pop in pops:
        pop.flush()

    latency = LogHistogram()
    for pop in pops:
        latency.merge(pop.latency.snapshot())
    hits = sum(server.store.hits for _, _, server in backends)
    misses = sum(server.store.misses for _, _, server in backends)
    return {
        "offered_per_sec": sum(p.offered_per_sec() for p in pops),
        "goodput_per_sec": sum(p.delivered_per_sec() for p in pops),
        "p99_us": latency.p99(),
        "p50_us": latency.percentile(50),
        "timeouts": sum(p.timeouts for p in pops),
        "steered": lb.backend_counts(),
        "unrouted": lb.unrouted,
        "rack_down_drops": net.dropped_rack_down,
        "spine_drops": sum(hop.dropped for hop in
                           net._uplinks + net._downlinks),
        "miss_rate": misses / max(1, hits + misses),
        "timeline_krps": timeline.krps(),
        "faults_injected": injector.total("injected") if injector else 0,
        "faults_recovered": injector.total("recovered") if injector else 0,
    }


def _row(ctx, variant, value):
    a = variant.assignment
    return dict(
        variant=str(variant.token),
        policy=a["policy"], nodes=a["nodes"],
        failover="rack-1-outage" if a["failover"] else "none",
        goodput_krps=krps(value["goodput_per_sec"]),
        p99_us=round(value["p99_us"], 1),
        timeouts=value["timeouts"],
        miss_rate=round(value["miss_rate"], 3),
        rack_down_drops=value["rack_down_drops"],
        spine_drops=value["spine_drops"])


def _finish(ctx, result):
    base = ctx.baseline_value
    rr = ctx.value("policy=round_robin")
    result.note("steering at 8 replicas under Zipf(%.2f) keys: p2c p99 "
                "%.1fus vs round-robin %.1fus — two depth probes beat a "
                "depth-blind rotation when hot keys cost 5x"
                % (ZIPF_SKEW, base["p99_us"], rr["p99_us"]))
    fo = ctx.value("failover=True")
    result.note("rack-1 outage (%.0f%%..%.0f%% of the window): goodput "
                "timeline Kreq/s per bucket = %s; ring rehoming + VIP "
                "health checks recover the surviving rack's capacity, "
                "%d frames dropped rack-down"
                % (100 * FAIL_AT, 100 * (FAIL_AT + FAIL_FOR),
                   fo["timeline_krps"], fo["rack_down_drops"]))


CAMPAIGN = Campaign(
    "E18", "multi-rack cluster scale-out behind a SmartNIC L4 VIP",
    "extension (DESIGN.md §4.15)",
    scenario=cluster_scenario,
    slug="cluster_scaleout_study",
    summary="goodput/p99 vs replica count, steering policy, and a "
            "rack failure on the multi-rack fabric",
    components=[
        Component(
            "steering",
            [Knob("policy", values=("p2c", "round_robin", "least_loaded"),
                  baseline="p2c", kwarg="policy",
                  doc="how the VIP picks within a key's replica set")],
            doc="the SmartNIC L4 datapath's replica-selection policy"),
        Component(
            "scale",
            [Knob("nodes", values=(8, 4, 2), baseline=8, kwarg="nodes",
                  doc="memcached replicas, round-robin across racks")],
            doc="cluster size at fixed offered load"),
        Component(
            "fault-domain",
            [Knob("failover", values=(False, True), baseline=False,
                  kwarg="failover",
                  doc="kill rack 1 for 30%% of the measure window")],
            doc="racks are fault domains; the ring and the VIP's "
                "health checks recover the surviving capacity"),
    ],
    settings=lambda fast: dict(warmup=4000.0 if fast else 10000.0,
                               measure=20000.0 if fast else 60000.0),
    row=_row,
    metric="goodput_krps",
    notes=("replies return direct-server-return: the VIP rewrites the "
           "request's destination, the replica answers the client "
           "straight through the fabric",),
    finish=_finish,
)


def run(fast=True, seed=42, jobs=None):
    """Run this experiment; see the module docstring for the context."""
    return CAMPAIGN(fast=fast, seed=seed, jobs=jobs)
