"""Sustainable-throughput-at-SLO search (DESIGN.md §4.13).

λ-NIC's interactive-serverless framing motivates reporting the *SLO
frontier* — the highest offered load whose tail latency stays under a
target — instead of latency curves over fixed rate grids.
:func:`find_sustainable_load` bisects offered λ over a bracket,
running one independent trial per probe, and returns the highest rate
that met the SLO.

A rate is *sustainable* when both hold:

* the tail latency (``percentile``, default p99) is ≤ ``slo_us``;
* delivered/offered goodput is ≥ ``goodput_floor``.

The goodput guard matters because the RX rings are drop-tail: past
saturation a server can keep serving the requests it *admits* at low
latency while silently dropping the rest, so p99 alone would declare
overload "sustainable".

Determinism: the bisection runs a fixed number of iterations over
fixed float arithmetic, and every trial derives its seed from the
caller's seed and the trial index via the sweep executor's blake2s
derivation — the whole search is one deterministic unit of work, so an
E17 point is bit-identical across ``--jobs 1/N`` and heap/wheel
backends.
"""

import math

from ..errors import ConfigError
from .sweep import derive_seed


class TrialResult:
    """One probe of the bisection: offered rate and what it measured."""

    __slots__ = ("rate", "p_tail", "offered_per_sec", "delivered_per_sec",
                 "ok", "seed")

    def __init__(self, rate, p_tail, offered_per_sec, delivered_per_sec,
                 ok, seed):
        self.rate = rate
        self.p_tail = p_tail
        self.offered_per_sec = offered_per_sec
        self.delivered_per_sec = delivered_per_sec
        self.ok = ok
        self.seed = seed

    @property
    def goodput_ratio(self):
        if self.offered_per_sec <= 0:
            return 0.0
        return self.delivered_per_sec / self.offered_per_sec

    def as_dict(self):
        return {"rate_per_us": self.rate, "p_tail_us": self.p_tail,
                "offered_per_sec": self.offered_per_sec,
                "delivered_per_sec": self.delivered_per_sec,
                "goodput_ratio": self.goodput_ratio,
                "ok": self.ok, "seed": self.seed}


class SustainableLoad:
    """The outcome of one :func:`find_sustainable_load` search."""

    __slots__ = ("rate", "knee", "trials", "slo_us", "percentile",
                 "bracket_saturated")

    def __init__(self, rate, knee, trials, slo_us, percentile,
                 bracket_saturated=False):
        #: highest sustainable offered rate (requests/us); 0.0 when
        #: even the bracket's low end violated the SLO
        self.rate = rate
        #: the :class:`TrialResult` of the best sustainable probe
        #: (None when nothing sustained)
        self.knee = knee
        self.trials = trials
        self.slo_us = slo_us
        self.percentile = percentile
        #: True when the whole bracket sustained the SLO — ``rate`` is
        #: then only a lower bound and the caller should widen the
        #: bracket and re-search
        self.bracket_saturated = bracket_saturated

    @property
    def per_sec(self):
        return self.rate * 1e6

    def render_trials(self):
        lines = ["%10s  %10s  %10s  %8s  %s"
                 % ("rate/us", "offered/s", "delivered/s",
                    "p%g us" % self.percentile, "ok")]
        for t in self.trials:
            lines.append("%10.4f  %10.0f  %10.0f  %8.1f  %s"
                         % (t.rate, t.offered_per_sec, t.delivered_per_sec,
                            t.p_tail, "yes" if t.ok else "NO"))
        return "\n".join(lines)


def find_sustainable_load(trial, lo, hi, slo_us, percentile=99.0,
                          goodput_floor=0.98, iters=7, seed=42):
    """Bisect offered λ to the highest rate meeting the SLO.

    ``trial(rate_per_us, seed)`` runs one independent measurement and
    returns a dict with ``p_tail_us`` (latency at *percentile*),
    ``offered_per_sec``, and ``delivered_per_sec``.  The bracket ends
    are probed first (so the returned trial list documents both
    extremes), then *iters* bisection probes narrow the knee; the
    returned rate carries ~``(hi-lo)/2**iters`` resolution.  When even
    ``hi`` sustains, the result's ``bracket_saturated`` flag is set and
    ``rate`` is only a lower bound — widen the bracket and re-search.
    """
    if lo <= 0 or hi <= lo:
        raise ConfigError("bisection bracket must satisfy 0 < lo < hi")
    trials = []

    def probe(rate, index):
        trial_seed = derive_seed(seed, ("slo-trial", index))
        m = trial(rate, trial_seed)
        p_tail = m["p_tail_us"]
        offered = m["offered_per_sec"]
        delivered = m["delivered_per_sec"]
        ok = (not math.isnan(p_tail) and p_tail <= slo_us
              and offered > 0 and delivered / offered >= goodput_floor)
        result = TrialResult(rate, p_tail, offered, delivered, ok,
                             trial_seed)
        trials.append(result)
        return result

    best = None
    low = probe(lo, 0)
    high = probe(hi, 1)
    if low.ok:
        best = low
    if high.ok:
        # The whole bracket sustains: report the top end as a lower
        # bound and flag it so callers can widen the bracket.
        return SustainableLoad(hi, high, trials, slo_us, percentile,
                               bracket_saturated=True)
    if not low.ok:
        # Even the low end violates the SLO: nothing sustainable here.
        return SustainableLoad(0.0, None, trials, slo_us, percentile)
    for i in range(iters):
        mid = 0.5 * (lo + hi)
        result = probe(mid, 2 + i)
        if result.ok:
            best = result
            lo = mid
        else:
            hi = mid
    return SustainableLoad(best.rate, best, trials, slo_us, percentile)
