"""Parallel sweep executor: fan independent simulation points across
worker processes with bit-identical results (DESIGN.md §4.8).

Every Lynx figure is a grid of *independent* simulations — each point
owns its own :class:`~repro.experiments.testbed.Testbed`, RNG registry,
and event kernel.  Experiments declare their grids as lists of
self-describing :class:`Point` specs and hand them to
:func:`run_points`, which runs them either serially (the default) or
fanned across a ``multiprocessing`` pool, reassembling results in
declaration order.  Because each point is a closed simulation seeded
only by its own derived seed, serial and parallel executions produce
**bit-identical** values for a fixed root seed.

The worker count comes from, in priority order: the ``jobs=`` argument,
:func:`configure` (installed by the CLI's ``--jobs`` or the benchmark
suite's ``--jobs`` pytest option), and the ``REPRO_JOBS`` environment
variable.  The default is 1, so existing callers are untouched.
:func:`run_points` additionally clamps the request to
:func:`usable_cores` — forking four workers on a one-core runner is a
pure pessimization (observed 0.87x "speedup"), so a clamp to 1 runs
inline and never forks a pool.  Clamping changes only wall-clock,
never values: results are bit-identical at any worker count.

Telemetry (DESIGN.md §4.9): every point — inline or in a worker — runs
inside its own registry scope; when it finishes, its full snapshot is
merged into the parent registry **in declaration order**.  Serial and
parallel runs therefore perform the *same* merge arithmetic in the same
order, so merged metrics (``--kernel-stats``, ``--metrics``) are
identical across ``--jobs N`` — wall-clock seconds excepted, as those
measure the host, not the model.

Worker-side state handling:

* each worker scrubs the tracer registry and the inherited telemetry
  scopes before running a point, so nothing inherited from the parent
  (under the ``fork`` start method) leaks into snapshots;
* the parent's active config override (``--batch-size`` and friends,
  see :func:`~repro.experiments.testbed.set_active_config`) is shipped
  to workers through the pool initializer, so points behave the same in
  or out of process;
* each point result travels back with the point's registry snapshot,
  which the parent merges — there is no kernel-totals special case;
  ``sim.kernel.*`` rides along with every other instrument.

Tracing (``--trace-channel``) records live in worker memory and are not
shipped back; the CLI forces serial execution when tracing is enabled.
"""

import hashlib
import os

from ..errors import ConfigError
from .. import telemetry
from ..sim import environment as env_mod
from ..sim import trace as trace_mod
from . import testbed as testbed_mod

#: seeds stay below 2**31 so every consumer (numpy generators, the
#: RngRegistry's stream derivation, struct-packed seeds) accepts them
SEED_SPACE = 2 ** 31

#: worker count installed by :func:`configure`; ``None`` defers to the
#: ``REPRO_JOBS`` environment variable, then the serial default.
_active_jobs = None


def configure(jobs):
    """Install the process-wide worker count (``None`` resets)."""
    global _active_jobs
    if jobs is not None and jobs < 1:
        raise ConfigError("jobs must be >= 1, got %r" % (jobs,))
    _active_jobs = jobs


def active_jobs():
    """The effective worker count for sweeps run without ``jobs=``."""
    if _active_jobs is not None:
        return _active_jobs
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return 1


def usable_cores():
    """CPU cores actually available to this process.

    Prefers the scheduler affinity mask (cgroup/taskset-aware — CI
    runners often expose fewer cores than ``os.cpu_count`` reports) and
    falls back to the raw core count.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def derive_seed(root_seed, key):
    """Deterministic per-point seed from the root seed and point key.

    Hash-based (not ``hash()``, which is salted per process) so the
    same (root seed, key) pair maps to the same seed in every process,
    python version, and platform — the property the bit-identical
    serial-vs-parallel guarantee rests on.  Keys are canonicalized via
    ``repr``, so use tuples of strings/numbers.
    """
    text = "%r|%r" % (root_seed, key)
    digest = hashlib.blake2s(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") % SEED_SPACE


class Point:
    """One independent simulation in an experiment grid.

    A picklable spec: *builder* is a module-level callable, *kwargs*
    its keyword arguments, and ``seed`` the per-point seed derived from
    the experiment's root seed and the point *key* (unless given
    explicitly).  The executor invokes ``builder(seed=point.seed,
    **kwargs)`` — builders must accept a ``seed`` keyword.
    """

    __slots__ = ("key", "builder", "kwargs", "seed")

    def __init__(self, key, builder, kwargs=None, root_seed=42, seed=None):
        self.key = key
        self.builder = builder
        self.kwargs = dict(kwargs or {})
        if "seed" in self.kwargs:
            raise ConfigError("pass the root seed via root_seed=, not "
                              "kwargs['seed'] — the executor injects the "
                              "derived per-point seed")
        self.seed = derive_seed(root_seed, key) if seed is None else seed

    def __call__(self):
        return self.builder(seed=self.seed, **self.kwargs)

    def __repr__(self):
        return "Point(%r, %s, seed=%d)" % (
            self.key, getattr(self.builder, "__name__", self.builder),
            self.seed)


def run_points(points, jobs=None):
    """Run every point; returns their values in declaration order.

    ``jobs=None`` uses :func:`active_jobs`.  The request is clamped to
    :func:`usable_cores` — extra workers beyond the hardware only add
    fork/pickle overhead.  With one (possibly clamped) job or one
    point the points run inline in this process and no pool is forked;
    otherwise they fan out over a worker pool and the results are
    reassembled in order, so callers cannot observe the difference
    beyond wall-clock.
    """
    points = list(points)
    if jobs is None:
        jobs = active_jobs()
    if jobs < 1:
        raise ConfigError("jobs must be >= 1, got %r" % (jobs,))
    if jobs > 1:
        jobs = min(jobs, usable_cores())
    if jobs == 1 or len(points) <= 1:
        return [_run_point_scoped(point) for point in points]
    return _run_pool(points, min(jobs, len(points)))


def _run_point_scoped(point):
    """Run one point in its own telemetry scope; merge into the parent.

    The inline twin of :func:`_run_point_task`: identical scope
    boundaries and merge arithmetic keep serial and parallel metric
    snapshots bit-identical (DESIGN.md §4.9).
    """
    with telemetry.scope() as reg:
        value = point()
        snapshot = reg.snapshot()
    telemetry.registry().merge(snapshot)
    return value


def _run_pool(points, jobs):
    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context("spawn")
    config = testbed_mod.active_config()
    pool = ctx.Pool(processes=jobs, initializer=_worker_init,
                    initargs=(config, env_mod.active_backend()))
    try:
        # map() preserves input order, which is what makes parallel
        # output indistinguishable from serial output.  Chunked
        # scheduling amortizes the per-task pickling/IPC round-trip;
        # four chunks per worker keeps the tail balanced when point
        # costs vary across the grid.
        chunksize = max(1, len(points) // (jobs * 4))
        outs = pool.map(_run_point_task, points, chunksize)
    finally:
        pool.close()
        pool.join()
    values = []
    parent = telemetry.registry()
    for value, snapshot in outs:
        # Same order, same arithmetic as the serial path above.
        parent.merge(snapshot)
        values.append(value)
    return values


def _worker_init(config, sim_backend):
    """Pool initializer: scrub inherited state, apply the parent's
    active-config override and scheduler backend (no-ops under
    ``fork``, the only way workers learn about them under ``spawn``)."""
    _reset_worker_state()
    testbed_mod.set_active_config(config)
    env_mod.configure_backend(sim_backend)


def _reset_worker_state():
    """Per-worker scrub: tracer registry and inherited telemetry state.

    Dropping the inherited scopes and root instruments matters under
    ``fork``: the parent's registry holds pull instruments closed over
    *its* live testbeds, which must not leak into worker snapshots.
    """
    trace_mod.clear_enabled_tracers()
    telemetry.reset_scopes()


def _run_point_task(point):
    """Worker-side task: run one point, ship (value, registry snapshot)."""
    trace_mod.clear_enabled_tracers()
    with telemetry.scope() as reg:
        value = point()
        snapshot = reg.snapshot()
    return value, snapshot
