"""Testbed factory: assembles the paper's hardware setups (§6).

The evaluation testbed is two client and four server machines (Xeon
E5-2620v2) behind a Mellanox SN2100 switch; one server has a 25Gbps
Bluefield, one a 40Gbps Innova, two have plain ConnectX-4 NICs and host
the remote GPUs.  :class:`Testbed` builds any subset of that on demand.
"""

from .. import units
from ..config import (
    BluefieldProfile,
    DEFAULT_CONFIG,
    InnovaProfile,
    VcaProfile,
    XEON_E5_2620,
    XEON_VMA,
    XEON_KERNEL,
)
from ..errors import ConfigError
from ..hw import BluefieldSNIC, InnovaSNIC, IntelVCA, Machine
from ..lynx import LynxRuntime, LynxServer
from ..net import Client, MultiRackNetwork, Network
from ..sim import RngRegistry, Tracer, make_environment


#: process-wide config override installed by the CLI (see
#: :func:`set_active_config`); ``None`` means DEFAULT_CONFIG.
_active_config = None


def set_active_config(config):
    """Install *config* as the default for testbeds built without one.

    Experiment modules expose only ``run(fast, seed)``, so CLI knobs
    (``--batch-size``, ``--trace-channel``, ...) and benchmarks reach
    their testbeds through this hook.  Pass ``None`` to reset.
    """
    global _active_config
    _active_config = config


def active_config():
    return _active_config


class Testbed:
    """One simulated rack — or, with ``racks=N``, a multi-rack cluster."""

    #: not a pytest test class, despite the name
    __test__ = False

    def __init__(self, config=None, seed=None, racks=None,
                 oversubscription=1.0):
        self.config = config or _active_config or DEFAULT_CONFIG
        if seed is not None:
            self.config = self.config.with_(seed=seed)
        #: kernel backend: per-config override, else the process-wide
        #: selection (--sim-backend / $REPRO_SIM_BACKEND / heap)
        self.env = make_environment(backend=self.config.sim_backend)
        #: frame-native execution: per-config override, else the
        #: make_environment resolution ($REPRO_FRAME_EXEC / backend
        #: default).  Channel tracing needs per-message events, so
        #: --trace-channel forces the scalar oracle, exactly as it
        #: disables the LandingTable bulk path.
        if self.config.frame_exec is not None:
            self.env.frame_exec = bool(self.config.frame_exec)
        if self.config.trace:
            self.env.frame_exec = False
        #: event tracer (enabled via SimConfig.trace) — installed on the
        #: environment *before* any Channel exists, so every hop built
        #: by this testbed picks it up at construction time
        self.tracer = Tracer(self.env, enabled=self.config.trace)
        self.env.tracer = self.tracer
        self.rng = RngRegistry(self.config.seed)
        #: single-switch fabric by default; ``racks=N`` swaps in the
        #: multi-rack spine fabric (DESIGN.md §4.15) before any
        #: endpoint attaches, so every wire is built on it
        if racks is None:
            self.network = Network(self.env)
        else:
            self.network = MultiRackNetwork(
                self.env, racks=racks, oversubscription=oversubscription)
        self.machines = {}
        self.clients = {}

    # -- building blocks ---------------------------------------------------------

    def machine(self, ip, cpu_profile=XEON_E5_2620,
                nic_rate=units.gbps(40), name=None):
        if ip in self.machines:
            return self.machines[ip]
        m = Machine(self.env, self.network, ip, self.config,
                    cpu_profile=cpu_profile, nic_rate=nic_rate,
                    rng_registry=self.rng, name=name)
        self.machines[ip] = m
        return m

    def client(self, ip, name=None):
        if ip in self.clients:
            return self.clients[ip]
        c = Client(self.env, self.network, ip, rng=self.rng, name=name)
        self.clients[ip] = c
        return c

    def bluefield(self, ip, profile=None, name=None):
        return BluefieldSNIC(self.env, self.network, ip,
                             profile or BluefieldProfile(),
                             self.config.cache,
                             self.rng.stream("bluefield-%s.llc" % ip),
                             name=name)

    def innova(self, ip, profile=None, name=None):
        return InnovaSNIC(self.env, self.network, ip,
                          profile or InnovaProfile(), name=name)

    def vca(self, profile=None, name="vca"):
        return IntelVCA(self.env, profile or VcaProfile(), self.config.cache,
                        self.rng.stream("%s.llc" % name), name=name)

    # -- Lynx deployments ------------------------------------------------------------

    def lynx_on_bluefield(self, snic, name=None):
        """The complete Lynx prototype on the Bluefield SNIC (§5.1)."""
        server = LynxServer(self.env, snic.nic, snic.workers,
                            snic.stack_profile, self.config.lynx,
                            name=name or "lynx@%s" % snic.nic.ip,
                            tracer=self.tracer)
        return LynxRuntime(self.env, server, self.config), server

    def lynx_on_host(self, machine, cores=1, stack=XEON_VMA, name=None):
        """Lynx source-compatible build running on host Xeon cores (§5.1)."""
        if cores < 1 or cores > machine.socket.profile.cores:
            raise ConfigError("invalid core count %d" % cores)
        pool = machine.pool(count=cores,
                            name="%s-lynx-pool" % machine.name)
        server = LynxServer(self.env, machine.nic, pool, stack,
                            self.config.lynx,
                            name=name or "lynx@%s" % machine.ip,
                            tracer=self.tracer)
        return LynxRuntime(self.env, server, self.config), server

    # -- simulation control -------------------------------------------------------------

    def run(self, until=None):
        return self.env.run(until=until)

    def warmup_then_measure(self, recorders, warmup, measure):
        """Run *warmup* us, reset *recorders*, run *measure* us more."""
        self.env.run(until=self.env.now + warmup)
        for rec in recorders:
            rec.reset()
        self.env.run(until=self.env.now + measure)
