"""Deterministic fault injection and recovery (DESIGN.md §4.10).

Declarative fault schedules (:mod:`repro.faults.schedule`) compiled
onto a live deployment by a :class:`FaultInjector`
(:mod:`repro.faults.injector`).  Nothing in this package is imported by
the data plane — arming a schedule installs per-instance hooks, and an
unarmed simulation is bit-identical to one without this package.
"""

from .injector import FaultInjector
from .schedule import (
    AcceleratorOutage,
    FaultSchedule,
    FaultSpec,
    LinkCorruption,
    LinkLoss,
    RackFailure,
    RxRingStall,
    SnicPause,
    SnicRestart,
)

__all__ = [
    "AcceleratorOutage",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "LinkCorruption",
    "LinkLoss",
    "RackFailure",
    "RxRingStall",
    "SnicPause",
    "SnicRestart",
]
