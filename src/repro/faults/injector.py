"""Arming fault schedules onto a running deployment.

The :class:`FaultInjector` compiles a
:class:`~repro.faults.schedule.FaultSchedule` into hooks on the live
simulation objects:

* **wire faults** (loss, corruption, RX-ring stall) shadow the target
  wire :class:`~repro.sim.Channel`'s ``_land`` on the *instance* — the
  same per-instance shadowing the tracer uses — so an unarmed channel
  keeps the class's untouched fast path and pays nothing;
* **SNIC pauses/restarts** seize every worker core at a priority above
  the egress forwarder, so dispatcher and forwarder both stop; a
  restart additionally flushes the NIC RX ring;
* **accelerator outages** interrupt the service's threadblocks and mark
  the accelerator dark on the Lynx server (which sheds with error
  responses, §5.1); the window's end restarts the kernel, draining the
  rings first in ``crash`` mode.  On the host-centric baseline the same
  spec seizes every GPU SM slot instead.

Determinism: window boundaries ride ``env.defer`` and randomness comes
from named :class:`~repro.sim.RngRegistry` streams
(``faults.<kind>.<ip>``), so a fixed seed reproduces the exact fault
pattern; with no schedule armed, nothing here is reachable from any hot
path and fixed-seed runs are bit-identical to a build without faults.

Telemetry: every decision increments a ``faults.injected.*`` /
``faults.dropped.*`` / ``faults.recovered.*`` counter in the registry
scope current at :meth:`FaultInjector.arm` time, so sweeps merge fault
counts like every other instrument.
"""

from .. import telemetry
from ..errors import FaultError
from ..sim.channel import Channel, _msg_id
from .schedule import (
    ACCEL_CRASH,
    ACCEL_HANG,
    FaultSchedule,
    LINK_CORRUPTION,
    LINK_LOSS,
    RACK_FAILURE,
    RX_STALL,
    SNIC_PAUSE,
    SNIC_RESTART,
)

#: core-pool / SM-slot seizure priority: above the egress forwarder's
#: -1, so a pause wins the next free core ahead of all queued work
SEIZE_PRIORITY = -2


class _WireHook:
    """Per-instance ``_land`` shadow composing the wire faults on one
    channel: drop rules (loss/corruption) run first, then the stall
    buffer.  Installed while any wire fault targets the channel and
    removed when the last window ends, restoring the class fast path."""

    __slots__ = ("injector", "channel", "rules", "hold", "hold_limit",
                 "stall_depth")

    def __init__(self, injector, channel):
        self.injector = injector
        self.channel = channel
        self.rules = []
        self.hold = None
        self.hold_limit = 0
        self.stall_depth = 0
        channel._land = self._on_land

    def _on_land(self, _event):
        channel = self.channel
        item = channel._in_flight.popleft()
        rng = self.injector.rng
        for probability, stream, counter in self.rules:
            if rng.uniform(stream, 0.0, 1.0) < probability:
                channel.dropped += 1
                counter.inc()
                if channel._tracer is not None:
                    channel._tracer.emit(channel.name, "fault-drop",
                                         _msg_id(item))
                return
        if self.hold is not None:
            if len(self.hold) < self.hold_limit:
                self.hold.append(item)
            else:
                channel.dropped += 1
                self.injector._counter("dropped." + RX_STALL).inc()
                if channel._tracer is not None:
                    channel._tracer.emit(channel.name, "fault-drop",
                                         _msg_id(item))
            return
        self._deliver(item)

    def _deliver(self, item):
        # Channel._land's landing half (the popleft already happened).
        channel = self.channel
        if channel._sink.try_put(item):
            channel.delivered += 1
            if channel._tracer is not None:
                channel._tracer.emit(channel.name, "deliver", _msg_id(item))
        else:
            channel.dropped += 1
            if channel._tracer is not None:
                channel._tracer.emit(channel.name, "drop", _msg_id(item))

    # -- stall windows -----------------------------------------------------

    def begin_stall(self, buffer_limit):
        if self.hold is None:
            self.hold = []
            self.hold_limit = buffer_limit
        self.stall_depth += 1

    def end_stall(self, recovered):
        self.stall_depth -= 1
        if self.stall_depth > 0:
            return
        held, self.hold = self.hold, None
        if held:
            recovered.inc(len(held))
            for item in held:
                self._deliver(item)

    # -- lifecycle ---------------------------------------------------------

    def maybe_remove(self):
        """Drop the instance shadow once no fault targets the channel."""
        if not self.rules and self.hold is None:
            del self.channel._land
            self.injector._hooks.pop(self.channel, None)


class FaultInjector:
    """Arms one :class:`FaultSchedule` onto one deployment."""

    def __init__(self, schedule):
        if not isinstance(schedule, FaultSchedule):
            schedule = FaultSchedule(schedule)
        self.schedule = schedule
        self.env = None
        self.rng = None
        self.network = None
        self.server = None
        self.service = None
        self.gpu = None
        self._armed = False
        self._registry = None
        self._counters = {}
        self._hooks = {}
        self._active = {}

    # -- arming ------------------------------------------------------------

    def arm(self, deployment=None, env=None, network=None, rng=None,
            server=None, service=None, gpu=None):
        """Compile the schedule onto *deployment* (or explicit targets).

        *deployment* is anything shaped like
        :class:`repro.experiments.common.Deployment`; individual
        keywords override or replace it for hand-built testbeds.
        Returns self.
        """
        if self._armed:
            raise FaultError("injector is already armed")
        tb = getattr(deployment, "tb", None)
        self.env = env or getattr(deployment, "env", None) \
            or getattr(tb, "env", None)
        self.network = network or getattr(tb, "network", None)
        self.rng = rng or getattr(tb, "rng", None)
        self.server = server or getattr(deployment, "server", None)
        self.service = service or getattr(deployment, "service", None)
        self.gpu = gpu or getattr(deployment, "gpu", None)
        if self.env is None:
            raise FaultError("fault injection needs an environment "
                             "(arm a deployment or pass env=)")
        self._registry = telemetry.registry()
        self._armed = True
        for spec in self.schedule:
            self._compile(spec)
        return self

    def disarm(self):
        """Tear down hooks and release seizures (pending windows no-op)."""
        self._armed = False
        for spec, reqs in list(self._active.items()):
            self._release(reqs)
        self._active.clear()
        for hook in list(self._hooks.values()):
            hook.rules = []
            hook.hold = None
            hook.stall_depth = 0
            hook.maybe_remove()
        self._hooks.clear()

    def _compile(self, spec):
        kind = spec.kind
        if kind in (LINK_LOSS, LINK_CORRUPTION):
            self._require_wire(spec)
            self._window(spec, self._begin_drop_rule, self._end_drop_rule)
        elif kind == RX_STALL:
            self._require_wire(spec)
            self._window(spec, self._begin_stall, self._end_stall)
        elif kind in (SNIC_PAUSE, SNIC_RESTART):
            self._worker_pool()
            self._window(spec, self._begin_snic, self._end_snic)
        elif kind in (ACCEL_CRASH, ACCEL_HANG):
            if self.service is None and self.gpu is None:
                raise FaultError("%s needs a GpuService or a gpu target"
                                 % kind)
            self._window(spec, self._begin_accel, self._end_accel)
        elif kind == RACK_FAILURE:
            if not hasattr(self.network, "fail_rack"):
                raise FaultError("rack_failure needs a multi-rack fabric "
                                 "(MultiRackNetwork) as the network target")
            self._window(spec, self._begin_rack, self._end_rack)
        else:  # pragma: no cover - schedule validation rejects these
            raise FaultError("unknown fault kind %r" % (kind,))

    def _window(self, spec, begin, end):
        env = self.env
        delay = spec.start - env.now
        if delay < 0:
            delay = 0.0

        def _on_start(_event):
            if not self._armed:
                return
            begin(spec)
            env.defer(spec.duration, _on_end)

        def _on_end(_event):
            if not self._armed:
                return
            end(spec)

        env.defer(delay, _on_start)

    # -- targets and counters ----------------------------------------------

    def _require_wire(self, spec):
        if self.network is None:
            raise FaultError("%s needs a network target (arm a deployment "
                             "or pass network=)" % spec.kind)
        return self.network.wire_channel(spec.ip)

    def _worker_pool(self):
        # Lynx server -> SNIC worker cores; host-centric -> host pool.
        server = self.server
        pool = getattr(server, "workers", None) \
            or getattr(server, "pool", None)
        if pool is None:
            raise FaultError("SNIC pause/restart needs a server with a "
                             "worker core pool")
        return pool

    def _counter(self, key):
        counter = self._counters.get(key)
        if counter is None:
            counter = self._registry.counter("faults." + key)
            self._counters[key] = counter
        return counter

    def _hook(self, channel):
        if not isinstance(channel, Channel):
            raise FaultError("wire faults target sim.Channel instances, "
                             "got %r" % (channel,))
        hook = self._hooks.get(channel)
        if hook is None:
            hook = _WireHook(self, channel)
            self._hooks[channel] = hook
        return hook

    # -- wire faults -------------------------------------------------------

    def _begin_drop_rule(self, spec):
        if self.rng is None:
            raise FaultError("%s needs an RNG registry (arm a deployment "
                             "or pass rng=)" % spec.kind)
        hook = self._hook(self.network.wire_channel(spec.ip))
        stream = "faults.%s.%s" % (spec.kind, spec.ip)
        rule = (spec.probability, stream, self._counter("injected."
                                                        + spec.kind))
        self._active[spec] = rule
        hook.rules.append(rule)

    def _end_drop_rule(self, spec):
        rule = self._active.pop(spec)
        hook = self._hooks.get(self.network.wire_channel(spec.ip))
        if hook is not None:
            hook.rules.remove(rule)
            hook.maybe_remove()

    def _begin_stall(self, spec):
        hook = self._hook(self.network.wire_channel(spec.ip))
        hook.begin_stall(spec.buffer_limit)
        self._counter("injected." + RX_STALL).inc()

    def _end_stall(self, spec):
        hook = self._hooks.get(self.network.wire_channel(spec.ip))
        if hook is not None:
            hook.end_stall(self._counter("recovered." + RX_STALL))
            hook.maybe_remove()

    # -- SNIC pause / restart ----------------------------------------------

    def _begin_snic(self, spec):
        pool = self._worker_pool()
        self._active[spec] = [pool._res.request(SEIZE_PRIORITY)
                              for _ in range(pool.count)]
        self._counter("injected." + spec.kind).inc()

    def _end_snic(self, spec):
        if spec.kind == SNIC_RESTART:
            # The rebooted server comes up with a cleared NIC RX ring:
            # frames that piled up while it was down are lost.  Flushed
            # before the cores are released, or the workers would serve
            # the stale backlog first.
            flushed = len(self.server.nic.rx.recv_batch())
            if flushed:
                self._counter("dropped." + SNIC_RESTART).inc(flushed)
        self._release(self._active.pop(spec))
        self._counter("recovered." + spec.kind).inc()

    @staticmethod
    def _release(reqs):
        if not isinstance(reqs, list):
            return
        for req in reqs:
            if req.triggered:
                req.release()
            else:
                req.cancel()

    # -- accelerator outages -----------------------------------------------

    def _begin_accel(self, spec):
        service, server = self.service, self.server
        if service is not None and hasattr(server, "set_accelerator_dark"):
            service.interrupt("fault:%s" % spec.kind)
            server.set_accelerator_dark(service.manager, True)
        else:
            # Host-centric baseline: the GPU stops granting SM slots, so
            # every kernel launch queues behind the outage.
            slots = self.gpu.sm_slots
            self._active[spec] = [slots.request(SEIZE_PRIORITY)
                                  for _ in range(int(slots.capacity))]
        self._counter("injected." + spec.kind).inc()

    def _end_accel(self, spec):
        service, server = self.service, self.server
        if service is not None and hasattr(server, "set_accelerator_dark"):
            if spec.mode == "crash":
                lost = service.drain_rings()
                if lost:
                    self._counter("dropped.accel_restart").inc(lost)
            service.restart()
            server.set_accelerator_dark(service.manager, False)
        else:
            self._release(self._active.pop(spec))
        self._counter("recovered.accel_restart").inc()

    # -- rack fault domains --------------------------------------------------

    def _begin_rack(self, spec):
        self.network.fail_rack(spec.rack)
        self._counter("injected." + RACK_FAILURE).inc()

    def _end_rack(self, spec):
        self.network.restore_rack(spec.rack)
        self._counter("recovered." + RACK_FAILURE).inc()

    # -- introspection -----------------------------------------------------

    def counts(self, group):
        """{kind: count} of this injector's ``faults.<group>.*`` counters."""
        prefix = group + "."
        return {key[len(prefix):]: counter.value
                for key, counter in self._counters.items()
                if key.startswith(prefix)}

    def total(self, group):
        """Sum of this injector's ``faults.<group>.*`` counters."""
        return sum(self.counts(group).values())

    def __repr__(self):
        return "<FaultInjector %d windows armed=%r>" % (len(self.schedule),
                                                        self._armed)
