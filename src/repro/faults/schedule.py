"""Declarative fault schedules.

A :class:`FaultSchedule` is an ordered list of :class:`FaultSpec`
windows, each naming a fault *kind*, an absolute start time, a duration
and the kind-specific target fields.  Schedules are pure data — nothing
happens until a :class:`~repro.faults.injector.FaultInjector` arms one
onto a deployment — so the same schedule can drive Lynx and the
host-centric baseline side by side (experiment E16).

The grammar (DESIGN.md §4.10) has two equivalent surfaces:

* the spec classes below, composed programmatically::

      FaultSchedule([
          LinkLoss("10.0.0.100", start=25000, duration=5000,
                   probability=0.2),
          AcceleratorOutage(start=40000, duration=6000, mode="crash"),
      ])

* a JSON-able list of dicts, one per window, via
  :meth:`FaultSchedule.from_dicts`::

      [{"fault": "link_loss", "ip": "10.0.0.100", "at": 25000,
        "for": 5000, "probability": 0.2},
       {"fault": "accel_crash", "at": 40000, "for": 6000}]

Validation happens at construction time and raises
:class:`~repro.errors.FaultError`, so a bad schedule fails before any
simulation runs.
"""

from ..errors import FaultError

#: fault kinds (the ``"fault"`` field of the dict grammar)
LINK_LOSS = "link_loss"
LINK_CORRUPTION = "corruption"
RX_STALL = "rx_stall"
SNIC_PAUSE = "snic_pause"
SNIC_RESTART = "snic_restart"
ACCEL_CRASH = "accel_crash"
ACCEL_HANG = "accel_hang"
RACK_FAILURE = "rack_failure"


def _check_window(kind, start, duration):
    if not isinstance(start, (int, float)) or start < 0:
        raise FaultError("%s: start must be a non-negative time, got %r"
                         % (kind, start))
    if not isinstance(duration, (int, float)) or duration <= 0:
        raise FaultError("%s: duration must be positive, got %r"
                         % (kind, duration))


def _check_probability(kind, probability):
    if not isinstance(probability, (int, float)) or not 0 < probability <= 1:
        raise FaultError("%s: probability must be in (0, 1], got %r"
                         % (kind, probability))


class FaultSpec:
    """One fault window: [start, start + duration) in simulated us."""

    __slots__ = ("start", "duration")

    #: grammar tag; concrete subclasses override
    kind = None
    #: dict-grammar fields beyond at/for (subclasses override)
    extra_fields = ()

    def __init__(self, start, duration):
        _check_window(self.kind, start, duration)
        self.start = float(start)
        self.duration = float(duration)

    @property
    def end(self):
        return self.start + self.duration

    def to_dict(self):
        out = {"fault": self.kind, "at": self.start, "for": self.duration}
        for field in self.extra_fields:
            out[field] = getattr(self, field)
        return out

    def __repr__(self):
        return "<%s %r [%g, %g)>" % (type(self).__name__, self.kind,
                                     self.start, self.end)


class _WireFault(FaultSpec):
    """Base for faults targeting one endpoint's wire channel."""

    __slots__ = ("ip",)
    extra_fields = ("ip",)

    def __init__(self, ip, start, duration):
        super().__init__(start, duration)
        if not ip or not isinstance(ip, str):
            raise FaultError("%s: needs a target ip, got %r" % (self.kind, ip))
        self.ip = ip


class LinkLoss(_WireFault):
    """Random packet loss on the wire into *ip* (burst of probability p)."""

    __slots__ = ("probability",)
    kind = LINK_LOSS
    extra_fields = ("ip", "probability")

    def __init__(self, ip, start, duration, probability):
        super().__init__(ip, start, duration)
        _check_probability(self.kind, probability)
        self.probability = float(probability)


class LinkCorruption(LinkLoss):
    """Random corruption on the wire into *ip*.

    The receiver's FCS check discards a corrupt frame, so mechanically
    this is loss — it is counted separately (``faults.injected.corruption``)
    because the paper's error taxonomy distinguishes the two.
    """

    __slots__ = ()
    kind = LINK_CORRUPTION


class RxRingStall(_WireFault):
    """The NIC RX ring into *ip* stops draining onto the ring.

    Arriving frames queue in the (bounded) stall buffer and land in a
    burst when the window ends; overflow is dropped, like a real ring
    whose head pointer stopped moving.
    """

    __slots__ = ("buffer_limit",)
    kind = RX_STALL
    extra_fields = ("ip", "buffer_limit")

    def __init__(self, ip, start, duration, buffer_limit=1024):
        super().__init__(ip, start, duration)
        if not isinstance(buffer_limit, int) or buffer_limit < 0:
            raise FaultError("rx_stall: buffer_limit must be >= 0, got %r"
                             % (buffer_limit,))
        self.buffer_limit = buffer_limit


class SnicPause(FaultSpec):
    """All SNIC worker cores (dispatcher + forwarder) stop scheduling."""

    __slots__ = ()
    kind = SNIC_PAUSE


class SnicRestart(SnicPause):
    """SNIC server restart: paused for the window, NIC RX ring flushed."""

    __slots__ = ()
    kind = SNIC_RESTART


class RackFailure(FaultSpec):
    """A whole rack partitions for the window (multi-rack fabric only).

    Frames to and from the rack are dropped by the fabric while the
    window is open (``net.fabric.dropped_rack_down``); the load
    balancer's health checks and the consistent-hash ring rehome its
    shards to live replicas, and the window's end restores the rack.
    """

    __slots__ = ("rack",)
    kind = RACK_FAILURE
    extra_fields = ("rack",)

    def __init__(self, rack, start, duration):
        super().__init__(start, duration)
        if not isinstance(rack, int) or rack < 0:
            raise FaultError("rack_failure: rack must be a non-negative "
                             "index, got %r" % (rack,))
        self.rack = rack


class AcceleratorOutage(FaultSpec):
    """The accelerator goes dark for the window, then restarts.

    ``mode="crash"`` kills the kernel and loses ring contents (rings
    are drained on restart); ``mode="hang"`` wedges the kernel but
    preserves memory, so queued entries survive the restart.
    """

    __slots__ = ("mode",)
    extra_fields = ("mode",)

    def __init__(self, start, duration, mode="crash"):
        if mode not in ("crash", "hang"):
            raise FaultError("accelerator outage mode must be 'crash' or "
                             "'hang', got %r" % (mode,))
        self.mode = mode
        super().__init__(start, duration)

    @property
    def kind(self):
        return ACCEL_CRASH if self.mode == "crash" else ACCEL_HANG


#: dict-grammar dispatch: kind -> spec builder taking the entry dict
def _wire_args(entry):
    return {"ip": entry.get("ip"), "start": entry.get("at"),
            "duration": entry.get("for")}


_BUILDERS = {
    LINK_LOSS: lambda e: LinkLoss(probability=e.get("probability"),
                                  **_wire_args(e)),
    LINK_CORRUPTION: lambda e: LinkCorruption(
        probability=e.get("probability"), **_wire_args(e)),
    RX_STALL: lambda e: RxRingStall(buffer_limit=e.get("buffer_limit", 1024),
                                    **_wire_args(e)),
    SNIC_PAUSE: lambda e: SnicPause(start=e.get("at"),
                                    duration=e.get("for")),
    SNIC_RESTART: lambda e: SnicRestart(start=e.get("at"),
                                        duration=e.get("for")),
    ACCEL_CRASH: lambda e: AcceleratorOutage(start=e.get("at"),
                                             duration=e.get("for"),
                                             mode="crash"),
    ACCEL_HANG: lambda e: AcceleratorOutage(start=e.get("at"),
                                            duration=e.get("for"),
                                            mode="hang"),
    RACK_FAILURE: lambda e: RackFailure(rack=e.get("rack"),
                                        start=e.get("at"),
                                        duration=e.get("for")),
}

# "mode" is redundant with the accel_crash/accel_hang kind tag but
# appears in to_dict() output, so the round trip must accept it.
_KNOWN_KEYS = frozenset(
    ("fault", "at", "for", "ip", "probability", "buffer_limit", "mode",
     "rack"))


class FaultSchedule:
    """An ordered collection of fault windows (pure data)."""

    __slots__ = ("specs",)

    def __init__(self, specs=()):
        self.specs = []
        for spec in specs:
            self.add(spec)

    def add(self, spec):
        """Append one :class:`FaultSpec`; returns self for chaining."""
        if not isinstance(spec, FaultSpec):
            raise FaultError("fault schedules hold FaultSpec instances, "
                             "got %r" % (spec,))
        self.specs.append(spec)
        return self

    @classmethod
    def from_dicts(cls, entries):
        """Build a schedule from the dict grammar (see module docstring)."""
        schedule = cls()
        for entry in entries:
            if not isinstance(entry, dict):
                raise FaultError("schedule entries are dicts, got %r"
                                 % (entry,))
            unknown = set(entry) - _KNOWN_KEYS
            if unknown:
                raise FaultError("unknown schedule fields %s in %r"
                                 % (sorted(unknown), entry))
            kind = entry.get("fault")
            builder = _BUILDERS.get(kind)
            if builder is None:
                raise FaultError("unknown fault kind %r (known: %s)"
                                 % (kind, ", ".join(sorted(_BUILDERS))))
            schedule.add(builder(entry))
        return schedule

    def to_dicts(self):
        """The schedule in the dict grammar (JSON-able round trip)."""
        return [spec.to_dict() for spec in self.specs]

    @property
    def horizon(self):
        """Simulated time by which every window has ended."""
        return max((spec.end for spec in self.specs), default=0.0)

    def __iter__(self):
        return iter(self.specs)

    def __len__(self):
        return len(self.specs)

    def __bool__(self):
        # An empty schedule is a valid (armed-but-inert) schedule;
        # truthiness reflects "has any windows", not validity.
        return bool(self.specs)

    def __repr__(self):
        return "<FaultSchedule %d windows, horizon=%g>" % (len(self.specs),
                                                           self.horizon)
