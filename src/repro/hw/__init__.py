"""Hardware substrate: CPUs, caches, PCIe, NICs, GPUs, SmartNICs, VCA."""

from .memory import MemoryRegion, HOST_DRAM_LATENCY, GPU_GDDR_LATENCY, SNIC_DRAM_LATENCY
from .pcie import PcieLink, PcieFabric
from .cache import LLCModel
from .cpu import Core, CorePool, CpuSocket
from .nic import Nic, RdmaNic
from .gpu import GPU, CudaDriver
from .smartnic import BluefieldSNIC, InnovaSNIC
from .vca import IntelVCA, VcaNode, VcaNodeAccelerator
from .machine import Machine

__all__ = [
    "MemoryRegion",
    "HOST_DRAM_LATENCY",
    "GPU_GDDR_LATENCY",
    "SNIC_DRAM_LATENCY",
    "PcieLink",
    "PcieFabric",
    "LLCModel",
    "Core",
    "CorePool",
    "CpuSocket",
    "Nic",
    "RdmaNic",
    "GPU",
    "CudaDriver",
    "BluefieldSNIC",
    "InnovaSNIC",
    "IntelVCA",
    "VcaNode",
    "VcaNodeAccelerator",
    "Machine",
]
