"""Shared last-level cache interference (the §3.2 noisy neighbour).

The paper shows a memory-intensive co-tenant (an 1140x1140 integer
matmul that fills the Xeon's LLC) inflates a GPU-accelerated server's
p99 response latency 13x while itself slowing 21%.  The mechanism is
cache thrashing: the victim's per-request CPU work becomes slower *and*
far more variable.

We model it at task granularity: tasks executing on cores of a socket
declare a working-set size and a memory intensity in [0, 1].  While the
combined working set fits the LLC the penalty is 1.0.  Once it spills,
memory-intensive work picks up a multiplicative slowdown with a
heavy-tailed (lognormal) jitter.
"""

import math

from ..errors import ConfigError


class LLCModel:
    """Shared cache of one CPU socket."""

    def __init__(self, env, size_bytes, profile, rng):
        if size_bytes <= 0:
            raise ConfigError("LLC size must be positive")
        self.env = env
        self.size_bytes = size_bytes
        self.profile = profile
        self._rng = rng
        self._working_sets = {}
        self._next_token = 0
        self._total = 0

    # -- occupancy bookkeeping ----------------------------------------------

    def occupy(self, working_set_bytes):
        """Register a resident working set; returns a release token."""
        token = self._next_token
        self._next_token += 1
        self._working_sets[token] = working_set_bytes
        self._total += working_set_bytes
        return token

    def release(self, token):
        self._total -= self._working_sets.pop(token, 0)

    @property
    def total_working_set(self):
        return self._total

    @property
    def pressure(self):
        """Fraction of demanded capacity beyond the LLC size, in [0, 1]."""
        total = self.total_working_set
        if total <= self.size_bytes:
            return 0.0
        return min(1.0, (total - self.size_bytes) / self.size_bytes)

    # -- penalties ------------------------------------------------------------

    def penalty(self, memory_intensity):
        """Multiplicative slowdown for a task with given memory intensity.

        Deterministic component scales with cache pressure; jitter is
        lognormal with unit mean so the *average* slowdown is governed
        by ``profile.mean_slowdown`` and the tail by ``jitter_sigma``.
        """
        if not 0.0 <= memory_intensity <= 1.0:
            raise ConfigError("memory_intensity must be in [0, 1]")
        pressure = self.pressure
        if pressure <= 0.0 or memory_intensity <= 0.0:
            return 1.0
        sigma = self.profile.jitter_sigma
        # lognormal with E[X] = 1: mu = -sigma^2/2
        jitter = self._rng.lognormal(-sigma * sigma / 2.0, sigma)
        base_extra = (self.profile.mean_slowdown - 1.0) * pressure
        return 1.0 + memory_intensity * base_extra * jitter

    def aggressor_penalty(self):
        """Slowdown of the cache-filling aggressor itself (§3.2: ~21%).

        The aggressor's working set spans the whole LLC, so any
        co-runner overflow evicts its lines: once the cache is
        over-subscribed at all, the full calibrated slowdown applies.
        """
        if self.pressure <= 0.02:
            return 1.0
        return self.profile.aggressor_slowdown

    def expected_penalty(self, memory_intensity):
        """Mean penalty (no jitter draw) — used by analytic tests."""
        return 1.0 + memory_intensity * (self.profile.mean_slowdown - 1.0) * self.pressure


def lognormal_p99_over_mean(sigma):
    """p99/mean ratio of a unit-mean lognormal (helper for calibration)."""
    z99 = 2.3263478740408408
    return math.exp(z99 * sigma - sigma * sigma / 2.0) / 1.0
