"""CPU cores and sockets.

Two kinds of work run on cores:

* *calibrated* work — network-stack and runtime costs whose durations
  are already expressed for the owning platform (see
  :mod:`repro.config`); charged as-is.
* *compute* work — application cycles expressed in Xeon-core
  microseconds; scaled by the core's ``speed_factor`` and subject to
  LLC interference when a working set / memory intensity is declared.
"""

from ..errors import ConfigError
from ..sim import Resource
from .. import telemetry


class Core:
    """One CPU core (a unit-capacity resource with a cost model)."""

    def __init__(self, env, profile, index, llc=None, name=None):
        self.env = env
        self.profile = profile
        self.index = index
        self.llc = llc
        self.name = name or "%s/core%d" % (profile.name, index)
        self._res = Resource(env, 1, name=self.name)

    @property
    def busy(self):
        return self._res.in_use > 0

    @property
    def utilization(self):
        return self._res.utilization.mean()

    def run_calibrated(self, duration):
        """Generator: occupy the core for a platform-calibrated duration."""
        if duration < 0:
            raise ConfigError("negative duration")
        with self._res.request() as req:
            yield req
            yield self.env.charge(duration)

    def run_compute(self, xeon_us, memory_intensity=0.0, working_set=0):
        """Generator: run compute work of *xeon_us* Xeon-microseconds.

        The duration is scaled by the core speed and, if a working set
        is declared, by the socket's LLC interference model.
        """
        if xeon_us < 0:
            raise ConfigError("negative duration")
        with self._res.request() as req:
            yield req
            duration = xeon_us / self.profile.speed_factor
            token = None
            if self.llc is not None and working_set > 0:
                token = self.llc.occupy(working_set)
            try:
                if self.llc is not None and memory_intensity > 0:
                    duration *= self.llc.penalty(memory_intensity)
                yield self.env.charge(duration)
            finally:
                if token is not None:
                    self.llc.release(token)


class CorePool:
    """A set of interchangeable cores behind one run queue.

    Used for worker pools (SNIC worker cores, host server cores) where
    any core may pick up the next task.
    """

    def __init__(self, env, profile, count=None, llc=None, name=None):
        count = profile.cores if count is None else count
        if count < 1:
            raise ConfigError("core pool needs at least one core")
        self.env = env
        self.profile = profile
        self.count = count
        self.llc = llc
        self.name = name or "%s-pool" % profile.name
        self._res = Resource(env, count, name=self.name)
        #: pool-wide cache behaviour of calibrated (serving-path) work
        self.default_memory_intensity = 0.0
        self.default_working_set = 0
        # Telemetry (DESIGN.md §4.9): the Resource's gauges are already
        # maintained inline on the hot request/grant/release path —
        # registering them costs the data plane nothing.  The run-queue
        # depth gauge is the software stack's queue-depth signal.
        reg = telemetry.registry()
        base = "hw.cpu.%s." % self.name
        reg.register(base + "utilization", self._res.utilization)
        reg.register(base + "runq_depth", self._res.queue_depth)

    @property
    def in_use(self):
        return self._res.in_use

    @property
    def utilization(self):
        return self._res.utilization.mean()

    @property
    def queue_depth(self):
        return self._res.waiting

    def run_calibrated(self, duration, priority=0, memory_intensity=None,
                       working_set=None):
        """Generator: any free core runs platform-calibrated work.

        Lower *priority* values are served first when cores are
        contended (egress work uses a negative priority so responses
        are not starved by an ingress flood).  Memory intensity /
        working set default to the pool-wide values so a whole serving
        path can be made cache-sensitive at construction time.
        """
        if duration < 0:
            raise ConfigError("negative duration")
        if memory_intensity is None:
            memory_intensity = self.default_memory_intensity
        if working_set is None:
            working_set = self.default_working_set
        req = self._res.request(priority=priority)
        try:
            yield req
            llc = self.llc
            if llc is None or working_set <= 0:
                # Fast path: no LLC occupancy to register, so skip the
                # _timed sub-generator and charge directly.
                if llc is not None and memory_intensity > 0:
                    duration *= llc.penalty(memory_intensity)
                yield self.env.charge(duration)
            else:
                yield from self._timed(duration, memory_intensity,
                                       working_set, aggressor=False)
        finally:
            req.release()

    def run_compute(self, xeon_us, memory_intensity=0.0, working_set=0,
                    priority=0, aggressor=False):
        """Generator: any free core runs compute work (Xeon-us units).

        *aggressor* marks cache-filling work that occupies the LLC but
        only suffers the (mild) aggressor slowdown itself.
        """
        if xeon_us < 0:
            raise ConfigError("negative duration")
        duration = xeon_us / self.profile.speed_factor
        req = self._res.request(priority=priority)
        try:
            yield req
            llc = self.llc
            if llc is None or (working_set <= 0 and not aggressor):
                if llc is not None and memory_intensity > 0:
                    duration *= llc.penalty(memory_intensity)
                yield self.env.charge(duration)
            else:
                yield from self._timed(duration, memory_intensity,
                                       working_set, aggressor)
        finally:
            req.release()

    def _timed(self, duration, memory_intensity, working_set, aggressor):
        token = None
        if self.llc is not None and working_set > 0:
            token = self.llc.occupy(working_set)
        try:
            if self.llc is not None:
                if aggressor:
                    duration *= self.llc.aggressor_penalty()
                elif memory_intensity > 0:
                    duration *= self.llc.penalty(memory_intensity)
            yield self.env.charge(duration)
        finally:
            if token is not None:
                self.llc.release(token)


class CpuSocket:
    """All the cores of one processor plus the shared LLC."""

    def __init__(self, env, profile, cache_profile, rng, name=None):
        from .cache import LLCModel

        self.env = env
        self.profile = profile
        self.name = name or profile.name
        self.llc = LLCModel(env, profile.llc_bytes, cache_profile, rng)
        self.cores = [Core(env, profile, i, llc=self.llc,
                           name="%s/core%d" % (self.name, i))
                      for i in range(profile.cores)]

    def pool(self, count=None, name=None):
        """A fresh :class:`CorePool` drawing on this socket's profile.

        Note: pools created here share the socket's LLC (interference
        couples them) but model distinct core subsets, mirroring how the
        paper pins workloads to disjoint cores.
        """
        return CorePool(self.env, self.profile, count=count, llc=self.llc,
                        name=name)
