"""GPU device model.

Captures exactly the GPU behaviours the paper's results depend on:

* host-side driver interactions (launch / copy / sync) are serialized
  through a per-host driver lock and cost CPU time — the §3.2 bottleneck
  ("we run on one CPU core because more threads result in a slowdown
  due to an NVIDIA driver bottleneck");
* kernels occupy SM slots; at most ``max_threadblocks`` threadblocks are
  resident (240 on K40m);
* persistent kernels hold their slots forever and poll device memory;
* dynamic parallelism launches child kernels from the device, cheaper
  than a host launch (used by the LeNet server, §6.3);
* DMA copies pay a fixed cudaMemcpyAsync overhead plus bandwidth time
  (§5.1: 7-8us fixed).
"""

from ..errors import AcceleratorError
from ..sim import Resource
from .. import telemetry
from .memory import MemoryRegion, GPU_GDDR_LATENCY


class CudaDriver:
    """Host-side driver state shared by all GPUs of one machine.

    Concurrent callers do not just queue on the lock: contended driver
    entry costs *more* per call (cacheline bouncing, futex wakeups,
    context revalidation), which is why the paper's baseline runs on a
    single core — "more threads result in a slowdown due to an NVIDIA
    driver bottleneck" (§6.1).
    """

    #: extra fractional cost per additional CPU thread sharing the lock
    CONTENTION_FACTOR = 0.35

    def __init__(self, env, name="cuda-driver"):
        self.env = env
        self.name = name
        self._lock = Resource(env, 1, name=name)
        self.ops = 0
        self.contended_ops = 0

    def op(self, pool, cost):
        """Generator: a driver call costing *cost* CPU us under the lock.

        The cost grows with the number of CPU threads (cores of the
        calling pool) sharing the driver: lock bouncing and context
        revalidation make multi-threaded CUDA dispatch *slower*, not
        faster — the §6.1 driver bottleneck.
        """
        threads = getattr(pool, "count", 1)
        req = self._lock.request()
        try:
            yield req
            self.ops += 1
            if threads > 1:
                self.contended_ops += 1
                cost *= 1.0 + self.CONTENTION_FACTOR * min(threads - 1, 8)
            # pool.run_calibrated(cost), inlined (driver calls are the
            # hottest host-centric path); works for Core and CorePool —
            # a bare Core has no pool-wide cache defaults.
            mi = getattr(pool, "default_memory_intensity", 0.0)
            ws = getattr(pool, "default_working_set", 0)
            core = pool._res.request(0)
            try:
                yield core
                llc = getattr(pool, "llc", None)
                if llc is None or ws <= 0:
                    if llc is not None and mi > 0:
                        cost *= llc.penalty(mi)
                    yield self.env.charge(cost)
                else:
                    yield from pool._timed(cost, mi, ws, aggressor=False)
            finally:
                core.release()
        finally:
            req.release()


class GPU:
    """One GPU board."""

    def __init__(self, env, profile, driver, pcie_link=None, name=None,
                 index=0):
        self.env = env
        self.profile = profile
        self.driver = driver
        self.pcie_link = pcie_link
        self.index = index
        self.name = name or "%s-%d" % (profile.name, index)
        self.memory = MemoryRegion(env, "%s-mem" % self.name,
                                   access_latency=GPU_GDDR_LATENCY)
        self.sm_slots = Resource(env, profile.max_threadblocks,
                                 name="%s-sm" % self.name)
        #: grid-sized kernels (enough threadblocks to fill the device)
        #: serialize against each other here
        self._exclusive = Resource(env, 1, name="%s-excl" % self.name)
        self._copy_engine = Resource(env, 1, name="%s-dma" % self.name)
        self.kernels_launched = 0
        # Telemetry (DESIGN.md §4.9): SM-slot utilization (maintained
        # inline by the Resource) is the device occupancy; launches are
        # pulled from the plain counter at snapshot time.
        reg = telemetry.registry()
        base = "gpu.%s." % self.name
        reg.register(base + "occupancy", self.sm_slots.utilization)
        reg.pull(base + "kernels", lambda: self.kernels_launched)

    # -- data movement ---------------------------------------------------------

    def dma_transfer(self, nbytes):
        """Generator: one DMA copy over PCIe (either direction)."""
        with self._copy_engine.request() as req:
            yield req
            duration = nbytes / self.profile.copy_bandwidth
            if self.pcie_link is not None:
                duration += self.pcie_link.profile.latency
            yield self.env.charge(duration)

    def memcpy_async(self, pool, nbytes):
        """Generator: full cudaMemcpyAsync — driver call + DMA."""
        yield from self.driver.op(pool, self.profile.memcpy_fixed)
        yield from self.dma_transfer(nbytes)

    # -- kernels -----------------------------------------------------------------

    def scaled(self, duration):
        """Scale a K40m-calibrated kernel duration to this device."""
        return duration / self.profile.speed_factor

    def launch_kernel(self, pool, duration, threadblocks=1,
                      exclusive=False):
        """Generator: host-side launch + device execution + completion.

        Charges the driver call on *pool*, waits launch latency, runs
        *threadblocks* concurrent blocks for *duration*, then pays the
        synchronization/completion latency.  ``exclusive`` marks a
        grid-sized kernel (enough blocks to fill the GPU, e.g. the
        TVM-generated LeNet layers): such kernels serialize against
        each other instead of taking SM slots.
        """
        yield from self.driver.op(pool, self.profile.driver_op_cost)
        if exclusive:
            with self._exclusive.request() as req:
                yield req
                yield self.env.charge(self.profile.launch_latency
                                      + self.scaled(duration))
            self.kernels_launched += 1
        else:
            yield from self._execute(duration, threadblocks)
        yield self.env.charge(self.profile.sync_latency)

    def run_kernel_chain(self, pool, durations):
        """Generator: a default-stream kernel chain (TVM-executor style).

        The whole chain holds the device: per-layer launches, their
        driver calls and per-layer syncs serialize on the default
        stream, so concurrent requests cannot interleave — the reason
        the paper's host-centric LeNet lands *below* the serial
        single-GPU maximum (2.8K vs 3.6K req/s, §6.3).
        """
        with self._exclusive.request() as req:
            yield req
            for duration in durations:
                yield from self.driver.op(pool, self.profile.driver_op_cost)
                yield self.env.charge(self.profile.launch_latency
                                      + self.scaled(duration))
                yield self.env.charge(self.profile.sync_latency)
                self.kernels_launched += 1

    def child_launch(self, duration, threadblocks=1):
        """Generator: dynamic-parallelism launch from device code."""
        yield self.env.charge(self.profile.device_launch_latency)
        yield from self._run_blocks(duration, threadblocks)

    def _execute(self, duration, threadblocks):
        yield self.env.charge(self.profile.launch_latency)
        yield from self._run_blocks(duration, threadblocks)

    def _run_blocks(self, duration, threadblocks):
        if threadblocks < 1:
            raise AcceleratorError("kernel needs at least one threadblock")
        requests = [self.sm_slots.request() for _ in range(threadblocks)]
        for req in requests:
            yield req
        self.kernels_launched += 1
        try:
            yield self.env.charge(self.scaled(duration))
        finally:
            for req in requests:
                req.release()

    # -- persistent kernels -------------------------------------------------------

    def persistent_kernel(self, threadblocks, body_factory, name=None):
        """Start a persistent kernel of *threadblocks* blocks.

        ``body_factory(tb_index)`` must return a generator implementing
        that threadblock's loop; each holds one SM slot for the lifetime
        of the simulation (this is how Lynx emulates hardware
        accelerators on GPUs, §5.1).

        Returns the list of threadblock processes.
        """
        if threadblocks > self.profile.max_threadblocks:
            raise AcceleratorError(
                "%s supports at most %d resident threadblocks, asked for %d"
                % (self.name, self.profile.max_threadblocks, threadblocks))
        kernel_name = name or "%s-persistent" % self.name
        procs = []
        for tb in range(threadblocks):
            procs.append(self.env.process(
                self._persistent_block(tb, body_factory),
                name="%s-tb%d" % (kernel_name, tb)))
        self.kernels_launched += 1
        return procs

    def _persistent_block(self, tb_index, body_factory):
        req = self.sm_slots.request()
        yield req
        yield from body_factory(tb_index)

    @property
    def poll_latency(self):
        """Local-memory polling latency of a waiting threadblock."""
        return self.profile.local_poll_latency
