"""A physical server machine: CPU socket, PCIe fabric, NIC, accelerators.

Mirrors the paper's testbed nodes (§6): Xeon E5-2620v2 hosts with a
ConnectX-class RDMA NIC and one or more GPUs on the PCIe fabric.
"""

from .. import units
from ..config import XEON_E5_2620, K40M, PcieProfile
from ..errors import ConfigError
from .cpu import CpuSocket
from .gpu import GPU, CudaDriver
from .nic import RdmaNic
from .pcie import PcieFabric, PcieLink


class Machine:
    """One server host."""

    def __init__(self, env, network, ip, config, cpu_profile=XEON_E5_2620,
                 nic_rate=units.gbps(40), rng_registry=None, name=None):
        self.env = env
        self.network = network
        self.ip = ip
        self.config = config
        self.name = name or "host-%s" % ip
        if rng_registry is None:
            raise ConfigError("machine requires an RNG registry")
        self.rng_registry = rng_registry
        self.socket = CpuSocket(
            env, cpu_profile, config.cache,
            rng_registry.stream("%s.llc" % self.name), name=self.name)
        self.fabric = PcieFabric(env)
        self.nic = RdmaNic(env, network, ip, config.rdma,
                           link_rate=nic_rate, name="%s-nic" % self.name)
        nic_link = PcieLink(env, PcieProfile.gen3_x8(),
                            name="%s-nic-link" % self.name)
        self.fabric.attach("nic", nic_link)
        self.driver = CudaDriver(env, name="%s-cuda" % self.name)
        self.gpus = []
        self.devices = {}

    # -- accelerators ---------------------------------------------------------

    def add_gpu(self, profile=K40M, name=None):
        """Install a GPU on the PCIe fabric; returns it."""
        index = len(self.gpus)
        gpu_name = name or "%s-gpu%d" % (self.name, index)
        link = PcieLink(env=self.env, profile=PcieProfile.gen3_x16(),
                        name="%s-link" % gpu_name)
        gpu = GPU(self.env, profile, self.driver, pcie_link=link,
                  name=gpu_name, index=index)
        self.fabric.attach(gpu_name, link)
        self.gpus.append(gpu)
        self.devices[gpu_name] = gpu
        return gpu

    def add_nic(self, ip, nic_rate=units.gbps(40)):
        """Install an additional NIC port (its own IP) on this host.

        Needed when several independent servers share the machine (the
        Fig 9 configuration runs memcached next to Lynx on one host).
        """
        index = len([d for d in self.devices if d.startswith("nic")]) + 1
        nic = RdmaNic(self.env, self.network, ip, self.config.rdma,
                      link_rate=nic_rate,
                      name="%s-nic%d" % (self.name, index))
        link = PcieLink(self.env, PcieProfile.gen3_x8(),
                        name="%s-nic%d-link" % (self.name, index))
        self.fabric.attach("nic%d" % index, link)
        self.devices["nic%d" % index] = nic
        return nic

    def add_device(self, name, device):
        """Register a non-GPU accelerator (e.g. the Intel VCA)."""
        if name in self.devices:
            raise ConfigError("device %r already present" % name)
        self.devices[name] = device
        return device

    def pool(self, count=None, name=None):
        """A worker pool over this machine's cores (shares the LLC)."""
        return self.socket.pool(count=count, name=name)

    def __repr__(self):
        return "<Machine %s ip=%s gpus=%d>" % (self.name, self.ip, len(self.gpus))
