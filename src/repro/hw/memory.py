"""Memory regions.

A :class:`MemoryRegion` is a named location data can live in (host DRAM,
GPU device memory, SNIC memory).  Models charge its ``access_latency``
when they touch it from the owning device; remote access goes through
PCIe/RDMA models which add their own costs.
"""

from ..errors import ConfigError


class MemoryRegion:
    """A region of physical memory owned by one device."""

    def __init__(self, env, name, access_latency=0.1, exposed_on_pcie=True):
        if access_latency < 0:
            raise ConfigError("negative access latency")
        self.env = env
        self.name = name
        #: latency of a local load/store round trip from the owning device
        self.access_latency = access_latency
        #: whether the region is reachable by PCIe peers (BAR-exposed);
        #: Lynx requires this of accelerators (§4.4, requirement 1)
        self.exposed_on_pcie = exposed_on_pcie

    def local_access(self):
        """Generator charging one local access from the owning device."""
        yield self.env.charge(self.access_latency)

    def __repr__(self):
        return "<MemoryRegion %s %.2fus%s>" % (
            self.name, self.access_latency,
            "" if self.exposed_on_pcie else " (not BAR-exposed)")


#: Typical local-access latencies (us) used when building devices.
HOST_DRAM_LATENCY = 0.09
GPU_GDDR_LATENCY = 0.35
SNIC_DRAM_LATENCY = 0.12
