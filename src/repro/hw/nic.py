"""Network interface cards.

:class:`Nic` is a plain port: an RX ring and a TX serializer, both
modelled as :class:`~repro.sim.Channel` hops (the TX channel owns the
port's issue slot and serializes frames at the link rate).
:class:`RdmaNic` adds a ConnectX-class one-sided RDMA engine — the
piece Lynx uses to reach mqueues in accelerator memory, both locally
(peer-to-peer PCIe) and on remote machines (§5.5).
"""

from .. import units
from ..sim import Channel, RateMeter
from .. import telemetry
from ..net.rdma import RdmaEngine


class Nic:
    """A NIC port attached to the network fabric."""

    #: descriptors in the RX ring; overflow is dropped (drop-tail)
    RX_RING_ENTRIES = 1024

    def __init__(self, env, network, ip, link_rate=units.gbps(40), name=None,
                 rx_ring_entries=None):
        self.env = env
        self.network = network
        self.ip = ip
        self.link_rate = link_rate
        self.name = name or "nic-%s" % ip
        self.rx = Channel(env,
                          capacity=rx_ring_entries or self.RX_RING_ENTRIES,
                          name="%s-rx" % self.name)
        #: the port's TX serializer: one frame at a time at line rate
        self.tx = Channel(env, serialized=True, bandwidth=link_rate,
                          name="%s-tx" % self.name)
        self._tx = self.tx.issue  # legacy alias (hot-path state machines)
        self.tx_rate = RateMeter(env, name="%s-txrate" % self.name)
        self.rx_rate = RateMeter(env, name="%s-rxrate" % self.name)
        # Telemetry (DESIGN.md §4.9): live meters register directly,
        # and the TX serializer's issue-slot gauge is the port's link
        # utilization.  (RX-ring drop-tail is accounted on the wire
        # channel, registered by Network.attach as net.wire.<ip>.drops.)
        reg = telemetry.registry()
        base = "hw.nic.%s." % ip
        reg.register(base + "rx.pkts", self.rx_rate)
        reg.register(base + "tx.pkts", self.tx_rate)
        reg.register(base + "tx.util", self.tx.issue.utilization)
        network.attach(ip, self)

    def send(self, msg):
        """Generator: serialize *msg* out of the port."""
        yield from self.tx.transfer(msg.wire_size)
        self.tx_rate.tick()
        self.network.deliver(msg)

    def send_async(self, msg):
        """Fire-and-forget variant of :meth:`send`."""
        self.env.detached(self.send(msg))

    def recv(self):
        """Event: next received message (also counts RX rate)."""
        get = self.rx.get()
        get.callbacks.append(lambda evt: self.rx_rate.tick())
        return get


class RdmaNic(Nic):
    """A NIC with a hardware RDMA engine (ConnectX-4/5, Bluefield ASIC)."""

    def __init__(self, env, network, ip, rdma_profile,
                 link_rate=units.gbps(40), name=None):
        super().__init__(env, network, ip, link_rate, name)
        self.rdma = RdmaEngine(env, rdma_profile, name="%s-rdma" % self.name)
