"""Network interface cards.

:class:`Nic` is a plain port (RX queue + serialized TX).
:class:`RdmaNic` adds a ConnectX-class one-sided RDMA engine — the
piece Lynx uses to reach mqueues in accelerator memory, both locally
(peer-to-peer PCIe) and on remote machines (§5.5).
"""

from .. import units
from ..sim import Resource, Store, RateMeter
from ..net.rdma import RdmaEngine


class Nic:
    """A NIC port attached to the network fabric."""

    #: descriptors in the RX ring; overflow is dropped (drop-tail)
    RX_RING_ENTRIES = 1024

    def __init__(self, env, network, ip, link_rate=units.gbps(40), name=None,
                 rx_ring_entries=None):
        self.env = env
        self.network = network
        self.ip = ip
        self.link_rate = link_rate
        self.name = name or "nic-%s" % ip
        self.rx = Store(env, capacity=rx_ring_entries or self.RX_RING_ENTRIES,
                        name="%s-rx" % self.name)
        self._tx = Resource(env, 1, name="%s-tx" % self.name)
        self.tx_rate = RateMeter(env, name="%s-txrate" % self.name)
        self.rx_rate = RateMeter(env, name="%s-rxrate" % self.name)
        network.attach(ip, self)

    def send(self, msg):
        """Generator: serialize *msg* out of the port."""
        with self._tx.request() as req:
            yield req
            yield self.env.charge(msg.wire_size / self.link_rate)
        self.tx_rate.tick()
        self.network.deliver(msg)

    def send_async(self, msg):
        """Fire-and-forget variant of :meth:`send`."""
        self.env.detached(self.send(msg))

    def recv(self):
        """Event: next received message (also counts RX rate)."""
        get = self.rx.get()
        get.callbacks.append(lambda evt: self.rx_rate.tick())
        return get


class RdmaNic(Nic):
    """A NIC with a hardware RDMA engine (ConnectX-4/5, Bluefield ASIC)."""

    def __init__(self, env, network, ip, rdma_profile,
                 link_rate=units.gbps(40), name=None):
        super().__init__(env, network, ip, link_rate, name)
        self.rdma = RdmaEngine(env, rdma_profile, name="%s-rdma" % self.name)
