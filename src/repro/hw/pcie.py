"""PCIe links and peer-to-peer DMA paths.

Lynx's data plane rides on PCIe peer-to-peer DMA between the (Smart)NIC
and accelerator BARs (Figure 3): the host CPU is not on the path.  We
model each link as a pair of per-direction serialized channels with a
fixed traversal latency plus size/bandwidth serialization delay.
"""

from ..errors import ConfigError
from ..sim import Resource


class PcieLink:
    """A bidirectional PCIe link (e.g. device <-> switch/root complex)."""

    def __init__(self, env, profile, name=None):
        self.env = env
        self.profile = profile
        self.name = name or profile.name
        self._channel = {
            "up": Resource(env, 1, name="%s-up" % self.name),
            "down": Resource(env, 1, name="%s-down" % self.name),
        }

    def transfer(self, nbytes, direction="down"):
        """Generator: move *nbytes* across the link in *direction*."""
        if direction not in self._channel:
            raise ConfigError("bad PCIe direction %r" % direction)
        channel = self._channel[direction]
        with channel.request() as req:
            yield req
            yield self.env.charge(
                self.profile.latency + nbytes / self.profile.bandwidth)

    def transfer_time(self, nbytes):
        """Uncontended transfer time for *nbytes* (for analytic checks)."""
        return self.profile.latency + nbytes / self.profile.bandwidth


class PcieFabric:
    """The PCIe topology inside one machine.

    Devices attach with their link; a DMA between two devices traverses
    both links (through the switch / root complex), which adds a small
    hop latency.  P2P DMA never touches a CPU core — exactly the
    property Lynx relies on.
    """

    def __init__(self, env, hop_latency=0.2):
        self.env = env
        self.hop_latency = hop_latency
        self._links = {}

    def attach(self, device_name, link):
        if device_name in self._links:
            raise ConfigError("device %r already attached" % device_name)
        self._links[device_name] = link

    def link_of(self, device_name):
        try:
            return self._links[device_name]
        except KeyError:
            raise ConfigError("device %r not on this PCIe fabric" % device_name)

    def dma(self, src, dst, nbytes):
        """Generator: peer-to-peer DMA of *nbytes* from *src* to *dst*."""
        src_link = self.link_of(src)
        dst_link = self.link_of(dst)
        yield from src_link.transfer(nbytes, "up")
        yield self.env.charge(self.hop_latency)
        yield from dst_link.transfer(nbytes, "down")

    def devices(self):
        return tuple(self._links)
