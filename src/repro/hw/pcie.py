"""PCIe links and peer-to-peer DMA paths.

Lynx's data plane rides on PCIe peer-to-peer DMA between the (Smart)NIC
and accelerator BARs (Figure 3): the host CPU is not on the path.  Each
link direction is one serialized :class:`~repro.sim.Channel` with a
fixed traversal latency plus size/bandwidth serialization delay, held
while the transfer occupies the direction.
"""

from ..errors import ConfigError
from ..sim import Channel


class PcieLink:
    """A bidirectional PCIe link (e.g. device <-> switch/root complex)."""

    def __init__(self, env, profile, name=None):
        self.env = env
        self.profile = profile
        self.name = name or profile.name
        self._channel = {
            "up": Channel(env, serialized=True,
                          bandwidth=profile.bandwidth,
                          name="%s-up" % self.name),
            "down": Channel(env, serialized=True,
                            bandwidth=profile.bandwidth,
                            name="%s-down" % self.name),
        }

    def channel(self, direction):
        """The Channel modelling *direction* (for tests/stats)."""
        try:
            return self._channel[direction]
        except KeyError:
            raise ConfigError("bad PCIe direction %r" % direction)

    def transfer(self, nbytes, direction="down"):
        """Generator: move *nbytes* across the link in *direction*.

        The fixed traversal latency is part of the occupancy (the
        direction is held for latency + serialization, matching how a
        posted-write burst owns the lane), so ``post_latency`` is zero.
        """
        channel = self.channel(direction)
        yield from channel.transfer(
            nbytes,
            occupancy=self.profile.latency + nbytes / self.profile.bandwidth,
            post_latency=0.0)

    def transfer_time(self, nbytes):
        """Uncontended transfer time for *nbytes* (for analytic checks)."""
        return self.profile.latency + nbytes / self.profile.bandwidth


class PcieFabric:
    """The PCIe topology inside one machine.

    Devices attach with their link; a DMA between two devices traverses
    both links (through the switch / root complex), which adds a small
    hop latency.  P2P DMA never touches a CPU core — exactly the
    property Lynx relies on.
    """

    def __init__(self, env, hop_latency=0.2):
        self.env = env
        self.hop_latency = hop_latency
        self._links = {}

    def attach(self, device_name, link):
        if device_name in self._links:
            raise ConfigError("device %r already attached" % device_name)
        self._links[device_name] = link

    def link_of(self, device_name):
        try:
            return self._links[device_name]
        except KeyError:
            raise ConfigError("device %r not on this PCIe fabric" % device_name)

    def dma(self, src, dst, nbytes):
        """Generator: peer-to-peer DMA of *nbytes* from *src* to *dst*."""
        src_link = self.link_of(src)
        dst_link = self.link_of(dst)
        yield from src_link.transfer(nbytes, "up")
        yield self.env.charge(self.hop_latency)
        yield from dst_link.transfer(nbytes, "down")

    def devices(self):
        return tuple(self._links)
