"""SmartNIC device models (Figure 2).

* :class:`BluefieldSNIC` — processor-based SNIC: 8 ARM A72 cores behind
  the ConnectX ASIC, running BlueOS Linux with the VMA user-level stack,
  multi-homed with its own IP (§2).  Lynx's complete prototype runs
  here.
* :class:`InnovaSNIC` — bump-in-the-wire FPGA SNIC running a NICA-style
  AFU (§5.2).  Extremely high message rate, but (faithfully to the
  paper's prototype) receive-path only and requiring a host CPU helper
  thread per custom ring.
"""

from ..errors import ConfigError
from ..sim import Channel, RateMeter
from .cpu import CpuSocket, CorePool
from .nic import RdmaNic


class BluefieldSNIC:
    """Mellanox Bluefield: ARM cores + NIC ASIC + RDMA engine."""

    def __init__(self, env, network, ip, profile, cache_profile, rng,
                 name=None):
        self.env = env
        self.profile = profile
        self.name = name or "bluefield-%s" % ip
        self.nic = RdmaNic(env, network, ip, profile.rdma,
                           link_rate=profile.link_rate,
                           name="%s-port" % self.name)
        self.socket = CpuSocket(env, profile.cpu, cache_profile,
                                rng, name=self.name)
        if profile.worker_cores > profile.cpu.cores:
            raise ConfigError("worker_cores exceeds SNIC core count")
        #: cores Lynx may use (§6.1: 7 of the 8; one is left to the OS)
        self.workers = CorePool(env, profile.cpu,
                                count=profile.worker_cores,
                                llc=self.socket.llc,
                                name="%s-workers" % self.name)
        self.stack_profile = profile.stack

    @property
    def rdma(self):
        return self.nic.rdma


class InnovaSNIC:
    """Mellanox Innova Flex: FPGA AFU in front of the NIC ASIC."""

    def __init__(self, env, network, ip, profile, name=None):
        self.env = env
        self.profile = profile
        self.name = name or "innova-%s" % ip
        self.nic = RdmaNic(env, network, ip, profile.rdma,
                           link_rate=profile.link_rate,
                           name="%s-port" % self.name)
        # The AFU is a hardware pipeline, modelled as one serialized
        # Channel: messages are accepted at the AFU rate (the channel's
        # issue gap) and then flow through with a fixed cut-through
        # latency, overlapping each other.
        self._gap = 1.0 / profile.afu_rate_pps
        self.pipe = Channel(env, serialized=True, min_occupancy=self._gap,
                            latency=profile.pipeline_latency,
                            name="%s-afu" % self.name)
        self._issue = self.pipe.issue  # legacy alias (AFU admission)
        self.processed = RateMeter(env, name="%s-pps" % self.name)

    @property
    def rdma(self):
        return self.nic.rdma

    def afu_process(self, msg):
        """Generator: pass one message through the AFU UDP pipeline."""
        # Admission (issue gap) through the pipe; the rate meter ticks
        # at acceptance time, before the cut-through latency elapses.
        yield from self.pipe.transfer(msg.wire_size, post_latency=0.0)
        self.processed.tick()
        yield self.env.charge(self.profile.pipeline_latency)

    def check_tx_supported(self):
        """The paper's Innova prototype implements only the receive path."""
        if self.profile.rx_only:
            raise ConfigError(
                "Innova prototype implements the receive path only (§5.2)")
