"""Intel Visual Compute Accelerator (§5.4).

Three independent E3 nodes behind a PCIe switch, each running Linux
with its own IP, reachable from the host via IP-over-PCIe tunnelling.
Supports SGX enclaves.  Two network paths exist in the paper:

* the stock path — host network bridge, tunnelled through the host
  kernel stack (baseline in §6.2's VCA experiment);
* the Lynx path — mqueues polled by the node.  The paper could not
  enable RDMA directly into VCA memory (a suspected bug), so mqueues
  live in *host* memory mapped into the VCA; each access from the node
  pays a PCIe crossing.  We model the same workaround.
"""

from ..errors import ConfigError
from .cpu import CorePool
from .memory import MemoryRegion, HOST_DRAM_LATENCY


class VcaNode:
    """One of the VCA's three E3 processors."""

    def __init__(self, env, vca, index, cache_profile, rng):
        self.env = env
        self.vca = vca
        self.index = index
        self.name = "%s-node%d" % (vca.name, index)
        self.pool = CorePool(env, vca.profile.cpu, count=1, llc=None,
                             name="%s-cpu" % self.name)
        self.enclave_calls = 0

    def enclave_call(self, compute_us):
        """Generator: enter the SGX enclave, compute, and exit.

        The transition cost covers the ecall/ocall pair; the compute
        itself runs on the node's core.
        """
        self.enclave_calls += 1
        yield self.env.charge(self.vca.profile.enclave_transition)
        yield from self.pool.run_compute(compute_us)
        yield self.env.charge(self.vca.profile.enclave_transition / 2)

    def mqueue_access_latency(self):
        """Latency of one mqueue access from this node.

        With the paper's workaround the ring lives in host memory, so
        every poll/enqueue crosses PCIe.
        """
        if self.vca.profile.mqueue_in_host_memory:
            return (self.vca.pcie_crossing
                    + self.vca.profile.mqueue_poll_overhead
                    + self.vca.mqueue_memory.access_latency)
        return self.vca.mqueue_memory.access_latency


class VcaNodeAccelerator:
    """Adapter making a VCA node a first-class Lynx accelerator.

    The paper's §5.4 point is that integrating the VCA took "4 lines of
    code": the accelerator-facing contract is tiny.  This adapter is the
    explicit form of that contract — ``memory``, ``poll_latency`` and
    ``persistent_kernel`` — so ``LynxRuntime.start_gpu_service`` (and
    pipelines) work on VCA nodes exactly as on GPUs.
    """

    def __init__(self, node):
        self.node = node
        self.name = "%s-accel" % node.name
        #: with the §5.4 workaround, mqueues live in host memory
        self.memory = node.vca.mqueue_memory
        self.profile = None  # no write barrier needed

    @property
    def poll_latency(self):
        return self.node.mqueue_access_latency()

    def scaled(self, duration):
        """App durations are E3-core microseconds (no rescaling)."""
        return duration

    def child_launch(self, duration, threadblocks=1):
        """VCA "kernels" are just enclave/CPU work on the node."""
        yield from self.node.pool.run_compute(duration)

    def persistent_kernel(self, count, body_factory, name=None):
        """Start *count* polling loops on the node (its serving threads)."""
        procs = []
        for index in range(count):
            procs.append(self.node.env.process(
                body_factory(index),
                name="%s-loop%d" % (name or self.name, index)))
        return procs


class IntelVCA:
    """The VCA board: three nodes on an internal PCIe switch."""

    def __init__(self, env, profile, cache_profile, rng, name="vca",
                 pcie_crossing=0.9):
        if profile.nodes < 1:
            raise ConfigError("VCA needs at least one node")
        self.env = env
        self.profile = profile
        self.name = name
        #: one PCIe traversal between host root complex and a VCA node
        self.pcie_crossing = pcie_crossing
        #: where mqueues actually live (host DRAM, per the workaround)
        self.mqueue_memory = MemoryRegion(
            env, "%s-mqueue-mem" % name, access_latency=HOST_DRAM_LATENCY)
        self.nodes = [VcaNode(env, self, i, cache_profile, rng)
                      for i in range(profile.nodes)]
