"""Lynx: the paper's core contribution.

The SNIC-resident generic network server (:class:`LynxServer`), the
mqueue abstraction, RDMA-backed remote queue management, the
accelerator-side I/O shim, and the host-side runtime that wires a
service together.
"""

from .mqueue import MQueue, MQueueEntry, SERVER, CLIENT, METADATA_BYTES
from .dispatch import (
    DispatchPolicy,
    RoundRobin,
    LeastLoaded,
    ClientSteering,
    make_policy,
)
from .rmq import RemoteMQManager
from .server import LynxServer
from .iolib import AcceleratorIO
from .runtime import LynxRuntime, AppContext, GpuService
from .pipeline import PipelineHandle, PipelineStage, start_pipeline

__all__ = [
    "MQueue",
    "MQueueEntry",
    "SERVER",
    "CLIENT",
    "METADATA_BYTES",
    "DispatchPolicy",
    "RoundRobin",
    "LeastLoaded",
    "ClientSteering",
    "make_policy",
    "RemoteMQManager",
    "LynxServer",
    "AcceleratorIO",
    "LynxRuntime",
    "AppContext",
    "GpuService",
    "PipelineStage",
    "PipelineHandle",
    "start_pipeline",
]
