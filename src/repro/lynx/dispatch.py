"""Message dispatching policies (§4.2).

The ingress-side Message Dispatcher picks the mqueue a request goes to:
round-robin / least-loaded for stateless services, client steering for
stateful ones.
"""

import zlib

from ..errors import ConfigError


class DispatchPolicy:
    """Base class: pick an mqueue for an incoming message."""

    def select(self, mqueues, msg):
        """Return the mqueue that should receive *msg*."""
        raise NotImplementedError


class RoundRobin(DispatchPolicy):
    """Cycle through the mqueues (the paper's default, §4.3)."""

    def __init__(self):
        self._next = 0

    def select(self, mqueues, msg):
        """Pick the next mqueue in rotation."""
        if not mqueues:
            raise ConfigError("no mqueues bound")
        mq = mqueues[self._next % len(mqueues)]
        self._next += 1
        return mq


class LeastLoaded(DispatchPolicy):
    """Pick the mqueue with the fewest in-flight requests."""

    def select(self, mqueues, msg):
        """Pick the mqueue with the lowest RX occupancy."""
        if not mqueues:
            raise ConfigError("no mqueues bound")
        return min(mqueues, key=lambda mq: mq.rx_occupancy)


class ClientSteering(DispatchPolicy):
    """Stateful services: a given client always lands on the same mqueue."""

    def select(self, mqueues, msg):
        """Hash the client address onto a stable mqueue."""
        if not mqueues:
            raise ConfigError("no mqueues bound")
        key = "%s:%d" % (msg.src.ip, msg.src.port)
        digest = zlib.crc32(key.encode("utf-8"))
        return mqueues[digest % len(mqueues)]


def make_policy(name):
    """Factory by name (used by runtime configuration)."""
    policies = {
        "round-robin": RoundRobin,
        "least-loaded": LeastLoaded,
        "steering": ClientSteering,
    }
    try:
        return policies[name]()
    except KeyError:
        raise ConfigError("unknown dispatch policy %r (have: %s)"
                          % (name, ", ".join(sorted(policies))))
