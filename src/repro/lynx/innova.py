"""Lynx on the Innova Flex FPGA SNIC (§5.2) — receive path only.

The paper's partial prototype implements the Lynx network server as a
NICA AFU: an on-FPGA UDP stack parses each packet, appends the 4-byte
metadata and places the payload onto a custom ring (the mqueue) in
accelerator memory over a UC queue pair.  Two prototype limitations are
modelled faithfully:

* only the receive path exists (no responses are sent);
* the UC custom ring needs a host CPU helper thread to refill the QP
  receive queue and handle flow control — a per-message cost on a host
  core.
"""

from ..errors import ConfigError
from ..lynx.dispatch import RoundRobin
from ..lynx.mqueue import METADATA_BYTES, MQueueEntry, SERVER
from ..sim import Channel, RateMeter

#: host helper-thread CPU cost per delivered message (QP refill).
#: The paper's helper keeps up with the full 7.4M pps AFU rate, so the
#: refill is a batched, sub-cycle operation.
HELPER_COST_US = 0.12


class InnovaLynxServer:
    """The AFU-resident Lynx receive pipeline."""

    def __init__(self, env, snic, helper_pool, name=None):
        if snic.profile.needs_cpu_helper and helper_pool is None:
            raise ConfigError(
                "the Innova prototype needs a host CPU helper thread (§5.2)")
        self.env = env
        self.snic = snic
        self.helper_pool = helper_pool
        self.name = name or "lynx-innova@%s" % snic.nic.ip
        self._ports = {}
        self._qps = {}
        self.delivered = RateMeter(env, name="%s-delivered" % self.name)
        self.responses = RateMeter(env, name="%s-resps" % self.name)
        self.dropped = 0
        env.process(self._rx_loop(), name="%s-rx" % self.name)
        # §5.2: the prototype's TX limitation "is not fundamental".  In
        # the projected full configuration (rx_only=False) the AFU also
        # polls TX doorbells over one-sided RDMA and sends responses
        # through its on-FPGA UDP stack.
        self._doorbells = Channel(env, name="%s-doorbells" % self.name)
        if not snic.profile.rx_only:
            env.process(self._tx_loop(), name="%s-tx" % self.name)

    def bind(self, port, mqueues, policy=None, accelerator_memory=None):
        """Listen on *port*, dispatching into *mqueues* (AFU table entry).

        The prototype uses UC custom rings (hence the CPU helper); the
        projected full configuration uses one-sided RDMA over RC, which
        also enables the TX path's doorbell reads.
        """
        memory = accelerator_memory or mqueues[0].memory
        from ..net.rdma import RC, UC

        qp_type = UC if self.snic.profile.needs_cpu_helper else RC
        qp = self.snic.rdma.connect(memory, name="innova-qp-%d" % port,
                                    qp_type=qp_type)
        self._ports[port] = (policy or RoundRobin(), list(mqueues))
        self._qps[port] = qp
        if not self.snic.profile.rx_only:
            for mq in mqueues:
                mq.tx_doorbell = self._doorbells
                mq.bound_port = port

    def send_path_unsupported(self):
        """§5.2: the prototype has no transmit path."""
        self.snic.check_tx_supported()

    def _rx_loop(self):
        while True:
            msg = yield self.snic.nic.recv()
            # AFU admission: the pipe channel accepts one message per
            # 1/afu_rate; everything downstream is pipelined.
            yield from self.snic.pipe.transfer(msg.wire_size,
                                               post_latency=0.0)
            self.snic.processed.tick()
            self.env.detached(self._deliver(msg))

    def _deliver(self, msg):
        yield self.env.charge(self.snic.profile.pipeline_latency)
        binding = self._ports.get(msg.dst.port)
        if binding is None:
            self.dropped += 1
            return
        policy, mqueues = binding
        mq = policy.select(mqueues, msg)
        if not mq.claim_rx_slot():
            self.dropped += 1
            return
        qp = self._qps[msg.dst.port]
        yield from self.snic.rdma.write(qp, msg.size + METADATA_BYTES)
        # UC custom ring: host helper refills the receive queue.
        if self.snic.profile.needs_cpu_helper:
            yield from self.helper_pool.run_calibrated(HELPER_COST_US)
        entry = MQueueEntry(payload=msg.payload, size=msg.size,
                            request_msg=msg)
        mq.complete_rx(entry)
        self.delivered.tick()

    # -- projected TX path (§5.2 "future" configuration) -------------------

    def _tx_loop(self):
        env = self.env
        while True:
            mq = yield self._doorbells.get()
            while True:
                entry = mq.tx_ring.try_get()
                if entry is None:
                    break
                env.detached(self._send(mq, entry))

    def _send(self, mq, entry):
        qp = self._qps[mq.bound_port]
        # one-sided read fetches the response from the ring...
        yield from self.snic.rdma.read(qp, entry.size + METADATA_BYTES)
        # ...and the AFU's UDP stack emits it at line rate
        yield from self.snic.pipe.transfer(entry.size + METADATA_BYTES,
                                           post_latency=0.0)
        yield self.env.charge(self.snic.profile.pipeline_latency)
        request = entry.request_msg
        if request is None:
            return
        response = request.reply(entry.payload, created_at=self.env.now,
                                 size=entry.size)
        self.responses.tick()
        yield from self.snic.nic.send(response)
