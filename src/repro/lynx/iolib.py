"""The accelerator-side I/O library (§5.3).

The paper's point is that this layer is *tiny* — thin wrappers over the
mqueue rings with zero-copy send/recv (the VCA version is 20 lines of C
and links into an SGX enclave).  Every operation touches only
accelerator-local memory; all heavy lifting happens on the SNIC.
"""

from ..errors import ConfigError
from ..net.packet import payload_size
from .mqueue import MQueueEntry


class AcceleratorIO:
    """send/recv wrappers over mqueues for one accelerator context."""

    def __init__(self, env, local_latency):
        if local_latency < 0:
            raise ConfigError("negative local access latency")
        self.env = env
        #: cost of one local-memory ring access (poll observe / enqueue)
        self.local_latency = local_latency
        self.received = 0
        self.sent = 0

    def recv(self, mq):
        """Generator: block until a request is available on *mq*.

        Returns the :class:`MQueueEntry`.  The cost on top of waiting is
        a single local-memory access — the doorbell poll that observed
        the new message (this is the "lightweight I/O" property §4.4
        demands from accelerators).
        """
        entry = yield mq.pop_rx()
        yield self.env.charge(self.local_latency)
        self.received += 1
        if entry.request_msg is not None:
            entry.request_msg.meta["t_accel_start"] = self.env.now
        return entry

    def send(self, mq, payload, size=None, reply_to=None, error=0):
        """Generator: enqueue a message on *mq*'s TX ring and ring the
        doorbell.

        For server mqueues pass the originating entry as *reply_to* so
        the SNIC can route the response to the right client.  Client
        mqueues need no addressing — their destination is static.
        """
        nbytes = payload_size(payload) if size is None else size
        entry = MQueueEntry(
            payload=payload, size=nbytes, error=error,
            request_msg=reply_to.request_msg if reply_to is not None else None)
        if entry.request_msg is not None:
            entry.request_msg.meta["t_accel_done"] = self.env.now
        # Local write of payload+metadata, then the control register.
        yield self.env.charge(self.local_latency)
        yield mq.push_tx(entry)
        mq.ring_doorbell()
        self.sent += 1
        return entry
