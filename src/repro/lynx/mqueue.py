"""Message queues (mqueues) — Lynx's accelerator-facing abstraction (§4.2).

An mqueue is a pair of producer-consumer rings (RX and TX) plus
notification registers, resident in **accelerator local memory** so that
the accelerator's enqueue/dequeue cost is exactly a local memory access.
The SNIC reaches the rings remotely via one-sided RDMA (see
:mod:`repro.lynx.rmq`).

Both rings are :class:`~repro.sim.Channel` instances; the RX ring's
credit accounting models what the SNIC-side shadow indices can see
(slots claimed by in-flight RDMA writes count as occupied), and its
``claim_wait`` credit event is what the manager's backpressure mode
parks on.

Two types (§4.3):

* **server** mqueues are connection-less and bound to a listening port;
  a response is routed back to whichever client sent the request
  (multiple client connections multiplex onto one ring);
* **client** mqueues carry requests to one statically-configured
  destination (e.g. a memcached backend) and receive its responses.
"""

from ..errors import ConfigError
from ..sim import Channel, batchexec
from .. import telemetry

SERVER = "server"
CLIENT = "client"

#: error codes carried in the 4-byte metadata (§5.1)
ERR_NONE = 0
ERR_CONNECTION = 1
ERR_TIMEOUT = 2
#: the accelerator behind this mqueue is dark; the SNIC shed the request
ERR_UNAVAILABLE = 3

#: §5.1: 4 bytes of metadata (size, error, doorbell) coalesced with the
#: payload into a single RDMA write.
METADATA_BYTES = 4


def _next_mq_id(env):
    """Per-environment mqueue sequence for default names.

    Environment-scoped (not a module global) so forked sweep workers and
    parallel points derive identical default names from identical
    testbeds — registry keys must not depend on process history.
    """
    seq = getattr(env, "_mq_seq", 0) + 1
    env._mq_seq = seq
    return seq


class MQueueEntry:
    """One ring slot: payload plus the 4-byte control metadata."""

    __slots__ = ("payload", "size", "error", "request_msg", "enqueued_at")

    def __init__(self, payload, size, request_msg=None, error=0,
                 enqueued_at=0.0):
        self.payload = payload
        self.size = size
        self.error = error
        #: the network message this entry came from (zero-copy reference;
        #: carries reply routing: source address, TCP connection, ...)
        self.request_msg = request_msg
        self.enqueued_at = enqueued_at


class MQueue:
    """One mqueue: RX + TX rings in accelerator memory."""

    def __init__(self, env, memory, entries, kind=SERVER, destination=None,
                 proto="udp", name=None):
        if entries < 1:
            raise ConfigError("mqueue needs at least one ring entry")
        if kind not in (SERVER, CLIENT):
            raise ConfigError("unknown mqueue kind %r" % kind)
        if kind == CLIENT and destination is None:
            raise ConfigError(
                "client mqueues bind their destination at init (§4.3)")
        if kind == SERVER and destination is not None:
            raise ConfigError("server mqueues are connection-less")
        self.env = env
        self.mq_id = _next_mq_id(env)
        self.memory = memory
        self.entries = entries
        self.kind = kind
        self.destination = destination
        self.proto = proto
        self.name = name or "mq%d" % self.mq_id
        # Rings as Channels: the RX ring's claim accounting is the
        # SNIC-visible occupancy (in-flight RDMA writes included).
        self.rx_ring = Channel(env, capacity=entries,
                               name="%s-rx" % self.name)
        self.tx_ring = Channel(env, capacity=entries,
                               name="%s-tx" % self.name)
        #: doorbell channel to the Remote MQ Manager (set on registration)
        self.tx_doorbell = None
        #: source port the SNIC uses for this client mqueue's traffic
        self.src_port = None
        #: TCP connection of a client mqueue (established at setup)
        self.conn = None
        #: the port binding that owns this server mqueue (at most one)
        self.bound_port = None
        #: deliveries parked on RX-ring credits (manager backpressure)
        self.parked = 0
        #: total deliveries that ever parked (monotonic; `parked` is the
        #: instantaneous count)
        self.park_waits = 0
        self.delivered = 0
        self.dropped = 0
        self.sent = 0
        # Telemetry (DESIGN.md §4.9): pull instruments read the plain
        # attributes above at snapshot time — the data plane pays
        # nothing for being observable.
        reg = telemetry.registry()
        base = "mqueue.%s." % self.name
        reg.pull_peak(base + "depth", lambda: self.rx_ring.claimed_peak)
        reg.pull(base + "delivered", lambda: self.delivered)
        reg.pull(base + "dropped", lambda: self.dropped)
        reg.pull(base + "sent", lambda: self.sent)
        reg.pull(base + "backpressure_waits", lambda: self.park_waits)

    # -- SNIC-side (RDMA producer) ---------------------------------------------

    def claim_rx_slot(self):
        """Reserve an RX slot if one is free; False means drop (UDP)."""
        if self.rx_ring.try_claim():
            return True
        self.dropped += 1
        return False

    def complete_rx(self, entry):
        """Finish an RDMA delivery: the entry becomes visible on the ring."""
        entry.enqueued_at = self.env.now
        self.delivered += 1
        # The put cannot block: claim accounting guarantees space
        # (complete_claim raises CapacityError otherwise).
        self.rx_ring.complete_claim(entry)

    def complete_rx_frame(self, entry):
        """Frame-native :meth:`complete_rx` (DESIGN.md §4.14).

        A buffered ring put schedules one completion event that carries
        no callbacks — pure scheduler churn.  While the ring is plain
        (no parked consumer to wake, no tracer, a free slot and a held
        claim), push the entry inline and burn the put's sequence
        number: the entry lands in the same slot with the same
        ``enqueued_at`` and the same counter updates, and every later
        event keeps its scalar sequence number.  Anything else falls
        back to the scalar put — which is the path that can actually
        wake a consumer.
        """
        ring = self.rx_ring
        if (ring._getters or ring._tracer is not None
                or len(ring._items) >= ring.capacity or ring._claimed <= 0):
            self.complete_rx(entry)
            return
        entry.enqueued_at = self.env.now
        self.delivered += 1
        ring.delivered += 1
        ring._push_item(entry)
        ring.total_put += 1
        batchexec.burn(self.env, 1)

    def abort_rx(self):
        """Release a claimed slot after a failed delivery."""
        self.rx_ring.abort_claim()

    # -- accelerator-side ---------------------------------------------------------

    def pop_rx(self):
        """Event: the accelerator's blocking dequeue from the RX ring."""
        get = self.rx_ring.get()
        get.callbacks.append(self._on_rx_pop)
        return get

    def _on_rx_pop(self, event):
        # Freed credit goes to a parked producer first (backpressure).
        self.rx_ring.release_claim()

    def push_tx(self, entry):
        """Event: the accelerator's enqueue onto the TX ring."""
        entry.enqueued_at = self.env.now
        self.sent += 1
        return self.tx_ring.put(entry)

    def ring_doorbell(self):
        """Notify the SNIC that TX work is pending (doorbell register)."""
        if self.tx_doorbell is None:
            raise ConfigError("mqueue %s is not registered with an RMQ manager"
                              % self.name)
        self.tx_doorbell.put(self)

    # -- fault recovery -----------------------------------------------------------

    def drain(self):
        """Flush both rings after an accelerator crash; returns entries lost.

        RX entries release their producer credits as they are discarded
        — parked backpressure deliveries wake with a fresh slot, which
        is exactly how service resumes after the restart.  Unconsumed TX
        entries (responses the dead kernel never shipped) are dropped.
        """
        lost = 0
        while self.rx_ring.try_get() is not None:
            self.rx_ring.release_claim()
            lost += 1
        while self.tx_ring.try_get() is not None:
            lost += 1
        self.dropped += lost
        return lost

    # -- introspection -------------------------------------------------------------

    @property
    def rx_occupancy(self):
        return self.rx_ring.claimed

    def __repr__(self):
        return "<MQueue %s kind=%s rx=%d tx=%d dropped=%d>" % (
            self.name, self.kind, len(self.rx_ring), len(self.tx_ring),
            self.dropped)
