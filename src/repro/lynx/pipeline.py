"""Accelerator composition pipelines (the paper's stated next step).

§1/§8: "Lynx will serve as a stepping stone for a general
infrastructure targeting multi-accelerator systems which will enable
efficient composition of accelerators and CPUs in a single
application."  This module builds that composition out of the
mechanisms the paper already has:

* every stage is an ordinary Lynx GPU service on its own port;
* a stage reaches the next stage through a **client mqueue** whose
  static destination is the SNIC itself (a hairpin through the switch) —
  no new protocol, no host CPU;
* the final stage's result bubbles back along the chain of pending
  requests, and the front stage's server mqueue routes it to the
  original client.

Failure semantics come for free: a dead/stuck stage surfaces as an
error entry (§5.1 metadata) at its upstream neighbour.
"""

from ..errors import ConfigError
from ..net.packet import Address, UDP
from .mqueue import ERR_NONE

#: name of the implicit backend wiring stage i to stage i+1
NEXT_STAGE = "__next_stage__"

#: internal ports used for the non-public pipeline stages
_STAGE_PORT_BASE = 9800


class PipelineStage:
    """One accelerator stage: (accelerator, app, mqueue count)."""

    def __init__(self, gpu, app, n_mqueues=1, remote=False):
        self.gpu = gpu
        self.app = app
        self.n_mqueues = n_mqueues
        self.remote = remote


class _StageApp:
    """Wraps a stage's app: compute, then relay downstream if any."""

    use_dynamic_parallelism = False

    def __init__(self, app, has_next):
        self.app = app
        self.has_next = has_next
        self.name = "%s-stage" % app.name
        self.relay_errors = 0

    def handle(self, ctx, entry):
        if entry.error != ERR_NONE:
            self.relay_errors += 1
            return b""
        result = yield from self.app.handle(ctx, entry)
        if result is None or not self.has_next:
            return result
        reply = yield from ctx.call(NEXT_STAGE, result)
        if reply.error != ERR_NONE:
            self.relay_errors += 1
            return b""
        return reply.payload


class PipelineHandle:
    """Handle onto a started pipeline (stats for tests/examples)."""

    def __init__(self, services, stage_apps, ports):
        self.services = services
        self.stage_apps = stage_apps
        self.ports = ports

    @property
    def depth(self):
        return len(self.services)

    @property
    def relay_errors(self):
        return sum(app.relay_errors for app in self.stage_apps)


def start_pipeline(runtime, stages, port, proto=UDP):
    """Generator: bring up a multi-accelerator pipeline.

    *stages* is an ordered list of :class:`PipelineStage`; the first
    stage listens on the public *port*, later stages on internal ports.
    Returns a :class:`PipelineHandle`.
    """
    if not stages:
        raise ConfigError("a pipeline needs at least one stage")
    server = runtime.server
    services = []
    stage_apps = []
    ports = []
    next_port = None
    for index in reversed(range(len(stages))):
        stage = stages[index]
        stage_port = port if index == 0 else _STAGE_PORT_BASE + index
        wrapped = _StageApp(stage.app, has_next=next_port is not None)
        backends = {}
        if next_port is not None:
            backends[NEXT_STAGE] = (Address(server.ip, next_port), proto)
        service = yield from runtime.start_gpu_service(
            stage.gpu, wrapped, port=stage_port,
            n_mqueues=stage.n_mqueues, proto=proto, backends=backends,
            remote=stage.remote)
        services.append(service)
        stage_apps.append(wrapped)
        ports.append(stage_port)
        next_port = stage_port
    services.reverse()
    stage_apps.reverse()
    ports.reverse()
    return PipelineHandle(services, stage_apps, ports)
