"""Remote Message Queue Manager (§4.2, §5.1).

Runs on the SNIC and owns all RDMA access to one accelerator's mqueues:

* **ingress** — after the dispatcher picks an mqueue, the manager posts
  a one-sided RDMA write of payload + 4B coalesced metadata into the RX
  ring.  If the accelerator requires the PCIe-ordering workaround
  (§5.1), delivery becomes three operations (data write, barrier read,
  doorbell write) and coalescing is disabled, costing ~5us extra.
  With ``LynxProfile.batch_size > 1`` the manager coalesces up to that
  many queued deliveries into **one** RDMA doorbell (§5.2's batching
  applied to the delivery path): the first message of an idle manager
  still posts immediately, so batching adds no latency at low load and
  collapses per-message ops into per-batch ops at saturation.
* **egress** — the accelerator cannot interrupt the SNIC, so the
  manager *polls* TX doorbells over RDMA.  We model the poll loop as
  doorbell-armed sweeps: a sweep visits every ring of the accelerator
  (costing per-ring scan time on an SNIC core), issues an RDMA read to
  fetch pending responses, and hands them to the forwarder.  Sweeps
  repeat at the configured interval while work remains.
  ``LynxProfile.poll_batch`` bounds how many entries one sweep fetches
  per mqueue ("fetch up to N mqueue entries per poll", §5.2).

All RDMA ops flow through the engine's serialized
:class:`~repro.sim.Channel` (``manager.channel``): per §5.1 all mqueues
of one accelerator share a single RC QP, so the manager *is* the
per-QP delivery worker and the channel's issue slot is the QP
arbitration point between ingress writes and egress poll reads.

Delivery runs as small callback state machines (:class:`_DeliveryOp`,
:class:`_BatchDeliveryOp`) whose op records are pooled on the manager.
A *single* blocking worker coroutine would serialize QP arbitration
and kill the op-level pipelining the RDMA engine models, so the state
machines keep the exact event sequence of the old per-message
processes — one URGENT kick, then request → occupancy → release →
latency per RDMA op — which keeps results bit-identical under a fixed
seed while spawning zero processes per message.

Backpressure (``LynxProfile.backpressure``): instead of dropping on a
full RX ring, :meth:`RemoteMQManager.deliver` parks the message on the
ring's credit event (:meth:`~repro.sim.Channel.claim_wait`) and resumes
delivery when the accelerator pops an entry.  Parked messages are
bounded by one ring's worth per mqueue; beyond that the manager drops,
so an unresponsive accelerator cannot build an unbounded backlog.
"""

from collections import deque

from ..errors import ConfigError
from ..sim import Channel
from .. import telemetry
from .mqueue import METADATA_BYTES, MQueueEntry


class _DeliveryOp:
    """One in-flight ingress delivery on the manager's QP.

    Mirrors the retired ``_rdma_deliver`` generator step for step, as
    plain callbacks on pooled events: for each RDMA op in the plan,
    claim the engine channel's issue slot, hold it for the wire
    occupancy, release, then let the op latency elapse in the pipeline.
    The record itself is recycled onto ``manager._op_pool`` after the
    final op.
    """

    __slots__ = ("manager", "mq", "msg", "entry", "plan", "index", "request")

    def __init__(self, manager):
        self.manager = manager
        self.mq = None
        self.msg = None
        self.entry = None
        self.plan = None
        self.index = 0
        self.request = None

    def start(self, mq, msg):
        self.mq = mq
        self.msg = msg
        # URGENT kick at the current time: the exact schedule slot the
        # per-message Process's init event used to occupy.
        self.manager.env._kick(self._begin)

    def _begin(self, _event):
        manager = self.manager
        msg = self.msg
        self.entry = MQueueEntry(payload=msg.payload, size=msg.size,
                                 request_msg=msg)
        self.plan = manager._plan_ops(msg.size)
        self.index = 0
        self._post()

    def _post(self):
        """Claim the engine channel's issue slot for the current op."""
        request = self.manager.channel.issue.request()
        self.request = request
        request.callbacks.append(self._granted)

    def _granted(self, _event):
        occupancy = self.plan[self.index][0]
        self.manager.env.defer(occupancy, self._occupied)

    def _occupied(self, _event):
        # Release before scheduling the latency leg, exactly like the
        # old `with request: yield occupancy` block: a queued op (or the
        # egress sweep) grabs the issue slot first.
        manager = self.manager
        self.request.release()
        self.request = None
        _, latency, nbytes = self.plan[self.index]
        qp = manager.qp
        qp.ops += 1
        channel = manager.channel
        channel.sent += 1
        if nbytes is not None:
            qp.bytes_moved += nbytes
            channel.bytes_moved += nbytes
        manager.engine.ops_posted += 1
        manager.env.defer(latency, self._op_done)

    def _op_done(self, _event):
        self.index += 1
        if self.index < len(self.plan):
            self._post()
            return
        manager = self.manager
        manager.deliveries += 1
        msg = self.msg
        if msg.meta is not None:
            msg.meta["t_delivered"] = manager.env.now
        mq, entry = self.mq, self.entry
        self.mq = self.msg = self.entry = self.plan = None
        if len(manager._op_pool) < manager.OP_POOL_CAP:
            manager._op_pool.append(self)
        if manager.env.frame_exec:
            mq.complete_rx_frame(entry)
        else:
            mq.complete_rx(entry)


class _BatchDeliveryOp:
    """Coalesced ingress (§5.2 batching): one op ladder per batch.

    At most one batch is in flight per manager; deliveries arriving
    while a batch's RDMA ops run accumulate in ``manager._backlog`` and
    form the next batch the moment the current one completes.  An idle
    manager posts a batch of one immediately, so the default-latency
    path is unchanged — batching only coalesces under load, where the
    backlog is non-empty.
    """

    __slots__ = ("manager", "batch", "plan", "index", "request")

    def __init__(self, manager):
        self.manager = manager
        self.batch = None
        self.plan = None
        self.index = 0
        self.request = None

    def enqueue(self, mq, msg):
        manager = self.manager
        manager._backlog.append((mq, msg))
        if self.batch is None:
            self.batch = ()  # claims the op until _begin runs
            manager.env._kick(self._begin)

    def _begin(self, _event):
        manager = self.manager
        backlog = manager._backlog
        take = len(backlog)
        if take > manager.batch_size:
            take = manager.batch_size
        manager.batch_sizes.record(take)
        batch = []
        payload_bytes = 0
        for _ in range(take):
            mq, msg = backlog.popleft()
            entry = MQueueEntry(payload=msg.payload, size=msg.size,
                                request_msg=msg)
            batch.append((mq, msg, entry))
            payload_bytes += msg.size
        self.batch = batch
        self.plan = manager._plan_batch(payload_bytes, take)
        self.index = 0
        self._post()

    def _post(self):
        request = self.manager.channel.issue.request()
        self.request = request
        request.callbacks.append(self._granted)

    def _granted(self, _event):
        occupancy = self.plan[self.index][0]
        self.manager.env.defer(occupancy, self._occupied)

    def _occupied(self, _event):
        manager = self.manager
        self.request.release()
        self.request = None
        _, latency, nbytes = self.plan[self.index]
        qp = manager.qp
        qp.ops += 1
        channel = manager.channel
        channel.sent += 1
        if nbytes is not None:
            qp.bytes_moved += nbytes
            channel.bytes_moved += nbytes
        manager.engine.ops_posted += 1
        manager.env.defer(latency, self._op_done)

    def _op_done(self, _event):
        self.index += 1
        if self.index < len(self.plan):
            self._post()
            return
        manager = self.manager
        now = manager.env.now
        # self.batch stays non-None through the completions: an
        # accelerator pop triggered by complete_rx may synchronously
        # call deliver() again, which must append to the backlog rather
        # than start a second in-flight batch.
        # Frame mode lands each entry inline where the ring permits;
        # batch order is preserved (grouping by mqueue would shift the
        # consumer-handoff event ids of the fallback puts).
        frame = manager.env.frame_exec
        for mq, msg, entry in self.batch:
            manager.deliveries += 1
            if msg.meta is not None:
                msg.meta["t_delivered"] = now
            if frame:
                mq.complete_rx_frame(entry)
            else:
                mq.complete_rx(entry)
        self.plan = None
        if manager._backlog:
            self.batch = ()
            manager.env._kick(self._begin)
        else:
            self.batch = None


class _PollerOp:
    """The egress doorbell-poll loop as a callback state machine.

    Mirrors the retired ``_tx_poll_loop``/``_sweep_and_drain``/``_sweep``
    generator trio step for step: doorbell wait, per-sweep scan cost at
    egress core priority, the notification-region RDMA read, the bulk
    ring read, forwarder hand-off, and the inter-sweep pacing charge —
    each consuming the same schedule slots in the same order.
    """

    __slots__ = ("manager", "request", "duration", "nbytes", "pending",
                 "stage")

    def __init__(self, manager):
        self.manager = manager
        self.request = None
        self.duration = 0.0
        self.nbytes = 0
        self.pending = None
        self.stage = 0
        # URGENT kick at now: the slot the poller Process's init used.
        manager.env._kick(self._begin)

    def _begin(self, _event):
        self._arm()

    def _arm(self):
        """Sleep until an accelerator rings a TX doorbell."""
        self.manager._doorbells.get().callbacks.append(self._on_doorbell)

    def _on_doorbell(self, _get):
        self.manager._drain_doorbells()
        self._sweep()

    def _sweep(self):
        manager = self.manager
        manager.sweeps += 1
        workers = manager.workers
        scan_cost = (manager.profile.mqueue_visit_cost
                     * max(1, len(manager.mqueues)))
        # run_compute(scan_cost, priority=-1): a plain charge once granted.
        self.duration = scan_cost / workers.profile.speed_factor
        req = workers._res.request(-1)
        self.request = req
        req.callbacks.append(self._scan_granted)

    def _scan_granted(self, _event):
        charge = self.manager.env.charge(self.duration)
        charge.callbacks.append(self._scan_charged)

    def _scan_charged(self, _event):
        self.request.release()
        self.request = None
        manager = self.manager
        # Doorbells are *discovered* by reading the notification region
        # over RDMA — one read round trip per sweep (§4.3: "both the
        # accelerator and the SNIC use polling").
        self.stage = 1
        self._read(4 * max(1, len(manager.mqueues)))

    # engine.read(qp, nbytes) through the engine channel, as callbacks:
    # claim the issue slot, hold it for the wire occupancy, release,
    # then the round-trip latency.

    def _read(self, nbytes):
        self.nbytes = nbytes
        req = self.manager.channel.issue.request()
        self.request = req
        req.callbacks.append(self._read_granted)

    def _read_granted(self, _event):
        manager = self.manager
        charge = manager.env.charge(manager.channel.occupancy(self.nbytes))
        charge.callbacks.append(self._read_occupied)

    def _read_occupied(self, _event):
        manager = self.manager
        self.request.release()
        self.request = None
        engine = manager.engine
        qp = manager.qp
        qp.ops += 1
        qp.bytes_moved += self.nbytes
        channel = manager.channel
        channel.sent += 1
        channel.bytes_moved += self.nbytes
        engine.ops_posted += 1
        manager.env.charge(engine.op_latency(qp, 2)).callbacks.append(
            self._read_done)

    def _read_done(self, _event):
        manager = self.manager
        if self.stage == 1:
            pending = []
            total_bytes = 0
            limit = manager.poll_batch
            if limit:
                # §5.2: fetch up to N entries per mqueue per poll; the
                # remainder is picked up by the next paced sweep.
                for mq in manager.mqueues:
                    batch = mq.tx_ring.recv_batch(limit)
                    for entry in batch:
                        pending.append((mq, entry))
                        total_bytes += entry.size + METADATA_BYTES
            else:
                for mq in manager.mqueues:
                    while True:
                        entry = mq.tx_ring.try_get()
                        if entry is None:
                            break
                        pending.append((mq, entry))
                        total_bytes += entry.size + METADATA_BYTES
            if not pending:
                self._after_sweep(0)
                return
            self.pending = pending
            self.stage = 2
            # One RDMA read fetches the freshly produced ring region.
            self._read(total_bytes)
            return
        pending = self.pending
        self.pending = None
        sink = manager._tx_sink
        if sink is None:
            raise ConfigError("no forwarder installed on %s" % manager.name)
        sink_many = manager._tx_sink_many
        if (sink_many is not None and len(pending) > 1
                and manager.env.frame_exec):
            # Frame mode: hand the whole sweep to the forwarder in one
            # call so it can coalesce the per-entry start kicks
            # (DESIGN.md §4.14 — doorbell batches stay batched).
            sink_many(pending)
        else:
            for mq, entry in pending:
                sink(mq, entry)
        self._after_sweep(len(pending))

    def _after_sweep(self, collected):
        """Consume the doorbells the sweep satisfied, then pace or sleep."""
        manager = self.manager
        manager._drain_doorbells()
        if collected == 0:
            self._arm()
            return
        charge = manager.env.charge(manager.profile.sweep_interval)
        charge.callbacks.append(self._interval_done)

    def _interval_done(self, _event):
        self._sweep()


class RemoteMQManager:
    """SNIC-side manager of one accelerator's mqueues."""

    #: max pooled delivery-op records (bounds steady-state in-flight ops)
    OP_POOL_CAP = 1024

    def __init__(self, env, accelerator, qp, workers, lynx_profile,
                 needs_barrier=False, name=None):
        self.env = env
        self.accelerator = accelerator
        self.qp = qp
        #: the engine's serialized Channel all of this manager's RDMA
        #: ops flow through (QP arbitration point)
        self.channel = qp.engine.channel
        self.workers = workers
        self.profile = lynx_profile
        self.batch_size = lynx_profile.batch_size
        self.poll_batch = lynx_profile.poll_batch
        self.backpressure = lynx_profile.backpressure
        self.needs_barrier = needs_barrier
        self.name = name or "rmq-%s" % getattr(accelerator, "name", "accel")
        self.mqueues = []
        self._mqueue_set = set()
        self._op_pool = []
        self._backlog = deque()
        self._batcher = (_BatchDeliveryOp(self)
                         if self.batch_size > 1 else None)
        self._doorbells = Channel(env, name="%s-doorbells" % self.name)
        self._tx_sink = None
        self._tx_sink_many = None
        self._poller = _PollerOp(self)
        self.deliveries = 0
        self.sweeps = 0
        # Telemetry (DESIGN.md §4.9): doorbell-batch sizes feed a
        # mergeable histogram (recorded once per RDMA batch, not per
        # message); the counters are pulled at snapshot time.
        reg = telemetry.registry()
        base = "lynx.rmq.%s." % self.name
        self.batch_sizes = reg.histogram(base + "batch_size")
        reg.pull(base + "deliveries", lambda: self.deliveries)
        reg.pull(base + "sweeps", lambda: self.sweeps)

    @property
    def engine(self):
        return self.qp.engine

    # -- registration -----------------------------------------------------------

    def register(self, mq):
        """Attach an mqueue of this accelerator to the manager."""
        if mq.tx_doorbell is not None:
            raise ConfigError("mqueue %s already registered" % mq.name)
        mq.tx_doorbell = self._doorbells
        self.mqueues.append(mq)
        self._mqueue_set.add(mq)
        return mq

    def on_tx(self, callback):
        """Install the forwarder callback: ``callback(mq, entry)``."""
        self._tx_sink = callback

    def on_tx_many(self, callback):
        """Install the frame forwarder: ``callback([(mq, entry), ...])``.

        Optional; only consulted in frame mode for sweeps that fetched
        more than one entry.  The forwarder must process the pairs in
        order and reproduce the per-entry sink's event-id consumption
        (see :meth:`LynxServer._on_accelerator_tx_many`).
        """
        self._tx_sink_many = callback

    # -- ingress -------------------------------------------------------------------

    def deliver(self, mq, msg):
        """Called by a worker after dispatch: start the RDMA delivery.

        Returns True if a ring slot was claimed or the message was
        parked on the ring's credits (backpressure mode), False if the
        message was dropped — UDP semantics under overload.
        """
        if mq not in self._mqueue_set:
            raise ConfigError("mqueue %s is not managed by %s" % (mq.name, self.name))
        if not mq.rx_ring.try_claim():
            if not self.backpressure or mq.parked >= mq.entries:
                mq.dropped += 1
                return False
            # Park on the ring's credit event; the accelerator's next
            # pop hands the freed credit straight to this delivery.
            mq.parked += 1
            mq.park_waits += 1
            waiter = mq.rx_ring.claim_wait()
            waiter.callbacks.append(
                lambda _evt, mq=mq, msg=msg: self._unparked(mq, msg))
            return True
        self._start_delivery(mq, msg)
        return True

    def _unparked(self, mq, msg):
        mq.parked -= 1
        self._start_delivery(mq, msg)

    def _start_delivery(self, mq, msg):
        """Start the RDMA op ladder for a delivery holding a ring credit."""
        if self._batcher is not None:
            self._batcher.enqueue(mq, msg)
            return
        pool = self._op_pool
        op = pool.pop() if pool else _DeliveryOp(self)
        op.start(mq, msg)

    def _plan_ops(self, size):
        """The RDMA op sequence delivering one *size*-byte message."""
        return self._plan_batch(size, 1)

    def _plan_batch(self, payload_bytes, count):
        """The RDMA op sequence delivering *count* coalesced messages.

        Each entry is ``(occupancy, latency, accounted_bytes)``;
        ``accounted_bytes`` is None for the zero-byte barrier read.
        Coalesced mode moves every payload plus each entry's 4B
        metadata in one write whose final doorbell word publishes the
        whole batch.  Barrier mode cannot coalesce: one payload write,
        one write barrier, then a single doorbell write covering the
        batch's metadata words.
        """
        engine = self.engine
        profile = engine.profile
        write_latency = profile.op_latency
        if self.qp.remote:
            write_latency += profile.remote_extra_latency
        meta_bytes = count * METADATA_BYTES
        channel = self.channel
        if self.needs_barrier or not self.profile.coalesce_metadata:
            # Three transactions: payload, write barrier, doorbell.
            from ..net.rdma import _MIN_OP_GAP
            plan = [(channel.occupancy(payload_bytes), write_latency,
                     payload_bytes)]
            if self.needs_barrier:
                plan.append((_MIN_OP_GAP, profile.barrier_latency, None))
            plan.append((channel.occupancy(meta_bytes), write_latency,
                         meta_bytes))
            return plan
        # Metadata coalesced with the payload: one RDMA write, and
        # the doorbell (last word) becomes visible after the data.
        nbytes = payload_bytes + meta_bytes
        return [(channel.occupancy(nbytes), write_latency, nbytes)]

    # -- egress ----------------------------------------------------------------------
    # The poll loop itself lives in :class:`_PollerOp`.  Doorbell tokens
    # raised before or during a sweep are covered by it (a sweep visits
    # every ring), so the op drains the store right after each sweep —
    # a zero-collect sweep therefore re-arms on an empty doorbell store.

    def _drain_doorbells(self):
        while self._doorbells.try_get() is not None:
            pass
