"""Remote Message Queue Manager (§4.2, §5.1).

Runs on the SNIC and owns all RDMA access to one accelerator's mqueues:

* **ingress** — after the dispatcher picks an mqueue, the manager posts
  a one-sided RDMA write of payload + 4B coalesced metadata into the RX
  ring.  If the accelerator requires the PCIe-ordering workaround
  (§5.1), delivery becomes three operations (data write, barrier read,
  doorbell write) and coalescing is disabled, costing ~5us extra.
* **egress** — the accelerator cannot interrupt the SNIC, so the
  manager *polls* TX doorbells over RDMA.  We model the poll loop as
  doorbell-armed sweeps: a sweep visits every ring of the accelerator
  (costing per-ring scan time on an SNIC core), issues an RDMA read to
  fetch pending responses, and hands them to the forwarder.  Sweeps
  repeat at the configured interval while work remains.

Per §5.1 all mqueues of one accelerator share a single RC QP.
"""

from ..errors import ConfigError
from ..sim import Store
from .mqueue import METADATA_BYTES, MQueueEntry


class RemoteMQManager:
    """SNIC-side manager of one accelerator's mqueues."""

    def __init__(self, env, accelerator, qp, workers, lynx_profile,
                 needs_barrier=False, name=None):
        self.env = env
        self.accelerator = accelerator
        self.qp = qp
        self.workers = workers
        self.profile = lynx_profile
        self.needs_barrier = needs_barrier
        self.name = name or "rmq-%s" % getattr(accelerator, "name", "accel")
        self.mqueues = []
        self._doorbells = Store(env, name="%s-doorbells" % self.name)
        self._tx_sink = None
        self._poller = env.process(self._tx_poll_loop(),
                                   name="%s-poller" % self.name)
        self.deliveries = 0
        self.sweeps = 0

    @property
    def engine(self):
        return self.qp.engine

    # -- registration -----------------------------------------------------------

    def register(self, mq):
        """Attach an mqueue of this accelerator to the manager."""
        if mq.tx_doorbell is not None:
            raise ConfigError("mqueue %s already registered" % mq.name)
        mq.tx_doorbell = self._doorbells
        self.mqueues.append(mq)
        return mq

    def on_tx(self, callback):
        """Install the forwarder callback: ``callback(mq, entry)``."""
        self._tx_sink = callback

    # -- ingress -------------------------------------------------------------------

    def deliver(self, mq, msg):
        """Called by a worker after dispatch: start the RDMA delivery.

        Returns True if a ring slot was claimed (the write proceeds
        asynchronously), False if the ring was full and the message was
        dropped — UDP semantics under overload.
        """
        if mq not in self.mqueues:
            raise ConfigError("mqueue %s is not managed by %s" % (mq.name, self.name))
        if not mq.claim_rx_slot():
            return False
        self.env.process(self._rdma_deliver(mq, msg),
                         name="%s-deliver" % self.name)
        return True

    def _rdma_deliver(self, mq, msg):
        entry = MQueueEntry(payload=msg.payload, size=msg.size,
                            request_msg=msg)
        nbytes = msg.size + METADATA_BYTES
        if self.needs_barrier or not self.profile.coalesce_metadata:
            # Three transactions: payload, write barrier, doorbell.
            yield from self.engine.write(self.qp, msg.size)
            if self.needs_barrier:
                yield from self.engine.barrier_read(self.qp)
            yield from self.engine.write(self.qp, METADATA_BYTES)
        else:
            # Metadata coalesced with the payload: one RDMA write, and
            # the doorbell (last word) becomes visible after the data.
            yield from self.engine.write(self.qp, nbytes)
        self.deliveries += 1
        if msg.meta is not None:
            msg.meta["t_delivered"] = self.env.now
        mq.complete_rx(entry)

    # -- egress ----------------------------------------------------------------------

    def _tx_poll_loop(self):
        env = self.env
        while True:
            yield self._doorbells.get()
            self._drain_doorbells()
            while True:
                collected = yield from self._sweep()
                # Tokens raised before/during the sweep are satisfied by
                # it (a sweep visits every ring), so consume them before
                # deciding whether to go back to sleep.
                self._drain_doorbells()
                if collected == 0 and len(self._doorbells) == 0:
                    break
                yield env.timeout(self.profile.sweep_interval)

    def _drain_doorbells(self):
        while self._doorbells.try_get() is not None:
            pass

    def _sweep(self):
        """One doorbell sweep over every ring of this accelerator."""
        self.sweeps += 1
        scan_cost = self.profile.mqueue_visit_cost * max(1, len(self.mqueues))
        yield from self.workers.run_compute(scan_cost, priority=-1)
        # Doorbells are *discovered* by reading the notification region
        # over RDMA — one read round trip per sweep (§4.3: "both the
        # accelerator and the SNIC use polling").
        yield from self.engine.read(self.qp, 4 * max(1, len(self.mqueues)))
        pending = []
        total_bytes = 0
        for mq in self.mqueues:
            while True:
                entry = mq.tx_ring.try_get()
                if entry is None:
                    break
                pending.append((mq, entry))
                total_bytes += entry.size + METADATA_BYTES
        if not pending:
            return 0
        # One RDMA read fetches the freshly produced ring region.
        yield from self.engine.read(self.qp, total_bytes)
        if self._tx_sink is None:
            raise ConfigError("no forwarder installed on %s" % self.name)
        for mq, entry in pending:
            self._tx_sink(mq, entry)
        return len(pending)
