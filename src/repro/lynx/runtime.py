"""Lynx runtime: host-CPU setup path and accelerator service plumbing.

Faithful to §4.3 "Using mqueues": a host CPU allocates mqueues in
accelerator memory, hands the pointers to the SNIC server and the
accelerator, starts the accelerator's persistent kernel — **and then
goes idle**.  After ``start_gpu_service`` returns, no host core appears
on the data path; tests assert this.
"""

from heapq import heappush

from ..errors import AcceleratorError, ConfigError, SimulationError
from ..net.packet import TCP, UDP, payload_size
from ..sim import Interrupt
from ..sim.events import Event, NORMAL, PENDING, URGENT
from .iolib import AcceleratorIO
from .mqueue import CLIENT, MQueue, MQueueEntry, SERVER
from .rmq import RemoteMQManager


def _uses_stock_handle(app, accel):
    """True when *app* serves through the unmodified ``ServerApp.handle``
    (compute + one GPU charge) on a real :class:`~repro.hw.gpu.GPU` —
    the preconditions for the zero-process :class:`_ThreadblockOp` fast
    path.  Other accelerators (the VCA adapter) bring their own
    ``persistent_kernel`` semantics and keep the generator loop."""
    from ..apps.base import ServerApp  # local: apps imports lynx.iolib
    from ..hw.gpu import GPU

    return isinstance(accel, GPU) and type(app).handle is ServerApp.handle


class AppContext:
    """Everything an accelerator-resident application handler can touch."""

    def __init__(self, env, io, gpu, mq, client_mqs=None, tb_index=0):
        self.env = env
        self.io = io
        self.gpu = gpu
        self.mq = mq
        self.client_mqs = client_mqs or {}
        self.tb_index = tb_index

    def compute(self, duration, dynamic_parallelism=False):
        """Generator: run *duration* (K40m-us) of GPU work.

        With ``dynamic_parallelism`` the work runs as a device-launched
        child kernel (the LeNet server's structure, §6.3); otherwise it
        executes inline in the calling threadblock.
        """
        if self.gpu is None:
            yield self.env.charge(duration)
        elif dynamic_parallelism:
            yield from self.gpu.child_launch(duration)
        else:
            yield self.env.charge(self.gpu.scaled(duration))

    def call(self, backend, payload):
        """Generator: RPC to a backend over this context's client mqueue.

        Sends *payload* and blocks for the response entry — the
        Face Verification server's memcached access pattern (§6.4).
        """
        try:
            mq = self.client_mqs[backend]
        except KeyError:
            raise ConfigError("no client mqueue for backend %r (have: %s)"
                              % (backend, ", ".join(sorted(self.client_mqs))))
        yield from self.io.send(mq, payload)
        entry = yield from self.io.recv(mq)
        return entry


class GpuService:
    """Handle onto a started accelerator service (for stats/tests)."""

    def __init__(self, gpu, manager, mqueues, contexts, threadblocks,
                 respawn=None):
        self.gpu = gpu
        self.manager = manager
        self.mqueues = mqueues
        self.contexts = contexts
        self.threadblocks = threadblocks
        #: zero-argument hook rebuilding the threadblocks (fault restart)
        self._respawn = respawn

    @property
    def dropped(self):
        return sum(mq.dropped for mq in self.mqueues)

    @property
    def delivered(self):
        return sum(mq.delivered for mq in self.mqueues)

    # -- fault injection / recovery ------------------------------------------

    def interrupt(self, cause=None):
        """Kill every live threadblock at the current time.

        Also withdraws the dead blocks' parked ring waits: a stale get
        left in the RX ring would silently swallow the first entry
        delivered after a restart, and a stale put would inject a dead
        producer's entry.  Returns the number of threadblocks killed.
        """
        killed = 0
        for tb in self.threadblocks:
            if getattr(tb, "is_alive", False):
                tb.interrupt(cause)
                killed += 1
        for mq in self.mqueues:
            mq.rx_ring.purge_waiters()
            mq.tx_ring.purge_waiters()
        return killed

    def drain_rings(self):
        """Crash recovery: drop both rings' contents on every mqueue.

        Returns the number of entries lost.  Freed RX credits wake
        parked backpressure deliveries, which is how ingress resumes.
        """
        return sum(mq.drain() for mq in self.mqueues)

    def restart(self):
        """Respawn the persistent kernel after :meth:`interrupt`.

        Reclaims the dead threadblocks' persistent SM slots first (the
        interrupt path deliberately leaks them, mirroring the dead
        generator), so repeated restarts stay within
        ``max_threadblocks``.  Returns the new threadblock list.
        """
        if self._respawn is None:
            raise AcceleratorError(
                "service on %s cannot restart: no respawn hook"
                % getattr(self.gpu, "name", "<gpu>"))
        for tb in self.threadblocks:
            release = getattr(tb, "release_sm_slot", None)
            if release is not None:
                release()
        self.threadblocks = self._respawn()
        return self.threadblocks


class LynxRuntime:
    """Configuration-time API of Lynx (runs on the host CPU)."""

    def __init__(self, env, server, config):
        self.env = env
        self.server = server
        self.config = config
        self._managers = {}

    # -- accelerator attachment ------------------------------------------------

    def attach_accelerator(self, accel, memory=None, remote=False,
                           needs_barrier=None):
        """Create the RC QP + Remote MQ Manager for an accelerator.

        *remote* accelerators sit in another machine behind their own
        RDMA NIC (§5.5) — the only difference is extra RDMA latency,
        which is the point of the design.
        """
        key = id(accel)
        if key in self._managers:
            return self._managers[key]
        memory = memory if memory is not None else accel.memory
        if not memory.exposed_on_pcie:
            raise ConfigError(
                "accelerator memory must be BAR-exposed for peer DMA (§4.4)")
        if needs_barrier is None:
            needs_barrier = bool(getattr(
                getattr(accel, "profile", None), "needs_write_barrier", False))
        qp = self.server.nic.rdma.connect(memory, remote=remote,
                                          name="qp-%s" % accel.name)
        manager = RemoteMQManager(self.env, accel, qp, self.server.workers,
                                  self.config.lynx,
                                  needs_barrier=needs_barrier)
        self.server.add_manager(manager)
        self._managers[key] = manager
        return manager

    # -- mqueue creation -----------------------------------------------------------

    def create_server_mqueues(self, accel, port, count, proto=UDP,
                              policy=None, memory=None, remote=False):
        """Allocate *count* server mqueues in accelerator memory and
        bind them to *port* on the SNIC."""
        manager = self.attach_accelerator(accel, memory=memory, remote=remote)
        mqs = []
        for i in range(count):
            mq = MQueue(self.env, manager.qp.target,
                        entries=self.config.lynx.ring_entries, kind=SERVER,
                        proto=proto,
                        name="%s-smq%d-p%d" % (accel.name, i, port))
            manager.register(mq)
            mqs.append(mq)
        self.server.bind(port, mqs, policy=policy)
        return mqs

    def create_client_mqueue(self, accel, destination, proto=TCP,
                             memory=None, remote=False, name=None):
        """Generator: allocate a client mqueue bound to *destination*
        and (for TCP) establish its static connection."""
        manager = self.attach_accelerator(accel, memory=memory, remote=remote)
        mq = MQueue(self.env, manager.qp.target,
                    entries=self.config.lynx.ring_entries, kind=CLIENT,
                    destination=destination, proto=proto,
                    name=name or "%s-cmq" % accel.name)
        manager.register(mq)
        self.server.register_client_mqueue(mq)
        yield from self.server.connect_client_mqueue(mq)
        return mq

    # -- full GPU service bring-up ----------------------------------------------------

    def start_gpu_service(self, gpu, app, port, n_mqueues=1, proto=UDP,
                          policy=None, backends=None, remote=False):
        """Generator: bring up a complete accelerator-resident service.

        * allocates *n_mqueues* server mqueues on *port*;
        * creates one client mqueue per (threadblock, backend) pair for
          the app's outbound RPCs;
        * starts a persistent GPU kernel with one threadblock per
          server mqueue running ``app.handle``.

        Returns a :class:`GpuService`.  The host CPU's job ends here.
        """
        backends = backends or {}
        mqs = self.create_server_mqueues(gpu, port, n_mqueues, proto=proto,
                                         policy=policy, remote=remote)
        manager = self.attach_accelerator(gpu, remote=remote)
        io = AcceleratorIO(self.env, gpu.poll_latency)
        contexts = []
        for tb, mq in enumerate(mqs):
            client_mqs = {}
            for backend_name, (dest, backend_proto) in backends.items():
                client_mqs[backend_name] = (yield from self.create_client_mqueue(
                    gpu, dest, proto=backend_proto, remote=remote,
                    name="%s-cmq-%s-tb%d" % (gpu.name, backend_name, tb)))
            contexts.append(AppContext(self.env, io, gpu, mq,
                                       client_mqs=client_mqs, tb_index=tb))

        if _uses_stock_handle(app, gpu):
            # Zero-process fast path: one callback state machine per
            # threadblock, mirroring persistent_kernel + _service_loop
            # event for event (see _ThreadblockOp).
            if n_mqueues > gpu.profile.max_threadblocks:
                raise AcceleratorError(
                    "%s supports at most %d resident threadblocks, asked "
                    "for %d" % (gpu.name, gpu.profile.max_threadblocks,
                                n_mqueues))
            def respawn():
                gpu.kernels_launched += 1
                return [_ThreadblockOp(self.env, gpu, io, app, contexts[tb])
                        for tb in range(n_mqueues)]

            procs = respawn()
        else:
            # Apps with a custom handle() coroutine (backend RPCs,
            # pipeline relays) keep the interruptible generator loop.
            def body_factory(tb):
                return _service_loop(self.env, io, app, contexts[tb])

            def respawn():
                return gpu.persistent_kernel(
                    n_mqueues, body_factory,
                    name="%s-%s" % (gpu.name, app.name))

            procs = respawn()
        return GpuService(gpu, manager, mqs, contexts, procs, respawn=respawn)


    def start_pipeline(self, stages, port, proto=UDP):
        """Generator: compose accelerators into a pipeline (see
        :mod:`repro.lynx.pipeline`)."""
        from .pipeline import start_pipeline

        return (yield from start_pipeline(self, stages, port, proto=proto))


class _ThreadblockOp(Event):
    """One persistent-kernel threadblock as a callback state machine.

    Replaces ``gpu._persistent_block`` + ``_service_loop`` for apps on
    the stock ``ServerApp.handle`` path (compute + one GPU charge per
    request), consuming the exact same schedule slots in the same
    order: spawn kick, SM-slot claim, then per request — RX-ring pop,
    local-poll charge, the kernel charge (for dynamic parallelism: the
    device-launch charge, a child SM-slot claim, the kernel charge,
    slot release), local-write charge, TX-ring put.

    The op *is* an event, like :class:`Process`: ``interrupt()`` works
    (failure injection), delivering through an URGENT event and then
    scheduling the termination event — the same two schedule slots the
    Process machinery used.  Interrupt mid-kernel releases the child SM
    slot (the generator's ``finally`` did); the persistent slot is
    deliberately leaked, exactly as the dead generator leaked it.
    """

    __slots__ = ("gpu", "io", "app", "ctx", "mq", "entry", "result", "out",
                 "_target", "_target_cb", "_dp_req", "_dp_slot", "_slot")

    def __init__(self, env, gpu, io, app, ctx):
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self.gpu = gpu
        self.io = io
        self.app = app
        self.ctx = ctx
        self.mq = ctx.mq
        self.entry = None
        self.result = None
        self.out = None
        self._target = None
        self._target_cb = None
        self._dp_req = None
        self._dp_slot = None
        self._slot = None
        env._kick(self._begin)

    @property
    def is_alive(self):
        return self._value is PENDING

    def interrupt(self, cause=None):
        """Kill the threadblock at the current time (failure injection)."""
        if self._value is not PENDING:
            raise SimulationError("cannot interrupt dead process %r" % self)
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._target_cb)
            except ValueError:
                pass
        self._target = None
        # Delivery vehicle: same URGENT pre-defused event _InterruptEvent
        # used, same eid consumed now.
        ev = Event(self.env)
        ev._ok = False
        ev._value = Interrupt(cause)
        ev._defused = True
        ev.callbacks.append(self._die)
        self.env.schedule(ev, delay=0, priority=URGENT)

    def _die(self, _event):
        # Mirror the generator unwinding: only the child-kernel slot is
        # protected by a finally; everything else dies with the frame.
        slot = self._dp_slot
        if slot is not None:
            self._dp_slot = None
            slot.release()
        self._dp_req = None
        self.entry = self.result = self.out = None
        # Process.succeed(None): the termination event.
        self._ok = True
        self._value = None
        env = self.env
        eid = env._eid
        env._eid = eid + 1
        heappush(env._queue, (env.now, NORMAL, eid, self))

    def _wait(self, event, cb):
        self._target = event
        self._target_cb = cb
        event.callbacks.append(cb)

    # -- states -------------------------------------------------------------

    def _begin(self, _event):
        # _persistent_block: claim the threadblock's SM slot forever.
        req = self.gpu.sm_slots.request()
        self._slot = req
        self._wait(req, self._slot_granted)

    def _slot_granted(self, _event):
        self._arm()

    def release_sm_slot(self):
        """Return the persistent SM slot after death (restart path only).

        ``interrupt`` leaks the slot exactly as the dead generator did —
        this explicit reclaim is what an accelerator *restart* calls so
        the respawned kernel boots within ``max_threadblocks``.
        """
        slot = self._slot
        if slot is None or self._value is PENDING:
            return
        self._slot = None
        if slot.triggered:
            slot.release()
        else:
            slot.cancel()

    def _arm(self):
        self._wait(self.mq.pop_rx(), self._on_entry)

    def _on_entry(self, get):
        self.entry = get._value
        self._wait(self.env.charge(self.io.local_latency),
                   self._local_charged)

    def _local_charged(self, _event):
        io = self.io
        io.received += 1
        entry = self.entry
        req_msg = entry.request_msg
        if req_msg is not None:
            req_msg.meta["t_accel_start"] = self.env.now
        app = self.app
        self.result = app.compute(entry.payload)
        gpu = self.gpu
        if gpu is None:
            self._wait(self.env.charge(app.gpu_duration), self._computed)
        elif app.use_dynamic_parallelism:
            self._wait(self.env.charge(gpu.profile.device_launch_latency),
                       self._dp_launched)
        else:
            self._wait(self.env.charge(gpu.scaled(app.gpu_duration)),
                       self._computed)

    def _dp_launched(self, _event):
        req = self.gpu.sm_slots.request()
        self._dp_req = req
        self._wait(req, self._dp_granted)

    def _dp_granted(self, _event):
        gpu = self.gpu
        gpu.kernels_launched += 1
        self._dp_slot = self._dp_req
        self._dp_req = None
        self._wait(self.env.charge(gpu.scaled(self.app.gpu_duration)),
                   self._dp_charged)

    def _dp_charged(self, _event):
        slot = self._dp_slot
        self._dp_slot = None
        slot.release()
        self._computed(_event)

    def _computed(self, _event):
        result = self.result
        entry = self.entry
        self.entry = self.result = None
        if result is None:
            self._arm()
            return
        req_msg = entry.request_msg
        out = MQueueEntry(payload=result, size=payload_size(result),
                          error=0, request_msg=req_msg)
        if req_msg is not None:
            req_msg.meta["t_accel_done"] = self.env.now
        self.out = out
        self._wait(self.env.charge(self.io.local_latency),
                   self._out_charged)

    def _out_charged(self, _event):
        out = self.out
        self.out = None
        self._wait(self.mq.push_tx(out), self._pushed)

    def _pushed(self, _event):
        self.mq.ring_doorbell()
        self.io.sent += 1
        self._arm()


def _service_loop(env, io, app, ctx):
    """One threadblock's request loop (runs until killed).

    The loop stays a real :class:`Process` so failure injection can
    ``interrupt()`` it, but the steady-state request chain is flattened:
    :meth:`AcceleratorIO.recv`/:meth:`~AcceleratorIO.send` are inlined
    (their bodies, event for event), and apps that use the stock
    ``ServerApp.handle`` skip the ``handle``/``ctx.compute`` generator
    pair entirely.  Generator creation consumes no schedule slots, so
    the flattening is invisible to the event order — it only removes
    four heap allocations and a yield-from trampoline per request.
    """
    from ..apps.base import ServerApp
    from ..net.packet import payload_size
    from ..sim import Interrupt
    from .mqueue import MQueueEntry

    mq = ctx.mq
    gpu = ctx.gpu
    local = io.local_latency
    charge = env.charge
    pop_rx = mq.pop_rx
    push_tx = mq.push_tx
    stock_handle = type(app).handle is ServerApp.handle
    try:
        while True:
            # -- io.recv(mq), inlined --
            entry = yield pop_rx()
            yield charge(local)
            io.received += 1
            req_msg = entry.request_msg
            if req_msg is not None:
                req_msg.meta["t_accel_start"] = env.now
            # -- app.handle(ctx, entry) --
            if stock_handle:
                result = app.compute(entry.payload)
                if gpu is None:
                    yield charge(app.gpu_duration)
                elif app.use_dynamic_parallelism:
                    # gpu.child_launch(duration) with one threadblock,
                    # inlined (the LeNet server's per-request launch)
                    yield charge(gpu.profile.device_launch_latency)
                    slot = gpu.sm_slots.request()
                    yield slot
                    gpu.kernels_launched += 1
                    try:
                        yield charge(gpu.scaled(app.gpu_duration))
                    finally:
                        slot.release()
                else:
                    yield charge(gpu.scaled(app.gpu_duration))
            else:
                result = yield from app.handle(ctx, entry)
            if result is not None:
                # -- io.send(mq, result, reply_to=entry), inlined --
                out = MQueueEntry(payload=result, size=payload_size(result),
                                  error=0, request_msg=req_msg)
                if req_msg is not None:
                    req_msg.meta["t_accel_done"] = env.now
                yield charge(local)
                yield push_tx(out)
                mq.ring_doorbell()
                io.sent += 1
    except Interrupt:
        # failure injection: the threadblock dies quietly; upstream
        # stages observe it through backend timeouts (§5.1 metadata)
        return
