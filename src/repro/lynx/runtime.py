"""Lynx runtime: host-CPU setup path and accelerator service plumbing.

Faithful to §4.3 "Using mqueues": a host CPU allocates mqueues in
accelerator memory, hands the pointers to the SNIC server and the
accelerator, starts the accelerator's persistent kernel — **and then
goes idle**.  After ``start_gpu_service`` returns, no host core appears
on the data path; tests assert this.
"""

from ..errors import ConfigError
from ..net.packet import TCP, UDP
from .iolib import AcceleratorIO
from .mqueue import CLIENT, MQueue, SERVER
from .rmq import RemoteMQManager


class AppContext:
    """Everything an accelerator-resident application handler can touch."""

    def __init__(self, env, io, gpu, mq, client_mqs=None, tb_index=0):
        self.env = env
        self.io = io
        self.gpu = gpu
        self.mq = mq
        self.client_mqs = client_mqs or {}
        self.tb_index = tb_index

    def compute(self, duration, dynamic_parallelism=False):
        """Generator: run *duration* (K40m-us) of GPU work.

        With ``dynamic_parallelism`` the work runs as a device-launched
        child kernel (the LeNet server's structure, §6.3); otherwise it
        executes inline in the calling threadblock.
        """
        if self.gpu is None:
            yield self.env.timeout(duration)
        elif dynamic_parallelism:
            yield from self.gpu.child_launch(duration)
        else:
            yield self.env.timeout(self.gpu.scaled(duration))

    def call(self, backend, payload):
        """Generator: RPC to a backend over this context's client mqueue.

        Sends *payload* and blocks for the response entry — the
        Face Verification server's memcached access pattern (§6.4).
        """
        try:
            mq = self.client_mqs[backend]
        except KeyError:
            raise ConfigError("no client mqueue for backend %r (have: %s)"
                              % (backend, ", ".join(sorted(self.client_mqs))))
        yield from self.io.send(mq, payload)
        entry = yield from self.io.recv(mq)
        return entry


class GpuService:
    """Handle onto a started accelerator service (for stats/tests)."""

    def __init__(self, gpu, manager, mqueues, contexts, threadblocks):
        self.gpu = gpu
        self.manager = manager
        self.mqueues = mqueues
        self.contexts = contexts
        self.threadblocks = threadblocks

    @property
    def dropped(self):
        return sum(mq.dropped for mq in self.mqueues)

    @property
    def delivered(self):
        return sum(mq.delivered for mq in self.mqueues)


class LynxRuntime:
    """Configuration-time API of Lynx (runs on the host CPU)."""

    def __init__(self, env, server, config):
        self.env = env
        self.server = server
        self.config = config
        self._managers = {}

    # -- accelerator attachment ------------------------------------------------

    def attach_accelerator(self, accel, memory=None, remote=False,
                           needs_barrier=None):
        """Create the RC QP + Remote MQ Manager for an accelerator.

        *remote* accelerators sit in another machine behind their own
        RDMA NIC (§5.5) — the only difference is extra RDMA latency,
        which is the point of the design.
        """
        key = id(accel)
        if key in self._managers:
            return self._managers[key]
        memory = memory if memory is not None else accel.memory
        if not memory.exposed_on_pcie:
            raise ConfigError(
                "accelerator memory must be BAR-exposed for peer DMA (§4.4)")
        if needs_barrier is None:
            needs_barrier = bool(getattr(
                getattr(accel, "profile", None), "needs_write_barrier", False))
        qp = self.server.nic.rdma.connect(memory, remote=remote,
                                          name="qp-%s" % accel.name)
        manager = RemoteMQManager(self.env, accel, qp, self.server.workers,
                                  self.config.lynx,
                                  needs_barrier=needs_barrier)
        self.server.add_manager(manager)
        self._managers[key] = manager
        return manager

    # -- mqueue creation -----------------------------------------------------------

    def create_server_mqueues(self, accel, port, count, proto=UDP,
                              policy=None, memory=None, remote=False):
        """Allocate *count* server mqueues in accelerator memory and
        bind them to *port* on the SNIC."""
        manager = self.attach_accelerator(accel, memory=memory, remote=remote)
        mqs = []
        for i in range(count):
            mq = MQueue(self.env, manager.qp.target,
                        entries=self.config.lynx.ring_entries, kind=SERVER,
                        proto=proto,
                        name="%s-smq%d-p%d" % (accel.name, i, port))
            manager.register(mq)
            mqs.append(mq)
        self.server.bind(port, mqs, policy=policy)
        return mqs

    def create_client_mqueue(self, accel, destination, proto=TCP,
                             memory=None, remote=False, name=None):
        """Generator: allocate a client mqueue bound to *destination*
        and (for TCP) establish its static connection."""
        manager = self.attach_accelerator(accel, memory=memory, remote=remote)
        mq = MQueue(self.env, manager.qp.target,
                    entries=self.config.lynx.ring_entries, kind=CLIENT,
                    destination=destination, proto=proto,
                    name=name or "%s-cmq" % accel.name)
        manager.register(mq)
        self.server.register_client_mqueue(mq)
        yield from self.server.connect_client_mqueue(mq)
        return mq

    # -- full GPU service bring-up ----------------------------------------------------

    def start_gpu_service(self, gpu, app, port, n_mqueues=1, proto=UDP,
                          policy=None, backends=None, remote=False):
        """Generator: bring up a complete accelerator-resident service.

        * allocates *n_mqueues* server mqueues on *port*;
        * creates one client mqueue per (threadblock, backend) pair for
          the app's outbound RPCs;
        * starts a persistent GPU kernel with one threadblock per
          server mqueue running ``app.handle``.

        Returns a :class:`GpuService`.  The host CPU's job ends here.
        """
        backends = backends or {}
        mqs = self.create_server_mqueues(gpu, port, n_mqueues, proto=proto,
                                         policy=policy, remote=remote)
        manager = self.attach_accelerator(gpu, remote=remote)
        io = AcceleratorIO(self.env, gpu.poll_latency)
        contexts = []
        for tb, mq in enumerate(mqs):
            client_mqs = {}
            for backend_name, (dest, backend_proto) in backends.items():
                client_mqs[backend_name] = (yield from self.create_client_mqueue(
                    gpu, dest, proto=backend_proto, remote=remote,
                    name="%s-cmq-%s-tb%d" % (gpu.name, backend_name, tb)))
            contexts.append(AppContext(self.env, io, gpu, mq,
                                       client_mqs=client_mqs, tb_index=tb))

        def body_factory(tb):
            return _service_loop(self.env, io, app, contexts[tb])

        procs = gpu.persistent_kernel(n_mqueues, body_factory,
                                      name="%s-%s" % (gpu.name, app.name))
        return GpuService(gpu, manager, mqs, contexts, procs)


    def start_pipeline(self, stages, port, proto=UDP):
        """Generator: compose accelerators into a pipeline (see
        :mod:`repro.lynx.pipeline`)."""
        from .pipeline import start_pipeline

        return (yield from start_pipeline(self, stages, port, proto=proto))


def _service_loop(env, io, app, ctx):
    """One threadblock's request loop (runs until killed)."""
    from ..sim import Interrupt

    try:
        while True:
            entry = yield from io.recv(ctx.mq)
            result = yield from app.handle(ctx, entry)
            if result is not None:
                yield from io.send(ctx.mq, result, reply_to=entry)
    except Interrupt:
        # failure injection: the threadblock dies quietly; upstream
        # stages observe it through backend timeouts (§5.1 metadata)
        return
