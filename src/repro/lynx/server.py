"""The generic network server Lynx runs on the SNIC (§4.2).

Application-agnostic: it terminates UDP/TCP with the platform's stack,
dispatches requests into mqueues via the Remote MQ Managers, forwards
responses back to clients, and relays client-mqueue traffic to backend
services.  No accelerator-specific code runs here — that is the whole
point of the design.

All CPU work is charged on the SNIC's worker core pool, so core
contention (7 slow ARM cores vs 1-6 Xeon cores) falls out naturally.

The per-message serving path (rx -> stack -> dispatch -> RDMA post, and
doorbell -> forward -> stack -> wire on egress) used to run as generator
coroutines; at saturation the generator frames and ``Process``/``Task``
resumptions dominated simulator wall-clock.  Both paths now run as
callback state machines (:class:`_RxOp`, :class:`_TxOp`) that mirror
the retired generators *event for event* — every resource request,
charge and kick consumes the same schedule slot in the same order — so
simulated results are bit-identical under a fixed seed while the hot
path allocates no frames and spawns no processes per message.
"""

from ..errors import ConfigError, NetworkError
from ..net.packet import Address, Message, TCP
from ..net.stack import NetworkStack, TcpConnection
from ..sim import NullTracer, RateMeter
from .. import telemetry
from .dispatch import RoundRobin
from .mqueue import (
    CLIENT,
    ERR_CONNECTION,
    ERR_TIMEOUT,
    ERR_UNAVAILABLE,
    MQueueEntry,
    SERVER,
)


class _PortBinding:
    """A listening port: its dispatch policy, mqueues and tenant stats."""

    __slots__ = ("port", "policy", "mqueues", "requests", "responses")

    def __init__(self, env, port, policy):
        self.port = port
        self.policy = policy
        self.mqueues = []
        #: per-tenant accounting (§4.5 multi-tenancy)
        self.requests = RateMeter(env, name="port%d-reqs" % port)
        self.responses = RateMeter(env, name="port%d-resps" % port)


class _RxOp:
    """One worker core's ingress loop as a callback state machine.

    Mirrors the retired ``_rx_loop``/``_handle_rx`` generator pair step
    for step: NIC recv -> stack rx cost -> dispatch cost -> RDMA post
    cost -> delivery, with each pool occupancy expressed as the same
    request/charge/release event triple ``CorePool.run_calibrated`` /
    ``run_compute`` scheduled.  One op per worker core lives for the
    whole simulation, so steady-state ingress allocates nothing.
    """

    __slots__ = ("server", "env", "pool", "msg", "mq", "manager",
                 "binding", "request", "duration", "mi", "ws", "token")

    def __init__(self, server):
        self.server = server
        self.env = server.env
        self.pool = server.workers
        self.msg = None
        self.mq = None
        self.manager = None
        self.binding = None
        self.request = None
        self.duration = 0.0
        self.mi = 0.0
        self.ws = 0
        self.token = None

    def start(self):
        # URGENT kick at the current time: the exact schedule slot the
        # rx-loop Process's init kick used to occupy.
        self.env._kick(self._begin)

    def _begin(self, _event):
        self._arm()

    def _arm(self):
        """Wait for the next RX-ring message (the loop's ``nic.recv()``)."""
        get = self.server.nic.rx.get()
        get.callbacks.append(self._on_msg)

    def _on_msg(self, get):
        server = self.server
        server.nic.rx_rate.count += 1       # inlined nic.recv() rate tick
        msg = get._value
        if msg.kind == "tcp-synack":
            waiter = server._synack_waiters.pop(msg.conn.conn_id, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(msg)
            self._arm()
            return
        if server.stack.handle_control(msg, server.nic):
            self._arm()
            return
        # stack.process_rx: calibrated rx cost on the worker pool.
        self.msg = msg
        self._acquire_calibrated(server.stack.rx_cost(msg), self._rx_granted)

    # -- pool occupancy (twins of CorePool.run_calibrated/_timed) ----------

    def _acquire_calibrated(self, duration, granted):
        pool = self.pool
        self.duration = duration
        self.mi = pool.default_memory_intensity
        self.ws = pool.default_working_set
        req = pool._res.request(0)
        self.request = req
        req.callbacks.append(granted)

    def _charge_calibrated(self, charged):
        llc = self.pool.llc
        duration = self.duration
        if llc is None or self.ws <= 0:
            if llc is not None and self.mi > 0:
                duration *= llc.penalty(self.mi)
        else:
            # _timed leg: hold LLC occupancy for the span of the charge
            # (occupy before computing the penalty, like the generator).
            self.token = llc.occupy(self.ws)
            if self.mi > 0:
                duration *= llc.penalty(self.mi)
        self.env.charge(duration).callbacks.append(charged)

    def _release_calibrated(self):
        token = self.token
        if token is not None:
            self.pool.llc.release(token)
            self.token = None
        self.request.release()
        self.request = None

    # -- phases ------------------------------------------------------------

    def _rx_granted(self, _event):
        self._charge_calibrated(self._rx_charged)

    def _rx_charged(self, _event):
        self._release_calibrated()
        server = self.server
        msg = self.msg
        if msg.proto == TCP and msg.conn is not None:
            msg.conn.deliver(msg)
        msg.meta["t_rx_done"] = self.env.now
        if server.tracer.enabled:
            server.tracer.emit(server.name, "rx", msg.msg_id)
        # Backend response for a client mqueue?
        client_mq = server._client_mq_by_port.get(msg.dst.port)
        if client_mq is not None:
            server._pending_backend.pop(msg.meta.get("in_reply_to"), None)
            self._dispatch(client_mq)
            return
        binding = server._ports.get(msg.dst.port)
        if binding is None or not binding.mqueues:
            server.dropped += 1
            self.msg = None
            self._arm()
            return
        server.requests.count += 1        # inlined RateMeter.tick()
        binding.requests.count += 1
        self.binding = binding
        # Lynx's own dispatcher code scales with the platform's core
        # speed (run_compute with no cache args: a plain charge).
        pool = self.pool
        self.duration = server.profile.dispatch_cost / pool.profile.speed_factor
        req = pool._res.request(0)
        self.request = req
        req.callbacks.append(self._cmp_granted)

    def _cmp_granted(self, _event):
        self.env.charge(self.duration).callbacks.append(self._cmp_charged)

    def _cmp_charged(self, _event):
        self.request.release()
        self.request = None
        server = self.server
        binding = self.binding
        self.binding = None
        msg = self.msg
        mq = binding.policy.select(binding.mqueues, msg)
        msg.meta["t_dispatched"] = self.env.now
        if server.tracer.enabled:
            server.tracer.emit(server.name, "dispatch", msg.msg_id, mq.name)
        self._dispatch(mq)

    def _dispatch(self, mq):
        """The retired ``_dispatch_to``: post cost, then RDMA delivery."""
        server = self.server
        manager = server._manager_of(mq)
        if server._dark_managers and manager in server._dark_managers:
            self._shed(mq)
            return
        self.mq = mq
        self.manager = manager
        # CPU cost of posting the one-sided RDMA write (§5.1: <1us).
        self._acquire_calibrated(manager.engine.profile.post_cost,
                                 self._post_granted)

    def _shed(self, mq):
        """Graceful degradation: the accelerator behind *mq* is dark.

        Server-mqueue requests get an immediate §5.1-style error
        response through the normal egress path (the client sees
        ``ERR_UNAVAILABLE`` and can retry) instead of parking on a ring
        nobody drains; backend responses for a dark accelerator's
        client mqueues are dropped.
        """
        server = self.server
        msg = self.msg
        self.msg = None
        if mq.kind == SERVER and msg is not None:
            server.shed += 1
            server._on_accelerator_tx(mq, MQueueEntry(
                payload=b"", size=0, error=ERR_UNAVAILABLE,
                request_msg=msg))
        else:
            server.dropped += 1
        self._arm()

    def _post_granted(self, _event):
        self._charge_calibrated(self._post_charged)

    def _post_charged(self, _event):
        self._release_calibrated()
        # Ring-full drops are counted once, by the mqueue itself;
        # ``server.dropped`` tracks only undeliverable traffic.
        manager, mq, msg = self.manager, self.mq, self.msg
        self.manager = self.mq = self.msg = None
        manager.deliver(mq, msg)
        self._arm()


class _TxOp:
    """One in-flight egress (accelerator -> client) forward.

    Mirrors the retired ``_handle_tx`` detached task step for step:
    forward cost at egress priority, response build, stack tx cost,
    then wire serialization on the NIC TX resource.  Op records are
    pooled on the server (``_tx_op_pool``).
    """

    __slots__ = ("server", "env", "pool", "mq", "entry", "response",
                 "request", "duration", "mi", "ws", "token")

    def __init__(self, server):
        self.server = server
        self.env = server.env
        self.pool = server.workers
        self.mq = None
        self.entry = None
        self.response = None
        self.request = None
        self.duration = 0.0
        self.mi = 0.0
        self.ws = 0
        self.token = None

    def start(self, mq, entry):
        self.mq = mq
        self.entry = entry
        # URGENT kick at now: the slot the detached task's kick consumed.
        self.env._kick(self._begin)

    def _begin(self, _event):
        # Egress runs at higher core priority than ingress: the real
        # forwarder round-robins and is never starved by a request flood.
        pool = self.pool
        self.duration = (self.server.profile.forward_cost
                         / pool.profile.speed_factor)
        req = pool._res.request(-1)
        self.request = req
        req.callbacks.append(self._fwd_granted)

    def _fwd_granted(self, _event):
        self.env.charge(self.duration).callbacks.append(self._fwd_charged)

    def _fwd_charged(self, _event):
        self.request.release()
        self.request = None
        server = self.server
        mq, entry = self.mq, self.entry
        response = server._build_response(mq, entry)
        if response is None:
            self._finish()
            return
        self.response = response
        if server.collect_breakdowns and entry.request_msg is not None:
            stamps = dict(entry.request_msg.meta)
            stamps["t_tx_ready"] = self.env.now
            response.meta["breakdown"] = {
                k: v for k, v in stamps.items() if k.startswith("t_")}
        if response.proto == TCP and response.conn is not None:
            response.meta["tcp_seq"] = response.conn.next_seq(response.src)
        # run_calibrated(stack.tx_cost, priority=-1) on the worker pool.
        pool = self.pool
        self.duration = server.stack.tx_cost(response)
        self.mi = pool.default_memory_intensity
        self.ws = pool.default_working_set
        req = pool._res.request(-1)
        self.request = req
        req.callbacks.append(self._tx_granted)

    def _tx_granted(self, _event):
        llc = self.pool.llc
        duration = self.duration
        if llc is None or self.ws <= 0:
            if llc is not None and self.mi > 0:
                duration *= llc.penalty(self.mi)
        else:
            self.token = llc.occupy(self.ws)
            if self.mi > 0:
                duration *= llc.penalty(self.mi)
        self.env.charge(duration).callbacks.append(self._tx_charged)

    def _tx_charged(self, _event):
        token = self.token
        if token is not None:
            self.pool.llc.release(token)
            self.token = None
        self.request.release()
        self.request = None
        server = self.server
        server.responses.count += 1       # inlined RateMeter.tick()
        mq = self.mq
        binding = server._ports.get(mq.bound_port) if mq.kind == SERVER else None
        if binding is not None:
            binding.responses.count += 1
        if server.tracer.enabled:
            server.tracer.emit(server.name, "tx", self.response.msg_id)
        # nic.send(response) through the TX channel: claim the port's
        # issue slot, hold it for the wire occupancy, then deliver.
        req = server.nic.tx.issue.request()
        self.request = req
        req.callbacks.append(self._wire_granted)

    def _wire_granted(self, _event):
        tx = self.server.nic.tx
        charge = self.env.charge(tx.occupancy(self.response.wire_size))
        charge.callbacks.append(self._wire_charged)

    def _wire_charged(self, _event):
        self.request.release()
        self.request = None
        nic = self.server.nic
        response = self.response
        nic.tx.sent += 1                  # inlined Channel.transfer stats
        nic.tx.bytes_moved += response.wire_size
        nic.tx_rate.count += 1            # inlined RateMeter.tick()
        nic.network.deliver(response)
        self._finish()

    def _finish(self):
        self.mq = self.entry = self.response = None
        pool = self.server._tx_op_pool
        if len(pool) < LynxServer.TX_OP_POOL_CAP:
            pool.append(self)


class LynxServer:
    """The SNIC-resident network server + dispatcher + forwarder."""

    #: max pooled egress-op records (bounds steady-state in-flight TX)
    TX_OP_POOL_CAP = 1024

    def __init__(self, env, nic, workers, stack_profile, lynx_profile,
                 name=None, tracer=None):
        self.env = env
        self.nic = nic
        self.workers = workers
        self.profile = lynx_profile
        self.tracer = tracer or NullTracer()
        #: opt-in per-response latency-stamp collection (see
        #: experiments/breakdown.py); off by default — it copies the
        #: request's meta dict into every response.
        self.collect_breakdowns = False
        self.name = name or "lynx@%s" % nic.ip
        self.stack = NetworkStack(env, workers, stack_profile,
                                  name="%s-stack" % self.name)
        self._ports = {}
        self._managers = []
        self._manager_by_mq = {}
        self._client_mq_by_port = {}
        self._next_client_port = 9000
        self._synack_waiters = {}
        self._pending_backend = {}
        #: managers whose accelerator is dark (fault injection); their
        #: traffic is shed with error responses instead of parked
        self._dark_managers = set()
        self.requests = RateMeter(env, name="%s-reqs" % self.name)
        self.responses = RateMeter(env, name="%s-resps" % self.name)
        self.dropped = 0
        self.shed = 0
        # Telemetry (DESIGN.md §4.9): the live meters double as the
        # registry instruments; drops are pulled at snapshot time.
        reg = telemetry.registry()
        base = "lynx.server.%s." % self.name
        reg.register(base + "rx.requests", self.requests)
        reg.register(base + "tx.responses", self.responses)
        reg.pull(base + "rx.drops", lambda: self.dropped)
        reg.pull(base + "tx.shed_errors", lambda: self.shed)
        self._tx_op_pool = []
        # One ingress loop per worker core: admission is bounded by core
        # availability, and overload is shed at the NIC RX ring instead
        # of building an unbounded software backlog.
        for _ in range(workers.count):
            _RxOp(self).start()

    @property
    def ip(self):
        return self.nic.ip

    # -- configuration ----------------------------------------------------------

    def add_manager(self, manager):
        """Attach a Remote MQ Manager (one per accelerator)."""
        manager.on_tx(self._on_accelerator_tx)
        self._managers.append(manager)
        return manager

    def bind(self, port, mqueues, policy=None):
        """Listen on *port* and dispatch its requests to *mqueues*."""
        binding = self._ports.get(port)
        if binding is None:
            binding = _PortBinding(self.env, port, policy or RoundRobin())
            self._ports[port] = binding
            self.stack.listen(port)
            # Per-tenant accounting (§4.5) in the registry.
            reg = telemetry.registry()
            base = "lynx.server.%s.port.%d." % (self.name, port)
            reg.register(base + "rx.requests", binding.requests)
            reg.register(base + "tx.responses", binding.responses)
        elif policy is not None:
            binding.policy = policy
        for mq in mqueues:
            if mq.kind != SERVER:
                raise ConfigError("only server mqueues can be bound to a port")
            if mq.bound_port is not None and mq.bound_port != port:
                # Multi-tenant state protection (§4.5): an mqueue belongs
                # to exactly one service.
                raise ConfigError(
                    "mqueue %s is already bound to port %d" % (mq.name,
                                                               mq.bound_port))
            mq.bound_port = port
            binding.mqueues.append(mq)
        return binding

    def register_client_mqueue(self, mq):
        """Give a client mqueue its SNIC-side source port."""
        if mq.kind != CLIENT:
            raise ConfigError("register_client_mqueue needs a client mqueue")
        self._next_client_port += 1
        mq.src_port = self._next_client_port
        self._client_mq_by_port[mq.src_port] = mq
        return mq

    def connect_client_mqueue(self, mq):
        """Generator: establish the TCP connection of a client mqueue.

        Performed once at initialization (§4.3: static connections).
        """
        if mq.src_port is None:
            self.register_client_mqueue(mq)
        if mq.proto != TCP:
            return mq
        src = Address(self.ip, mq.src_port)
        conn = TcpConnection(client=src, server=mq.destination)
        syn = Message(src=src, dst=mq.destination, payload=b"", proto=TCP,
                      created_at=self.env.now, conn=conn, kind="tcp-syn")
        syn.meta["conn"] = conn
        waiter = self.env.event()
        self._synack_waiters[conn.conn_id] = waiter
        yield from self.nic.send(syn)
        yield waiter
        if not conn.established:
            raise NetworkError("client mqueue %s failed to connect" % mq.name)
        mq.conn = conn
        return mq

    def port_stats(self, port):
        """Per-tenant request/response meters of one listening port."""
        binding = self._ports.get(port)
        if binding is None:
            raise ConfigError("no binding on port %d" % port)
        return binding.requests, binding.responses

    def set_accelerator_dark(self, manager, dark=True):
        """Mark *manager*'s accelerator dead (or recovered).

        While dark, requests dispatched to its mqueues are shed with
        ``ERR_UNAVAILABLE`` error responses (see :meth:`_RxOp._shed`).
        """
        if dark:
            self._dark_managers.add(manager)
        else:
            self._dark_managers.discard(manager)

    def _manager_of(self, mq):
        # Cached: this runs per dispatched message, and a linear scan of
        # managers × mqueues dominated dispatch at high queue counts.
        manager = self._manager_by_mq.get(mq)
        if manager is None:
            for candidate in self._managers:
                if mq in candidate._mqueue_set:
                    manager = candidate
                    break
            else:
                raise ConfigError(
                    "mqueue %s has no manager on %s" % (mq.name, self.name))
            self._manager_by_mq[mq] = manager
        return manager

    # -- egress --------------------------------------------------------------------

    def _on_accelerator_tx(self, mq, entry):
        pool = self._tx_op_pool
        op = pool.pop() if pool else _TxOp(self)
        op.start(mq, entry)

    def _build_response(self, mq, entry):
        if mq.kind == SERVER:
            # Respond to whichever client sent the request (§4.3).
            request = entry.request_msg
            if request is None:
                raise NetworkError(
                    "server mqueue %s produced an entry with no originating "
                    "request" % mq.name)
            if entry.error:
                # §5.1 error status to the client: an error-kind reply
                # resolves the client's waiter without counting as a
                # served response (goodput and latency stay honest).
                response = request.reply(b"", created_at=self.env.now,
                                         size=0, kind="error")
                response.meta["error"] = entry.error
                return response
            return request.reply(entry.payload, created_at=self.env.now,
                                 size=entry.size)
        # Client mqueue: a fresh request to the static destination.
        if mq.proto == TCP and (mq.conn is None or not mq.conn.established):
            # §5.1: connection errors surface through the metadata's
            # error field instead of hanging the accelerator.
            self._deliver_error(mq, ERR_CONNECTION)
            return None
        msg = Message(src=Address(self.ip, mq.src_port), dst=mq.destination,
                      payload=entry.payload, proto=mq.proto,
                      created_at=self.env.now, size=entry.size,
                      conn=mq.conn, kind="request")
        if self.profile.backend_timeout > 0:
            self._pending_backend[msg.msg_id] = mq
            self.env.detached(self._backend_watchdog(mq, msg))
        return msg

    def _backend_watchdog(self, mq, msg):
        yield self.env.charge(self.profile.backend_timeout)
        if self._pending_backend.pop(msg.msg_id, None) is not None:
            self._deliver_error(mq, ERR_TIMEOUT)

    def _deliver_error(self, mq, code):
        """Place an error entry on the mqueue's RX ring (drop if full)."""
        if mq.claim_rx_slot():
            mq.complete_rx(MQueueEntry(payload=b"", size=0, error=code))
