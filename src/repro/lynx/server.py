"""The generic network server Lynx runs on the SNIC (§4.2).

Application-agnostic: it terminates UDP/TCP with the platform's stack,
dispatches requests into mqueues via the Remote MQ Managers, forwards
responses back to clients, and relays client-mqueue traffic to backend
services.  No accelerator-specific code runs here — that is the whole
point of the design.

All CPU work is charged on the SNIC's worker core pool, so core
contention (7 slow ARM cores vs 1-6 Xeon cores) falls out naturally.
"""

from ..errors import ConfigError, NetworkError
from ..net.packet import Address, Message, TCP
from ..net.stack import NetworkStack, TcpConnection
from ..sim import NullTracer, RateMeter
from .dispatch import RoundRobin
from .mqueue import CLIENT, ERR_CONNECTION, ERR_TIMEOUT, MQueueEntry, SERVER


class _PortBinding:
    """A listening port: its dispatch policy, mqueues and tenant stats."""

    __slots__ = ("port", "policy", "mqueues", "requests", "responses")

    def __init__(self, env, port, policy):
        self.port = port
        self.policy = policy
        self.mqueues = []
        #: per-tenant accounting (§4.5 multi-tenancy)
        self.requests = RateMeter(env, name="port%d-reqs" % port)
        self.responses = RateMeter(env, name="port%d-resps" % port)


class LynxServer:
    """The SNIC-resident network server + dispatcher + forwarder."""

    def __init__(self, env, nic, workers, stack_profile, lynx_profile,
                 name=None, tracer=None):
        self.env = env
        self.nic = nic
        self.workers = workers
        self.profile = lynx_profile
        self.tracer = tracer or NullTracer()
        self.name = name or "lynx@%s" % nic.ip
        self.stack = NetworkStack(env, workers, stack_profile,
                                  name="%s-stack" % self.name)
        self._ports = {}
        self._managers = []
        self._client_mq_by_port = {}
        self._next_client_port = 9000
        self._synack_waiters = {}
        self._pending_backend = {}
        self.requests = RateMeter(env, name="%s-reqs" % self.name)
        self.responses = RateMeter(env, name="%s-resps" % self.name)
        self.dropped = 0
        # One ingress loop per worker core: admission is bounded by core
        # availability, and overload is shed at the NIC RX ring instead
        # of building an unbounded software backlog.
        for i in range(workers.count):
            env.process(self._rx_loop(), name="%s-rx%d" % (self.name, i))

    @property
    def ip(self):
        return self.nic.ip

    # -- configuration ----------------------------------------------------------

    def add_manager(self, manager):
        """Attach a Remote MQ Manager (one per accelerator)."""
        manager.on_tx(self._on_accelerator_tx)
        self._managers.append(manager)
        return manager

    def bind(self, port, mqueues, policy=None):
        """Listen on *port* and dispatch its requests to *mqueues*."""
        binding = self._ports.get(port)
        if binding is None:
            binding = _PortBinding(self.env, port, policy or RoundRobin())
            self._ports[port] = binding
            self.stack.listen(port)
        elif policy is not None:
            binding.policy = policy
        for mq in mqueues:
            if mq.kind != SERVER:
                raise ConfigError("only server mqueues can be bound to a port")
            if mq.bound_port is not None and mq.bound_port != port:
                # Multi-tenant state protection (§4.5): an mqueue belongs
                # to exactly one service.
                raise ConfigError(
                    "mqueue %s is already bound to port %d" % (mq.name,
                                                               mq.bound_port))
            mq.bound_port = port
            binding.mqueues.append(mq)
        return binding

    def register_client_mqueue(self, mq):
        """Give a client mqueue its SNIC-side source port."""
        if mq.kind != CLIENT:
            raise ConfigError("register_client_mqueue needs a client mqueue")
        self._next_client_port += 1
        mq.src_port = self._next_client_port
        self._client_mq_by_port[mq.src_port] = mq
        return mq

    def connect_client_mqueue(self, mq):
        """Generator: establish the TCP connection of a client mqueue.

        Performed once at initialization (§4.3: static connections).
        """
        if mq.src_port is None:
            self.register_client_mqueue(mq)
        if mq.proto != TCP:
            return mq
        src = Address(self.ip, mq.src_port)
        conn = TcpConnection(client=src, server=mq.destination)
        syn = Message(src=src, dst=mq.destination, payload=b"", proto=TCP,
                      created_at=self.env.now, conn=conn, kind="tcp-syn")
        syn.meta["conn"] = conn
        waiter = self.env.event()
        self._synack_waiters[conn.conn_id] = waiter
        yield from self.nic.send(syn)
        yield waiter
        if not conn.established:
            raise NetworkError("client mqueue %s failed to connect" % mq.name)
        mq.conn = conn
        return mq

    def port_stats(self, port):
        """Per-tenant request/response meters of one listening port."""
        binding = self._ports.get(port)
        if binding is None:
            raise ConfigError("no binding on port %d" % port)
        return binding.requests, binding.responses

    def _manager_of(self, mq):
        for manager in self._managers:
            if mq in manager.mqueues:
                return manager
        raise ConfigError("mqueue %s has no manager on %s" % (mq.name, self.name))

    # -- ingress ------------------------------------------------------------------

    def _rx_loop(self):
        while True:
            msg = yield self.nic.recv()
            yield from self._handle_rx(msg)

    def _handle_rx(self, msg):
        if msg.kind == "tcp-synack":
            waiter = self._synack_waiters.pop(msg.conn.conn_id, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(msg)
            return
        if self.stack.handle_control(msg, self.nic):
            return
        yield from self.stack.process_rx(msg)
        msg.meta["t_rx_done"] = self.env.now
        self.tracer.emit(self.name, "rx", msg.msg_id)
        # Backend response for a client mqueue?
        client_mq = self._client_mq_by_port.get(msg.dst.port)
        if client_mq is not None:
            self._pending_backend.pop(msg.meta.get("in_reply_to"), None)
            yield from self._dispatch_to(client_mq, msg)
            return
        binding = self._ports.get(msg.dst.port)
        if binding is None or not binding.mqueues:
            self.dropped += 1
            return
        self.requests.tick()
        binding.requests.tick()
        # Lynx's own dispatcher code scales with the platform's core
        # speed (it is ordinary software, unlike the calibrated stack).
        yield from self.workers.run_compute(self.profile.dispatch_cost)
        mq = binding.policy.select(binding.mqueues, msg)
        msg.meta["t_dispatched"] = self.env.now
        self.tracer.emit(self.name, "dispatch", mq.name)
        yield from self._dispatch_to(mq, msg)

    def _dispatch_to(self, mq, msg):
        manager = self._manager_of(mq)
        # CPU cost of posting the one-sided RDMA write (§5.1: <1us).
        yield from self.workers.run_calibrated(manager.engine.profile.post_cost)
        # Ring-full drops are counted once, by the mqueue itself;
        # ``server.dropped`` tracks only undeliverable traffic
        # (unknown ports, unsupported messages).
        manager.deliver(mq, msg)

    # -- egress --------------------------------------------------------------------

    def _on_accelerator_tx(self, mq, entry):
        self.env.process(self._handle_tx(mq, entry),
                         name="%s-htx" % self.name)

    def _handle_tx(self, mq, entry):
        # Egress runs at higher core priority than ingress: the real
        # forwarder round-robins and is never starved by a request flood.
        yield from self.workers.run_compute(self.profile.forward_cost,
                                             priority=-1)
        response = self._build_response(mq, entry)
        if response is None:
            return
        if entry.request_msg is not None:
            stamps = dict(entry.request_msg.meta)
            stamps["t_tx_ready"] = self.env.now
            response.meta["breakdown"] = {
                k: v for k, v in stamps.items() if k.startswith("t_")}
        if response.proto == TCP and response.conn is not None:
            response.meta["tcp_seq"] = response.conn.next_seq(response.src)
        yield from self.workers.run_calibrated(self.stack.tx_cost(response),
                                               priority=-1)
        self.responses.tick()
        if mq.kind == SERVER and mq.bound_port in self._ports:
            self._ports[mq.bound_port].responses.tick()
        self.tracer.emit(self.name, "tx", response.msg_id)
        yield from self.nic.send(response)

    def _build_response(self, mq, entry):
        if mq.kind == SERVER:
            # Respond to whichever client sent the request (§4.3).
            request = entry.request_msg
            if request is None:
                raise NetworkError(
                    "server mqueue %s produced an entry with no originating "
                    "request" % mq.name)
            return request.reply(entry.payload, created_at=self.env.now,
                                 size=entry.size)
        # Client mqueue: a fresh request to the static destination.
        if mq.proto == TCP and (mq.conn is None or not mq.conn.established):
            # §5.1: connection errors surface through the metadata's
            # error field instead of hanging the accelerator.
            self._deliver_error(mq, ERR_CONNECTION)
            return None
        msg = Message(src=Address(self.ip, mq.src_port), dst=mq.destination,
                      payload=entry.payload, proto=mq.proto,
                      created_at=self.env.now, size=entry.size,
                      conn=mq.conn, kind="request")
        if self.profile.backend_timeout > 0:
            self._pending_backend[msg.msg_id] = mq
            self.env.process(self._backend_watchdog(mq, msg),
                             name="%s-watchdog" % self.name)
        return msg

    def _backend_watchdog(self, mq, msg):
        yield self.env.timeout(self.profile.backend_timeout)
        if self._pending_backend.pop(msg.msg_id, None) is not None:
            self._deliver_error(mq, ERR_TIMEOUT)

    def _deliver_error(self, mq, code):
        """Place an error entry on the mqueue's RX ring (drop if full)."""
        if mq.claim_rx_slot():
            mq.complete_rx(MQueueEntry(payload=b"", size=0, error=code))
