"""The generic network server Lynx runs on the SNIC (§4.2).

Application-agnostic: it terminates UDP/TCP with the platform's stack,
dispatches requests into mqueues via the Remote MQ Managers, forwards
responses back to clients, and relays client-mqueue traffic to backend
services.  No accelerator-specific code runs here — that is the whole
point of the design.

All CPU work is charged on the SNIC's worker core pool, so core
contention (7 slow ARM cores vs 1-6 Xeon cores) falls out naturally.

The per-message serving path (rx -> stack -> dispatch -> RDMA post, and
doorbell -> forward -> stack -> wire on egress) used to run as generator
coroutines; at saturation the generator frames and ``Process``/``Task``
resumptions dominated simulator wall-clock.  Both paths now run as
callback state machines (:class:`_RxOp`, :class:`_TxOp`) that mirror
the retired generators *event for event* — every resource request,
charge and kick consumes the same schedule slot in the same order — so
simulated results are bit-identical under a fixed seed while the hot
path allocates no frames and spawns no processes per message.
"""

from ..errors import ConfigError, NetworkError
from ..net.packet import Address, Message, TCP, TCP_HEADER, UDP_HEADER
from ..net.stack import NetworkStack, TcpConnection
from ..sim import NullTracer, RateMeter, batchexec
from .. import telemetry
from .dispatch import ClientSteering, LeastLoaded, RoundRobin
from .mqueue import (
    CLIENT,
    ERR_CONNECTION,
    ERR_TIMEOUT,
    ERR_UNAVAILABLE,
    MQueueEntry,
    SERVER,
)


class _PortBinding:
    """A listening port: its dispatch policy, mqueues and tenant stats."""

    __slots__ = ("port", "policy", "mqueues", "requests", "responses")

    def __init__(self, env, port, policy):
        self.port = port
        self.policy = policy
        self.mqueues = []
        #: per-tenant accounting (§4.5 multi-tenancy)
        self.requests = RateMeter(env, name="port%d-reqs" % port)
        self.responses = RateMeter(env, name="port%d-resps" % port)


# Per-stage coalescing shared across the data planes (DESIGN.md §4.14).
_try_stage = batchexec.try_stage


class _RxOp:
    """One worker core's ingress loop as a callback state machine.

    Mirrors the retired ``_rx_loop``/``_handle_rx`` generator pair step
    for step: NIC recv -> stack rx cost -> dispatch cost -> RDMA post
    cost -> delivery, with each pool occupancy expressed as the same
    request/charge/release event triple ``CorePool.run_calibrated`` /
    ``run_compute`` scheduled.  One op per worker core lives for the
    whole simulation, so steady-state ingress allocates nothing.
    """

    __slots__ = ("server", "env", "pool", "msg", "mq", "manager",
                 "binding", "request", "duration", "mi", "ws", "token",
                 "_t1", "_t2")

    def __init__(self, server):
        self.server = server
        self.env = server.env
        self.pool = server.workers
        self.msg = None
        self.mq = None
        self.manager = None
        self.binding = None
        self.request = None
        self.duration = 0.0
        self.mi = 0.0
        self.ws = 0
        self.token = None
        #: frame execution: stage-boundary timestamps of a turbo span
        self._t1 = 0.0
        self._t2 = 0.0

    def start(self):
        # URGENT kick at the current time: the exact schedule slot the
        # rx-loop Process's init kick used to occupy.
        self.env._kick(self._begin)

    def _begin(self, _event):
        self._arm()

    def _arm(self):
        """Wait for the next RX-ring message (the loop's ``nic.recv()``).

        Every call site reaches here as the tail of its callback, which
        is what makes the frame-execution admission guard sound (see
        :mod:`repro.sim.batchexec`): after :meth:`_try_turbo` checks the
        schedule, nothing else runs at the current instant.
        """
        if self.env.frame_exec and self._try_turbo():
            return
        get = self.server.nic.rx.get()
        get.callbacks.append(self._on_msg)

    # -- frame execution (DESIGN.md §4.14) ---------------------------------

    def _try_turbo(self):
        """Coalesce the whole rx -> dispatch -> post span into one event.

        The scalar chain burns seven schedule slots per message (ring
        pop, three grants, three charges); when the span is provably
        unobservable this runs it as a single completion at the exact
        final timestamp, replaying every intermediate effect with the
        same arithmetic.  Any precondition failure falls back to the
        unchanged scalar path — which is also the determinism oracle.
        """
        env = self.env
        server = self.server
        if server.tracer.enabled or env.tracer.enabled:
            return False
        rx = server.nic.rx
        items = rx._items
        if not items or not batchexec.ring_plain(rx):
            return False
        msg = items[0]
        kind = msg.kind
        if kind == "tcp-syn" or kind == "tcp-synack":
            return False
        port = msg.dst.port
        if server._client_mq_by_port.get(port) is not None:
            return False
        binding = server._ports.get(port)
        if binding is None or not binding.mqueues:
            return False
        pool = self.pool
        res = pool._res
        if not batchexec.pool_ready(res):
            return False
        if not batchexec.calibration_plain(pool):
            return False
        # Preview the dispatch decision without committing policy state;
        # only the known-pure policies (plus round-robin's counter,
        # advanced below once the span commits) are previewable.
        policy = binding.policy
        ptype = type(policy)
        mqueues = binding.mqueues
        if ptype is RoundRobin:
            mq = mqueues[policy._next % len(mqueues)]
        elif ptype is LeastLoaded or ptype is ClientSteering:
            mq = policy.select(mqueues, msg)
        else:
            return False
        manager = server._manager_of(mq)
        if server._dark_managers and manager in server._dark_managers:
            return False
        # Stage timestamps: the exact sequential additions the scalar
        # charges perform (batchexec.span_times, unrolled).
        t1 = env.now + server.stack.rx_cost(msg)
        t2 = t1 + server.profile.dispatch_cost / pool.profile.speed_factor
        t3 = t2 + manager.engine.profile.post_cost
        if not batchexec.clear_span(env, t3):
            return False
        # -- commit ----------------------------------------------------
        items.popleft()
        server.nic.rx_rate.count += 1       # inlined nic.recv() rate tick
        if ptype is RoundRobin:
            policy._next += 1
        batchexec.seize(res)
        self.msg = msg
        self.mq = mq
        self.manager = manager
        self.binding = binding
        self._t1 = t1
        self._t2 = t2
        # Scalar slots for this span: ring pop, three grants, two
        # stage charges (6 eids) — then defer_at issues the seventh, so
        # the completion fires with the final charge's exact sequence
        # number and everything scheduled afterwards is unperturbed.
        batchexec.burn(env, 6)
        env.defer_at(t3, self._turbo_done)
        return True

    def _turbo_done(self, _event):
        """Span completion: replay the scalar chain's effects at their
        recorded timestamps, then deliver and re-arm."""
        server = self.server
        msg = self.msg
        res = self.pool._res
        gauge = res.utilization
        # The scalar chain's zero-width release/re-grant pairs at the
        # two stage boundaries, then the real release at now (== t3).
        batchexec.touch_gauge(gauge, self._t1)
        batchexec.touch_gauge(gauge, self._t2)
        batchexec.unseize(res)
        if msg.proto == TCP and msg.conn is not None:
            msg.conn.deliver(msg)
        msg.meta["t_rx_done"] = self._t1
        server.requests.count += 1        # inlined RateMeter.tick()
        self.binding.requests.count += 1
        msg.meta["t_dispatched"] = self._t2
        manager, mq = self.manager, self.mq
        self.manager = self.mq = self.msg = self.binding = None
        manager.deliver(mq, msg)
        self._arm()

    def _on_msg(self, get):
        server = self.server
        server.nic.rx_rate.count += 1       # inlined nic.recv() rate tick
        msg = get._value
        if msg.kind == "tcp-synack":
            waiter = server._synack_waiters.pop(msg.conn.conn_id, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(msg)
            self._arm()
            return
        if server.stack.handle_control(msg, server.nic):
            self._arm()
            return
        # stack.process_rx: calibrated rx cost on the worker pool.
        self.msg = msg
        duration = server.stack.rx_cost(msg)
        if self.env.frame_exec and _try_stage(self.env, self.pool._res,
                                              duration, self._rx_stage_done,
                                              pool=self.pool):
            return
        self._acquire_calibrated(duration, self._rx_granted)

    # -- pool occupancy (twins of CorePool.run_calibrated/_timed) ----------

    def _acquire_calibrated(self, duration, granted):
        pool = self.pool
        self.duration = duration
        self.mi = pool.default_memory_intensity
        self.ws = pool.default_working_set
        req = pool._res.request(0)
        self.request = req
        req.callbacks.append(granted)

    def _charge_calibrated(self, charged):
        llc = self.pool.llc
        duration = self.duration
        if llc is None or self.ws <= 0:
            if llc is not None and self.mi > 0:
                duration *= llc.penalty(self.mi)
        else:
            # _timed leg: hold LLC occupancy for the span of the charge
            # (occupy before computing the penalty, like the generator).
            self.token = llc.occupy(self.ws)
            if self.mi > 0:
                duration *= llc.penalty(self.mi)
        self.env.charge(duration).callbacks.append(charged)

    def _release_calibrated(self):
        token = self.token
        if token is not None:
            self.pool.llc.release(token)
            self.token = None
        self.request.release()
        self.request = None

    # -- phases ------------------------------------------------------------

    def _rx_granted(self, _event):
        self._charge_calibrated(self._rx_charged)

    def _rx_charged(self, _event):
        self._release_calibrated()
        self._after_rx()

    def _rx_stage_done(self, _event):
        batchexec.unseize(self.pool._res)
        self._after_rx()

    def _after_rx(self):
        server = self.server
        msg = self.msg
        if msg.proto == TCP and msg.conn is not None:
            msg.conn.deliver(msg)
        msg.meta["t_rx_done"] = self.env.now
        if server.tracer.enabled:
            server.tracer.emit(server.name, "rx", msg.msg_id)
        # Backend response for a client mqueue?
        client_mq = server._client_mq_by_port.get(msg.dst.port)
        if client_mq is not None:
            server._pending_backend.pop(msg.meta.get("in_reply_to"), None)
            self._dispatch(client_mq)
            return
        binding = server._ports.get(msg.dst.port)
        if binding is None or not binding.mqueues:
            server.dropped += 1
            self.msg = None
            self._arm()
            return
        server.requests.count += 1        # inlined RateMeter.tick()
        binding.requests.count += 1
        self.binding = binding
        # Lynx's own dispatcher code scales with the platform's core
        # speed (run_compute with no cache args: a plain charge).
        pool = self.pool
        duration = server.profile.dispatch_cost / pool.profile.speed_factor
        if self.env.frame_exec and _try_stage(self.env, pool._res, duration,
                                              self._cmp_stage_done):
            return
        self.duration = duration
        req = pool._res.request(0)
        self.request = req
        req.callbacks.append(self._cmp_granted)

    def _cmp_granted(self, _event):
        self.env.charge(self.duration).callbacks.append(self._cmp_charged)

    def _cmp_charged(self, _event):
        self.request.release()
        self.request = None
        self._after_cmp()

    def _cmp_stage_done(self, _event):
        batchexec.unseize(self.pool._res)
        self._after_cmp()

    def _after_cmp(self):
        server = self.server
        binding = self.binding
        self.binding = None
        msg = self.msg
        mq = binding.policy.select(binding.mqueues, msg)
        msg.meta["t_dispatched"] = self.env.now
        if server.tracer.enabled:
            server.tracer.emit(server.name, "dispatch", msg.msg_id, mq.name)
        self._dispatch(mq)

    def _dispatch(self, mq):
        """The retired ``_dispatch_to``: post cost, then RDMA delivery."""
        server = self.server
        manager = server._manager_of(mq)
        if server._dark_managers and manager in server._dark_managers:
            self._shed(mq)
            return
        self.mq = mq
        self.manager = manager
        # CPU cost of posting the one-sided RDMA write (§5.1: <1us).
        duration = manager.engine.profile.post_cost
        if self.env.frame_exec and _try_stage(self.env, self.pool._res,
                                              duration, self._post_stage_done,
                                              pool=self.pool):
            return
        self._acquire_calibrated(duration, self._post_granted)

    def _shed(self, mq):
        """Graceful degradation: the accelerator behind *mq* is dark.

        Server-mqueue requests get an immediate §5.1-style error
        response through the normal egress path (the client sees
        ``ERR_UNAVAILABLE`` and can retry) instead of parking on a ring
        nobody drains; backend responses for a dark accelerator's
        client mqueues are dropped.
        """
        server = self.server
        msg = self.msg
        self.msg = None
        if mq.kind == SERVER and msg is not None:
            server.shed += 1
            server._on_accelerator_tx(mq, MQueueEntry(
                payload=b"", size=0, error=ERR_UNAVAILABLE,
                request_msg=msg))
        else:
            server.dropped += 1
        self._arm()

    def _post_granted(self, _event):
        self._charge_calibrated(self._post_charged)

    def _post_charged(self, _event):
        self._release_calibrated()
        self._after_post()

    def _post_stage_done(self, _event):
        batchexec.unseize(self.pool._res)
        self._after_post()

    def _after_post(self):
        # Ring-full drops are counted once, by the mqueue itself;
        # ``server.dropped`` tracks only undeliverable traffic.
        manager, mq, msg = self.manager, self.mq, self.msg
        self.manager = self.mq = self.msg = None
        manager.deliver(mq, msg)
        self._arm()


class _TxOp:
    """One in-flight egress (accelerator -> client) forward.

    Mirrors the retired ``_handle_tx`` detached task step for step:
    forward cost at egress priority, response build, stack tx cost,
    then wire serialization on the NIC TX resource.  Op records are
    pooled on the server (``_tx_op_pool``).
    """

    __slots__ = ("server", "env", "pool", "mq", "entry", "response",
                 "request", "duration", "mi", "ws", "token", "_t1", "_t3")

    def __init__(self, server):
        self.server = server
        self.env = server.env
        self.pool = server.workers
        self.mq = None
        self.entry = None
        self.response = None
        self.request = None
        self.duration = 0.0
        self.mi = 0.0
        self.ws = 0
        self.token = None
        #: frame execution: stage-boundary timestamps of a turbo span
        self._t1 = 0.0
        self._t3 = 0.0

    def start(self, mq, entry):
        self.mq = mq
        self.entry = entry
        # URGENT kick at now: the slot the detached task's kick consumed.
        self.env._kick(self._begin)

    def _begin(self, _event):
        # Frame-execution admission happens here, in the kick's own
        # callback, NOT in start(): a poller sweep can start several ops
        # back to back, and each later kick must already be visible to
        # the earlier op's clear-span guard.
        if self.env.frame_exec and self._try_turbo():
            return
        # Egress runs at higher core priority than ingress: the real
        # forwarder round-robins and is never starved by a request flood.
        pool = self.pool
        duration = (self.server.profile.forward_cost
                    / pool.profile.speed_factor)
        if self.env.frame_exec and _try_stage(self.env, pool._res, duration,
                                              self._fwd_stage_done):
            return
        self.duration = duration
        req = pool._res.request(-1)
        self.request = req
        req.callbacks.append(self._fwd_granted)

    def _begin_swept(self, _event):
        """Scalar ``_begin`` body for sweep-coalesced starts — no turbo.

        All ops of a sweep begin inside one kick callback, so when an
        earlier op probed ``clear_span`` the later ops' grant events
        would not be in the queue yet and the guard would falsely
        admit.  Turbo resumes downstream, where every stage boundary is
        a real queue event again.
        """
        pool = self.pool
        self.duration = (self.server.profile.forward_cost
                         / pool.profile.speed_factor)
        req = pool._res.request(-1)
        self.request = req
        req.callbacks.append(self._fwd_granted)

    # -- frame execution (DESIGN.md §4.14) ---------------------------------

    def _try_turbo(self):
        """Coalesce forward -> stack tx -> wire into two scheduled events.

        The scalar chain costs six slots after the kick; the turbo step
        runs one completion at the stack-tx timestamp (where the issue
        slot changes hands) and one at wire-out.  Only the plain
        server-mqueue response path qualifies — client-mqueue egress
        (fresh backend requests, watchdogs) stays scalar.
        """
        env = self.env
        server = self.server
        if server.tracer.enabled or env.tracer.enabled:
            return False
        mq, entry = self.mq, self.entry
        if mq.kind != SERVER:
            return False
        request = entry.request_msg
        if request is None:
            return False
        size = 0 if entry.error else entry.size
        if size is None:
            return False
        pool = self.pool
        res = pool._res
        if not batchexec.pool_ready(res):
            return False
        if not batchexec.calibration_plain(pool):
            return False
        issue = server.nic.tx.issue
        if issue is None or not batchexec.pool_ready(issue):
            return False
        proto = request.proto
        header = TCP_HEADER if proto == TCP else UDP_HEADER
        t1 = env.now + server.profile.forward_cost / pool.profile.speed_factor
        t2 = t1 + server.stack.tx_cost_for(proto, size)
        t3 = t2 + server.nic.tx.occupancy(size + header)
        if not batchexec.clear_span(env, t3):
            return False
        # -- commit ----------------------------------------------------
        batchexec.seize(res)
        self._t1 = t1
        self._t3 = t3
        # Scalar slots: forward grant + charge, then the tx-leg grant
        # (3 eids); defer_at issues the tx charge's exact slot.
        batchexec.burn(env, 3)
        env.defer_at(t2, self._turbo_fwd_done)
        return True

    def _turbo_fwd_done(self, _event):
        """now == t2: worker-pool span over; replay t1's bookkeeping,
        build the response at its scalar values, claim the wire."""
        server = self.server
        env = self.env
        res = self.pool._res
        batchexec.touch_gauge(res.utilization, self._t1)
        batchexec.unseize(res)
        entry = self.entry
        request = entry.request_msg
        t1 = self._t1
        if entry.error:
            response = request.reply(b"", created_at=t1, size=0,
                                     kind="error")
            response.meta["error"] = entry.error
        else:
            response = request.reply(entry.payload, created_at=t1,
                                     size=entry.size)
        self.response = response
        if server.collect_breakdowns:
            stamps = dict(request.meta)
            stamps["t_tx_ready"] = t1
            response.meta["breakdown"] = {
                k: v for k, v in stamps.items() if k.startswith("t_")}
        if response.proto == TCP and response.conn is not None:
            response.meta["tcp_seq"] = response.conn.next_seq(response.src)
        server.responses.count += 1       # inlined RateMeter.tick()
        env.requests_completed += 1
        binding = server._ports.get(self.mq.bound_port)
        if binding is not None:
            binding.responses.count += 1
        batchexec.seize(server.nic.tx.issue)
        batchexec.burn(env, 1)            # the scalar issue-grant slot
        env.defer_at(self._t3, self._turbo_wire_done)

    def _turbo_wire_done(self, _event):
        """now == t3: wire serialization done — deliver and recycle."""
        nic = self.server.nic
        batchexec.unseize(nic.tx.issue)
        response = self.response
        nic.tx.sent += 1                  # inlined Channel.transfer stats
        nic.tx.bytes_moved += response.wire_size
        nic.tx_rate.count += 1            # inlined RateMeter.tick()
        nic.network.deliver(response)
        self._finish()

    def _fwd_granted(self, _event):
        self.env.charge(self.duration).callbacks.append(self._fwd_charged)

    def _fwd_charged(self, _event):
        self.request.release()
        self.request = None
        self._after_fwd()

    def _fwd_stage_done(self, _event):
        batchexec.unseize(self.pool._res)
        self._after_fwd()

    def _after_fwd(self):
        server = self.server
        mq, entry = self.mq, self.entry
        response = server._build_response(mq, entry)
        if response is None:
            self._finish()
            return
        self.response = response
        if server.collect_breakdowns and entry.request_msg is not None:
            stamps = dict(entry.request_msg.meta)
            stamps["t_tx_ready"] = self.env.now
            response.meta["breakdown"] = {
                k: v for k, v in stamps.items() if k.startswith("t_")}
        if response.proto == TCP and response.conn is not None:
            response.meta["tcp_seq"] = response.conn.next_seq(response.src)
        # run_calibrated(stack.tx_cost, priority=-1) on the worker pool.
        pool = self.pool
        duration = server.stack.tx_cost(response)
        if self.env.frame_exec and _try_stage(self.env, pool._res, duration,
                                              self._tx_stage_done, pool=pool):
            return
        self.duration = duration
        self.mi = pool.default_memory_intensity
        self.ws = pool.default_working_set
        req = pool._res.request(-1)
        self.request = req
        req.callbacks.append(self._tx_granted)

    def _tx_granted(self, _event):
        llc = self.pool.llc
        duration = self.duration
        if llc is None or self.ws <= 0:
            if llc is not None and self.mi > 0:
                duration *= llc.penalty(self.mi)
        else:
            self.token = llc.occupy(self.ws)
            if self.mi > 0:
                duration *= llc.penalty(self.mi)
        self.env.charge(duration).callbacks.append(self._tx_charged)

    def _tx_charged(self, _event):
        token = self.token
        if token is not None:
            self.pool.llc.release(token)
            self.token = None
        self.request.release()
        self.request = None
        self._after_txleg()

    def _tx_stage_done(self, _event):
        batchexec.unseize(self.pool._res)
        self._after_txleg()

    def _after_txleg(self):
        server = self.server
        server.responses.count += 1       # inlined RateMeter.tick()
        mq = self.mq
        if mq.kind == SERVER:
            self.env.requests_completed += 1
            binding = server._ports.get(mq.bound_port)
        else:
            binding = None
        if binding is not None:
            binding.responses.count += 1
        if server.tracer.enabled:
            server.tracer.emit(server.name, "tx", self.response.msg_id)
        # nic.send(response) through the TX channel: claim the port's
        # issue slot, hold it for the wire occupancy, then deliver.
        issue = server.nic.tx.issue
        duration = server.nic.tx.occupancy(self.response.wire_size)
        if self.env.frame_exec and _try_stage(self.env, issue, duration,
                                              self._wire_stage_done):
            return
        req = issue.request()
        self.request = req
        req.callbacks.append(self._wire_granted)

    def _wire_granted(self, _event):
        tx = self.server.nic.tx
        charge = self.env.charge(tx.occupancy(self.response.wire_size))
        charge.callbacks.append(self._wire_charged)

    def _wire_charged(self, _event):
        self.request.release()
        self.request = None
        self._after_wire()

    def _wire_stage_done(self, _event):
        batchexec.unseize(self.server.nic.tx.issue)
        self._after_wire()

    def _after_wire(self):
        nic = self.server.nic
        response = self.response
        nic.tx.sent += 1                  # inlined Channel.transfer stats
        nic.tx.bytes_moved += response.wire_size
        nic.tx_rate.count += 1            # inlined RateMeter.tick()
        nic.network.deliver(response)
        self._finish()

    def _finish(self):
        self.mq = self.entry = self.response = None
        pool = self.server._tx_op_pool
        if len(pool) < LynxServer.TX_OP_POOL_CAP:
            pool.append(self)


class LynxServer:
    """The SNIC-resident network server + dispatcher + forwarder."""

    #: max pooled egress-op records (bounds steady-state in-flight TX)
    TX_OP_POOL_CAP = 1024

    def __init__(self, env, nic, workers, stack_profile, lynx_profile,
                 name=None, tracer=None):
        self.env = env
        self.nic = nic
        self.workers = workers
        self.profile = lynx_profile
        self.tracer = tracer or NullTracer()
        #: opt-in per-response latency-stamp collection (see
        #: experiments/breakdown.py); off by default — it copies the
        #: request's meta dict into every response.
        self.collect_breakdowns = False
        self.name = name or "lynx@%s" % nic.ip
        self.stack = NetworkStack(env, workers, stack_profile,
                                  name="%s-stack" % self.name)
        self._ports = {}
        self._managers = []
        self._manager_by_mq = {}
        self._client_mq_by_port = {}
        self._next_client_port = 9000
        self._synack_waiters = {}
        self._pending_backend = {}
        #: managers whose accelerator is dark (fault injection); their
        #: traffic is shed with error responses instead of parked
        self._dark_managers = set()
        self.requests = RateMeter(env, name="%s-reqs" % self.name)
        self.responses = RateMeter(env, name="%s-resps" % self.name)
        self.dropped = 0
        self.shed = 0
        # Telemetry (DESIGN.md §4.9): the live meters double as the
        # registry instruments; drops are pulled at snapshot time.
        reg = telemetry.registry()
        base = "lynx.server.%s." % self.name
        reg.register(base + "rx.requests", self.requests)
        reg.register(base + "tx.responses", self.responses)
        reg.pull(base + "rx.drops", lambda: self.dropped)
        reg.pull(base + "tx.shed_errors", lambda: self.shed)
        self._tx_op_pool = []
        # One ingress loop per worker core: admission is bounded by core
        # availability, and overload is shed at the NIC RX ring instead
        # of building an unbounded software backlog.
        for _ in range(workers.count):
            _RxOp(self).start()

    @property
    def ip(self):
        return self.nic.ip

    # -- configuration ----------------------------------------------------------

    def add_manager(self, manager):
        """Attach a Remote MQ Manager (one per accelerator)."""
        manager.on_tx(self._on_accelerator_tx)
        if hasattr(manager, "on_tx_many"):
            manager.on_tx_many(self._on_accelerator_tx_many)
        self._managers.append(manager)
        return manager

    def bind(self, port, mqueues, policy=None):
        """Listen on *port* and dispatch its requests to *mqueues*."""
        binding = self._ports.get(port)
        if binding is None:
            binding = _PortBinding(self.env, port, policy or RoundRobin())
            self._ports[port] = binding
            self.stack.listen(port)
            # Per-tenant accounting (§4.5) in the registry.
            reg = telemetry.registry()
            base = "lynx.server.%s.port.%d." % (self.name, port)
            reg.register(base + "rx.requests", binding.requests)
            reg.register(base + "tx.responses", binding.responses)
        elif policy is not None:
            binding.policy = policy
        for mq in mqueues:
            if mq.kind != SERVER:
                raise ConfigError("only server mqueues can be bound to a port")
            if mq.bound_port is not None and mq.bound_port != port:
                # Multi-tenant state protection (§4.5): an mqueue belongs
                # to exactly one service.
                raise ConfigError(
                    "mqueue %s is already bound to port %d" % (mq.name,
                                                               mq.bound_port))
            mq.bound_port = port
            binding.mqueues.append(mq)
        return binding

    def register_client_mqueue(self, mq):
        """Give a client mqueue its SNIC-side source port."""
        if mq.kind != CLIENT:
            raise ConfigError("register_client_mqueue needs a client mqueue")
        self._next_client_port += 1
        mq.src_port = self._next_client_port
        self._client_mq_by_port[mq.src_port] = mq
        return mq

    def connect_client_mqueue(self, mq):
        """Generator: establish the TCP connection of a client mqueue.

        Performed once at initialization (§4.3: static connections).
        """
        if mq.src_port is None:
            self.register_client_mqueue(mq)
        if mq.proto != TCP:
            return mq
        src = Address(self.ip, mq.src_port)
        conn = TcpConnection(client=src, server=mq.destination)
        syn = Message(src=src, dst=mq.destination, payload=b"", proto=TCP,
                      created_at=self.env.now, conn=conn, kind="tcp-syn")
        syn.meta["conn"] = conn
        waiter = self.env.event()
        self._synack_waiters[conn.conn_id] = waiter
        yield from self.nic.send(syn)
        yield waiter
        if not conn.established:
            raise NetworkError("client mqueue %s failed to connect" % mq.name)
        mq.conn = conn
        return mq

    def port_stats(self, port):
        """Per-tenant request/response meters of one listening port."""
        binding = self._ports.get(port)
        if binding is None:
            raise ConfigError("no binding on port %d" % port)
        return binding.requests, binding.responses

    def set_accelerator_dark(self, manager, dark=True):
        """Mark *manager*'s accelerator dead (or recovered).

        While dark, requests dispatched to its mqueues are shed with
        ``ERR_UNAVAILABLE`` error responses (see :meth:`_RxOp._shed`).
        """
        if dark:
            self._dark_managers.add(manager)
        else:
            self._dark_managers.discard(manager)

    def _manager_of(self, mq):
        # Cached: this runs per dispatched message, and a linear scan of
        # managers × mqueues dominated dispatch at high queue counts.
        manager = self._manager_by_mq.get(mq)
        if manager is None:
            for candidate in self._managers:
                if mq in candidate._mqueue_set:
                    manager = candidate
                    break
            else:
                raise ConfigError(
                    "mqueue %s has no manager on %s" % (mq.name, self.name))
            self._manager_by_mq[mq] = manager
        return manager

    # -- egress --------------------------------------------------------------------

    def _on_accelerator_tx(self, mq, entry):
        pool = self._tx_op_pool
        op = pool.pop() if pool else _TxOp(self)
        op.start(mq, entry)

    def _on_accelerator_tx_many(self, pairs):
        """Frame twin of the per-entry sink for one poller sweep.

        The scalar path posts one URGENT kick per entry: k events whose
        callbacks each run :meth:`_TxOp._begin`.  Since same-time URGENT
        kicks all fire before any NORMAL grant they create, the k
        ``_begin`` bodies run back to back either way — so one kick
        runs them all in order, the k-1 phantom kick ids are burned,
        and every grant event the bodies create keeps its scalar id.
        """
        pool = self._tx_op_pool
        ops = []
        for mq, entry in pairs:
            op = pool.pop() if pool else _TxOp(self)
            op.mq = mq
            op.entry = entry
            ops.append(op)

        def run(_event):
            for op in ops:
                op._begin_swept(_event)

        env = self.env
        env._kick(run)
        batchexec.burn(env, len(ops) - 1)

    def _build_response(self, mq, entry):
        if mq.kind == SERVER:
            # Respond to whichever client sent the request (§4.3).
            request = entry.request_msg
            if request is None:
                raise NetworkError(
                    "server mqueue %s produced an entry with no originating "
                    "request" % mq.name)
            if entry.error:
                # §5.1 error status to the client: an error-kind reply
                # resolves the client's waiter without counting as a
                # served response (goodput and latency stay honest).
                response = request.reply(b"", created_at=self.env.now,
                                         size=0, kind="error")
                response.meta["error"] = entry.error
                return response
            return request.reply(entry.payload, created_at=self.env.now,
                                 size=entry.size)
        # Client mqueue: a fresh request to the static destination.
        if mq.proto == TCP and (mq.conn is None or not mq.conn.established):
            # §5.1: connection errors surface through the metadata's
            # error field instead of hanging the accelerator.
            self._deliver_error(mq, ERR_CONNECTION)
            return None
        msg = Message(src=Address(self.ip, mq.src_port), dst=mq.destination,
                      payload=entry.payload, proto=mq.proto,
                      created_at=self.env.now, size=entry.size,
                      conn=mq.conn, kind="request")
        if self.profile.backend_timeout > 0:
            self._pending_backend[msg.msg_id] = mq
            self.env.detached(self._backend_watchdog(mq, msg))
        return msg

    def _backend_watchdog(self, mq, msg):
        yield self.env.charge(self.profile.backend_timeout)
        if self._pending_backend.pop(msg.msg_id, None) is not None:
            self._deliver_error(mq, ERR_TIMEOUT)

    def _deliver_error(self, mq, code):
        """Place an error entry on the mqueue's RX ring (drop if full)."""
        if mq.claim_rx_slot():
            mq.complete_rx(MQueueEntry(payload=b"", size=0, error=code))
