"""Network substrate: messages, fabric, transport stacks, RDMA, clients."""

from .packet import Address, Message, UDP, TCP, payload_size
from .network import MultiRackNetwork, Network
from .stack import NetworkStack, TcpConnection
from .cluster import ConsistentHashRing, L4LoadBalancer, STEER_POLICIES, \
    extract_key, shard_preload
from .rdma import RdmaEngine, QueuePair
from .client import Client, OpenLoopGenerator, ClosedLoopGenerator
from .arrivals import ArrivalProcess, OnOffBurst, Poisson, TraceReplay, \
    Uniform, load_trace_timestamps
from .population import (
    BModelPopulation,
    ClientPopulation,
    DiurnalPopulation,
    Flow,
    InFlightTable,
    OnOffPopulation,
    PayloadPool,
    PoissonPopulation,
    PopulationArrivals,
    TracePopulation,
    arrival_factory,
)

__all__ = [
    "Address",
    "Message",
    "UDP",
    "TCP",
    "payload_size",
    "Network",
    "MultiRackNetwork",
    "ConsistentHashRing",
    "L4LoadBalancer",
    "STEER_POLICIES",
    "extract_key",
    "shard_preload",
    "NetworkStack",
    "TcpConnection",
    "RdmaEngine",
    "QueuePair",
    "Client",
    "OpenLoopGenerator",
    "ClosedLoopGenerator",
    "ArrivalProcess",
    "Uniform",
    "Poisson",
    "OnOffBurst",
    "TraceReplay",
    "load_trace_timestamps",
    "ClientPopulation",
    "PopulationArrivals",
    "PoissonPopulation",
    "OnOffPopulation",
    "DiurnalPopulation",
    "BModelPopulation",
    "TracePopulation",
    "PayloadPool",
    "Flow",
    "InFlightTable",
    "arrival_factory",
]
