"""Arrival processes for load generation.

sockperf-style constant pacing and Poisson arrivals cover the paper's
methodology; bursty (Markov-modulated on/off) and trace-replay
processes support the ablations (e.g. ring sizing under bursts) and
downstream users with their own traces.
"""

import csv
import os

from ..errors import ConfigError


def load_trace_timestamps(path):
    """Load arrival timestamps (us, ascending) from ``.npy`` or CSV.

    ``.npy`` files hold a 1-D float array.  CSV/text files hold one
    timestamp per row (a header row and extra columns are tolerated:
    the first field of each row that parses as a float is taken).
    Shared by :meth:`TraceReplay.from_file`, the population plane's
    :class:`~repro.net.population.TracePopulation`, and the CLI's
    ``--arrivals trace:<path>`` hook.
    """
    if not os.path.exists(path):
        raise ConfigError("trace file not found: %s" % path)
    if path.endswith(".npy"):
        import numpy as np

        stamps = np.load(path)
        if stamps.ndim != 1:
            raise ConfigError("trace %s: expected a 1-D array, got shape %r"
                              % (path, stamps.shape))
        return [float(t) for t in stamps]
    stamps = []
    with open(path, newline="") as fh:
        for row in csv.reader(fh):
            if not row:
                continue
            try:
                stamps.append(float(row[0]))
            except ValueError:
                if stamps:
                    raise ConfigError(
                        "trace %s: unparsable timestamp %r after %d rows"
                        % (path, row[0], len(stamps)))
                # else: header row — skip
    if len(stamps) < 2:
        raise ConfigError("trace %s: needs at least two timestamps" % path)
    return stamps


class ArrivalProcess:
    """Yields successive inter-arrival gaps (us)."""

    def next_gap(self):
        raise NotImplementedError


class Uniform(ArrivalProcess):
    """Constant pacing at a fixed rate (sockperf's default)."""

    def __init__(self, rate_per_us):
        if rate_per_us <= 0:
            raise ConfigError("rate must be positive")
        self._gap = 1.0 / rate_per_us

    def next_gap(self):
        """Constant gap."""
        return self._gap


class Poisson(ArrivalProcess):
    """Memoryless arrivals at a mean rate."""

    def __init__(self, rate_per_us, rng, stream="poisson-arrivals"):
        if rate_per_us <= 0:
            raise ConfigError("rate must be positive")
        self._mean = 1.0 / rate_per_us
        self._rng = rng
        self._stream = stream

    def next_gap(self):
        """Exponential gap with the configured mean."""
        return self._rng.exponential(self._stream, self._mean)


class OnOffBurst(ArrivalProcess):
    """Markov-modulated on/off bursts.

    During an ON period arrivals come at ``burst_rate``; OFF periods are
    silent.  Mean period lengths are exponential.  The long-run average
    rate is ``burst_rate * on_mean / (on_mean + off_mean)``.
    """

    def __init__(self, burst_rate_per_us, on_mean_us, off_mean_us, rng,
                 stream="onoff-arrivals"):
        if burst_rate_per_us <= 0 or on_mean_us <= 0 or off_mean_us < 0:
            raise ConfigError("invalid on/off burst parameters")
        self.burst_rate = burst_rate_per_us
        self.on_mean = on_mean_us
        self.off_mean = off_mean_us
        self._rng = rng
        self._stream = stream
        self._remaining_on = 0.0

    @property
    def mean_rate(self):
        return (self.burst_rate * self.on_mean
                / (self.on_mean + self.off_mean))

    def next_gap(self):
        """Burst-rate gap, stretched by OFF periods at period ends."""
        gap = self._rng.exponential(self._stream, 1.0 / self.burst_rate)
        if self._remaining_on >= gap:
            self._remaining_on -= gap
            return gap
        # the ON period ends: insert an OFF gap and start a new period
        off = self._rng.exponential(self._stream + ".off", self.off_mean)
        leftover = gap - self._remaining_on
        self._remaining_on = self._rng.exponential(
            self._stream + ".on", self.on_mean)
        return leftover + off

    def __repr__(self):
        return "<OnOffBurst %.3f/us on=%.0fus off=%.0fus (mean %.3f/us)>" % (
            self.burst_rate, self.on_mean, self.off_mean, self.mean_rate)


class TraceReplay(ArrivalProcess):
    """Replays recorded arrival timestamps (us, ascending), looping."""

    @classmethod
    def from_file(cls, path):
        """Build a replay from a ``.npy`` or CSV timestamp file.

        See :func:`load_trace_timestamps` for the accepted formats;
        the CLI's ``--arrivals trace:<path>`` rides this loader.
        """
        return cls(load_trace_timestamps(path))

    def __init__(self, timestamps):
        stamps = list(timestamps)
        if len(stamps) < 2:
            raise ConfigError("a trace needs at least two timestamps")
        if any(b < a for a, b in zip(stamps, stamps[1:])):
            raise ConfigError("trace timestamps must be non-decreasing")
        self._gaps = [b - a for a, b in zip(stamps, stamps[1:])]
        self._index = 0

    def next_gap(self):
        """Next recorded gap, looping over the trace."""
        gap = self._gaps[self._index]
        self._index = (self._index + 1) % len(self._gaps)
        return gap
