"""Load-generating clients (the role sockperf plays in the paper).

Clients are deliberately lightweight: the paper's client machines are
never the bottleneck, so we charge only a small fixed send cost and the
port serialization time.  Two drive modes match the paper's
methodology:

* :class:`OpenLoopGenerator` — Poisson arrivals at a target rate
  (latency-under-load measurements).
* :class:`ClosedLoopGenerator` — N outstanding requests, new request on
  each response (saturation throughput measurements).
"""

from .. import units
from ..errors import NetworkError
from ..sim import Channel, LatencyRecorder, RateMeter
from .. import telemetry
from .packet import Address, Message, TCP, UDP
from .stack import TcpConnection


class _SendOp:
    """One in-flight fire-and-forget send (callback twin of Client.send).

    Mirrors ``env.detached(client.send(msg))`` event for event: the
    detached task's URGENT kick, then the serialization charge, then
    delivery.  Records are pooled on the client.
    """

    __slots__ = ("client", "msg")

    def __init__(self, client):
        self.client = client
        self.msg = None

    def start(self, msg):
        self.msg = msg
        self.client.env._kick(self._begin)

    def _begin(self, _event):
        client = self.client
        msg = self.msg
        if msg.conn is not None and not msg.kind.startswith("tcp-"):
            msg.meta["tcp_seq"] = msg.conn.next_seq(msg.src)
        charge = client.env.charge(
            client.send_cost + msg.wire_size / client.link_rate)
        charge.callbacks.append(self._sent)

    def _sent(self, _event):
        client = self.client
        msg = self.msg
        self.msg = None
        client.sent.count += 1        # inlined RateMeter.tick()
        pool = client._send_op_pool
        if len(pool) < 1024:
            pool.append(self)
        client.network.deliver(msg)


class _ClientRxOp:
    """The client's response loop as a callback state machine.

    Mirrors the retired ``_rx_loop`` generator process: one RX-store get
    per message, latency accounting, waiter wake-up, re-arm.
    """

    __slots__ = ("client",)

    def __init__(self, client):
        self.client = client
        # URGENT kick at now: the slot the rx-loop Process's init used.
        client.env._kick(self._begin)

    def _begin(self, _event):
        self._arm()

    def _arm(self):
        self.client.rx.get().callbacks.append(self._on_msg)

    def _on_msg(self, get):
        client = self.client
        msg = get._value
        created = msg.meta.get("request_created_at")
        if created is not None and msg.kind == "response":
            client.latency._samples.append(
                client.env.now - created + client.recv_cost)
            client.responses.count += 1
        waiter = client._waiters.pop(msg.meta.get("in_reply_to"), None)
        if waiter is None and msg.kind == "tcp-synack":
            waiter = client._waiters.pop(("synack", msg.conn.conn_id), None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(msg)
        self._arm()


class Client:
    """One client host attached to the network."""

    def __init__(self, env, network, ip, link_rate=units.gbps(40),
                 send_cost=2.0, recv_cost=2.0, name=None, rng=None):
        self.env = env
        self.network = network
        self.ip = ip
        self.link_rate = link_rate
        # sockperf-with-VMA userspace costs per message.  recv_cost is
        # *accounted* into recorded latency but not simulated as a
        # serialization point, so a single client can sink high response
        # rates (the paper uses two client machines).
        self.send_cost = send_cost
        self.recv_cost = recv_cost
        self.name = name or "client-%s" % ip
        self.rng = rng
        self.rx = Channel(env, name="%s-rx" % self.name)
        self.latency = LatencyRecorder(env, name="%s-latency" % self.name)
        self.responses = RateMeter(env, name="%s-rate" % self.name)
        self.sent = RateMeter(env, name="%s-sent" % self.name)
        # Telemetry (DESIGN.md §4.9): the live recorder/meters double as
        # the registry instruments (the recorder snapshots as a
        # mergeable log-bucketed histogram; local samples stay exact).
        #: request attempts re-sent after a timeout or error response
        self.retries = 0
        reg = telemetry.registry()
        base = "net.client.%s." % ip
        reg.register(base + "latency", self.latency)
        reg.register(base + "responses", self.responses)
        reg.register(base + "sent", self.sent)
        reg.pull(base + "retries", lambda: self.retries)
        self._waiters = {}
        self._next_port = 40000
        self._send_op_pool = []
        network.attach(ip, self)
        _ClientRxOp(self)

    # -- raw I/O ---------------------------------------------------------------

    def _source_address(self):
        self._next_port += 1
        if self._next_port > 65000:
            self._next_port = 40001
        return Address(self.ip, self._next_port)

    def send(self, msg):
        """Generator: serialize *msg* onto the wire."""
        if msg.conn is not None and not msg.kind.startswith("tcp-"):
            msg.meta["tcp_seq"] = msg.conn.next_seq(msg.src)
        yield self.env.charge(self.send_cost + msg.wire_size / self.link_rate)
        self.sent.count += 1          # inlined RateMeter.tick()
        self.network.deliver(msg)

    def send_async(self, msg):
        """Fire-and-forget :meth:`send` (zero-allocation steady state)."""
        pool = self._send_op_pool
        op = pool.pop() if pool else _SendOp(self)
        op.start(msg)

    # -- request/response ---------------------------------------------------

    def connect(self, dst):
        """Generator: establish a TCP connection to *dst*; returns it."""
        src = self._source_address()
        conn = TcpConnection(client=src, server=dst)
        syn = Message(src=src, dst=dst, payload=b"", proto=TCP,
                      created_at=self.env.now, conn=conn, kind="tcp-syn")
        syn.meta["conn"] = conn
        waiter = self.env.event()
        self._waiters[("synack", conn.conn_id)] = waiter
        yield from self.send(syn)
        yield waiter
        # The RX loop pops the synack entry on arrival; this defensive
        # pop keeps the waiter table empty even if the entry was
        # resolved some other way (dict ops consume no schedule slots).
        self._waiters.pop(("synack", conn.conn_id), None)
        if not conn.established:
            raise NetworkError("TCP handshake failed to %s" % (dst,))
        return conn

    def request(self, payload, dst, proto=UDP, conn=None, timeout=None,
                retries=0, retry_backoff=None):
        """Generator: send one request and wait for its response.

        Returns the response message, or None when every attempt timed
        out (UDP requests may be dropped by a saturated server).  The
        response may be error-kind — e.g. the Lynx server shedding for
        a dark accelerator — which callers treat as a failure.

        With ``retries`` > 0 a failed attempt (timeout or error-kind
        response) is re-sent up to that many extra times, after an
        exponential backoff with ±50% jitter drawn from the simulation
        RNG so runs stay reproducible.  The base delay is
        ``retry_backoff`` (default: the timeout, else 1000us).

        A retrying request always carries a per-attempt deadline: with
        ``retries`` > 0 and no explicit ``timeout``, the deadline
        defaults to twice the backoff base — otherwise a lost UDP
        request would park the waiter forever and the retry budget
        could never fire.
        """
        env = self.env
        if retries > 0 and timeout is None:
            timeout = 2.0 * (retry_backoff if retry_backoff is not None
                             else 1000.0)
        attempt = 0
        while True:
            attempt += 1
            src = conn.client if conn is not None else self._source_address()
            msg = Message(src=src, dst=dst, payload=payload, proto=proto,
                          created_at=env.now, conn=conn)
            waiter = env.event()
            self._waiters[msg.msg_id] = waiter
            yield from self.send(msg)
            if timeout is None:
                response = yield waiter
            else:
                expiry = env.timeout(timeout)
                result = yield env.any_of([waiter, expiry])
                response = result[waiter] if waiter in result else None
            # The RX loop pops the entry when a response arrives; this
            # pop covers the timeout path and is defensive elsewhere, so
            # the waiter table stays empty under mixed traffic.
            self._waiters.pop(msg.msg_id, None)
            failed = response is None or response.kind == "error"
            if not failed:
                if attempt > 1:
                    # Lazily created: E01-E15 metric snapshots must not
                    # grow a counter no fault run ever touched.
                    telemetry.registry().counter(
                        "faults.recovered.client_retry").inc()
                return response
            if attempt > retries:
                return response
            self.retries += 1
            base = retry_backoff if retry_backoff is not None \
                else (timeout if timeout else 1000.0)
            delay = base * (2 ** (attempt - 1))
            if self.rng is not None:
                delay *= self.rng.uniform("client.retry.%s" % self.ip,
                                          0.5, 1.5)
            yield env.timeout(delay)


class OpenLoopGenerator:
    """Poisson (or uniform) arrivals at a fixed offered rate."""

    def __init__(self, env, client, dst, rate_per_us=None, payload_fn=None,
                 proto=UDP, conn=None, poisson=True, arrivals=None,
                 name=None):
        if arrivals is None and (rate_per_us is None or rate_per_us <= 0):
            raise NetworkError("open-loop rate must be positive")
        if payload_fn is None:
            raise NetworkError("open-loop generator needs a payload_fn")
        self.env = env
        self.client = client
        self.dst = dst
        self.rate = rate_per_us
        self.payload_fn = payload_fn
        self.proto = proto
        self.conn = conn
        self.poisson = poisson
        #: optional ArrivalProcess overriding rate/poisson pacing
        self.arrivals = arrivals
        self.name = name or "openloop->%s" % (dst,)
        self._stopped = False
        self.offered = 0
        # Callback state machine standing in for the old arrival Process
        # (same init kick, same charge per gap, same send kick).
        env._kick(self._begin)

    def stop(self):
        self._stopped = True

    def _interarrival(self):
        if self.arrivals is not None:
            return self.arrivals.next_gap()
        mean = 1.0 / self.rate
        if self.poisson and self.client.rng is not None:
            return self.client.rng.exponential(self.name, mean)
        return mean

    def _begin(self, _event):
        if not self._stopped:
            self.env.charge(self._interarrival()).callbacks.append(self._fire)

    def _fire(self, _event):
        if self._stopped:
            return
        env = self.env
        payload = self.payload_fn(self.offered)
        src = (self.conn.client if self.conn is not None
               else self.client._source_address())
        msg = Message(src=src, dst=self.dst, payload=payload,
                      proto=self.proto, created_at=env.now, conn=self.conn)
        self.offered += 1
        # Fire and forget: the arrival process must not be throttled
        # by per-message send cost, or high offered rates would be
        # silently capped below the target.
        self.client.send_async(msg)
        env.charge(self._interarrival()).callbacks.append(self._fire)


class ClosedLoopGenerator:
    """N workers, each with one outstanding request at a time."""

    def __init__(self, env, client, dst, concurrency, payload_fn, proto=UDP,
                 timeout=None, think_time=0.0, use_tcp_connections=False,
                 retries=0, retry_backoff=None, name=None):
        self.env = env
        self.client = client
        self.dst = dst
        self.concurrency = concurrency
        self.payload_fn = payload_fn
        self.proto = proto
        self.timeout = timeout
        self.think_time = think_time
        self.use_tcp_connections = use_tcp_connections or proto == TCP
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.name = name or "closedloop->%s" % (dst,)
        self._stopped = False
        self.completed = 0
        self.timeouts = 0
        self.errors = 0
        self.processes = [
            env.process(self._worker(i), name="%s-w%d" % (self.name, i))
            for i in range(concurrency)
        ]

    def stop(self):
        self._stopped = True

    def _worker(self, index):
        env = self.env
        conn = None
        if self.use_tcp_connections:
            conn = yield from self.client.connect(self.dst)
        seq = 0
        while not self._stopped:
            payload = self.payload_fn(index * 1000000 + seq)
            seq += 1
            response = yield from self.client.request(
                payload, self.dst, proto=self.proto, conn=conn,
                timeout=self.timeout, retries=self.retries,
                retry_backoff=self.retry_backoff)
            if response is None:
                self.timeouts += 1
            elif response.kind == "error":
                self.errors += 1
            else:
                self.completed += 1
            if self.think_time > 0:
                yield env.charge(self.think_time)
