"""Cluster service tier: consistent-hash sharding + a SmartNIC L4 VIP.

Lovelock (PAPERS.md) pushes the Lynx thesis one level up: if a SmartNIC
can own one server's network control loop, a SmartNIC can own a whole
*cluster's* — hosting the L4 load balancer that steers requests across
a sharded, replicated service tier.  This module is that tier
(DESIGN.md §4.15):

* :class:`ConsistentHashRing` — blake2s-hashed virtual-node ring
  mapping keys to their owning replicas.  blake2s (not ``hash()``)
  keeps the mapping identical in every process, python version, and
  platform — the same determinism convention as the sweep executor's
  seed derivation.  ``lookup`` walks clockwise past dead nodes, which
  is the shard-rebalance half of rack failover: when a rack dies, its
  keys rehome to the next live successor with no coordination.
* :class:`L4LoadBalancer` — a network endpoint at a VIP, modelling the
  SmartNIC datapath: frames land in a bounded RX ring (drop-tail under
  VIP overload), a drain loop charges a per-packet steering cost, the
  request key selects the replica set off the ring, and one of three
  policies picks the replica: ``round_robin``, ``least_loaded``
  (instantaneous backend queue depth), or ``p2c``
  (power-of-two-choices: two independent draws from a named RNG
  stream, steer to the shallower queue).  The chosen backend gets the
  *original* message with a rewritten destination, so its reply goes
  direct-server-return to the client — ``Message.reply`` targets the
  request's source and preserves ``msg_id`` for the population plane's
  in-flight table.

Determinism: steering consumes schedule slots only through
``env.defer`` and draws only from the named stream
``cluster.p2c.<vip>``, so fixed-seed cluster runs are bit-identical
across ``--jobs 1/N`` and heap/wheel backends.
"""

import hashlib
from bisect import bisect_right

from .. import telemetry
from ..errors import ConfigError
from ..sim import Channel

#: replica-steering policies the VIP understands
STEER_POLICIES = ("round_robin", "least_loaded", "p2c")

# apps.memcached wire-format prefixes (kept literal here: the fabric
# layer must not import the application layer)
_GET = b"get \x00"
_SET = b"set \x00"
_DEL = b"del \x00"


def extract_key(payload):
    """The shard key of a memcached-style request payload, or ``None``.

    Non-conforming payloads (LeNet tensors, stats probes) return
    ``None`` — the balancer then steers across the full replica set.
    """
    if isinstance(payload, (bytes, bytearray, memoryview)):
        payload = bytes(payload)
        if payload.startswith(_GET) or payload.startswith(_DEL):
            return payload[5:]
        if payload.startswith(_SET):
            return payload[5:].partition(b"\x00")[0]
    return None


def _point(data):
    """A 64-bit ring position (blake2s: stable across processes)."""
    return int.from_bytes(hashlib.blake2s(data, digest_size=8).digest(),
                          "big")


class ConsistentHashRing:
    """Virtual-node consistent hashing over a set of node names."""

    def __init__(self, nodes=(), vnodes=64):
        if vnodes < 1:
            raise ConfigError("consistent-hash ring needs >= 1 vnode")
        self.vnodes = vnodes
        self._nodes = []
        self._points = []   # sorted vnode positions
        self._owners = []   # node name per position
        for node in nodes:
            self.add(node)

    def __contains__(self, node):
        return node in self._nodes

    def __len__(self):
        return len(self._nodes)

    @property
    def nodes(self):
        return tuple(self._nodes)

    def add(self, node):
        """Add *node* (its vnodes claim ring segments from neighbours)."""
        if node in self._nodes:
            raise ConfigError("node %r already on the ring" % (node,))
        self._nodes.append(node)
        encoded = node.encode("utf-8") if isinstance(node, str) else node
        for v in range(self.vnodes):
            point = _point(b"%s#%d" % (encoded, v))
            at = bisect_right(self._points, point)
            self._points.insert(at, point)
            self._owners.insert(at, node)

    def remove(self, node):
        """Remove *node* (its segments fall back to the successors)."""
        if node not in self._nodes:
            raise ConfigError("node %r is not on the ring" % (node,))
        self._nodes.remove(node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    def lookup(self, key, n=1, alive=None):
        """Up to *n* distinct owners of *key*, clockwise from its hash.

        *alive* is an optional predicate; dead nodes are skipped, which
        rehomes their keys to the next live successor (the rebalance
        half of failover).  Returns fewer than *n* nodes when the ring
        runs out of distinct live ones.
        """
        if not self._points:
            return []
        if isinstance(key, str):
            key = key.encode("utf-8")
        start = bisect_right(self._points, _point(key))
        owners = self._owners
        total = len(owners)
        out = []
        for off in range(total):
            node = owners[(start + off) % total]
            if node in out:
                continue
            if alive is not None and not alive(node):
                continue
            out.append(node)
            if len(out) == n:
                break
        return out

    def owner(self, key, alive=None):
        """The primary owner of *key* (or None on an empty/dead ring)."""
        found = self.lookup(key, 1, alive=alive)
        return found[0] if found else None


def shard_preload(ring, stores, items, replication=2):
    """Preload each (key, value) onto its *replication* ring owners.

    *stores* maps node name -> anything with ``preload([(k, v), ...])``
    (a :class:`~repro.apps.memcached.KeyValueStore`).  Returns the
    per-node key counts, for placement assertions.
    """
    counts = {node: 0 for node in stores}
    for key, value in items:
        for node in ring.lookup(key, replication):
            stores[node].preload([(key, value)])
            counts[node] += 1
    return counts


class _Backend:
    """One registered replica: address plus a live queue-depth probe."""

    __slots__ = ("addr", "depth", "steered")

    def __init__(self, addr, depth):
        self.addr = addr
        self.depth = depth if depth is not None else (lambda: 0)
        self.steered = 0


class _SteerOp:
    """The VIP's drain loop: park one get on the RX ring; each wake
    takes a batch (or a single message in scalar mode), charges the
    SmartNIC steering cost for it, then forwards and re-arms.  Frames
    arriving while the batch is being charged buffer in the bounded RX
    ring — the VIP's own saturation behaviour."""

    __slots__ = ("lb", "batch")

    def __init__(self, lb):
        self.lb = lb
        self.batch = None
        lb.env._kick(self._begin)

    def _begin(self, _event):
        self._arm()

    def _arm(self):
        self.lb.rx.get().callbacks.append(self._on_msg)

    def _on_msg(self, get):
        lb = self.lb
        batch = [get._value]
        if lb.batched:
            batch.extend(lb.rx.recv_batch(lb.max_batch - 1))
        self.batch = batch
        lb.env.defer(lb.steer_cost * len(batch), self._forward)

    def _forward(self, _event):
        batch, self.batch = self.batch, None
        self.lb.steer_batch(batch)
        self._arm()


class L4LoadBalancer:
    """An L4 VIP hosted on a SmartNIC, steering across replicas.

    Parameters
    ----------
    ip, port:
        The VIP.  Clients (and populations) send here; replies return
        direct-server-return from the chosen backend.
    policy:
        One of :data:`STEER_POLICIES`.
    rng:
        :class:`~repro.sim.RngRegistry` (required for ``p2c``); draws
        ride the named stream ``cluster.p2c.<ip>``.
    ring / replication:
        Optional :class:`ConsistentHashRing` sharding the key space;
        each request is steered within its key's *replication*-sized
        replica set.  Without a ring (or for keyless payloads) the
        replica set is every live backend.
    steer_cost:
        SmartNIC per-packet steering cost (us): L4 parse + hash +
        connection-table lookup on the NIC ARM datapath.
    batched:
        Drain the RX ring in batches (the production fast path); False
        forces one wakeup per message (the scalar baseline the A/B
        benchmark compares against).
    """

    def __init__(self, env, network, ip, port=11211, policy="p2c", rng=None,
                 ring=None, replication=None, steer_cost=0.3, rx_ring=4096,
                 batched=True, max_batch=64, key_of=extract_key, name=None):
        if policy not in STEER_POLICIES:
            raise ConfigError("unknown steering policy %r (one of %s)"
                              % (policy, ", ".join(STEER_POLICIES)))
        if policy == "p2c" and rng is None:
            raise ConfigError("p2c steering needs an RngRegistry")
        self.env = env
        self.network = network
        self.ip = ip
        self.port = port
        self.policy = policy
        self.rng = rng
        self.ring = ring
        self.replication = replication
        self.steer_cost = steer_cost
        self.batched = batched
        self.max_batch = max_batch
        self.key_of = key_of
        self.name = name or "lb@%s" % ip
        self._stream = "cluster.p2c.%s" % ip
        self.rx = Channel(env, capacity=rx_ring, name="%s-rx" % self.name)
        network.attach(ip, self)
        self._backends = {}     # node name (ip) -> _Backend
        self._order = []        # registration order (policy tie-breaks)
        self._rr = -1
        # Health checks read the fabric's rack state when it has one
        # (MultiRackNetwork); a single-switch fabric is always up.
        self._is_up = getattr(network, "is_up", None)
        self.steered = 0
        self.unrouted = 0
        reg = telemetry.registry()
        base = "net.lb.%s." % ip
        reg.pull(base + "steered", lambda: self.steered)
        reg.pull(base + "unrouted", lambda: self.unrouted)
        _SteerOp(self)

    # -- replica registration ----------------------------------------------

    def add_backend(self, addr, depth=None):
        """Register the replica at *addr* (an :class:`~.packet.Address`).

        *depth* is a zero-argument callable returning the replica's
        instantaneous queue depth (e.g. its NIC RX-ring occupancy) —
        the signal ``least_loaded`` and ``p2c`` steer on.
        """
        node = addr.ip
        if node in self._backends:
            raise ConfigError("backend %s already registered" % node)
        self._backends[node] = _Backend(addr, depth)
        self._order.append(node)
        telemetry.registry().pull(
            "net.lb.%s.to.%s" % (self.ip, node),
            lambda b=self._backends[node]: b.steered)

    def backend_counts(self):
        """{backend ip: steered count} (tests, reports)."""
        return {node: self._backends[node].steered for node in self._order}

    # -- steering ------------------------------------------------------------

    def _candidates(self, key):
        """Live replica names eligible for *key*, deterministic order."""
        alive = self._is_up
        if self.ring is not None and key is not None:
            want = self.replication or len(self._order)
            found = self.ring.lookup(key, want, alive=alive)
            return [node for node in found if node in self._backends]
        if alive is None:
            return self._order
        return [node for node in self._order if alive(node)]

    def _pick(self, candidates):
        n = len(candidates)
        if n == 1:
            return candidates[0]
        policy = self.policy
        if policy == "round_robin":
            self._rr += 1
            return candidates[self._rr % n]
        backends = self._backends
        if policy == "least_loaded":
            best, best_depth = candidates[0], backends[candidates[0]].depth()
            for node in candidates[1:]:
                depth = backends[node].depth()
                if depth < best_depth:
                    best, best_depth = node, depth
            return best
        # p2c: two distinct draws, steer to the shallower queue
        i = self.rng.integers(self._stream, 0, n)
        j = self.rng.integers(self._stream, 0, n - 1)
        if j >= i:
            j += 1
        a, b = candidates[i], candidates[j]
        if backends[b].depth() < backends[a].depth():
            return b
        return a

    def steer_batch(self, msgs):
        """Steer a drained batch: rewrite each destination and re-inject
        through the fabric's router (rack-aware on a multi-rack
        network).  Replies bypass the VIP entirely (DSR)."""
        deliver = self.network.deliver
        backends = self._backends
        key_of = self.key_of
        for msg in msgs:
            candidates = self._candidates(key_of(msg.payload))
            if not candidates:
                self.unrouted += 1
                continue
            backend = backends[self._pick(candidates)]
            msg.dst = backend.addr
            backend.steered += 1
            self.steered += 1
            deliver(msg)

    def __repr__(self):
        return "<L4LoadBalancer %s policy=%s backends=%d steered=%d>" % (
            self.ip, self.policy, len(self._order), self.steered)
