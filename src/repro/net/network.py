"""The physical network: endpoints, wire, and a ToR switch.

The paper's testbed is a handful of machines behind one Mellanox SN2100
cut-through switch.  Model: every NIC port attaches with an IP; a frame
costs its serialization time on the sender port (charged by the NIC),
then wire + switch-forwarding latency before landing in the receiver
port's RX queue.
"""

from ..errors import NetworkError
from ..sim import Counter


class Network:
    """A single-switch Ethernet/InfiniBand fabric."""

    def __init__(self, env, wire_latency=0.3, switch_latency=0.3):
        self.env = env
        self.wire_latency = wire_latency
        self.switch_latency = switch_latency
        self._endpoints = {}
        self.counters = Counter()

    def attach(self, ip, endpoint):
        """Register *endpoint* (anything with an ``rx`` store) under *ip*."""
        if ip in self._endpoints:
            raise NetworkError("IP %s already attached" % ip)
        self._endpoints[ip] = endpoint

    def endpoint(self, ip):
        try:
            return self._endpoints[ip]
        except KeyError:
            raise NetworkError("no endpoint with IP %s" % ip)

    @property
    def one_way_latency(self):
        """Port-to-port latency through the switch, excluding serialization."""
        return 2 * self.wire_latency + self.switch_latency

    def deliver(self, msg):
        """Fire-and-forget delivery of *msg* to its destination port."""
        self.env._kick(lambda _evt, msg=msg: self._route(msg))

    def _route(self, msg):
        endpoint = self._endpoints.get(msg.dst.ip)
        if endpoint is None:
            self.counters.inc("dropped_no_route")
            return
        self.env.defer(
            2 * self.wire_latency + self.switch_latency,
            lambda _evt, endpoint=endpoint, msg=msg: self._land(endpoint, msg))

    def _land(self, endpoint, msg):
        # Drop-tail at the receiver's RX ring: a finite NIC ring is what
        # keeps an overloaded server stable instead of building an
        # unbounded backlog.
        if endpoint.rx.try_put(msg):
            self.counters.inc("delivered")
        else:
            self.counters.inc("dropped_rx_ring")
