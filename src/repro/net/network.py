"""The physical network: endpoints, wire, and a ToR switch.

The paper's testbed is a handful of machines behind one Mellanox SN2100
cut-through switch.  Model: every NIC port attaches with an IP and gets
a wire :class:`~repro.sim.Channel` (fixed wire + switch-forwarding
latency, sinking into the port's RX ring); a frame costs its
serialization time on the sender port (charged by the NIC's TX
channel), then rides the receiver's wire channel before landing
drop-tail in the RX ring.
"""

from collections import deque

from ..errors import NetworkError
from ..sim import Channel
from .. import telemetry


class _FabricCounters:
    """Read-only aggregate over the per-endpoint wire channels.

    Keeps the historical ``network.counters.get(key)`` surface while the
    actual accounting lives on each wire Channel.
    """

    def __init__(self, network):
        self._network = network

    def get(self, key, default=0):
        network = self._network
        if key == "delivered":
            return sum(ch.delivered for ch in network._channels.values())
        if key == "dropped_rx_ring":
            return sum(ch.dropped for ch in network._channels.values())
        if key == "dropped_no_route":
            return network.dropped_no_route
        return default

    def as_dict(self):
        return {key: self.get(key) for key in
                ("delivered", "dropped_rx_ring", "dropped_no_route")}

    def __repr__(self):
        return "<FabricCounters %r>" % (self.as_dict(),)


class Network:
    """A single-switch Ethernet/InfiniBand fabric."""

    def __init__(self, env, wire_latency=0.3, switch_latency=0.3):
        self.env = env
        self.wire_latency = wire_latency
        self.switch_latency = switch_latency
        self._endpoints = {}
        #: per-destination wire channels (created at attach time)
        self._channels = {}
        #: frames handed to deliver() whose routing kick is pending;
        #: kicks drain FIFO at one timestamp, so order is preserved
        self._routing = deque()
        self.dropped_no_route = 0
        self.counters = _FabricCounters(self)

    def attach(self, ip, endpoint):
        """Register *endpoint* (anything with an ``rx`` store) under *ip*."""
        if ip in self._endpoints:
            raise NetworkError("IP %s already attached" % ip)
        self._endpoints[ip] = endpoint
        # Drop-tail at the receiver's RX ring: a finite NIC ring is what
        # keeps an overloaded server stable instead of building an
        # unbounded backlog.
        channel = Channel(
            self.env, name="wire->%s" % ip, latency=self.one_way_latency,
            sink=endpoint.rx)
        self._channels[ip] = channel
        # Telemetry (DESIGN.md §4.9): the wire channel carries the
        # endpoint's RX-ring drop-tail accounting.
        reg = telemetry.registry()
        reg.pull("net.wire.%s.delivered" % ip, lambda: channel.delivered)
        reg.pull("net.wire.%s.drops" % ip, lambda: channel.dropped)

    def endpoint(self, ip):
        try:
            return self._endpoints[ip]
        except KeyError:
            raise NetworkError("no endpoint with IP %s" % ip)

    def wire_channel(self, ip):
        """The wire Channel feeding *ip*'s RX ring (for tests/stats)."""
        try:
            return self._channels[ip]
        except KeyError:
            raise NetworkError("no endpoint with IP %s" % ip)

    @property
    def one_way_latency(self):
        """Port-to-port latency through the switch, excluding serialization."""
        return 2 * self.wire_latency + self.switch_latency

    def deliver(self, msg):
        """Fire-and-forget delivery of *msg* to its destination port."""
        self._routing.append(msg)
        self.env._kick(self._route)

    def _route(self, _event):
        msg = self._routing.popleft()
        channel = self._channels.get(msg.dst.ip)
        if channel is None:
            self.dropped_no_route += 1
            return
        channel.push(msg, nbytes=msg.wire_size)
