"""The physical network: endpoints, wire, ToR switches, and a spine.

The paper's testbed is a handful of machines behind one Mellanox SN2100
cut-through switch.  Model: every NIC port attaches with an IP and gets
a wire :class:`~repro.sim.Channel` (fixed wire + switch-forwarding
latency, sinking into the port's RX ring); a frame costs its
serialization time on the sender port (charged by the NIC's TX
channel), then rides the receiver's wire channel before landing
drop-tail in the RX ring.

:class:`MultiRackNetwork` (DESIGN.md §4.15) scales that single switch
out to several ToRs behind a spine: intra-rack traffic keeps the exact
single-hop path above, while cross-rack frames ride two extra
:class:`~repro.sim.Channel` hops — the source ToR's uplink and the
destination ToR's downlink — each adding ``spine_latency`` and bounded
by a drop-tail spine-port queue whose depth shrinks with the
configured ``oversubscription`` factor.  Racks are fault domains:
:meth:`MultiRackNetwork.fail_rack` partitions a rack mid-run (frames
to *and* from it drop, counted), which is what the cluster failover
experiment (E18) recovers from.
"""

from collections import deque

from ..errors import NetworkError
from ..sim import Channel
from .. import telemetry


class _FabricCounters:
    """Read-only aggregate over the per-endpoint wire channels.

    Keeps the historical ``network.counters.get(key)`` surface while the
    actual accounting lives on each wire Channel.
    """

    def __init__(self, network):
        self._network = network

    def get(self, key, default=0):
        network = self._network
        if key == "delivered":
            return sum(ch.delivered for ch in network._channels.values())
        if key == "dropped_rx_ring":
            return sum(ch.dropped for ch in network._channels.values())
        if key == "dropped_no_route":
            return network.dropped_no_route
        if key == "dropped_rack_down":
            return getattr(network, "dropped_rack_down", 0)
        if key == "dropped_spine":
            return sum(hop.dropped
                       for hop in (getattr(network, "_uplinks", ())
                                   + getattr(network, "_downlinks", ())))
        return default

    def as_dict(self):
        return {key: self.get(key) for key in
                ("delivered", "dropped_rx_ring", "dropped_no_route",
                 "dropped_rack_down", "dropped_spine")}

    def __repr__(self):
        return "<FabricCounters %r>" % (self.as_dict(),)


class Network:
    """A single-switch Ethernet/InfiniBand fabric."""

    def __init__(self, env, wire_latency=0.3, switch_latency=0.3):
        self.env = env
        self.wire_latency = wire_latency
        self.switch_latency = switch_latency
        self._endpoints = {}
        #: per-destination wire channels (created at attach time)
        self._channels = {}
        #: frames handed to deliver() whose routing kick is pending;
        #: kicks drain FIFO at one timestamp, so order is preserved
        self._routing = deque()
        self.dropped_no_route = 0
        self.counters = _FabricCounters(self)
        # Telemetry (DESIGN.md §4.9): registered as a pull counter so
        # merged --jobs N snapshots keep no-route drops (the bare
        # attribute alone would silently vanish from worker merges).
        telemetry.registry().pull("net.fabric.dropped_no_route",
                                  lambda: self.dropped_no_route)

    def attach(self, ip, endpoint):
        """Register *endpoint* (anything with an ``rx`` store) under *ip*."""
        if ip in self._endpoints:
            raise NetworkError("IP %s already attached" % ip)
        self._endpoints[ip] = endpoint
        # Drop-tail at the receiver's RX ring: a finite NIC ring is what
        # keeps an overloaded server stable instead of building an
        # unbounded backlog.
        channel = Channel(
            self.env, name="wire->%s" % ip, latency=self.one_way_latency,
            sink=endpoint.rx)
        self._channels[ip] = channel
        # Telemetry (DESIGN.md §4.9): the wire channel carries the
        # endpoint's RX-ring drop-tail accounting.
        reg = telemetry.registry()
        reg.pull("net.wire.%s.delivered" % ip, lambda: channel.delivered)
        reg.pull("net.wire.%s.drops" % ip, lambda: channel.dropped)

    def endpoint(self, ip):
        try:
            return self._endpoints[ip]
        except KeyError:
            raise NetworkError("no endpoint with IP %s" % ip)

    def wire_channel(self, ip):
        """The wire Channel feeding *ip*'s RX ring (for tests/stats)."""
        try:
            return self._channels[ip]
        except KeyError:
            raise NetworkError("no endpoint with IP %s" % ip)

    @property
    def one_way_latency(self):
        """Port-to-port latency through the switch, excluding serialization."""
        return 2 * self.wire_latency + self.switch_latency

    def inject_channel(self, src_ip, dst_ip):
        """The Channel a flyweight source at *src_ip* injects into when
        targeting *dst_ip* (bypassing :meth:`deliver`'s routing kick).

        On the single-switch fabric this is the destination's wire
        channel — the same object, so injection stays bit-identical
        with the historical direct resolution.  The multi-rack fabric
        overrides it to return the source rack's uplink for cross-rack
        destinations.
        """
        return self.wire_channel(dst_ip)

    def deliver(self, msg):
        """Fire-and-forget delivery of *msg* to its destination port."""
        self._routing.append(msg)
        self.env._kick(self._route)

    def _route(self, _event):
        msg = self._routing.popleft()
        channel = self._channels.get(msg.dst.ip)
        if channel is None:
            self.dropped_no_route += 1
            return
        channel.push(msg, nbytes=msg.wire_size)


class _TorUplinkSink:
    """Routing sink behind one ToR's uplink hop: lands each frame on
    the destination rack's downlink, drop-tail at the oversubscribed
    spine-port queue.

    The class-level ``_push_item`` marker makes ``Channel._land_many``'s
    bulk probe (``stype._push_item is Store._push_item``) evaluate
    False, so burst landings take the per-item ``_land`` fallback —
    every frame is routed (and its drop accounted) individually.
    """

    #: not a Store: force the per-item landing fallback (see above)
    _push_item = None

    __slots__ = ("network", "rack")

    def __init__(self, network, rack):
        self.network = network
        self.rack = rack

    def try_put(self, msg):
        network = self.network
        dead = network._dead_racks
        # A partitioned rack fences its own uplink (frames injected from
        # inside it) and refuses frames headed into it; either refusal
        # is accounted as this hop's `dropped` by the refused _land.
        dst_rack = network.rack_of(msg.dst.ip)
        if self.rack in dead or dst_rack in dead:
            return False
        downlink = network._downlinks[dst_rack]
        # Drop-tail at the oversubscribed spine port.
        if len(downlink._in_flight) >= network.spine_queue:
            return False
        downlink.push(msg, nbytes=msg.wire_size)
        return True


class _TorDownlinkSink:
    """Routing sink behind one ToR's downlink hop: lands each frame on
    the destination endpoint's last-hop wire channel."""

    _push_item = None

    __slots__ = ("network", "rack")

    def __init__(self, network, rack):
        self.network = network
        self.rack = rack

    def try_put(self, msg):
        network = self.network
        wire = network._channels.get(msg.dst.ip)
        if wire is None or self.rack in network._dead_racks:
            return False
        wire.push(msg, nbytes=msg.wire_size)
        return True


class MultiRackNetwork(Network):
    """Several ToRs behind a spine (DESIGN.md §4.15).

    Endpoints are placed into racks with :meth:`place` (default rack
    0).  Intra-rack delivery is byte-identical to the single-switch
    fabric; a cross-rack frame rides ``uplink(src rack) ->
    downlink(dst rack) -> wire(dst)``, adding ``spine_latency`` per
    spine hop.  ``oversubscription`` shrinks the drop-tail spine-port
    queue (``spine_queue / oversubscription`` entries), so a congested
    spine drops frames on the *uplink* hop — the classic
    oversubscribed-fabric failure mode.

    Racks are fault domains: :meth:`fail_rack` partitions a rack
    (frames to and from it are dropped and counted in
    ``dropped_rack_down``); :meth:`restore_rack` heals it.
    """

    def __init__(self, env, racks=2, wire_latency=0.3, switch_latency=0.3,
                 spine_latency=0.5, oversubscription=1.0, spine_queue=512):
        super().__init__(env, wire_latency, switch_latency)
        if racks < 1:
            raise NetworkError("a multi-rack fabric needs >= 1 rack")
        if oversubscription < 1.0:
            raise NetworkError("oversubscription factor must be >= 1.0")
        self.racks = racks
        self.spine_latency = spine_latency
        self.oversubscription = oversubscription
        #: spine-port queue depth after oversubscription (drop-tail)
        self.spine_queue = max(1, int(round(spine_queue / oversubscription)))
        self._rack_plan = {}
        self._dead_racks = set()
        self.dropped_rack_down = 0
        self._uplinks = []
        self._downlinks = []
        reg = telemetry.registry()
        for rack in range(racks):
            up = Channel(env, name="tor%d-up" % rack, latency=spine_latency,
                         sink=_TorUplinkSink(self, rack))
            down = Channel(env, name="tor%d-down" % rack,
                           latency=spine_latency,
                           sink=_TorDownlinkSink(self, rack))
            self._uplinks.append(up)
            self._downlinks.append(down)
            for tag, hop in (("up", up), ("down", down)):
                base = "net.fabric.tor%d.%s." % (rack, tag)
                reg.pull(base + "delivered",
                         lambda hop=hop: hop.delivered)
                reg.pull(base + "drops", lambda hop=hop: hop.dropped)
        reg.pull("net.fabric.dropped_rack_down",
                 lambda: self.dropped_rack_down)

    # -- placement ---------------------------------------------------------

    def place(self, ip, rack):
        """Assign *ip* to *rack* (call before or after attaching)."""
        if not 0 <= rack < self.racks:
            raise NetworkError("rack %r out of range (have %d racks)"
                               % (rack, self.racks))
        self._rack_plan[ip] = rack

    def rack_of(self, ip):
        """The rack an endpoint lives in (unplaced IPs default to 0)."""
        return self._rack_plan.get(ip, 0)

    def rack_members(self, rack):
        """Attached IPs placed in *rack*."""
        return [ip for ip in self._endpoints
                if self._rack_plan.get(ip, 0) == rack]

    # -- fault domains ------------------------------------------------------

    def fail_rack(self, rack):
        """Partition *rack*: frames to and from it drop until restored."""
        if not 0 <= rack < self.racks:
            raise NetworkError("rack %r out of range (have %d racks)"
                               % (rack, self.racks))
        self._dead_racks.add(rack)

    def restore_rack(self, rack):
        self._dead_racks.discard(rack)

    def rack_is_up(self, rack):
        return rack not in self._dead_racks

    def is_up(self, ip):
        """Whether *ip*'s rack is currently alive (LB health checks)."""
        return self._rack_plan.get(ip, 0) not in self._dead_racks

    # -- hop access (tests / telemetry) -------------------------------------

    def uplink(self, rack):
        return self._uplinks[rack]

    def downlink(self, rack):
        return self._downlinks[rack]

    # -- routing ------------------------------------------------------------

    def inject_channel(self, src_ip, dst_ip):
        wire = self.wire_channel(dst_ip)  # raises on unknown dst
        if self.rack_of(src_ip) == self.rack_of(dst_ip):
            return wire
        return self._uplinks[self.rack_of(src_ip)]

    def _route(self, _event):
        msg = self._routing.popleft()
        channel = self._channels.get(msg.dst.ip)
        if channel is None:
            self.dropped_no_route += 1
            return
        src_rack = self.rack_of(msg.src.ip)
        dst_rack = self.rack_of(msg.dst.ip)
        dead = self._dead_racks
        if dead and (src_rack in dead or dst_rack in dead):
            # Dead rack: nothing enters or leaves it.  This routing-stage
            # counter is disjoint from the per-hop `dropped` counters
            # (frames already in flight when the rack dies are refused
            # at a spine hop and count there), so conservation sums add
            # every counter exactly once.
            self.dropped_rack_down += 1
            return
        if src_rack == dst_rack:
            channel.push(msg, nbytes=msg.wire_size)
        else:
            self._uplinks[src_rack].push(msg, nbytes=msg.wire_size)
