"""Messages and addressing.

A :class:`Message` is an application-level datagram/segment moving
through the simulated network.  It carries a *real* payload (bytes or a
numpy array): applications compute real answers, and tests assert
end-to-end integrity through the Lynx data plane.
"""

from itertools import count

from ..errors import NetworkError

#: protocol tags
UDP = "udp"
TCP = "tcp"

#: Ethernet + IP + UDP header bytes added on the wire
UDP_HEADER = 46
#: Ethernet + IP + TCP header bytes
TCP_HEADER = 58

# Debug identity for trace rows, not a metric: messages have no env
# handle, and msg_ids never feed results.
_ids = count(1)  # lint: allow-global-counter


class Address:
    """An (ip, port) endpoint address."""

    __slots__ = ("ip", "port")

    def __init__(self, ip, port):
        if not isinstance(port, int) or not 0 < port < 65536:
            raise NetworkError("invalid port %r" % (port,))
        self.ip = ip
        self.port = port

    def __eq__(self, other):
        return (isinstance(other, Address)
                and self.ip == other.ip and self.port == other.port)

    def __hash__(self):
        return hash((self.ip, self.port))

    def __repr__(self):
        return "%s:%d" % (self.ip, self.port)


def payload_size(payload):
    """Size in bytes of a payload (bytes, numpy array, str or sized)."""
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if hasattr(payload, "__len__"):
        return len(payload)
    return 8  # scalar-ish


class Message:
    """An application message in flight."""

    __slots__ = ("msg_id", "src", "dst", "proto", "payload", "size",
                 "created_at", "_meta", "conn", "kind")

    def __init__(self, src, dst, payload, proto=UDP, created_at=0.0,
                 size=None, meta=None, conn=None, kind="request"):
        self.msg_id = next(_ids)
        self.src = src
        self.dst = dst
        self.proto = proto
        self.payload = payload
        self.size = payload_size(payload) if size is None else size
        self.created_at = created_at
        self._meta = meta or None
        self.conn = conn
        self.kind = kind

    @property
    def meta(self):
        """Per-message annotations, allocated on first touch — most
        requests never carry any, and the vectorized traffic plane
        creates messages by the hundred thousand."""
        m = self._meta
        if m is None:
            m = self._meta = {}
        return m

    @property
    def wire_size(self):
        """Bytes on the wire including headers."""
        header = TCP_HEADER if self.proto == TCP else UDP_HEADER
        return self.size + header

    def reply(self, payload, created_at, size=None, kind="response"):
        """Build the response message back to this message's source."""
        msg = Message(src=self.dst, dst=self.src, payload=payload,
                      proto=self.proto, created_at=created_at, size=size,
                      conn=self.conn, kind=kind)
        msg.meta["in_reply_to"] = self.msg_id
        msg.meta["request_created_at"] = self.created_at
        return msg

    def __repr__(self):
        return "<Message #%d %s %s->%s %dB %s>" % (
            self.msg_id, self.proto, self.src, self.dst, self.size, self.kind)
