"""Flyweight client-population traffic plane (DESIGN.md §4.13).

One :class:`ClientPopulation` stands in for millions of users behind a
ToR port.  Instead of one :class:`~repro.net.client.Client` object, one
``_waiters`` dict entry, and ~5 scheduler events per request, the
population models traffic as *aggregate* arrival processes and keeps
every per-request quantity in struct-of-arrays numpy columns:

* arrival times are pre-generated in chunks of ~:data:`CHUNK` via the
  conditional-uniform property of the Poisson process (within a
  constant-rate segment of duration ``D``, the count is
  ``Poisson(rate*D)`` and the times are sorted uniforms — exact, and
  fully vectorized).  Plain Poisson, MMPP on/off bursts, a diurnal
  phase envelope, and trace replay are all piecewise-constant-rate
  segment generators under this one scheme;
* request payloads come from a pre-built :class:`PayloadPool`
  (Zipf-sampled keys for memcached, pre-rendered tensors for the
  accelerator apps), sampled per chunk with one ``searchsorted``;
* in-flight requests live in an :class:`InFlightTable` — msg-id /
  send-time / deadline / stream-id columns, no per-request object —
  and response latencies are resolved in batches straight into
  telemetry :class:`~repro.telemetry.instruments.LogHistogram`\\ s via
  ``record_many``;
* injection is frame-coalesced: arrivals within ``coalesce_us`` of
  each other wake the population once and are pushed back-to-back onto
  the destination's wire channel, so on the wheel backend the whole
  frame collapses into one landing-table batch (O(1) scheduler events
  per burst, DESIGN.md §4.11).

Timing is calibrated to the scalar client path: a request created at
arrival time ``t`` reaches the wire channel at
``t + send_cost + wire_size/link_rate`` and its latency is recorded as
``now - t + recv_cost`` — the same instants and the same arithmetic as
``Client``/``OpenLoopGenerator``, which is what the golden parity test
in ``tests/net/test_population.py`` pins.
"""

import itertools
import math

import numpy as np

from .. import telemetry, units
from ..errors import ConfigError
from ..sim import Channel, RateMeter
from ..telemetry.instruments import LogHistogram
from .packet import Address, Message, UDP, UDP_HEADER, payload_size
from .arrivals import load_trace_timestamps

#: target arrivals per pre-generated chunk
CHUNK = 4096


def _segment_times(stream, start, duration, rate):
    """Arrival times of a Poisson(rate) process on [start, start+duration).

    Conditional-uniform sampling: draw the count, then sort uniforms.
    Exact (not an approximation) and one numpy call per segment.
    """
    n = int(stream.poisson(rate * duration))
    if n == 0:
        return _EMPTY
    times = stream.random(n)
    times *= duration
    times.sort()
    times += start
    return times


_EMPTY = np.empty(0, dtype=float)


class PopulationArrivals:
    """Vectorized arrival-time source: absolute times per window.

    Subclasses implement :meth:`take`, returning a sorted float array
    of arrival times in ``[start, until)``.  Windows are consumed
    monotonically (``start`` of one call is ``until`` of the previous),
    so sources may keep segment state between calls.  ``mean_rate`` is
    the long-run average (arrivals/us), used for chunk sizing;
    ``users`` is the modeled population size behind the aggregate
    (reporting only — the flyweight cost is independent of it).
    """

    mean_rate = 0.0
    users = 1

    def take(self, start, until):
        raise NotImplementedError


class PoissonPopulation(PopulationArrivals):
    """Aggregate Poisson arrivals: the superposition of ``users``
    independent user processes is itself Poisson at the summed rate."""

    def __init__(self, rate_per_us, stream, users=1):
        if rate_per_us <= 0:
            raise ConfigError("population rate must be positive")
        self.mean_rate = float(rate_per_us)
        self.users = int(users)
        self._stream = stream

    def take(self, start, until):
        return _segment_times(self._stream, start, until - start,
                              self.mean_rate)


class OnOffPopulation(PopulationArrivals):
    """MMPP on/off bursts: ON periods arrive at ``burst_rate``, OFF
    periods are silent, period lengths are exponential — the vectorized
    twin of :class:`~repro.net.arrivals.OnOffBurst`."""

    def __init__(self, burst_rate_per_us, on_mean_us, off_mean_us, stream,
                 users=1):
        if burst_rate_per_us <= 0 or on_mean_us <= 0 or off_mean_us < 0:
            raise ConfigError("invalid on/off burst parameters")
        self.burst_rate = float(burst_rate_per_us)
        self.on_mean = float(on_mean_us)
        self.off_mean = float(off_mean_us)
        self.mean_rate = (self.burst_rate * self.on_mean
                          / (self.on_mean + self.off_mean))
        self.users = int(users)
        self._stream = stream
        self._on = True
        self._left = float(stream.exponential(self.on_mean))

    def take(self, start, until):
        parts = []
        t = start
        stream = self._stream
        while t < until:
            seg = min(self._left, until - t)
            if self._on and seg > 0:
                times = _segment_times(stream, t, seg, self.burst_rate)
                if times.size:
                    parts.append(times)
            t += seg
            self._left -= seg
            if self._left <= 0.0:
                self._on = not self._on
                mean = self.on_mean if self._on else self.off_mean
                self._left = float(stream.exponential(mean)) if mean > 0 \
                    else 0.0
                if self._left <= 0.0 and not self._on:
                    self._on = True
                    self._left = float(stream.exponential(self.on_mean))
        if not parts:
            return _EMPTY
        return parts[0] if len(parts) == 1 else np.concatenate(parts)


class DiurnalPopulation(PopulationArrivals):
    """Poisson arrivals whose instantaneous rate follows a repeating
    piecewise-constant phase envelope (a day compressed to
    ``period_us``).  The envelope is normalized to mean 1.0, so
    ``mean_rate`` is the long-run average regardless of its shape."""

    #: default envelope: a trough-to-evening-peak "day" in 8 phases
    ENVELOPE = (0.35, 0.55, 0.9, 1.3, 1.5, 1.45, 1.0, 0.95)

    def __init__(self, mean_rate_per_us, period_us, stream, envelope=None,
                 users=1):
        if mean_rate_per_us <= 0 or period_us <= 0:
            raise ConfigError("invalid diurnal parameters")
        envelope = tuple(envelope if envelope is not None else self.ENVELOPE)
        if not envelope or any(e < 0 for e in envelope):
            raise ConfigError("envelope phases must be non-negative")
        scale = len(envelope) / sum(envelope)
        self.envelope = tuple(e * scale for e in envelope)
        self.mean_rate = float(mean_rate_per_us)
        self.period = float(period_us)
        self.users = int(users)
        self._stream = stream
        self._phase_len = self.period / len(self.envelope)

    def phase_multiplier(self, t):
        """The envelope multiplier in effect at absolute time *t*."""
        idx = int(t / self._phase_len) % len(self.envelope)
        return self.envelope[idx]

    def take(self, start, until):
        parts = []
        t = start
        plen = self._phase_len
        while t < until:
            # the phase boundary at or after t
            edge = (math.floor(t / plen) + 1) * plen
            seg_end = min(edge, until)
            rate = self.mean_rate * self.phase_multiplier(t)
            if rate > 0 and seg_end > t:
                times = _segment_times(self._stream, t, seg_end - t, rate)
                if times.size:
                    parts.append(times)
            t = seg_end
        if not parts:
            return _EMPTY
        return parts[0] if len(parts) == 1 else np.concatenate(parts)


class BModelPopulation(DiurnalPopulation):
    """Self-similar (b-model) arrivals: bursty at every timescale.

    Wang et al.'s b-model generates the canonical self-similar traffic
    profile by recursively splitting each interval's mass ``(b, 1-b)``
    between its halves, with the heavy side chosen by a fair coin per
    split (the randomized binomial-multiplicative cascade).  After
    ``levels`` splits one period decomposes into ``2**levels`` equal
    phases whose weights sum to 1 — bursts nest inside bursts, with
    Hurst parameter ``H ~ 1 - log2(b^2 + (1-b)^2)/2``.  ``b = 0.5``
    degenerates to plain Poisson; ``b -> 1`` concentrates the whole
    period's load into one slot.

    The resulting weight profile is a piecewise-constant rate envelope,
    so segment generation rides :class:`DiurnalPopulation`'s exact
    conditional-uniform machinery unchanged; the profile draws from
    *stream* at construction, making a (seed, b, levels) triple fully
    deterministic — what the golden tests pin.
    """

    def __init__(self, mean_rate_per_us, period_us, stream, b=0.7,
                 levels=7, users=1):
        if not 0.5 <= b < 1.0:
            raise ConfigError("b-model bias must be in [0.5, 1.0)")
        if not 1 <= levels <= 20:
            raise ConfigError("b-model levels must be in [1, 20]")
        weights = np.ones(1, dtype=float)
        for _ in range(int(levels)):
            heavy_left = stream.random(weights.size) < 0.5
            left = np.where(heavy_left, b, 1.0 - b)
            split = np.empty(weights.size * 2, dtype=float)
            split[0::2] = weights * left
            split[1::2] = weights * (1.0 - left)
            weights = split
        self.b = float(b)
        self.levels = int(levels)
        # weights sum to 1 by construction; scaling by the phase count
        # gives a mean-1.0 envelope (DiurnalPopulation re-normalizes,
        # which is a no-op here but keeps float round-off consistent).
        super().__init__(mean_rate_per_us, period_us, stream,
                         envelope=weights * weights.size, users=users)


class TracePopulation(PopulationArrivals):
    """Replays recorded arrival timestamps, looping — the vectorized
    twin of :class:`~repro.net.arrivals.TraceReplay` (same repeating-gap
    semantics).  ``rate_per_us`` rescales the gaps so the replayed
    long-run rate matches a target (bisection over trace-shaped load).
    """

    def __init__(self, timestamps, rate_per_us=None, users=1):
        stamps = np.asarray(list(timestamps), dtype=float)
        if stamps.size < 2:
            raise ConfigError("a trace needs at least two timestamps")
        gaps = np.diff(stamps)
        if (gaps < 0).any():
            raise ConfigError("trace timestamps must be non-decreasing")
        span = float(gaps.sum())
        if span <= 0:
            raise ConfigError("trace spans zero time")
        native = gaps.size / span
        if rate_per_us is not None:
            if rate_per_us <= 0:
                raise ConfigError("population rate must be positive")
            gaps = gaps * (native / rate_per_us)
            span = float(gaps.sum())
        #: arrival offsets within one replay cycle (first gap elapses
        #: before the first arrival, exactly like TraceReplay.next_gap)
        self._cycle = np.cumsum(gaps)
        self._span = span
        self._cycle_start = 0.0
        self.mean_rate = gaps.size / span
        self.users = int(users)

    @classmethod
    def from_file(cls, path, rate_per_us=None, users=1):
        """Load ``.npy`` or CSV timestamps (see ``TraceReplay.from_file``)."""
        return cls(load_trace_timestamps(path), rate_per_us=rate_per_us,
                   users=users)

    def take(self, start, until):
        parts = []
        while self._cycle_start < until:
            times = self._cycle + self._cycle_start
            lo = np.searchsorted(times, start, side="left")
            hi = np.searchsorted(times, until, side="left")
            if hi > lo:
                parts.append(times[lo:hi])
            if times[-1] < until:
                self._cycle_start += self._span
            else:
                break
        if not parts:
            return _EMPTY
        return parts[0] if len(parts) == 1 else np.concatenate(parts)


def arrival_factory(spec):
    """Parse an ``--arrivals`` spec into a ``make(rate, stream)`` factory.

    Specs: ``poisson`` | ``onoff[:on_us,off_us]`` | ``diurnal[:period_us]``
    | ``bmodel[:b[,levels]]`` | ``trace:<path>`` — each yields a factory
    producing a :class:`PopulationArrivals` whose long-run mean is the
    given rate, so one spec serves every trial of a sustainable-load
    bisection.
    """
    if spec.startswith("trace:"):
        path = spec[len("trace:"):]
        if not path:
            raise ConfigError("trace spec needs a path: trace:<path>")
        stamps = load_trace_timestamps(path)
        return lambda rate, stream: TracePopulation(stamps, rate_per_us=rate)
    kind, _, args = spec.partition(":")
    if kind == "poisson":
        return lambda rate, stream: PoissonPopulation(rate, stream)
    if kind == "onoff":
        on_us, off_us = (float(x) for x in args.split(",")) if args \
            else (200.0, 600.0)
        duty = on_us / (on_us + off_us)
        return lambda rate, stream: OnOffPopulation(
            rate / duty, on_us, off_us, stream)
    if kind == "diurnal":
        period = float(args) if args else 100000.0
        return lambda rate, stream: DiurnalPopulation(rate, period, stream)
    if kind == "bmodel":
        parts = args.split(",") if args else []
        b = float(parts[0]) if parts else 0.7
        levels = int(parts[1]) if len(parts) > 1 else 7
        return lambda rate, stream: BModelPopulation(
            rate, 100000.0, stream, b=b, levels=levels)
    raise ConfigError("unknown arrivals spec %r (poisson | onoff[:on,off] | "
                      "diurnal[:period] | bmodel[:b,levels] | trace:<path>)"
                      % (spec,))


class PayloadPool:
    """A flyweight payload library with vectorized key sampling.

    Holds the distinct request payloads once (e.g. one memcached GET
    per key) plus their sizes; :meth:`sample` draws per-arrival payload
    indices for a whole chunk with one inverse-CDF ``searchsorted``.
    """

    def __init__(self, payloads, stream=None, weights=None):
        if not payloads:
            raise ConfigError("payload pool cannot be empty")
        self.payloads = list(payloads)
        #: python ints (not numpy scalars): consumed in the per-message
        #: injection loop, where scalar conversion would cost
        self.sizes = [payload_size(p) for p in self.payloads]
        self._stream = stream
        self._cdf = None
        if weights is not None:
            w = np.asarray(list(weights), dtype=float)
            if w.size != len(self.payloads) or (w < 0).any() or w.sum() <= 0:
                raise ConfigError("invalid payload weights")
            self._cdf = np.cumsum(w) / w.sum()
        if len(self.payloads) > 1 and stream is None:
            raise ConfigError("a multi-payload pool needs an RNG stream")

    @classmethod
    def single(cls, payload):
        """A degenerate pool: every request carries *payload*."""
        return cls([payload])

    @classmethod
    def zipf(cls, payloads, stream, skew=0.99):
        """Zipf(skew) popularity over *payloads*: index i has rank i+1
        (the YCSB-style hot-key distribution for memcached)."""
        ranks = np.arange(1, len(payloads) + 1, dtype=float)
        return cls(payloads, stream=stream, weights=ranks ** -skew)

    @classmethod
    def uniform(cls, payloads, stream):
        """Equal-probability sampling over *payloads*."""
        return cls(payloads, stream=stream,
                   weights=np.ones(len(payloads)))

    def sample(self, n):
        """Payload indices for *n* arrivals (int64 array)."""
        if len(self.payloads) == 1:
            return np.zeros(n, dtype=np.int64)
        return np.searchsorted(self._cdf, self._stream.random(n),
                               side="right").astype(np.int64)


class Flow:
    """One traffic class inside a population: an arrival source plus a
    payload pool, recorded under its own latency histogram."""

    __slots__ = ("name", "arrivals", "payloads", "proto", "hist")

    def __init__(self, name, arrivals, payloads, proto=UDP):
        if proto != UDP:
            raise ConfigError("populations model UDP datagram traffic; "
                              "use Client/ClosedLoopGenerator for TCP")
        self.name = name
        self.arrivals = arrivals
        self.payloads = payloads
        self.proto = proto
        self.hist = LogHistogram()


class InFlightTable:
    """Struct-of-arrays in-flight request tracking.

    Columns: request ``msg_id`` (monotonically increasing — the global
    Message counter only moves forward), send time, deadline, flow
    (stream) id, and a done flag.  Appends stage into a python list and
    bulk-materialize into the columns at resolve/expiry boundaries (the
    landing-table pattern, DESIGN.md §4.11); responses resolve ids to
    rows with one ``searchsorted`` per batch.  No per-request objects,
    no ``_waiters`` dict.
    """

    def __init__(self, capacity=8192):
        self._grow_to(max(capacity, 64))
        self._n = 0
        self._live = 0
        self._staged = []

    def _grow_to(self, capacity):
        self._msg = np.zeros(capacity, dtype=np.int64)
        self._send = np.zeros(capacity, dtype=np.float64)
        self._deadline = np.zeros(capacity, dtype=np.float64)
        self._flow = np.zeros(capacity, dtype=np.int16)
        self._done = np.zeros(capacity, dtype=bool)

    def append(self, msg_id, send_time, deadline, flow):
        """Stage one in-flight request (materialized lazily)."""
        self._staged.append((msg_id, send_time, deadline, flow))
        self._live += 1

    def append_run(self, first_id, send_times, deadline_offset, flow):
        """Stage one injection frame of consecutive message ids.

        The pump creates a frame's Messages back to back, so their ids
        are ``first_id, first_id + 1, ...`` — one ``extend`` stages the
        whole run without per-message python calls.  A
        ``deadline_offset`` of None means no deadline.
        """
        if deadline_offset is None:
            deadlines = itertools.repeat(math.inf)
        else:
            deadlines = (t + deadline_offset for t in send_times)
        self._staged.extend(zip(itertools.count(first_id), send_times,
                                deadlines, itertools.repeat(flow)))
        self._live += len(send_times)

    @property
    def in_flight(self):
        """Requests sent and not yet resolved or expired."""
        return self._live

    def _materialize(self):
        staged = self._staged
        if not staged:
            return
        k = len(staged)
        n = self._n
        cap = self._msg.size
        if n + k > cap:
            self._compact(n + k)
            n = self._n
            cap = self._msg.size
        cols = np.asarray(staged, dtype=np.float64)
        self._msg[n:n + k] = cols[:, 0].astype(np.int64)
        self._send[n:n + k] = cols[:, 1]
        self._deadline[n:n + k] = cols[:, 2]
        self._flow[n:n + k] = cols[:, 3].astype(np.int16)
        self._done[n:n + k] = False
        self._n = n + k
        staged.clear()

    def _compact(self, need):
        """Drop resolved rows; grow if the live set still needs room."""
        n = self._n
        keep = ~self._done[:n]
        live = int(keep.sum())
        cap = self._msg.size
        while live + (need - n) > cap // 2:
            cap *= 2
        msg, send = self._msg[:n][keep], self._send[:n][keep]
        deadline, flow = self._deadline[:n][keep], self._flow[:n][keep]
        self._grow_to(cap)
        self._msg[:live] = msg
        self._send[:live] = send
        self._deadline[:live] = deadline
        self._flow[:live] = flow
        self._n = live

    def _rows_for(self, ids):
        """Live-row indices for *ids*; -1 where unknown or already done."""
        self._materialize()
        n = self._n
        if n == 0:
            return np.full(len(ids), -1, dtype=np.int64)
        ids = np.asarray(ids, dtype=np.int64)
        live = self._msg[:n]
        rows = np.searchsorted(live, ids)
        np.clip(rows, 0, n - 1, out=rows)
        bad = (live[rows] != ids) | self._done[rows]
        rows[bad] = -1
        return rows

    def resolve(self, ids, times):
        """Complete the requests answered by *ids* at *times*.

        Returns ``(latencies, flows, misses)``: raw response-minus-send
        latencies and flow ids for the matched rows (response order),
        plus the count of ids with no live row (late responses landing
        after their deadline sweep, duplicates).
        """
        rows = self._rows_for(ids)
        ok = rows >= 0
        hit = rows[ok]
        lat = np.asarray(times, dtype=float)[ok] - self._send[hit]
        flows = self._flow[hit]
        self._done[hit] = True
        self._live -= int(hit.size)
        return lat, flows, int(len(ids) - hit.size)

    def kill(self, ids):
        """Mark *ids* done without recording latency (error responses).

        Returns the number of ids that had a live row."""
        rows = self._rows_for(ids)
        hit = rows[rows >= 0]
        self._done[hit] = True
        self._live -= int(hit.size)
        return int(hit.size)

    def expire(self, now):
        """Time out every live row whose deadline has passed; returns
        the count.  Callers must resolve buffered responses first, or
        answered requests would be miscounted as timeouts."""
        self._materialize()
        n = self._n
        if n == 0:
            return 0
        view = self._done[:n]
        stale = ~view & (self._deadline[:n] <= now)
        count = int(stale.sum())
        if count:
            view[stale] = True
            self._live -= count
        return count


class _PopulationRxOp:
    """Batch response drain: one parked get on the population's RX
    channel; each wake drains everything immediately available via
    ``recv_batch`` and buffers (id, time) pairs for vectorized
    resolution — the population flushes the buffer in batches."""

    __slots__ = ("pop",)

    def __init__(self, pop):
        self.pop = pop
        pop.env._kick(self._begin)

    def _begin(self, _event):
        self._arm()

    def _arm(self):
        self.pop.rx.get().callbacks.append(self._on_msg)

    def _on_msg(self, get):
        pop = self.pop
        now = pop.env.now
        pop._ingest(get._value, now)
        more = pop.rx.recv_batch()
        if more:
            ingest = pop._ingest
            for msg in more:
                ingest(msg, now)
        if len(pop._resp_ids) >= pop.resolve_batch:
            pop._resolve_pending()
        self._arm()


class ClientPopulation:
    """A ToR port's worth of users as one flyweight network endpoint.

    Parameters mirror :class:`~repro.net.client.Client` where they
    model the same thing (``send_cost``/``recv_cost``/``link_rate``).
    ``flows`` is a list of :class:`Flow`; ``timeout`` (us) bounds each
    request's deadline column (``None`` disables expiry).
    ``coalesce_us`` frames injection wakeups: arrivals whose wire entry
    falls in the same frame are injected back-to-back at the frame's
    last entry time (0 = exact per-arrival wakeups).  Coalescing delay
    is *included* in recorded latency — the frame is part of the load
    generator's send machinery, exactly like NIC interrupt moderation.
    """

    def __init__(self, env, network, ip, dst, flows, link_rate=units.gbps(40),
                 send_cost=2.0, recv_cost=2.0, timeout=None, coalesce_us=1.0,
                 chunk=CHUNK, resolve_batch=256, src_addrs=64, name=None):
        if not flows:
            raise ConfigError("a population needs at least one flow")
        total = sum(f.arrivals.mean_rate for f in flows)
        if total <= 0:
            raise ConfigError("population mean rate must be positive")
        if coalesce_us < 0:
            raise ConfigError("coalesce_us must be >= 0")
        self.env = env
        self.network = network
        self.ip = ip
        self.dst = dst
        self.flows = list(flows)
        self.link_rate = link_rate
        self.send_cost = send_cost
        self.recv_cost = recv_cost
        self.timeout = timeout
        self.coalesce_us = coalesce_us
        self.resolve_batch = resolve_batch
        self.name = name or "population-%s" % ip
        self.mean_rate = total
        self.users = sum(f.arrivals.users for f in self.flows)
        #: chunk window width: ~`chunk` arrivals per refill
        self._width = max(chunk / total, 1e-9)
        self._cursor = env.now
        self.rx = Channel(env, name="%s-rx" % self.name)
        network.attach(ip, self)
        # Resolved now (the server must already be attached): injection
        # bypasses Network.deliver's routing kick and pushes straight
        # onto the fabric — the destination's wire channel on the
        # single-switch fabric (same channel, same latency, one event
        # less per request), or this ToR's uplink when the destination
        # lives in another rack (DESIGN.md §4.15).
        self._wire = network.inject_channel(ip, dst.ip)
        self._src = [Address(ip, 40001 + i) for i in range(src_addrs)]
        self._src_i = 0
        self.table = InFlightTable()
        # Current chunk (python lists: consumed element-wise in _fire)
        self._times = []
        self._keys = []
        self._streams = []
        self._frame_end = []
        self._frame_wake = []
        self._pos = 0
        self._frame = 0
        self._stopped = False
        # Pending response buffer (resolved in vectorized batches)
        self._resp_ids = []
        self._resp_times = []
        self._err_ids = []
        # Counters + instruments (DESIGN.md §4.9)
        self.offered = 0
        self.timeouts = 0
        self.errors = 0
        self.late = 0
        self.latency = LogHistogram()
        self.responses = RateMeter(env, name="%s-rate" % self.name)
        self.offered_meter = RateMeter(env, name="%s-offered" % self.name)
        reg = telemetry.registry()
        base = "net.population.%s." % ip
        reg.register(base + "latency", self.latency)
        reg.register(base + "responses", self.responses)
        reg.register(base + "offered", self.offered_meter)
        reg.pull(base + "timeouts", lambda: self.timeouts)
        reg.pull(base + "errors", lambda: self.errors)
        reg.pull(base + "late", lambda: self.late)
        for flow in self.flows:
            reg.register(base + "flow.%s.latency" % flow.name, flow.hist)
        _PopulationRxOp(self)
        env._kick(self._begin)

    # -- chunked arrival generation ---------------------------------------

    def _refill(self):
        """Generate the next non-empty chunk of arrivals (vectorized)."""
        header = UDP_HEADER
        for _ in range(10000):
            start = self._cursor
            until = start + self._width
            self._cursor = until
            times, keys, streams = [], [], []
            for fi, flow in enumerate(self.flows):
                t = flow.arrivals.take(start, until)
                if t.size:
                    times.append(t)
                    keys.append(flow.payloads.sample(t.size))
                    streams.append(np.full(t.size, fi, dtype=np.int16))
            if not times:
                continue
            t = np.concatenate(times) if len(times) > 1 else times[0]
            k = np.concatenate(keys) if len(keys) > 1 else keys[0]
            s = np.concatenate(streams) if len(streams) > 1 else streams[0]
            # Wire-entry instants: arrival + send cost + serialization.
            sizes = np.empty(t.size, dtype=float)
            for fi, flow in enumerate(self.flows):
                sel = s == fi
                if sel.any():
                    fsizes = np.asarray(flow.payloads.sizes, dtype=float)
                    sizes[sel] = fsizes[k[sel]]
            inject = t + self.send_cost + (sizes + header) / self.link_rate
            order = np.argsort(inject, kind="stable")
            t, k, s, inject = t[order], k[order], s[order], inject[order]
            # Frame boundaries: arrivals sharing floor(inject/coalesce)
            # wake the pump once and inject together.
            if self.coalesce_us > 0:
                frame_ids = np.floor(inject / self.coalesce_us)
                cuts = np.flatnonzero(np.diff(frame_ids)) + 1
            else:
                cuts = np.arange(1, t.size)
            ends = np.append(cuts, t.size)
            self._frame_end = ends.tolist()
            self._frame_wake = inject[ends - 1].tolist()
            self._times = t.tolist()
            self._keys = k.tolist()
            self._streams = s.tolist()
            self._pos = 0
            self._frame = 0
            return True
        raise ConfigError("no arrivals in 10000 consecutive windows "
                          "(population rate effectively zero)")

    # -- the pump ----------------------------------------------------------

    def _begin(self, _event):
        if self._stopped:
            return
        self._refill()
        self._arm()

    def _arm(self):
        delay = self._frame_wake[self._frame] - self.env.now
        self.env.defer(delay if delay > 0 else 0.0, self._fire)

    def _fire(self, _event):
        if self._stopped:
            return
        env = self.env
        table_append = self.table.append
        times, keys, streams = self._times, self._keys, self._streams
        flows = self.flows
        dst = self.dst
        srcs = self._src
        nsrc = len(srcs)
        deadline_for = self.timeout
        i = self._pos
        end = self._frame_end[self._frame]
        src_i = self._src_i
        frame = []
        frame_append = frame.append
        nbytes = 0
        inf = math.inf
        if len(flows) == 1:
            # Single-flow fast path: the flow's payload library, sizes,
            # and proto are loop invariants (every E17 trial, and any
            # homogeneous population, takes this branch), and the
            # frame's consecutive msg ids stage as one table run.
            base = i
            flow = flows[0]
            pl = flow.payloads.payloads
            sz = flow.payloads.sizes
            proto = flow.proto
            while i < end:
                t = times[i]
                key = keys[i]
                size = sz[key]
                msg = Message(src=srcs[src_i], dst=dst, payload=pl[key],
                              proto=proto, created_at=t, size=size)
                src_i = src_i + 1 if src_i + 1 < nsrc else 0
                frame_append(msg)
                nbytes += size + UDP_HEADER
                i += 1
            self.table.append_run(frame[0].msg_id, times[base:end],
                                  deadline_for, 0)
        else:
            while i < end:
                t = times[i]
                flow = flows[streams[i]]
                key = keys[i]
                msg = Message(src=srcs[src_i], dst=dst,
                              payload=flow.payloads.payloads[key],
                              proto=flow.proto, created_at=t,
                              size=flow.payloads.sizes[key])
                src_i = src_i + 1 if src_i + 1 < nsrc else 0
                table_append(msg.msg_id, t,
                             t + deadline_for
                             if deadline_for is not None else inf,
                             streams[i])
                frame_append(msg)
                nbytes += msg.size + UDP_HEADER
                i += 1
        # One landing event for the whole frame (Channel.push_many):
        # the burst costs O(1) scheduler events, and an idle RX ring
        # absorbs it as a single bulk extend.
        self._wire.push_many(frame, nbytes=nbytes)
        self._src_i = src_i
        n = end - self._pos
        self.offered += n
        self.offered_meter.count += n
        self._pos = end
        self._frame += 1
        if self._frame >= len(self._frame_wake):
            # Chunk exhausted: expiry sweep + next vectorized refill.
            if deadline_for is not None:
                self._resolve_pending()
                self.timeouts += self.table.expire(env.now)
            self._refill()
        self._arm()

    def stop(self):
        """Cease generating (in-flight responses still resolve)."""
        self._stopped = True

    # -- response path -----------------------------------------------------

    def _ingest(self, msg, now):
        """Buffer one response for batched resolution."""
        rid = msg.meta.get("in_reply_to")
        if rid is None:
            return
        if msg.kind == "response":
            self._resp_ids.append(rid)
            self._resp_times.append(now)
        else:
            self.errors += 1
            self._err_ids.append(rid)

    def _resolve_pending(self):
        """Vector-resolve the buffered responses into the histograms."""
        ids = self._resp_ids
        if ids:
            lat, flows, misses = self.table.resolve(ids, self._resp_times)
            self._resp_ids = []
            self._resp_times = []
            self.late += misses
            n = lat.size
            if n:
                lat = lat + self.recv_cost
                self.responses.count += n
                self.latency.record_many(lat)
                if len(self.flows) == 1:
                    self.flows[0].hist.record_many(lat)
                else:
                    for fi, flow in enumerate(self.flows):
                        sel = flows == fi
                        if sel.any():
                            flow.hist.record_many(lat[sel])
        if self._err_ids:
            self.table.kill(self._err_ids)
            self._err_ids = []

    def flush(self):
        """Resolve everything buffered (call before reading stats)."""
        self._resolve_pending()

    # -- measurement surface -----------------------------------------------

    def reset(self, at_time=None):
        """Warmup cut: flush pending responses, then zero every
        instrument and counter (in-flight requests stay in flight —
        the same semantics as ``Client.latency.reset()``)."""
        self._resolve_pending()
        self.latency.reset(at_time)
        for flow in self.flows:
            flow.hist.reset(at_time)
        self.responses.reset(at_time)
        self.offered_meter.reset(at_time)
        self.offered = 0
        self.timeouts = 0
        self.errors = 0
        self.late = 0

    def delivered_per_sec(self):
        """Measured response rate (responses/s)."""
        self.flush()
        return self.responses.per_sec()

    def offered_per_sec(self):
        """Measured injection rate (requests/s)."""
        return self.offered_meter.per_sec()

    def percentile(self, q):
        """Latency percentile from the log-bucketed histogram (us)."""
        self.flush()
        return self.latency.percentile(q)

    def latency_summary(self):
        """Dict of the stats the SLO driver consumes."""
        self.flush()
        hist = self.latency
        return {
            "count": hist.count,
            "mean": hist.mean(),
            "p50": hist.percentile(50),
            "p90": hist.percentile(90),
            "p99": hist.percentile(99),
            "min": hist.min,
            "max": hist.max,
        }

    def __repr__(self):
        return "<ClientPopulation %s %.3f/us users=%d in_flight=%d>" % (
            self.ip, self.mean_rate, self.users, self.table.in_flight)
