"""One-sided RDMA (the transport between SNIC and accelerator mqueues).

Lynx's key portability trick (§4.2): the SNIC accesses mqueues in
accelerator memory with one-sided RDMA through the NIC's hardware
engine, so no accelerator driver runs on the SNIC, and remote
accelerators (behind their own RDMA NICs) look exactly like local ones.

The engine model: posting a work request costs ``post_cost`` on the
calling core (charged by the caller, not here).  The engine is one
serialized :class:`~repro.sim.Channel` (``engine.channel``): payload
movement holds the channel's issue slot at the engine bandwidth with a
per-op floor, then op latency elapses in the pipeline, so independent
ops overlap.  A QP to a remote accelerator adds
``remote_extra_latency`` per direction.  The RMQ manager's callback
state machines post through the same channel, which is what keeps QP
arbitration between ingress writes and egress poll reads fair.
"""

from ..errors import ConfigError, NetworkError
from ..sim import Channel

#: minimum issue gap between ops (engine message rate ~10M op/s)
_MIN_OP_GAP = 0.1


#: queue pair types (§2, §5.2): Lynx uses Reliable Connections; the
#: Innova prototype's custom rings ride Unreliable Connections, which
#: is why they need a CPU helper for flow control.
RC = "rc"
UC = "uc"


class QueuePair:
    """A queue pair from an engine to one accelerator's memory.

    Lynx creates **one RC QP per accelerator** and coalesces all of that
    accelerator's mqueues onto it (§5.1), which we mirror: the QP is the
    unit of pipeline ordering.
    """

    __slots__ = ("engine", "target", "remote", "name", "qp_type", "ops",
                 "bytes_moved")

    def __init__(self, engine, target, remote=False, name=None, qp_type=RC):
        if qp_type not in (RC, UC):
            raise ConfigError("unknown QP type %r" % qp_type)
        self.engine = engine
        self.target = target
        self.remote = remote
        self.name = name or "qp-%s" % getattr(target, "name", target)
        self.qp_type = qp_type
        self.ops = 0
        self.bytes_moved = 0


class RdmaEngine:
    """The hardware RDMA engine of one (Smart)NIC."""

    def __init__(self, env, profile, name="rdma"):
        self.env = env
        self.profile = profile
        self.name = name
        #: the engine pipe: every one-sided op serializes through here
        self.channel = Channel(env, name="%s-pipe" % name, serialized=True,
                               bandwidth=profile.bandwidth,
                               min_occupancy=_MIN_OP_GAP)
        self._issue = self.channel.issue  # legacy alias
        self.ops_posted = 0

    def connect(self, target, remote=False, name=None, qp_type=RC):
        """Create a QP whose buffers live in *target* memory."""
        if target is None:
            raise ConfigError("QP target memory required")
        if remote and not getattr(target, "exposed_on_pcie", True):
            raise NetworkError(
                "remote RDMA requires PCIe-exposed target memory (§4.4)")
        if qp_type == UC and remote:
            raise NetworkError(
                "unreliable connections cannot span machines here: the "
                "receiver-side flow control has no transport to lean on")
        return QueuePair(self, target, remote=remote, name=name,
                         qp_type=qp_type)

    # -- one-sided operations ------------------------------------------------

    def _occupancy(self, nbytes):
        return self.channel.occupancy(nbytes)

    def op_latency(self, qp, round_trips):
        """Pipeline latency of one op on *qp* (completion after issue)."""
        latency = self.profile.op_latency * round_trips
        if qp.remote:
            latency += self.profile.remote_extra_latency * round_trips
        return latency

    def write(self, qp, nbytes):
        """Generator: one-sided RDMA write; completes when data is placed."""
        yield from self._op(qp, nbytes, round_trips=1)

    def read(self, qp, nbytes):
        """Generator: one-sided RDMA read; needs a full round trip.

        InfiniBand supports RDMA reads on reliable connections only.
        """
        if qp.qp_type != RC:
            raise NetworkError("RDMA reads require an RC queue pair")
        yield from self._op(qp, nbytes, round_trips=2)

    def barrier_read(self, qp):
        """Generator: the §5.1 consistency write-barrier (zero-byte read).

        Requires a reliable connection (reads are RC-only in IB).

        NVIDIA's documented workaround orders NIC writes into GPU memory
        by issuing an RDMA read between the payload write and the
        doorbell write; the paper measures ~5us extra per message.
        """
        if qp.qp_type != RC:
            raise NetworkError("RDMA reads require an RC queue pair")
        yield from self.channel.transfer(
            0, occupancy=_MIN_OP_GAP,
            post_latency=self.profile.barrier_latency)
        qp.ops += 1
        self.ops_posted += 1

    def _op(self, qp, nbytes, round_trips):
        if qp.engine is not self:
            raise NetworkError("QP %s belongs to another engine" % qp.name)
        if nbytes < 0:
            raise ConfigError("negative RDMA size")
        yield from self.channel.transfer(
            nbytes, post_latency=self.op_latency(qp, round_trips))
        qp.ops += 1
        qp.bytes_moved += nbytes
        self.ops_posted += 1

    # -- analytic helpers -----------------------------------------------------

    def write_time(self, nbytes, remote=False):
        """Uncontended completion time of a write (for tests/calibration)."""
        t = self._occupancy(nbytes) + self.profile.op_latency
        if remote:
            t += self.profile.remote_extra_latency
        return t
