"""Transport-layer processing models (UDP/TCP, kernel or VMA bypass).

A :class:`NetworkStack` charges per-message CPU costs — calibrated per
platform in :mod:`repro.config` — on the core pool that runs the stack.
The paper's observation that ARM cores pay heavily for kernel system
calls, and that the VMA user-level library recovers a 4x factor
(§5.1.1), is entirely captured by which :class:`~repro.config.StackProfile`
is plugged in.

TCP connections are explicit: clients perform a handshake (1.5 RTT plus
server-side accept cost) before sending, segments carry sequence
numbers, and both sides validate ordering — enough state to make the
TCP-vs-UDP cost asymmetry and the connection-scaling arguments of the
paper real, without modelling retransmission.
"""

from itertools import count

import numpy as np

from ..errors import NetworkError
from .. import telemetry
from .packet import Message, TCP, UDP

# Debug identity for connection repr, not a metric.
_conn_ids = count(1)  # lint: allow-global-counter


class TcpConnection:
    """State shared by the two ends of an established TCP connection."""

    __slots__ = ("conn_id", "client", "server", "established",
                 "client_seq", "server_seq", "client_delivered",
                 "server_delivered")

    def __init__(self, client, server):
        self.conn_id = next(_conn_ids)
        self.client = client
        self.server = server
        self.established = False
        self.client_seq = 0
        self.server_seq = 0
        self.client_delivered = 0
        self.server_delivered = 0

    def next_seq(self, sender_addr):
        """Allocate the next sequence number for the sending side."""
        if sender_addr == self.client:
            self.client_seq += 1
            return self.client_seq
        self.server_seq += 1
        return self.server_seq

    def deliver(self, msg):
        """Validate in-order delivery at the receiving side."""
        seq = msg.meta.get("tcp_seq")
        if seq is None:
            raise NetworkError("TCP segment without sequence number")
        if msg.src == self.client:
            expected = self.client_delivered + 1
            self.client_delivered = seq
        else:
            expected = self.server_delivered + 1
            self.server_delivered = seq
        if seq != expected:
            raise NetworkError(
                "out-of-order TCP delivery on conn %d: got %d, expected %d"
                % (self.conn_id, seq, expected))


class NetworkStack:
    """Transport processing bound to a platform core pool."""

    def __init__(self, env, pool, profile, name=None):
        self.env = env
        self.pool = pool
        self.profile = profile
        self.name = name or profile.name
        self._listening = set()
        # Stack hops emit on the environment tracer with the Channel
        # layer's uniform (time, channel, event, msg_id, detail) schema;
        # snapshotting None keeps the disabled path branch-free.
        tracer = getattr(env, "tracer", None)
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        #: control segments discarded because nothing listens on the port
        self.closed_port_drops = 0
        telemetry.registry().pull(
            "net.stack.%s.closed_port_drops" % self.name,
            lambda: self.closed_port_drops)

    # -- ports ---------------------------------------------------------------

    def listen(self, port):
        """Open *port* for both UDP datagrams and TCP accepts."""
        self._listening.add(port)

    def is_listening(self, port):
        return port in self._listening

    # -- cost model ------------------------------------------------------------

    def rx_cost(self, msg):
        p = self.profile
        if msg.proto == TCP:
            return p.tcp_rx_fixed + p.tcp_per_byte * msg.size
        return p.udp_rx_fixed + p.udp_per_byte * msg.size

    def tx_cost(self, msg):
        p = self.profile
        if msg.proto == TCP:
            return p.tcp_tx_fixed + p.tcp_per_byte * msg.size
        return p.udp_tx_fixed + p.udp_per_byte * msg.size

    # (proto, size) twins of the cost model, for frame execution: a
    # turbo span prices its stages before the response Message exists.
    # Same arithmetic, same operand order — the timestamps they produce
    # must match the Message-based path bit for bit.

    def rx_cost_for(self, proto, size):
        p = self.profile
        if proto == TCP:
            return p.tcp_rx_fixed + p.tcp_per_byte * size
        return p.udp_rx_fixed + p.udp_per_byte * size

    def tx_cost_for(self, proto, size):
        p = self.profile
        if proto == TCP:
            return p.tcp_tx_fixed + p.tcp_per_byte * size
        return p.udp_tx_fixed + p.udp_per_byte * size

    def rx_costs(self, proto, sizes):
        """Vectorized receive costs of a frame of message *sizes*.

        numpy elementwise ``fixed + per_byte * size`` rounds identically
        to the scalar expression, so per-message frame charges built
        from this array match the scalar chain's.
        """
        sizes = np.asarray(sizes, dtype=float)
        p = self.profile
        if proto == TCP:
            return p.tcp_rx_fixed + p.tcp_per_byte * sizes
        return p.udp_rx_fixed + p.udp_per_byte * sizes

    def tx_costs(self, proto, sizes):
        """Vectorized transmit costs of a frame of message *sizes*."""
        sizes = np.asarray(sizes, dtype=float)
        p = self.profile
        if proto == TCP:
            return p.tcp_tx_fixed + p.tcp_per_byte * sizes
        return p.udp_tx_fixed + p.udp_per_byte * sizes

    # -- processing ------------------------------------------------------------

    def process_rx(self, msg):
        """Generator: charge receive-side processing of *msg*."""
        if self._tracer is not None:
            self._tracer.emit(self.name, "rx", msg.msg_id, msg.proto)
        yield from self.pool.run_calibrated(self.rx_cost(msg))
        if msg.proto == TCP and msg.conn is not None:
            msg.conn.deliver(msg)

    def process_tx(self, msg):
        """Generator: charge transmit-side processing and stamp TCP seq."""
        if msg.proto == TCP and msg.conn is not None:
            msg.meta["tcp_seq"] = msg.conn.next_seq(msg.src)
        if self._tracer is not None:
            self._tracer.emit(self.name, "tx", msg.msg_id, msg.proto)
        yield from self.pool.run_calibrated(self.tx_cost(msg))

    def handle_control(self, msg, nic):
        """Server-side handshake handling.

        Returns True (and replies) if *msg* was a TCP control segment
        that the stack consumed; servers call this before dispatching.
        """
        if msg.kind != "tcp-syn":
            return False
        if not self.is_listening(msg.dst.port):
            # Dropped like a closed port — but counted, so scorecard
            # drop accounting sees these losses.
            self.closed_port_drops += 1
            if self._tracer is not None:
                self._tracer.emit(self.name, "closed-port-drop", msg.msg_id)
            return True
        self.env.detached(self._accept(msg, nic))
        return True

    def _accept(self, msg, nic):
        yield from self.pool.run_calibrated(self.profile.tcp_connect_cost)
        conn = msg.meta["conn"]
        conn.established = True
        ack = Message(src=msg.dst, dst=msg.src, payload=b"", proto=TCP,
                      created_at=self.env.now, conn=conn, kind="tcp-synack")
        ack.meta["request_created_at"] = msg.created_at
        yield from nic.send(ack)
