"""Reporting: ASCII charts and paper-figure rendering."""

from .charts import bar_chart, cdf_chart, line_chart
from .figures import ALL_FIGURES
from .scorecard import grade, render_scorecard, score_results_dir, score_rows

__all__ = ["bar_chart", "cdf_chart", "line_chart", "ALL_FIGURES",
           "grade", "score_rows", "score_results_dir", "render_scorecard"]
