"""Print the reproduction scorecard from benchmark artifacts.

    python -m repro.report [results_dir]
"""

import os
import sys

from .scorecard import render_scorecard, score_results_dir


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    results_dir = argv[0] if argv else os.path.join("benchmarks", "results")
    print(render_scorecard(score_results_dir(results_dir)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
