"""Print the reproduction scorecard from benchmark artifacts.

    python -m repro.report [results_dir]
"""

import os
import sys

from .scorecard import (load_results_campaign, load_results_metrics,
                        render_scorecard, score_results_dir)


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    results_dir = argv[0] if argv else os.path.join("benchmarks", "results")
    scores = score_results_dir(results_dir)
    metrics = load_results_metrics(results_dir)
    campaign = load_results_campaign(results_dir)
    print(render_scorecard(scores, metrics=metrics, campaign=campaign))
    return 0


if __name__ == "__main__":
    sys.exit(main())
