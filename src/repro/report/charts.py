"""Terminal chart rendering (no plotting dependencies).

Renders the paper's figure types as ASCII art so
``examples/generate_figures.py`` can reproduce Figures 5-9 visually
from experiment results:

* :func:`line_chart` — series over a numeric x-axis (Fig 8b/8c);
* :func:`bar_chart` — grouped horizontal bars (Fig 5/6/9);
* :func:`cdf_chart` — latency CDFs (Fig 8a).
"""

import math

from ..errors import ConfigError

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _fmt(value):
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    if abs(value) >= 1000:
        return "%.0f" % value
    if abs(value) >= 10:
        return "%.1f" % value
    return "%.2f" % value


def bar_chart(rows, width=46, title=None, unit=""):
    """Horizontal bars: rows are (label, value) pairs."""
    if not rows:
        raise ConfigError("bar chart needs at least one row")
    peak = max(value for _, value in rows if value is not None) or 1.0
    label_w = max(len(str(label)) for label, _ in rows)
    lines = []
    if title:
        lines.append(title)
    for label, value in rows:
        if value is None:
            lines.append("%s  %s" % (str(label).ljust(label_w), "-"))
            continue
        filled = value / peak * width
        whole = int(filled)
        frac = int((filled - whole) * (len(_BLOCKS) - 1))
        bar = "█" * whole + (_BLOCKS[frac] if frac else "")
        lines.append("%s  %s %s%s" % (str(label).ljust(label_w), bar,
                                      _fmt(value), unit))
    return "\n".join(lines)


def line_chart(series, width=60, height=16, title=None, x_label="",
               y_label=""):
    """Multi-series scatter/line plot.

    *series* is ``{name: [(x, y), ...]}``; each series gets a marker.
    """
    if not series:
        raise ConfigError("line chart needs at least one series")
    markers = "ox+*#@%&"
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ConfigError("line chart needs data points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = 0.0, max(ys) or 1.0
    x_span = (x_hi - x_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo or 1.0) * (height - 1))
            grid[height - 1 - row][col] = marker
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_val = y_hi - i * (y_hi - y_lo) / (height - 1)
        prefix = ("%8s |" % _fmt(y_val)) if i % 3 == 0 else "         |"
        lines.append(prefix + "".join(row))
    lines.append("         +" + "-" * width)
    lines.append("          %s%s%s" % (_fmt(x_lo),
                                       x_label.center(width - 12),
                                       _fmt(x_hi)))
    legend = "   ".join("%s %s" % (markers[i % len(markers)], name)
                        for i, name in enumerate(series))
    lines.append("          " + legend)
    if y_label:
        lines.append("          (y: %s)" % y_label)
    return "\n".join(lines)


def cdf_chart(samples_by_series, width=60, height=14, title=None,
              x_label="latency (us)"):
    """Empirical CDFs of one or more sample sets (Fig 8a style)."""
    import numpy as np

    series = {}
    x_hi = 0.0
    for name, samples in samples_by_series.items():
        arr = np.sort(np.asarray(list(samples), dtype=float))
        if arr.size == 0:
            raise ConfigError("empty sample set %r" % name)
        x_hi = max(x_hi, float(np.percentile(arr, 99.5)))
        series[name] = arr
    pts = {}
    for name, arr in series.items():
        qs = np.linspace(0.0, 1.0, width)
        xs = np.quantile(arr, qs)
        pts[name] = [(float(x), float(q)) for x, q in zip(xs, qs)
                     if x <= x_hi]
    chart = {name: p for name, p in pts.items()}
    return line_chart(chart, width=width, height=height, title=title,
                      x_label=x_label, y_label="fraction of requests")
