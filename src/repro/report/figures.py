"""Render the paper's figures from experiment results (ASCII).

Each function runs the corresponding experiment (fast mode by default)
and returns a printable figure, so the evaluation can be *seen*, not
just tabulated::

    python examples/generate_figures.py
"""

from ..experiments import (
    e03_fig5_transfer_mechanisms,
    e04_fig6_throughput_grid,
    e05_fig7_latency,
    e09_fig8a_lenet,
    e10_fig8b_scaleout,
    e11_fig8c_projection,
    e12_fig9_memcached,
)
from .charts import bar_chart, cdf_chart, line_chart


def figure5(fast=True, seed=42):
    """mqueue access mechanisms: speedup vs payload size."""
    result = e03_fig5_transfer_mechanisms.run(fast=fast, seed=seed)
    series = {
        "cuda+gdr": [(r["payload"], r["cuda_gdr"]) for r in result.rows],
        "rdma+gdr": [(r["payload"], r["rdma_gdr"]) for r in result.rows],
        "rdma+rdma": [(r["payload"], r["rdma_rdma"]) for r in result.rows],
    }
    return line_chart(series, title="Figure 5 — speedup over "
                      "cudaMemcpyAsync/cudaMemcpyAsync",
                      x_label="payload (bytes)", y_label="speedup")


def figure6(fast=True, seed=42):
    """Relative throughput of the four designs (bars per config)."""
    result = e04_fig6_throughput_grid.run(fast=fast, seed=seed)
    blocks = []
    for row in result.rows:
        rows = [
            ("host-centric", row["host_centric"]),
            ("lynx xeon x1", row["lynx_xeon1"]),
            ("lynx xeon x6", row["lynx_xeon6"]),
            ("lynx bluefield", row["lynx_bluefield"]),
        ]
        blocks.append(bar_chart(
            rows, title="Figure 6 — %.0fus kernels, %d mqueue(s) "
            "(x over host-centric)" % (row["exec_us"], row["mqueues"]),
            unit="x"))
    return "\n\n".join(blocks)


def figure7(fast=True, seed=42):
    """Bluefield latency slowdown vs request runtime."""
    result = e05_fig7_latency.run(fast=fast, seed=seed)
    series = {}
    for row in result.rows:
        series.setdefault("%d mqueues" % row["mqueues"], []).append(
            (row["runtime_us"], row["slowdown"]))
    return line_chart(series, title="Figure 7 — Bluefield/6-Xeon p50 "
                      "latency ratio", x_label="request runtime (us)",
                      y_label="slowdown")


def figure8a(fast=True, seed=42):
    """LeNet latency CDFs at maximum throughput."""
    from ..net.packet import UDP

    samples = {}
    for design in ("host-centric", "lynx-xeon-1core", "lynx-bluefield"):
        tput, _ = e09_fig8a_lenet.measure(design, UDP, seed=seed,
                                          measure_us=100000.0)
        latency = e09_fig8a_lenet.measure_latency_at_load(
            design, UDP, 0.95 * tput, seed=seed, measure_us=100000.0)
        samples[design] = latency.samples
    return cdf_chart(samples, title="Figure 8a — LeNet latency CDF at "
                     "max throughput")


def figure8b(fast=True, seed=42):
    """Remote-GPU scale-out bars."""
    result = e10_fig8b_scaleout.run(fast=fast, seed=seed)
    rows = [(r["config"], r["krps"]) for r in result.rows]
    return bar_chart(rows, title="Figure 8b — LeNet scale-out (Kreq/s)",
                     unit=" Kreq/s")


def figure8c(fast=True, seed=42):
    """Scalability projection curves."""
    result = e11_fig8c_projection.run(fast=fast, seed=seed)
    series = {}
    for row in result.rows:
        if row["gpus"] == "knee":
            continue
        key = "%s %s" % (row["proto"].upper(), row["platform"])
        series.setdefault(key, []).append((row["gpus"], row["krps"]))
    return line_chart(series, title="Figure 8c — throughput vs emulated "
                      "GPUs", x_label="GPUs", y_label="Kreq/s")


def figure9(fast=True, seed=42):
    """memcached placement bars."""
    result = e12_fig9_memcached.run(fast=fast, seed=seed)
    rows = [(r["config"], r["memcached_ktps"]) for r in result.rows]
    return bar_chart(rows, title="Figure 9 — usable memcached throughput "
                     "(Ktps)", unit=" Ktps")


ALL_FIGURES = {
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8a": figure8a,
    "fig8b": figure8b,
    "fig8c": figure8c,
    "fig9": figure9,
}
