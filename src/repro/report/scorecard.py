"""The reproduction scorecard: grade measured results against the paper.

Reads the JSON artifacts the benchmarks write under
``benchmarks/results/`` and grades every row that carries a paper
reference column (``paper_*``) by relative deviation:

    MATCH  within 25%
    NEAR   within 60%
    DEVIATES  beyond that (these should all be in EXPERIMENTS.md's
              deviation list)

Run it after a benchmark pass::

    python -m repro.report [results_dir]
"""

import json
import math
import os

from ..errors import ConfigError
from ..telemetry import materialize
from ..telemetry.export import load_campaign, load_metrics

#: filename of the merged telemetry snapshot (written by
#: ``python -m repro.experiments --metrics PATH``) the scorecard
#: summarizes alongside the per-experiment grades
METRICS_FILENAME = "metrics.json"

#: filename of the campaign importance document (written by
#: ``python -m repro.experiments campaign --out PATH``) rendered as the
#: ranked per-component importance table
CAMPAIGN_FILENAME = "campaign.json"

MATCH_REL = 0.25
NEAR_REL = 0.60

#: row columns compared against their paper_* counterpart
_PAIRS = (
    ("krps", "paper_krps"),
    ("p90_us", "paper_p90_us"),
    ("mpps", "paper_mpps"),
    ("speedup", "paper_speedup"),
    ("knee_estimate", "paper_knee"),
    ("e2e_us", "paper_e2e_us"),
    ("overhead_us", "paper_overhead_us"),
    ("p90_us", "paper_p90_us"),
    ("snic_span_total", "paper_span"),
    ("extra_us", "paper_extra_us"),
    ("memcached_ktps", "paper_ktps"),
    ("stack_cost_ratio", "paper_processing_ratio"),
)


def grade(measured, paper):
    """Grade one measured/paper pair."""
    if paper in (None, 0):
        return None
    try:
        rel = abs(float(measured) - float(paper)) / abs(float(paper))
    except (TypeError, ValueError):
        return None
    if math.isnan(rel):
        return None
    if rel <= MATCH_REL:
        return "MATCH"
    if rel <= NEAR_REL:
        return "NEAR"
    return "DEVIATES"


def score_rows(rows):
    """Grade every (measured, paper) pair found in *rows*."""
    findings = []
    for index, row in enumerate(rows):
        for measured_key, paper_key in _PAIRS:
            if paper_key not in row or measured_key not in row:
                continue
            verdict = grade(row.get(measured_key), row.get(paper_key))
            if verdict is None:
                continue
            findings.append({
                "row": index,
                "metric": measured_key,
                "measured": row[measured_key],
                "paper": row[paper_key],
                "verdict": verdict,
            })
    return findings


def score_results_dir(results_dir):
    """Score every EXX.json artifact; returns {exp_id: findings}."""
    if not os.path.isdir(results_dir):
        raise ConfigError("no results directory at %r — run "
                          "`pytest benchmarks/ --benchmark-only` first"
                          % results_dir)
    scores = {}
    for name in sorted(os.listdir(results_dir)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(results_dir, name)) as fh:
            blob = json.load(fh)
        findings = score_rows(blob.get("rows", []))
        if findings:
            scores[blob.get("exp_id", name)] = findings
    return scores


def load_results_metrics(results_dir):
    """The telemetry snapshot shipped with the results, or ``None``.

    Looks for ``metrics.json`` (see :data:`METRICS_FILENAME`) in
    *results_dir*; validates the ``repro.telemetry/1`` schema.
    """
    path = os.path.join(results_dir, METRICS_FILENAME)
    if not os.path.isfile(path):
        return None
    return load_metrics(path)


def load_results_campaign(results_dir):
    """The campaign importance document shipped with the results, or
    ``None``.

    Looks for ``campaign.json`` (see :data:`CAMPAIGN_FILENAME`) in
    *results_dir*; validates the ``repro.campaign/1`` schema.
    """
    path = os.path.join(results_dir, CAMPAIGN_FILENAME)
    if not os.path.isfile(path):
        return None
    return load_campaign(path)


def _pct(value):
    return "n/a" if value is None else "%+.1f%%" % (100.0 * value)


def render_importance(campaigns):
    """Ranked per-component importance table from campaign outcomes.

    *campaigns* is a ``repro.campaign/1`` document (or just its
    ``campaigns`` list).  Components rank by ``|importance|`` — the
    mean signed relative change of the campaign's primary metric when
    the component is ablated, oriented so positive means the baseline
    setting wins.  Negative importance beyond the engine's threshold is
    flagged HARMFUL: ablating (or re-tuning) that component *improved*
    the metric, which is exactly the row a design review reads first.
    The signal columns are raw relative telemetry deltas (ablated vs
    baseline; positive = the ablated run measured higher).
    """
    if isinstance(campaigns, dict):
        campaigns = campaigns.get("campaigns", [])
    entries = []
    for doc in campaigns:
        metric = doc.get("metric") or "metric"
        for imp in doc.get("importance", []):
            entries.append((doc.get("exp_id", "?"), metric, imp))
    entries.sort(key=lambda item: (item[2].get("importance") is None,
                                   -abs(item[2].get("importance") or 0.0)))
    lines = ["component importance (ranked by |importance|)",
             "=" * 78]
    if not entries:
        lines.append("(no campaigns)")
        return "\n".join(lines)
    lines.append("%-8s %-16s %-20s %10s %9s %9s %9s %9s"
                 % ("exp", "component", "knob", "importance",
                    "goodput", "p99", "kevents", "burn"))
    lines.append("-" * 78)
    for exp_id, metric, imp in entries:
        signals = imp.get("signals", {})
        importance = imp.get("importance")
        lines.append("%-8s %-16s %-20s %10s %9s %9s %9s %9s%s"
                     % (exp_id, imp.get("component", "?"),
                        imp.get("knob", "?"),
                        "n/a" if importance is None
                        else "%+.3f" % importance,
                        _pct(signals.get("goodput")),
                        _pct(signals.get("p99_us")),
                        _pct(signals.get("kernel_events")),
                        _pct(signals.get("core_burn")),
                        "  HARMFUL" if imp.get("harmful") else ""))
    lines.append("-" * 78)
    lines.append("importance > 0: the baseline setting beats its "
                 "ablations on the campaign's metric; HARMFUL: an "
                 "ablation improved it")
    return "\n".join(lines)


def summarize_metrics(metrics):
    """Health summary rows from a merged telemetry snapshot.

    Surfaces the signals a reviewer checks first: how much simulation
    backed the numbers, whether anything was dropped along the way, and
    the shape of the client-observed latency histograms.
    """
    rows = []

    def counter_sum(suffixes):
        total, n = 0, 0
        for name, snap in metrics.items():
            if snap.get("kind") == "counter" and name.endswith(suffixes):
                total += snap.get("value", 0)
                n += 1
        return total, n

    kernel = metrics.get("sim.kernel.events_processed")
    if kernel is not None:
        rows.append(("kernel events processed", "%d" % kernel["value"]))
    drops, n_drop = counter_sum(
        (".drops", ".dropped", ".closed_port_drops", ".shed_errors"))
    rows.append(("drop counters (%d instruments)" % n_drop, "%d" % drops))
    # Fault-injection campaign summary (DESIGN.md §4.10): only present
    # when a schedule was armed, plus any client-side retry traffic.
    for group, label in (("faults.injected.", "faults injected"),
                         ("faults.dropped.", "faults: entries dropped"),
                         ("faults.recovered.", "faults recovered")):
        total, n = 0, 0
        for name, snap in metrics.items():
            if snap.get("kind") == "counter" and name.startswith(group):
                total += snap.get("value", 0)
                n += 1
        if n:
            rows.append(("%s (%d kinds)" % (label, n), "%d" % total))
    retries, n_retry = counter_sum((".retries",))
    if retries:
        rows.append(("client retries (%d clients)" % n_retry, "%d" % retries))
    trace_drops = metrics.get("sim.trace.dropped")
    if trace_drops is not None and trace_drops.get("value"):
        rows.append(("tracer records dropped", "%d" % trace_drops["value"]))
    for name, snap in metrics.items():
        if snap.get("kind") == "histogram" and snap.get("count"):
            hist = materialize(snap)
            rows.append((name, "n=%d p50=%.1f p99=%.1f max=%.1f"
                         % (hist.count, hist.p50(), hist.p99(), hist.max)))
    return rows


def render_scorecard(scores, metrics=None, campaign=None):
    """Printable scorecard with per-experiment and overall tallies.

    *metrics* (optional) is a merged telemetry snapshot — the decoded
    ``metrics.json`` — appended as a health-summary section.
    *campaign* (optional) is a decoded ``repro.campaign/1`` document —
    appended as the ranked component-importance table.
    """
    lines = ["reproduction scorecard", "=" * 60]
    tally = {"MATCH": 0, "NEAR": 0, "DEVIATES": 0}
    for exp_id in sorted(scores):
        for f in scores[exp_id]:
            tally[f["verdict"]] += 1
            lines.append("%-4s %-18s measured %-10s paper %-10s %s"
                         % (exp_id, f["metric"], f["measured"], f["paper"],
                            f["verdict"]))
    total = sum(tally.values()) or 1
    lines.append("-" * 60)
    lines.append("MATCH %d (%.0f%%)   NEAR %d   DEVIATES %d   of %d "
                 "paper-anchored values"
                 % (tally["MATCH"], 100 * tally["MATCH"] / total,
                    tally["NEAR"], tally["DEVIATES"], total))
    if metrics:
        lines.append("")
        lines.append("telemetry summary (%d instruments)" % len(metrics))
        lines.append("-" * 60)
        for label, value in summarize_metrics(metrics):
            lines.append("%-44s %s" % (label, value))
    if campaign:
        lines.append("")
        lines.append(render_importance(campaign))
    return "\n".join(lines)
