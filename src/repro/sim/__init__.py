"""Discrete-event simulation kernel (microsecond-resolution).

Public surface::

    env = Environment()
    def proc(env):
        yield env.timeout(5.0)
        return 42
    p = env.process(proc(env))
    env.run()

"""

from .environment import (
    BACKENDS,
    Environment,
    active_backend,
    configure_backend,
    kernel_totals,
    make_environment,
    merge_kernel_totals,
    reset_kernel_totals,
    resolve_frame_exec,
)
from . import batchexec
from .landing import LandingTable
from .wheel import WheelEnvironment
from .events import (
    Event,
    Timeout,
    Charge,
    Process,
    Task,
    Interrupt,
    Condition,
    all_of,
    any_of,
    URGENT,
    NORMAL,
)
from .resources import Resource, Request
from .store import Store, PriorityStore
from .channel import Channel
from .rng import RngRegistry
from .stats import LatencyRecorder, RateMeter, TimeWeightedGauge, Counter
from .trace import Tracer, NullTracer

__all__ = [
    "BACKENDS",
    "Environment",
    "WheelEnvironment",
    "LandingTable",
    "active_backend",
    "configure_backend",
    "make_environment",
    "kernel_totals",
    "merge_kernel_totals",
    "reset_kernel_totals",
    "resolve_frame_exec",
    "batchexec",
    "Event",
    "Timeout",
    "Charge",
    "Process",
    "Task",
    "Interrupt",
    "Condition",
    "all_of",
    "any_of",
    "URGENT",
    "NORMAL",
    "Resource",
    "Request",
    "Store",
    "PriorityStore",
    "Channel",
    "RngRegistry",
    "LatencyRecorder",
    "RateMeter",
    "TimeWeightedGauge",
    "Counter",
    "Tracer",
    "NullTracer",
]
