"""Frame-native execution of the data-plane hot loops (DESIGN.md §4.14).

The scalar data planes run each message through a chain of callback
states — ring pop, pool grant, per-stage ``Charge``, release — burning
5-10 scheduler events per message.  Frame execution ("turbo steps")
coalesces a whole multi-stage span into **one** scheduled completion
event whenever doing so is *provably unobservable*:

**The clear-span guard.**  A turbo step covering ``(now, end]`` is legal
only when ``env.peek() > end`` strictly, *and* the admission check runs
as the tail of the current callback (nothing else executes at ``now``
afterwards).  Events are only created inside firing callbacks and are
never scheduled into the past, so under the guard no foreign event can
fire — or be created — anywhere in the span.  The scalar chain would
therefore run with nothing observing its intermediate states, and the
coalesced step only needs to (a) land its completion at the *exact*
float timestamp the scalar chain's sequential additions produce
(:func:`span_times` + ``Environment.defer_at``), (b) replay the
intermediate bookkeeping with the same arithmetic at the same operand
values (:func:`seize`/:func:`unseize`/:func:`touch_gauge`), and (c)
consume the same number of schedule sequence numbers (:func:`burn`), to
leave every simulated observable bit-identical to the scalar oracle.

**Fallback triggers.**  Anything that could make the span observable
falls back to the per-message path before committing: an armed tracer
(``--trace-channel``), a fault-injector ``_land`` shadow or any other
per-instance method override on the ring (:func:`ring_plain`), LLC
occupancy or memory-intensity calibration on the pool — its pressure
and RNG draws are globally visible (:func:`calibration_plain`) — pool
or issue-slot contention (:func:`pool_ready`), and of course any event
already scheduled inside the span.  The fallback *is* the scalar code
path, unchanged; ``env.frame_exec = False`` disables admission wholesale.

Only scheduler-kernel counters (``events_processed``, ``charges_*``,
``heap_peak``) differ between the two modes — by design; that drop is
the whole point (see ``sim.kernel.events_per_request``).
"""

from heapq import heappop

import numpy as np

from .store import Store

__all__ = [
    "frame_enabled", "clear_span", "burn", "span_times", "frame_offsets",
    "pool_ready", "calibration_plain", "ring_plain", "seize", "unseize",
    "touch_gauge", "try_stage",
]


def frame_enabled(env):
    """Frame execution admissible on *env* at all (knob + tracer)."""
    return env.frame_exec and not env.tracer.enabled


def clear_span(env, end):
    """True when no scheduled event exists at or before *end* (strict).

    The admission guard: combined with tail-of-callback admission this
    guarantees nothing fires — or gets created — inside ``(now, end]``.
    """
    return env.peek() > end


def burn(env, n):
    """Consume *n* schedule sequence numbers without scheduling.

    Keeps ``env._eid`` bit-identical to the scalar chain's consumption,
    so every event scheduled after the span carries the same sequence
    number either way (the LandingTable uses the same trick for bulk
    credits).
    """
    env._eid += n


def span_times(start, durations):
    """Per-stage completion timestamps of a sequential span.

    Plain sequential float additions — ``t += d`` stage by stage —
    because that is *exactly* what the scalar chain computes; a
    vectorized ``start + cumsum(d)`` may differ in the last ulp and
    break bit-identity.  Use :func:`frame_offsets` when aggregating
    durations where scalar-exact timestamps are not required.
    """
    times = []
    t = start
    for d in durations:
        t = t + d
        times.append(t)
    return times


def frame_offsets(durations):
    """Cumulative per-message offsets of a frame (numpy cumsum).

    The vectorized aggregate for frame planning — total span length,
    per-message relative completion offsets — where the consumer does
    not need scalar-exact absolute timestamps (those come from
    :func:`span_times`).
    """
    return np.cumsum(np.asarray(durations, dtype=float))


def pool_ready(res):
    """A slot is immediately grantable on Resource *res* (no waiters)."""
    return res._in_use < res.capacity and not res._waiters


def calibration_plain(pool):
    """*pool*'s calibrated runs touch neither the LLC nor its RNG.

    With a working set or memory intensity configured, the scalar legs
    occupy LLC capacity and draw penalties at their own instants —
    globally visible state the coalesced step cannot replay mid-span —
    so those configurations stay on the scalar oracle.
    """
    return (pool.default_working_set <= 0
            and (pool.llc is None or pool.default_memory_intensity <= 0))


def ring_plain(channel):
    """*channel* can be popped inline in place of a ``get()`` event.

    Requires the untouched Store FIFO fast path: no tracer shadow, no
    fault-injector ``_land`` hook, no per-instance ``get``/``try_get``
    override, no parked putters (a pop would have to wake one), no
    parked getters (they own the next item), and the class-level FIFO
    pop (PriorityStore orders differently).
    """
    d = channel.__dict__
    return (d.get("_tracer") is None
            and not channel._putters
            and not channel._getters
            and type(channel)._pop_item is Store._pop_item
            and "_land" not in d
            and "get" not in d
            and "try_get" not in d)


def seize(res):
    """Take one slot of *res* exactly as ``Resource._grant`` would,
    minus the grant event (the turbo step has no Request to resume).

    Caller must have checked :func:`pool_ready`; the utilization-gauge
    arithmetic mirrors the inlined ``_grant`` update operand for
    operand so the gauge state stays bit-identical to the scalar path.
    """
    in_use = res._in_use + 1
    res._in_use = in_use
    gauge = res.utilization
    value = in_use / res.capacity
    if value != gauge._value:
        now = res.env.now
        gauge._area += gauge._value * (now - gauge._last_change)
        gauge._value = value
        gauge._last_change = now
        if value > gauge._max:
            gauge._max = value


def unseize(res):
    """Return a :func:`seize`'d slot exactly as ``Resource._do_release``
    would — including granting any waiters that parked meanwhile (a
    scalar competitor admitted at the span's start time can legally be
    waiting here).
    """
    res._in_use -= 1
    waiters = res._waiters
    while waiters and res._in_use < res.capacity:
        _, _, nxt = heappop(waiters)
        if nxt.triggered:
            continue
        res._grant(nxt)
    gauge = res.queue_depth
    value = len(waiters)
    if value != gauge._value:
        now = res.env.now
        gauge._area += gauge._value * (now - gauge._last_change)
        gauge._value = value
        gauge._last_change = now
        if value > gauge._max:
            gauge._max = value
    gauge = res.utilization
    value = res._in_use / res.capacity
    if value != gauge._value:
        now = res.env.now
        gauge._area += gauge._value * (now - gauge._last_change)
        gauge._value = value
        gauge._last_change = now
        if value > gauge._max:
            gauge._max = value


def try_stage(env, res, duration, done, pool=None):
    """Coalesce one grant+charge stage pair into a single event.

    The scalar stage requests a slot on *res* (granted synchronously
    when free — one resume event) and then charges *duration* (one more
    event).  When the slot is free and the stage's window is clear,
    take the slot inline (:func:`seize` updates the gauge at the same
    request-time instant), burn the grant's sequence number, and land
    *done* at the charge's exact timestamp.  *done* must ``unseize(res)``
    and continue with the scalar stage's completion body.

    Pass *pool* for calibrated legs: LLC-occupying or RNG-drawing
    calibration keeps the stage on the scalar oracle
    (:func:`calibration_plain`).  Returns False when the stage must run
    scalar.
    """
    if not pool_ready(res):
        return False
    if pool is not None and not calibration_plain(pool):
        return False
    end = env.now + duration
    if not clear_span(env, end):
        return False
    seize(res)
    burn(env, 1)
    env.defer_at(end, done)
    return True


def touch_gauge(gauge, when):
    """Replay a zero-width release/re-grant pair at time *when*.

    The scalar chain releases and immediately re-acquires its slot at
    every stage boundary; the net gauge effect of that pair is exactly
    one area accrual at the pre-dip value — replayed here with the same
    float operations so ``_area``/``_last_change`` stay bit-identical.
    """
    gauge._area += gauge._value * (when - gauge._last_change)
    gauge._last_change = when
