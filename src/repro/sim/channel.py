"""The unified data-movement hop (DESIGN.md §4.7).

Every message-moving path in the model — wire links, the RDMA engine
pipe, PCIe link directions, mqueue rings, doorbell mailboxes, the
GPU-centric work rings — is an instance of one :class:`Channel`
primitive: a bounded FIFO with an optional cost model (serialized issue
slot, bandwidth occupancy, fixed latency), credit-based producer
accounting for backpressure, batch dequeue, and uniform trace emission.

Performance contract: a Channel with tracing disabled inherits the
:class:`~.store.Store` fast paths untouched — ``put``/``get``/
``try_put``/``try_get`` are the exact same bound methods, so the data
plane pays nothing for the abstraction.  When the environment's tracer
is enabled at construction time, the four methods are shadowed by
traced variants **on the instance**, which keeps the tracing branch out
of the default path entirely.  Trace emission never schedules events,
so enabling tracing cannot perturb simulated results.

Determinism contract: every cost helper consumes exactly the schedule
slots of the open-coded sequences it replaced (issue request → charge
occupancy → release → charge latency), so refactoring a component onto
a Channel leaves fixed-seed results bit-identical.
"""

from collections import deque

from ..errors import CapacityError, SimulationError
from .batchexec import burn, clear_span, ring_plain
from .events import Event
from .resources import Resource
from .store import Store


def _msg_id(item):
    """Best-effort message id of a queued item (for the trace schema)."""
    mid = getattr(item, "msg_id", None)
    if mid is not None:
        return mid
    msg = getattr(item, "request_msg", None)
    if msg is not None:
        return msg.msg_id
    return None


class Channel(Store):
    """One typed hop between two components.

    Parameters
    ----------
    capacity:
        Bounded FIFO depth (ring entries); default unbounded.
    latency:
        Fixed traversal latency of the hop, charged by :meth:`push`
        (fire-and-forget) or after the occupancy leg in :meth:`transfer`.
    bandwidth:
        Bytes/us used to derive per-transfer occupancy; ``None`` means
        occupancy is just ``min_occupancy``.
    min_occupancy:
        Floor on the occupancy of one transfer (e.g. an engine's issue
        gap, an AFU's admission interval).
    serialized:
        When True the channel owns an ``issue`` :class:`Resource` of
        capacity one: transfers hold it for their occupancy, modelling
        a serializing pipe (NIC TX serializer, RDMA engine, PCIe
        direction).
    sink:
        Where :meth:`push` lands items after ``latency`` (any Store-like
        with ``try_put``); defaults to this channel's own buffer.
    """

    def __init__(self, env, name=None, capacity=float("inf"), latency=0.0,
                 bandwidth=None, min_occupancy=0.0, serialized=False,
                 sink=None):
        Store.__init__(self, env, capacity, name or "chan")
        self.latency = latency
        self.bandwidth = bandwidth
        self.min_occupancy = min_occupancy
        self.issue = (Resource(env, 1, name="%s-issue" % self.name)
                      if serialized else None)
        self._sink = sink if sink is not None else self
        #: the environment's landing table (wheel backend; None on the
        #: heap) — cached here so _push_staged() skips an attribute hop
        self._landing = env._landing
        # Adaptive staging (wheel backend): channels whose batches never
        # coalesce pay the table's bookkeeping for nothing, so after
        # enough consecutive single-message batches with no burst ever
        # seen, push falls back to the defer route.  The route choice
        # is observably identical either way (same sequence numbers,
        # same delivery order), so the heuristic cannot perturb results.
        self._stage_off = False
        self._stage_bursts = False
        self._solo_batches = 0
        if self._landing is not None:
            # Instance-level rebind: heap channels keep the class-level
            # push() untouched (no wheel bookkeeping on that hot path).
            self.push = self._push_staged
        #: items pushed but not yet landed; FIFO matches fire order
        #: because every push on one channel defers the same latency
        self._in_flight = deque()
        #: burst sizes of pending push_many() landings, FIFO with the
        #: same ordering argument as _in_flight
        self._burst_counts = deque()
        # Producer credits: slots claimed for transfers still in flight
        # plus items already buffered (the SNIC-side shadow-index view).
        self._claimed = 0
        #: high-water mark of the claim accounting (ring-depth peak);
        #: maintained on the claim paths only, so the put/get fast
        #: paths stay Store's untouched bound methods.
        self.claimed_peak = 0
        self._credit_waiters = deque()
        # Uniform per-hop statistics.
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.bytes_moved = 0
        tracer = getattr(env, "tracer", None)
        if tracer is not None and tracer.enabled:
            self._tracer = tracer
            self.put = self._traced_put
            self.get = self._traced_get
            self.try_put = self._traced_try_put
            self.try_get = self._traced_try_get
        else:
            self._tracer = None

    # -- cost model --------------------------------------------------------

    def occupancy(self, nbytes):
        """Serialization time of *nbytes* on this hop."""
        if self.bandwidth is None:
            return self.min_occupancy
        occ = nbytes / self.bandwidth
        return occ if occ > self.min_occupancy else self.min_occupancy

    def transfer(self, nbytes=0, occupancy=None, post_latency=None):
        """Generator: move *nbytes* across the hop.

        Claims the issue slot (if serialized), holds it for the
        occupancy, releases, then lets ``post_latency`` (default: the
        channel's fixed ``latency``) elapse in the pipeline — the exact
        event sequence of the open-coded RDMA/PCIe/NIC paths it
        replaces.  The caller decides where the item lands; this method
        models time and accounts bytes only.
        """
        if nbytes < 0:
            raise SimulationError("negative transfer size on %s" % self.name)
        if occupancy is None:
            occupancy = self.occupancy(nbytes)
        issue = self.issue
        if issue is not None:
            with issue.request() as req:
                yield req
                yield self.env.charge(occupancy)
        else:
            yield self.env.charge(occupancy)
        self.sent += 1
        self.bytes_moved += nbytes
        if self._tracer is not None:
            self._tracer.emit(self.name, "xfer", None, nbytes)
        latency = self.latency if post_latency is None else post_latency
        if latency:
            yield self.env.charge(latency)

    def push(self, item, nbytes=0):
        """Fire-and-forget: land *item* in the sink after the hop latency.

        Drop-tail on a full sink (the receiver counts nothing; the
        channel's ``dropped`` statistic does).

        On the wheel backend ``__init__`` rebinds ``push`` to
        :meth:`_push_staged`, which replaces the per-message ``defer``
        with a row in the environment's struct-of-arrays landing table
        (DESIGN.md §4.11).  Keeping the route choice out of this body
        leaves the heap backend's hot path free of wheel bookkeeping.
        """
        self.sent += 1
        self.bytes_moved += nbytes
        self._in_flight.append(item)
        self.env.defer(self.latency, self._land)

    def _push_staged(self, item, nbytes=0):
        """Wheel-backend ``push``: stage a landing-table row.

        Coalesces homogeneous bursts into vectorized deliveries with
        bit-identical observable order.  ``_stage_off`` is the adaptive
        bypass for channels whose batches never coalesce (set by the
        landing table itself); the defer route it falls back to is
        observably identical.
        """
        self.sent += 1
        self.bytes_moved += nbytes
        self._in_flight.append(item)
        if self._stage_off:
            self.env.defer(self.latency, self._land)
        else:
            self._landing.stage(self, item, nbytes)

    def _land(self, _event):
        item = self._in_flight.popleft()
        if self._sink.try_put(item):
            self.delivered += 1
            if self._tracer is not None:
                self._tracer.emit(self.name, "deliver", _msg_id(item))
        else:
            self.dropped += 1
            if self._tracer is not None:
                self._tracer.emit(self.name, "drop", _msg_id(item))

    def push_many(self, items, nbytes=0):
        """Batched fire-and-forget: the burst rides ONE landing event.

        The vectorized traffic plane's injection path (DESIGN.md
        §4.13): where N ``push()`` calls cost N deferred landings plus
        N ``StorePut`` completions, a burst of N items here costs one
        deferred event, and when the sink is an idle plain FIFO (no
        parked getters/putters, no tracer, room for the whole burst)
        the landing is a single ``deque.extend``.  Any other sink state
        falls back to the per-item landing loop, which preserves
        ``push``'s exact drop-tail and getter-wake semantics item by
        item.  *nbytes* is the byte total of the whole burst.
        """
        count = len(items)
        if count == 0:
            return
        self.sent += count
        self.bytes_moved += nbytes
        self._in_flight.extend(items)
        self._burst_counts.append(count)
        self.env.defer(self.latency, self._land_many)

    def _land_many(self, _event):
        count = self._burst_counts.popleft()
        sink = self._sink
        stype = type(sink)
        # Bulk only into an untraced plain FIFO: subclasses overriding
        # the put path (PriorityStore ordering, traced instances) keep
        # their per-item semantics via the _land fallback.
        bulk_ok = (self._tracer is None
                   and stype._push_item is Store._push_item
                   and stype.try_put is Store.try_put
                   and sink.__dict__.get("try_put") is None)
        in_flight = self._in_flight
        land = self._land
        while count:
            if (bulk_ok and not sink._getters and not sink._putters
                    and len(sink._items) + count <= sink.capacity):
                if len(in_flight) == count:
                    sink._items.extend(in_flight)
                    in_flight.clear()
                else:
                    popleft = in_flight.popleft
                    sink._items.extend([popleft() for _ in range(count)])
                sink.total_put += count
                self.delivered += count
                return
            # Parked waiter, tight capacity, or a non-bulk sink: land
            # one item the classic way and re-check.
            land(_event)
            count -= 1

    # -- producer credits (backpressure) -----------------------------------

    @property
    def claimed(self):
        """Slots claimed by producers (in flight + buffered)."""
        return self._claimed

    def try_claim(self):
        """Reserve one slot for an in-flight transfer; False when full."""
        claimed = self._claimed
        if claimed >= self.capacity:
            return False
        claimed += 1
        self._claimed = claimed
        if claimed > self.claimed_peak:
            self.claimed_peak = claimed
        return True

    def claim_wait(self):
        """Event: fires holding one credit, once a slot is available.

        This is the credit-based backpressure signal: a producer that
        would overflow parks on this event instead of dropping, and is
        woken (credit in hand) when a consumer frees a slot.
        """
        event = Event(self.env)
        claimed = self._claimed
        if claimed < self.capacity:
            claimed += 1
            self._claimed = claimed
            if claimed > self.claimed_peak:
                self.claimed_peak = claimed
            event.succeed()
        else:
            self._credit_waiters.append(event)
        return event

    def release_claim(self):
        """Return one credit (consumer freed a slot, or claim expired)."""
        if self._claimed <= 0:
            raise CapacityError("releasing an unclaimed slot on %s"
                                % self.name)
        waiters = self._credit_waiters
        while waiters:
            waiter = waiters.popleft()
            if not waiter.triggered:
                # Hand the freed credit straight to the parked producer.
                waiter.succeed()
                return
        self._claimed -= 1

    def abort_claim(self):
        """Alias of :meth:`release_claim` for a failed delivery."""
        self.release_claim()

    def complete_claim(self, item):
        """Finish a claimed in-flight transfer: *item* becomes visible.

        The put cannot block — claim accounting guarantees space.
        """
        if self._claimed <= 0:
            raise CapacityError("completing an unclaimed slot on %s"
                                % self.name)
        self.delivered += 1
        put = Store.put(self, item)
        if not put.triggered:
            raise CapacityError("overflow on %s despite claim" % self.name)
        if self._tracer is not None:
            self._tracer.emit(self.name, "enq", _msg_id(item))
        return put

    # -- batch dequeue -----------------------------------------------------

    def recv_batch(self, max_items=0):
        """Drain up to *max_items* immediately-available items (0 = all).

        Bulk fast path: with no parked putters and no tracer,
        ``try_get`` reduces to one ``popleft`` — no events, no counters
        — so the whole drain is a single list copy.  The per-item loop
        remains for traced channels (per-item ``deq`` records) and for
        bounded channels with parked putters (each pop admits one).
        """
        items = self._items
        if items and not self._putters and self._tracer is None:
            if max_items <= 0 or max_items >= len(items):
                out = list(items)
                items.clear()
            else:
                popleft = items.popleft
                out = [popleft() for _ in range(max_items)]
            return out
        out = []
        try_get = self.try_get
        while max_items <= 0 or len(out) < max_items:
            item = try_get()
            if item is None:
                break
            out.append(item)
        return out

    # -- frame handoff (DESIGN.md §4.14) -----------------------------------

    def frame_pop(self):
        """Inline pop in place of a ``get()`` event, when unobservable.

        A ``get()`` with an item already buffered resolves at the
        current instant anyway — pop + one resume event.  Under frame
        execution, when the ring is on the plain Store fast path (no
        tracer, no fault ``_land`` shadow, no parked waiters) and the
        clear-span guard holds at ``now``, the consumer can pop inline,
        burn the skipped resume's sequence number, and keep running.
        Returns the item, or ``None`` when the hop must stay scalar —
        callers fall back to ``yield self.get()`` (items are never
        ``None``; ``put`` rejects it).
        """
        env = self.env
        if (env.frame_exec and self._items
                and ring_plain(self)
                and clear_span(env, env.now)):
            burn(env, 1)
            return self._pop_item()
        return None

    def frame_push(self, item):
        """Inline buffered put in place of a ``put()`` event.

        The mirror of :meth:`frame_pop` for the producer side: a
        ``put`` into a ring with room and no parked consumer buffers
        the item and schedules one resume event.  Under the same
        guards the producer buffers inline (with the same
        ``total_put`` accounting) and burns the skipped sequence
        number.  Returns False when the hop must stay scalar —
        callers fall back to ``yield self.put(item)``.
        """
        env = self.env
        if (env.frame_exec
                and len(self._items) < self.capacity
                and ring_plain(self)
                and clear_span(env, env.now)):
            self._push_item(item)
            self.total_put += 1
            burn(env, 1)
            return True
        return False

    # -- traced method shadows (installed per instance when tracing) -------

    def _traced_put(self, item):
        self._tracer.emit(self.name, "enq", _msg_id(item))
        return Store.put(self, item)

    def _traced_get(self):
        get = Store.get(self)
        get.callbacks.append(
            lambda evt: self._tracer.emit(self.name, "deq", _msg_id(evt._value)))
        return get

    def _traced_try_put(self, item):
        ok = Store.try_put(self, item)
        self._tracer.emit(self.name, "enq" if ok else "drop", _msg_id(item))
        return ok

    def _traced_try_get(self):
        item = Store.try_get(self)
        if item is not None:
            self._tracer.emit(self.name, "deq", _msg_id(item))
        return item

    def __repr__(self):
        return "<Channel %s depth=%d claimed=%d sent=%d dropped=%d>" % (
            self.name, len(self._items), self._claimed, self.sent,
            self.dropped)
