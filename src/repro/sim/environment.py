"""The simulation environment: clock, schedule, and fast run loop.

The run loop is the single hottest function in the repository: every
simulated request costs tens of dispatched events, and the saturation
experiments (E04, E09, E11) push tens of millions of events per run.
The loop is therefore written for CPython throughput:

* the heap entry sequence number is a plain int (``self._eid``), not an
  ``itertools.count`` — and hot constructors bump it inline;
* the loop body has no per-event ``try/except``; ``while queue`` replaces
  catching ``IndexError`` per pop;
* pooled events (:class:`~.events.Charge`) are recycled right after
  their callbacks run, so fixed-latency charges allocate nothing in
  steady state;
* lightweight kernel counters (events processed, spawns, heap peak,
  wall-clock) are maintained as plain int bumps and surfaced through
  :meth:`kernel_stats` / :func:`kernel_totals`.

Determinism note: all fast-path primitives consume exactly one sequence
number per scheduled event, just like the plain primitives they replace,
so relative event order — and therefore every simulated result — is
unchanged for a fixed seed.
"""

import gc
import heapq
import os
from heapq import heappush
from time import perf_counter

from ..errors import SimulationError
from .. import telemetry
from .events import (
    Event, Timeout, Charge, Process, Task, NORMAL, URGENT, any_of, all_of,
)
from .trace import NullTracer

#: Max events/tasks kept on a free list (per environment).
_POOL_CAP = 4096

#: Counter keys accumulated across environments (see :func:`kernel_totals`),
#: surfaced through the telemetry registry as ``sim.kernel.<key>``.
_TOTAL_KEYS = (
    "events_processed", "processes_spawned", "tasks_spawned",
    "charges_created", "charges_reused", "requests_completed",
    "wall_seconds",
)

_PREFIX = "sim.kernel."

#: Scheduler backends selectable via :func:`make_environment` /
#: ``--sim-backend`` / ``$REPRO_SIM_BACKEND``.  ``heap`` is the classic
#: binary-heap schedule; ``wheel`` is the calendar-queue backend
#: (:class:`~repro.sim.wheel.WheelEnvironment`) with identical event
#: ordering (see DESIGN.md §4.11).
BACKENDS = ("heap", "wheel")

#: backend installed by :func:`configure_backend` (the CLI hook);
#: ``None`` defers to ``$REPRO_SIM_BACKEND``, then the heap default.
_configured_backend = None


def configure_backend(backend):
    """Install the process-wide scheduler backend (``None`` resets)."""
    global _configured_backend
    if backend is not None and backend not in BACKENDS:
        raise SimulationError("unknown sim backend %r (choose from %s)"
                              % (backend, "/".join(BACKENDS)))
    _configured_backend = backend


def active_backend():
    """The effective backend for environments built without an explicit
    choice: :func:`configure_backend`, then ``$REPRO_SIM_BACKEND``, then
    ``heap``.  An unknown env-var value falls back to ``heap`` rather
    than crashing every import site."""
    if _configured_backend is not None:
        return _configured_backend
    raw = os.environ.get("REPRO_SIM_BACKEND", "").strip().lower()
    if raw in BACKENDS:
        return raw
    return "heap"


def make_environment(initial_time=0.0, backend=None):
    """Build an :class:`Environment` with the selected scheduler backend.

    *backend* overrides the process-wide selection (see
    :func:`active_backend`).  Testbeds construct their kernel through
    this factory, so ``--sim-backend``/``$REPRO_SIM_BACKEND`` reach every
    experiment; direct ``Environment()`` calls keep the heap.
    """
    name = backend if backend is not None else active_backend()
    if name == "heap":
        env = Environment(initial_time)
    elif name == "wheel":
        from .wheel import WheelEnvironment
        env = WheelEnvironment(initial_time)
    else:
        raise SimulationError("unknown sim backend %r (choose from %s)"
                              % (name, "/".join(BACKENDS)))
    env.frame_exec = resolve_frame_exec(name)
    return env


def resolve_frame_exec(backend, configured=None):
    """Effective frame-execution setting for a *backend* environment.

    Precedence mirrors the backend knob: an explicit *configured*
    True/False (``SimConfig.frame_exec``) wins, then ``$REPRO_FRAME_EXEC``
    (``1``/``0``), then the backend default — on for the wheel fast
    path, off for heap golden runs.  Frame execution only coalesces
    scheduler events; fixed-seed simulated results are bit-identical
    either way (DESIGN.md §4.14).
    """
    if configured is not None:
        return bool(configured)
    raw = os.environ.get("REPRO_FRAME_EXEC", "").strip()
    if raw in ("1", "true", "on", "yes"):
        return True
    if raw in ("0", "false", "off", "no"):
        return False
    return backend == "wheel"


def kernel_totals():
    """Kernel counters summed over every environment run in this scope.

    Thin shim over the telemetry registry: per-run counters are flushed
    into ``sim.kernel.*`` instruments at the end of each
    ``Environment.run()``, so a CLI can report simulator throughput
    without holding references to the environments involved.  Keeps the
    historical plain-dict shape (counter keys + ``heap_peak`` +
    computed ``events_per_sec``).
    """
    reg = telemetry.registry()
    totals = {}
    for key in _TOTAL_KEYS:
        inst = reg.get(_PREFIX + key)
        totals[key] = inst.value if inst is not None else 0
    peak = reg.get(_PREFIX + "heap_peak")
    totals["heap_peak"] = peak.value if peak is not None else 0
    wall = totals["wall_seconds"]
    totals["events_per_sec"] = totals["events_processed"] / wall if wall > 0 else 0.0
    reqs = totals["requests_completed"]
    totals["events_per_request"] = (
        totals["events_processed"] / reqs if reqs > 0 else 0.0)
    totals["backend"] = active_backend()
    return totals


def reset_kernel_totals():
    """Zero the ``sim.kernel.*`` instruments in the current scope."""
    telemetry.registry().reset(prefix="sim.kernel")


def merge_kernel_totals(snapshot):
    """Fold a :func:`kernel_totals` dict into the current registry.

    Thin shim kept for callers holding legacy plain-dict snapshots; the
    sweep executor itself now merges full registry snapshots.  Counters
    add; ``heap_peak`` takes the max; ``wall_seconds`` therefore sums
    *worker CPU seconds*, not elapsed time, when merging across
    processes.
    """
    reg = telemetry.registry()
    for key in _TOTAL_KEYS:
        reg.counter(_PREFIX + key).inc(snapshot.get(key, 0))
    reg.peak(_PREFIX + "heap_peak").record(snapshot.get("heap_peak", 0))


class EmptySchedule(Exception):
    """Internal: the event queue ran dry."""


class Environment:
    """Execution environment for a single simulation.

    Holds the simulated clock (``now``, in microseconds) and the pending
    event schedule.  All model objects keep a reference to their
    environment and create events through it.
    """

    POOL_CAP = _POOL_CAP

    #: scheduler backend name (subclasses override; see make_environment)
    backend = "heap"

    #: frame-native execution of the data-plane hot loops (see
    #: repro.sim.batchexec and DESIGN.md §4.14).  Class default keeps
    #: direct ``Environment()`` construction on the scalar oracle;
    #: :func:`make_environment` and testbeds resolve the effective
    #: setting via :func:`resolve_frame_exec`.
    frame_exec = False

    def __init__(self, initial_time=0.0):
        self.now = float(initial_time)
        # The shared trigger sites (Event.succeed, Store completions,
        # Resource grants) heappush ``(time, priority, eid, event)``
        # entries straight onto ``_queue``.  The wheel backend aliases
        # ``_queue`` to its live heap — trigger sites always push at
        # ``now``, which is exactly the live heap's domain — so those
        # hot paths stay byte-identical across backends.
        self._queue = []
        #: vectorized Channel landing table (wheel backend only; see
        #: repro.sim.landing) — ``None`` keeps Channel.push on defer()
        self._landing = None
        self._eid = 0
        self._active_process = None
        self._charge_pool = []
        self._task_pool = []
        self._immediate_event = None
        #: the environment-wide tracer Channels snapshot at construction
        #: (testbeds install a real Tracer here before building hardware)
        self.tracer = NullTracer()
        # Kernel counters (cheap plain-int bumps; see kernel_stats()).
        self.events_processed = 0
        self.processes_spawned = 0
        self.tasks_spawned = 0
        self.charges_created = 0
        self.charges_reused = 0
        #: completed request/response exchanges, bumped by the servers
        #: at response-to-wire time; feeds ``events_per_request``.
        self.requests_completed = 0
        self.heap_peak = 0
        self.wall_seconds = 0.0
        self._flushed = {key: 0 for key in _TOTAL_KEYS}

    # -- event construction ------------------------------------------------

    def event(self):
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create an event that fires *delay* microseconds from now.

        Use this whenever the event may be stored, raced in a condition,
        or observed after it fires (e.g. request expiry timers).  For a
        plain "charge N microseconds and move on" stage, prefer
        :meth:`charge`, which recycles the event object.
        """
        return Timeout(self, delay, value)

    def charge(self, delay, value=None):
        """A pooled timeout for immediate, one-shot consumption.

        Semantics are identical to :meth:`timeout` — same priority, same
        sequence-number consumption, so event ordering is unchanged — but
        the event object comes from a free list and is recycled by the
        kernel right after its callbacks run.  The caller must yield it
        immediately and exactly once, and must never store it, re-yield
        it, or place it in a condition.
        """
        if delay < 0:
            raise SimulationError("negative charge delay: %r" % delay)
        pool = self._charge_pool
        if pool:
            event = pool.pop()
            event._value = value
            event.delay = delay
            self.charges_reused += 1
        else:
            event = Charge(self, delay, value)
            self.charges_created += 1
        eid = self._eid
        self._eid = eid + 1
        heappush(self._queue, (self.now + delay, NORMAL, eid, event))
        return event

    def defer(self, delay, callback, priority=NORMAL):
        """Invoke *callback(event)* after *delay*, via a pooled event.

        The callback-driven twin of :meth:`charge`, for state machines
        that advance on plain callbacks instead of generator resumption.
        """
        if delay < 0:
            raise SimulationError("negative defer delay: %r" % delay)
        pool = self._charge_pool
        if pool:
            event = pool.pop()
            event._value = None
            event.delay = delay
            self.charges_reused += 1
        else:
            event = Charge(self, delay, None)
            self.charges_created += 1
        event.callbacks.append(callback)
        eid = self._eid
        self._eid = eid + 1
        heappush(self._queue, (self.now + delay, priority, eid, event))
        return event

    def defer_at(self, when, callback, priority=NORMAL):
        """Invoke *callback(event)* at absolute simulated time *when*.

        The absolute-time twin of :meth:`defer`, for frame execution
        (:mod:`repro.sim.batchexec`): a coalesced span must complete at
        the exact float timestamp the scalar chain's sequential
        additions produce, and ``defer(when - now)`` cannot guarantee
        that — ``now + (when - now)`` need not round back to ``when``.
        """
        if when < self.now:
            raise SimulationError("defer_at into the past: %r" % when)
        pool = self._charge_pool
        if pool:
            event = pool.pop()
            event._value = None
            event.delay = when - self.now
            self.charges_reused += 1
        else:
            event = Charge(self, when - self.now, None)
            self.charges_created += 1
        event.callbacks.append(callback)
        eid = self._eid
        self._eid = eid + 1
        heappush(self._queue, (when, priority, eid, event))
        return event

    def _kick(self, callback):
        """Schedule *callback* URGENTly at the current time (pooled).

        This is the zero-allocation replacement for the ``Initialize``
        event that used to kick off every process: same timestamp, same
        URGENT priority, one sequence number — identical ordering.
        """
        pool = self._charge_pool
        if pool:
            event = pool.pop()
            event._value = None
            event.delay = 0.0
            self.charges_reused += 1
        else:
            event = Charge(self, 0.0, None)
            self.charges_created += 1
        event.callbacks.append(callback)
        eid = self._eid
        self._eid = eid + 1
        heappush(self._queue, (self.now, URGENT, eid, event))
        return event

    def immediate(self, value=None):
        """An already-processed event carrying *value*.

        Yielding it resumes the coroutine synchronously — the kernel
        schedules nothing and the clock does not advance.  The returned
        object is a per-environment singleton: yield it immediately and
        never store it.  (Do not substitute it for ``timeout(0)``, which
        *does* schedule and therefore orders against other events.)
        """
        event = self._immediate_event
        if event is None:
            event = Event(self)
            event.callbacks = None
            event._ok = True
            self._immediate_event = event
        event._value = value
        return event

    def process(self, generator, name=None):
        """Start *generator* as a new :class:`Process`."""
        return Process(self, generator, name=name)

    def detached(self, generator):
        """Run *generator* as a fire-and-forget task (no Process object).

        Use for data-plane fan-out where nobody yields on the result:
        the driver is pooled and no termination event is scheduled.  The
        task cannot be interrupted or waited on; an uncaught exception
        still crashes the simulation.  Ordering matches ``process()``
        exactly (one URGENT kick at the current time).
        """
        pool = self._task_pool
        task = pool.pop() if pool else Task(self)
        self.tasks_spawned += 1
        task._start(generator)

    def any_of(self, events):
        return any_of(self, events)

    def all_of(self, events):
        return all_of(self, events)

    @property
    def active_process(self):
        """The process currently being resumed (or None)."""
        return self._active_process

    # -- scheduling ----------------------------------------------------------

    def schedule(self, event, delay=0.0, priority=NORMAL):
        """Place *event* on the schedule *delay* microseconds from now."""
        eid = self._eid
        self._eid = eid + 1
        heappush(self._queue, (self.now + delay, priority, eid, event))

    def peek(self):
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self):
        """Process the next scheduled event (slow path; run() inlines this)."""
        try:
            when, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule()
        self.now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        self.events_processed += 1
        if event._pooled:
            callbacks.clear()
            event.callbacks = callbacks
            if len(self._charge_pool) < _POOL_CAP:
                self._charge_pool.append(event)
        elif not event._ok and not event._defused:
            # An unhandled failure terminates the simulation loudly.
            raise event._value

    def run(self, until=None):
        """Run the simulation.

        *until* may be ``None`` (run until the schedule drains), a number
        (run until that simulated time), or an :class:`Event` (run until it
        fires, returning its value).
        """
        stop_event = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
            else:
                horizon = float(until)
                if horizon < self.now:
                    raise SimulationError(
                        "cannot run until %s: already at %s" % (horizon, self.now))
                stop_event = self.event()
                stop_event._ok = True
                stop_event._value = None
                # URGENT so the clock stops before same-time model events run.
                self.schedule(stop_event, delay=horizon - self.now, priority=0)
            stop_event.callbacks.append(_StopSimulation.throw_in)

        queue = self._queue
        pop = heapq.heappop
        qsize = len
        charge_pool = self._charge_pool
        nprocessed = 0
        peak = self.heap_peak
        # Heap occupancy moves slowly relative to the event rate, so the
        # peak is sampled at entry and every 256 events rather than per
        # event — two len() calls per event (queue + pool) measurably
        # slow the loop at tens of millions of events per run.
        qlen = qsize(queue)
        if qlen > peak:
            peak = qlen
        # The hot loop churns through short-lived events, messages and
        # generator frames; generation-0 cycle collections add 5-15%
        # overhead for garbage that refcounting already reclaims.  The
        # few real cycles (process <-> generator frames) are collected
        # once tracking resumes after the run.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        started = perf_counter()
        try:
            while queue:
                when, _, _, event = pop(queue)
                self.now = when
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                nprocessed += 1
                if not nprocessed & 255:
                    qlen = qsize(queue)
                    if qlen > peak:
                        peak = qlen
                if event._pooled:
                    # Recycle: callbacks already ran; hand the (cleared)
                    # list back so the next charge() skips two allocations.
                    # The free list is trimmed to the cap on exit instead
                    # of checked per event.
                    callbacks.clear()
                    event.callbacks = callbacks
                    charge_pool.append(event)
                elif not event._ok and not event._defused:
                    # An unhandled failure terminates the simulation loudly.
                    raise event._value
            if stop_event is not None and not stop_event.triggered:
                raise SimulationError(
                    "run() condition %r never fired; schedule is empty" % stop_event)
            return None
        except _StopSimulation as stop:
            return stop.args[0]
        finally:
            self.wall_seconds += perf_counter() - started
            if gc_was_enabled:
                gc.enable()
            del charge_pool[_POOL_CAP:]
            self.events_processed += nprocessed
            self.heap_peak = peak
            self._flush_totals()

    # -- instrumentation -----------------------------------------------------

    def kernel_stats(self):
        """Kernel throughput counters for this environment.

        ``events_per_sec`` divides events processed inside ``run()`` by
        the wall-clock seconds spent there, so it measures the simulator
        itself, not the model.
        """
        wall = self.wall_seconds
        reqs = self.requests_completed
        return {
            "backend": self.backend,
            "frame_exec": self.frame_exec,
            "events_processed": self.events_processed,
            "processes_spawned": self.processes_spawned,
            "tasks_spawned": self.tasks_spawned,
            "charges_created": self.charges_created,
            "charges_reused": self.charges_reused,
            "requests_completed": reqs,
            "charge_pool_size": len(self._charge_pool),
            "heap_peak": self.heap_peak,
            "wall_seconds": wall,
            "events_per_sec": self.events_processed / wall if wall > 0 else 0.0,
            "events_per_request": self.events_processed / reqs if reqs > 0 else 0.0,
        }

    def _flush_totals(self):
        """Fold this environment's counter deltas into the current
        telemetry registry (``sim.kernel.*``).

        Deltas, not absolutes: ``run()`` may be called many times per
        environment, and an environment may outlive a registry scope —
        each flush credits only what accrued since the previous one to
        whichever scope is active now.
        """
        reg = telemetry.registry()
        flushed = self._flushed
        for key in _TOTAL_KEYS:
            value = getattr(self, key)
            delta = value - flushed[key]
            if delta:
                reg.counter(_PREFIX + key).inc(delta)
                flushed[key] = value
        reg.peak(_PREFIX + "heap_peak").record(self.heap_peak)
        # Derived: events per completed request (the frame-execution
        # figure of merit, DESIGN.md §4.14).  A ratio instrument, not a
        # counter: the operands merge across workers and scopes, the
        # ratio recomputes from them at snapshot time.
        reg.ratio(_PREFIX + "events_per_request",
                  _PREFIX + "events_processed",
                  _PREFIX + "requests_completed")


class _StopSimulation(Exception):
    """Internal control-flow exception ending :meth:`Environment.run`."""

    @classmethod
    def throw_in(cls, event):
        if not event._ok:
            event._defused = True
            raise event._value
        raise cls(event._value)
