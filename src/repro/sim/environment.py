"""The simulation environment: clock, schedule, and run loop."""

import heapq
from itertools import count

from ..errors import SimulationError
from .events import Event, Timeout, Process, NORMAL, any_of, all_of


class EmptySchedule(Exception):
    """Internal: the event queue ran dry."""


class Environment:
    """Execution environment for a single simulation.

    Holds the simulated clock (``now``, in microseconds) and the pending
    event schedule.  All model objects keep a reference to their
    environment and create events through it.
    """

    def __init__(self, initial_time=0.0):
        self.now = float(initial_time)
        self._queue = []
        self._eid = count()
        self._active_process = None

    # -- event construction ------------------------------------------------

    def event(self):
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create an event that fires *delay* microseconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator, name=None):
        """Start *generator* as a new :class:`Process`."""
        return Process(self, generator, name=name)

    def any_of(self, events):
        return any_of(self, events)

    def all_of(self, events):
        return all_of(self, events)

    @property
    def active_process(self):
        """The process currently being resumed (or None)."""
        return self._active_process

    # -- scheduling ----------------------------------------------------------

    def schedule(self, event, delay=0.0, priority=NORMAL):
        """Place *event* on the schedule *delay* microseconds from now."""
        heapq.heappush(
            self._queue, (self.now + delay, priority, next(self._eid), event))

    def peek(self):
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self):
        """Process the next scheduled event."""
        try:
            when, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule()
        self.now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # An unhandled failure terminates the simulation loudly.
            exc = event._value
            raise exc

    def run(self, until=None):
        """Run the simulation.

        *until* may be ``None`` (run until the schedule drains), a number
        (run until that simulated time), or an :class:`Event` (run until it
        fires, returning its value).
        """
        stop_event = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
            else:
                horizon = float(until)
                if horizon < self.now:
                    raise SimulationError(
                        "cannot run until %s: already at %s" % (horizon, self.now))
                stop_event = self.event()
                stop_event._ok = True
                stop_event._value = None
                # URGENT so the clock stops before same-time model events run.
                self.schedule(stop_event, delay=horizon - self.now, priority=0)
            stop_event.callbacks.append(_StopSimulation.throw_in)
        try:
            while True:
                self.step()
        except _StopSimulation as stop:
            return stop.args[0]
        except EmptySchedule:
            if stop_event is not None and not stop_event.triggered:
                raise SimulationError(
                    "run() condition %r never fired; schedule is empty" % stop_event)
            return None


class _StopSimulation(Exception):
    """Internal control-flow exception ending :meth:`Environment.run`."""

    @classmethod
    def throw_in(cls, event):
        if not event._ok:
            event._defused = True
            raise event._value
        raise cls(event._value)
