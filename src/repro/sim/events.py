"""Core event types for the discrete-event simulation kernel.

The kernel follows the classic coroutine DES structure (SimPy-style):
processes are Python generators that ``yield`` :class:`Event` objects and
are resumed when those events fire.  An event is *triggered* once a value
(or failure) has been assigned and it has been placed on the environment's
schedule; it is *processed* once its callbacks have run.

Hot-path design (see DESIGN.md, "Performance of the simulator itself"):

* :class:`Charge` is a pooled :class:`Timeout` recycled by the run loop
  after its callbacks fire.  Fixed-cost stages (core pools, RDMA engine,
  iolib, network hops) charge microseconds through
  ``Environment.charge()`` without allocating a fresh event per charge.
* :class:`Task` drives a fire-and-forget generator with none of the
  :class:`Process` bookkeeping: no process event, no termination event
  on the schedule, and the driver object itself is pooled.  Data-plane
  fan-out (per-message deliveries, responses, watchdogs) uses
  ``Environment.detached()``.

Both keep the event *ordering* of their unpooled equivalents, so a fixed
seed produces bit-identical results.
"""

from heapq import heappush

from ..errors import SimulationError

#: Sentinel for "no value assigned yet".
PENDING = object()

#: Scheduling priorities.  Lower sorts first at equal timestamps.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence that processes can wait on.

    Events carry a value (delivered to every waiter) or an exception.
    They may be triggered at most once.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    #: class-level flag: pooled events are recycled by the run loop after
    #: their callbacks fire (only :class:`Charge` sets this).
    _pooled = False

    def __init__(self, env):
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False

    @property
    def triggered(self):
        """True once the event has been scheduled to fire."""
        return self._value is not PENDING

    @property
    def processed(self):
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self):
        """True if the event succeeded (only meaningful once triggered)."""
        return bool(self._ok)

    @property
    def value(self):
        if self._value is PENDING:
            raise SimulationError("value of untriggered event is not available")
        return self._value

    def succeed(self, value=None, priority=NORMAL):
        """Trigger the event successfully, delivering *value* to waiters."""
        if self._value is not PENDING:
            raise SimulationError("event %r has already been triggered" % self)
        self._ok = True
        self._value = value
        env = self.env
        eid = env._eid
        env._eid = eid + 1
        heappush(env._queue, (env.now, priority, eid, self))
        return self

    def fail(self, exception, priority=NORMAL):
        """Trigger the event with an exception, thrown into waiters."""
        if self._value is not PENDING:
            raise SimulationError("event %r has already been triggered" % self)
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self, delay=0, priority=priority)
        return self

    def defuse(self):
        """Mark a failed event as handled so the kernel does not re-raise."""
        self._defused = True

    def __repr__(self):
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return "<%s %s at %#x>" % (type(self).__name__, state, id(self))


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env, delay, value=None):
        if delay < 0:
            raise SimulationError("negative timeout delay: %r" % delay)
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env.schedule(self, delay=delay)


class Charge(Timeout):
    """A pooled :class:`Timeout` recycled by the kernel after it fires.

    Created only via ``Environment.charge()`` / ``Environment.defer()``.
    Pooling contract: a Charge must be yielded (or given its callbacks)
    immediately and exactly once, and must never be stored, re-yielded,
    or combined into a condition — after its callbacks run, the kernel
    reuses the object for a future charge.
    """

    __slots__ = ()

    _pooled = True

    def __init__(self, env, delay, value=None):
        # Does NOT self-schedule: the environment pushes it with the
        # right priority (URGENT for kicks, NORMAL for charges).
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay


class Initialize(Event):
    """Internal: kicks off a freshly created :class:`Process`.

    Retained for API compatibility; the kernel now uses pooled kick
    events (``Environment._kick``) instead.
    """

    __slots__ = ()

    def __init__(self, env, process):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, delay=0, priority=URGENT)


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting party supplies an arbitrary *cause* (e.g. a failure
    description) available via :attr:`cause`.
    """

    @property
    def cause(self):
        return self.args[0] if self.args else None


class _InterruptEvent(Event):
    """Internal: delivery vehicle for :meth:`Process.interrupt`."""

    __slots__ = ()

    def __init__(self, env, process, cause):
        super().__init__(env)
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks.append(process._resume)
        env.schedule(self, delay=0, priority=URGENT)


class Process(Event):
    """A running coroutine.  Also an event that fires when it terminates.

    The process's return value (``return x`` inside the generator) becomes
    the event value; an uncaught exception fails the event.
    """

    __slots__ = ("_generator", "_target", "_name")

    def __init__(self, env, generator, name=None):
        if not hasattr(generator, "send"):
            raise SimulationError("process requires a generator, got %r" % (generator,))
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self._generator = generator
        self._target = None
        self._name = name
        env.processes_spawned += 1
        env._kick(self._resume)

    @property
    def name(self):
        # Resolved lazily: formatting a name per spawn is pure overhead
        # on the hot path, and most processes are never printed.
        return self._name or getattr(self._generator, "__name__", "process")

    @property
    def is_alive(self):
        return self._value is PENDING

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._value is not PENDING:
            raise SimulationError("cannot interrupt dead process %r" % self)
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None
        _InterruptEvent(self.env, self, cause)

    def _resume(self, event):
        """Advance the generator with the outcome of *event*."""
        env = self.env
        generator = self._generator
        env._active_process = self
        while True:
            if event._ok:
                try:
                    target = generator.send(event._value)
                except StopIteration as exc:
                    self._target = None
                    self.succeed(getattr(exc, "value", None))
                    break
                except BaseException as exc:
                    self._target = None
                    self._fail_with(exc)
                    break
            else:
                event._defused = True
                try:
                    target = generator.throw(type(event._value)(*event._value.args))
                except StopIteration as exc:
                    self._target = None
                    self.succeed(getattr(exc, "value", None))
                    break
                except BaseException as exc:
                    self._target = None
                    self._fail_with(exc)
                    break

            if not isinstance(target, Event):
                exc = SimulationError(
                    "process %r yielded a non-event: %r" % (self.name, target))
                event = Event(env)
                event._ok = False
                event._value = exc
                event._defused = False
                continue
            if target.callbacks is not None:
                # Not yet processed: wait for it.
                target.callbacks.append(self._resume)
                self._target = target
                break
            # Already processed: feed its outcome straight back in.
            event = target
        env._active_process = None

    def _fail_with(self, exc):
        self._ok = False
        self._value = exc
        self.env.schedule(self, delay=0)


class Task:
    """Drives a fire-and-forget generator without Process bookkeeping.

    A Task is *not* an event: it cannot be yielded on, interrupted, or
    inspected, and it schedules no termination event when the generator
    finishes.  The driver object itself is pooled by the environment, so
    per-message spawns on the data plane cost one generator allocation
    and one pooled kick event.  Spawn via ``Environment.detached()``;
    use ``env.process()`` whenever the completion or result matters.

    An uncaught exception inside the generator still crashes the
    simulation loudly, exactly like a failed process with no waiters.
    """

    __slots__ = ("env", "_generator", "_target")

    def __init__(self, env):
        self.env = env
        self._generator = None
        self._target = None

    def _start(self, generator):
        self._generator = generator
        self.env._kick(self._step)

    def _step(self, event):
        env = self.env
        generator = self._generator
        env._active_process = self
        while True:
            if event._ok:
                try:
                    target = generator.send(event._value)
                except StopIteration:
                    self._finish(env)
                    break
                except BaseException as exc:
                    self._crash(env, exc)
                    break
            else:
                event._defused = True
                try:
                    target = generator.throw(type(event._value)(*event._value.args))
                except StopIteration:
                    self._finish(env)
                    break
                except BaseException as exc:
                    self._crash(env, exc)
                    break

            if not isinstance(target, Event):
                exc = SimulationError(
                    "detached task yielded a non-event: %r" % (target,))
                event = Event(env)
                event._ok = False
                event._value = exc
                event._defused = False
                continue
            if target.callbacks is not None:
                target.callbacks.append(self._step)
                self._target = target
                break
            event = target
        env._active_process = None

    def _finish(self, env):
        self._generator = None
        self._target = None
        pool = env._task_pool
        if len(pool) < env.POOL_CAP:
            pool.append(self)

    def _crash(self, env, exc):
        # Mirror an unhandled process failure: a non-defused failed event
        # on the schedule makes the run loop raise at dispatch time.
        self._generator = None
        self._target = None
        failure = Event(env)
        failure._ok = False
        failure._value = exc
        env.schedule(failure)


class Condition(Event):
    """Waits for a combination of events (all-of / any-of).

    The processed-child count is maintained incrementally (each child
    callback bumps ``_done`` once) instead of rescanning every child on
    every callback, so an N-event condition costs O(N), not O(N^2).
    """

    __slots__ = ("_events", "_evaluate", "_done")

    def __init__(self, env, evaluate, events):
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        for evt in self._events:
            if not isinstance(evt, Event):
                raise SimulationError("condition over non-event %r" % (evt,))
        # Children already processed at construction time are all visible
        # at once (nothing is dispatched during __init__), so they count
        # as a block before the first evaluation — matching a full scan.
        done = 0
        for evt in self._events:
            if evt.callbacks is None:
                done += 1
        self._done = done
        for evt in self._events:
            if evt.callbacks is None:  # already processed
                if self.triggered:
                    continue
                if not evt._ok:
                    evt._defused = True
                    self.fail(evt._value)
                elif self._evaluate(self._events, done):
                    self.succeed(self._collect())
            else:
                evt.callbacks.append(self._check)
        if not self.triggered and self._evaluate(self._events, self._done):
            self.succeed(self._collect())
        elif not self._events and not self.triggered:
            self.succeed({})

    def _check(self, event):
        if self.triggered:
            return
        self._done += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._done):
            self.succeed(self._collect())

    def _collect(self):
        # An event has *occurred* once its callbacks ran (callbacks is
        # None).  Timeout pre-assigns its value at construction, so
        # `triggered` alone would over-count.
        return {evt: evt._value for evt in self._events if evt.processed and evt._ok}


def all_of(env, events):
    """Condition that fires when every event in *events* has fired."""
    return Condition(env, lambda evts, done: done == len(evts), events)


def any_of(env, events):
    """Condition that fires when at least one event in *events* has fired."""
    return Condition(env, lambda evts, done: done > 0 or not evts, events)
