"""Core event types for the discrete-event simulation kernel.

The kernel follows the classic coroutine DES structure (SimPy-style):
processes are Python generators that ``yield`` :class:`Event` objects and
are resumed when those events fire.  An event is *triggered* once a value
(or failure) has been assigned and it has been placed on the environment's
schedule; it is *processed* once its callbacks have run.
"""

from ..errors import SimulationError

#: Sentinel for "no value assigned yet".
PENDING = object()

#: Scheduling priorities.  Lower sorts first at equal timestamps.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence that processes can wait on.

    Events carry a value (delivered to every waiter) or an exception.
    They may be triggered at most once.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env):
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False

    @property
    def triggered(self):
        """True once the event has been scheduled to fire."""
        return self._value is not PENDING

    @property
    def processed(self):
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self):
        """True if the event succeeded (only meaningful once triggered)."""
        return bool(self._ok)

    @property
    def value(self):
        if self._value is PENDING:
            raise SimulationError("value of untriggered event is not available")
        return self._value

    def succeed(self, value=None, priority=NORMAL):
        """Trigger the event successfully, delivering *value* to waiters."""
        if self._value is not PENDING:
            raise SimulationError("event %r has already been triggered" % self)
        self._ok = True
        self._value = value
        self.env.schedule(self, delay=0, priority=priority)
        return self

    def fail(self, exception, priority=NORMAL):
        """Trigger the event with an exception, thrown into waiters."""
        if self._value is not PENDING:
            raise SimulationError("event %r has already been triggered" % self)
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self, delay=0, priority=priority)
        return self

    def defuse(self):
        """Mark a failed event as handled so the kernel does not re-raise."""
        self._defused = True

    def __repr__(self):
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return "<%s %s at %#x>" % (type(self).__name__, state, id(self))


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env, delay, value=None):
        if delay < 0:
            raise SimulationError("negative timeout delay: %r" % delay)
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class Initialize(Event):
    """Internal: kicks off a freshly created :class:`Process`."""

    __slots__ = ()

    def __init__(self, env, process):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, delay=0, priority=URGENT)


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting party supplies an arbitrary *cause* (e.g. a failure
    description) available via :attr:`cause`.
    """

    @property
    def cause(self):
        return self.args[0] if self.args else None


class _InterruptEvent(Event):
    """Internal: delivery vehicle for :meth:`Process.interrupt`."""

    __slots__ = ()

    def __init__(self, env, process, cause):
        super().__init__(env)
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks.append(process._resume)
        env.schedule(self, delay=0, priority=URGENT)


class Process(Event):
    """A running coroutine.  Also an event that fires when it terminates.

    The process's return value (``return x`` inside the generator) becomes
    the event value; an uncaught exception fails the event.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env, generator, name=None):
        if not hasattr(generator, "send"):
            raise SimulationError("process requires a generator, got %r" % (generator,))
        super().__init__(env)
        self._generator = generator
        self._target = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self):
        return self._value is PENDING

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._value is not PENDING:
            raise SimulationError("cannot interrupt dead process %r" % self)
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None
        _InterruptEvent(self.env, self, cause)

    def _resume(self, event):
        """Advance the generator with the outcome of *event*."""
        env = self.env
        env._active_process = self
        while True:
            if event._ok:
                try:
                    target = self._generator.send(event._value)
                except StopIteration as exc:
                    self._target = None
                    self.succeed(getattr(exc, "value", None))
                    break
                except BaseException as exc:
                    self._target = None
                    self._fail_with(exc)
                    break
            else:
                event._defused = True
                try:
                    target = self._generator.throw(type(event._value)(*event._value.args))
                except StopIteration as exc:
                    self._target = None
                    self.succeed(getattr(exc, "value", None))
                    break
                except BaseException as exc:
                    self._target = None
                    self._fail_with(exc)
                    break

            if not isinstance(target, Event):
                exc = SimulationError(
                    "process %r yielded a non-event: %r" % (self.name, target))
                event = Event(env)
                event._ok = False
                event._value = exc
                event._defused = False
                continue
            if target.callbacks is not None:
                # Not yet processed: wait for it.
                target.callbacks.append(self._resume)
                self._target = target
                break
            # Already processed: feed its outcome straight back in.
            event = target
        env._active_process = None

    def _fail_with(self, exc):
        self._ok = False
        self._value = exc
        self.env.schedule(self, delay=0)


class Condition(Event):
    """Waits for a combination of events (all-of / any-of)."""

    __slots__ = ("_events", "_evaluate", "_remaining")

    def __init__(self, env, evaluate, events):
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._remaining = 0
        for evt in self._events:
            if not isinstance(evt, Event):
                raise SimulationError("condition over non-event %r" % (evt,))
        for evt in self._events:
            if evt.callbacks is None:  # already processed
                self._check(evt)
            else:
                self._remaining += 1
                evt.callbacks.append(self._check)
        if not self.triggered and self._evaluate(self._events, self._count_done()):
            self.succeed(self._collect())
        elif not self._events and not self.triggered:
            self.succeed({})

    def _count_done(self):
        # An event has *occurred* once its callbacks ran (callbacks is None).
        # Timeout pre-assigns its value at construction, so `triggered`
        # alone would over-count.
        return sum(1 for e in self._events if e.processed)

    def _check(self, event):
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        if self._evaluate(self._events, self._count_done()):
            self.succeed(self._collect())

    def _collect(self):
        return {evt: evt._value for evt in self._events if evt.processed and evt._ok}


def all_of(env, events):
    """Condition that fires when every event in *events* has fired."""
    return Condition(env, lambda evts, done: done == len(evts), events)


def any_of(env, events):
    """Condition that fires when at least one event in *events* has fired."""
    return Condition(env, lambda evts, done: done > 0 or not evts, events)
