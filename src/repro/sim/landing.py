"""Struct-of-arrays in-flight message table for vectorized Channel
landings (DESIGN.md §4.11, wheel backend only).

On the heap backend every ``Channel.push`` defers one pooled event per
message and ``_land`` delivers them one callback at a time.  The
:class:`LandingTable` replaces that per-message machinery with an
array-structured core:

* each pushed message becomes one row of the table — ``deadline``
  (landing time), ``chan`` (channel registry index), ``msg`` (message
  id when the item exposes one), ``nbytes`` (cost) — so in-flight state
  on the four data-movement planes (wire/NIC rings, RDMA, PCIe,
  mqueue/RMQ) is introspectable with vector sweeps
  (:meth:`in_flight_bytes`, :meth:`per_channel_counts`) instead of
  walking Python deques;
* rows are *staged* in a plain Python buffer on the push hot path and
  materialized into preallocated numpy columns in one vectorized slice
  assignment per delivery/introspection boundary — per-message numpy
  scalar stores cost more than the heap machinery they replace, while
  an amortized bulk convert costs a fraction of it;
* homogeneous bursts — consecutive pushes on the same channel at the
  same timestamp — coalesce into one *batch* delivered by a single
  flush entry, and fully idle batches (sink is the channel itself, no
  parked getters/putters, no tracer, no fault hook, capacity room)
  land as one bulk ``extend`` on the sink instead of per-message
  ``try_put`` calls.

Determinism contract (the part that keeps fixed-seed rows bit-identical
with the heap backend):

* every staged message consumes exactly one sequence number, exactly
  like the ``defer()`` it replaces;
* a batch only coalesces messages whose eids are *consecutive* and
  share a timestamp.  Consecutive eids at one (time, priority) are
  dispatched back-to-back by the heap — no other event can sort
  between them — so delivering all of them from the flush entry of the
  *first* eid is observably identical;
* a batch breaks whenever the channel's ``_land`` instance shadow
  changes (fault-injection hooks install/remove between pushes), and
  delivery calls the binding captured at stage time, matching the
  heap's bind-at-push ``defer(latency, self._land)``;
* the bulk landing path replaces k no-op ``StorePut`` completion events
  (``try_put`` discards the event, so no callback can ever observe
  them) by consuming the same k sequence numbers and crediting the same
  k processed events through one bare entry at the first eid;
* frame execution (DESIGN.md §4.14) stays sound above this table: an
  open batch always keeps its flush entry in the schedule at the
  batch's landing deadline, and later coalesced rows share that
  deadline, so ``Environment.peek`` never exceeds the earliest staged
  landing — the clear-span guard can never admit a turbo step across a
  pending landing it cannot see.

numpy is a hard dependency of the repo, but the table degrades
gracefully: when numpy is unavailable, :func:`numpy_available` is False
and the wheel environment keeps ``Channel.push`` on the defer path.
"""

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is baked into the image
    _np = None

from heapq import heappush

from .events import NORMAL


def numpy_available():
    return _np is not None


# batch list layout: [land_override, count, start_row]
_OVERRIDE, _COUNT, _START = 0, 1, 2

#: consecutive single-message batches before a burst-free channel is
#: routed back to the defer path (see :meth:`LandingTable._deliver`)
_SOLO_LIMIT = 16


class LandingTable:
    """Per-environment SoA table of in-flight Channel messages."""

    #: initial row capacity; doubles on demand
    INITIAL_ROWS = 1024

    def __init__(self, env):
        self.env = env
        n = self.INITIAL_ROWS
        self._deadline = _np.zeros(n, dtype=_np.float64)
        self._chan = _np.zeros(n, dtype=_np.int32)
        self._msg = _np.full(n, -1, dtype=_np.int64)
        self._nbytes = _np.zeros(n, dtype=_np.int64)
        self._dead = _np.ones(n, dtype=bool)
        self._head = 0
        #: rows [0, _mat_tail) live in the numpy columns; rows past it
        #: sit in the _staged python buffer (logical row numbers are
        #: contiguous across both, so batch start indices stay valid)
        self._mat_tail = 0
        self._staged = []        # [(deadline, cid, msg_id, nbytes), ...]
        self._channels = []      # registry index -> channel
        self._chan_ids = {}      # channel -> registry index
        # open-batch coalescing state (deadline/cid cached at batch
        # open — every row of a batch shares them by construction).
        # ``_batch_chan is channel`` is the primary match key: closing
        # a batch nulls it, so no separate "is a batch open" test runs
        # on the hot path.
        self._batch = [None, 0, 0]
        self._batch_chan = None
        self._batch_when = -1.0
        self._batch_eid = -2
        self._batch_deadline = 0.0
        self._batch_cid = -1
        self._pending = {}       # id(batch) -> batch, for compaction fixups
        # counters (surfaced via WheelEnvironment.kernel_stats)
        self._staged_base = 0
        self.batches = 0
        self.vector_batches = 0
        self.vector_messages = 0

    # -- staging (Channel.push hot path) ------------------------------------

    def stage(self, channel, item, nbytes):
        """Record one pushed message; schedules a flush entry for the
        first message of each batch.  Consumes one sequence number, like
        the ``env.defer(latency, channel._land)`` it replaces."""
        env = self.env
        eid = env._eid
        env._eid = eid + 1
        if (self._batch_chan is channel and self._batch_eid == eid - 1
                and self._batch_when == env.now
                and channel.__dict__.get("_land") is self._batch[_OVERRIDE]):
            self._batch_eid = eid
            self._batch[_COUNT] += 1
        else:
            now = env.now
            cid = self._chan_ids.get(channel)
            if cid is None:
                cid = len(self._channels)
                self._channels.append(channel)
                self._chan_ids[channel] = cid
            deadline = now + channel.latency
            batch = [channel.__dict__.get("_land"), 1,
                     self._mat_tail + len(self._staged)]
            self._batch = batch
            self._batch_chan = channel
            self._batch_when = now
            self._batch_eid = eid
            self._batch_deadline = deadline
            self._batch_cid = cid
            self._pending[id(batch)] = batch
            self.batches += 1

            def _flush(_event, deliver=self._deliver, channel=channel,
                       batch=batch):
                deliver(channel, batch)

            env._insert((deadline, NORMAL, eid, None, _flush))
        mid = getattr(item, "msg_id", None)
        self._staged.append((self._batch_deadline, self._batch_cid,
                             mid if type(mid) is int else -1.0, nbytes))

    # -- materialization ----------------------------------------------------

    def _materialize(self):
        """Convert the staged python rows into numpy column segments —
        one bulk convert + five slice assignments, however many rows
        accumulated since the last boundary."""
        staged = self._staged
        if not staged:
            return
        k = len(staged)
        tail = self._mat_tail
        while tail + k > len(self._deadline):
            self._compact_or_grow()
            tail = self._mat_tail
        arr = _np.array(staged, dtype=_np.float64)
        end = tail + k
        self._deadline[tail:end] = arr[:, 0]
        self._chan[tail:end] = arr[:, 1]
        self._msg[tail:end] = arr[:, 2]
        self._nbytes[tail:end] = arr[:, 3]
        self._dead[tail:end] = False
        self._mat_tail = end
        self._staged_base += k
        del staged[:]

    # -- delivery -----------------------------------------------------------

    def _deliver(self, channel, batch):
        env = self.env
        count = batch[_COUNT]
        if batch is self._batch:
            self._batch_chan = None
        self._pending.pop(id(batch), None)
        # Adaptive bypass: a channel whose batches never coalesce gains
        # nothing from the table.  Once it has shown SOLO_LIMIT
        # consecutive single-message batches without a single burst,
        # route its future pushes straight to defer (see Channel.push).
        # Either route is observably identical, so flipping mid-run
        # cannot perturb fixed-seed results.
        if count > 1:
            channel._stage_bursts = True
            channel._solo_batches = 0
        elif not channel._stage_bursts:
            solo = channel._solo_batches + 1
            channel._solo_batches = solo
            if solo >= _SOLO_LIMIT:
                channel._stage_off = True
        if count > 1:
            # The flush entry itself counts as one processed event (the
            # run loop bumps it); credit the k-1 coalesced defers here.
            env.events_processed += count - 1
        override = batch[_OVERRIDE]
        if (override is None and channel._sink is channel
                and not channel._getters and not channel._putters
                and channel._tracer is None
                and len(channel._items) + count <= channel.capacity):
            # Bulk landing: k no-op StorePut completions collapse into
            # one credit entry at the same (time, first-eid) slot.
            in_flight = channel._in_flight
            items = channel._items
            if len(in_flight) == count:
                items.extend(in_flight)
                in_flight.clear()
            elif count == 1:
                items.append(in_flight.popleft())
            else:
                popleft = in_flight.popleft
                items.extend(popleft() for _ in range(count))
            channel.total_put += count
            channel.delivered += count
            eid = env._eid
            env._eid = eid + count

            def _credit(_event, env=env, n=count - 1):
                env.events_processed += n

            heappush(env._live, (env.now, NORMAL, eid, None, _credit))
            self.vector_batches += 1
            self.vector_messages += count
        else:
            tick = env._tick_event
            if override is None:
                land = type(channel)._land
                for _ in range(count):
                    land(channel, tick)
            else:
                for _ in range(count):
                    override(tick)
        # retire the batch's rows and advance past the dead prefix
        start = batch[_START]
        mat_tail = self._mat_tail
        staged = self._staged
        if start >= mat_tail and start - mat_tail + count == len(staged):
            # The batch's rows are exactly the staged tail — the common
            # stage/deliver/stage/deliver cadence — so retire them by
            # truncating the python buffer; numpy is never touched.
            del staged[start - mat_tail:]
            self._staged_base += count
            return
        if start + count > mat_tail:
            self._materialize()
        dead = self._dead
        dead[start:start + count] = True
        head = self._head
        mat_tail = self._mat_tail
        seg = dead[head:mat_tail]
        if seg.size:
            pos = int(_np.argmin(seg))
            if seg[pos]:
                self._reset_rows(mat_tail)
            else:
                self._head = head + pos
        else:
            self._reset_rows(mat_tail)

    def _reset_rows(self, shift):
        """Every materialized row is dead: restart the columns at zero.

        The staged buffer's logical base shifts down by *shift* with
        them, so pending batches follow.  (Safe: a pending batch's rows
        are never dead, so an all-dead materialized region means every
        pending batch lives entirely in the staged buffer.)"""
        self._head = self._mat_tail = 0
        if shift:
            for pending in self._pending.values():
                pending[_START] -= shift

    def _compact_or_grow(self):
        """Row store is full: drop the dead prefix in one vectorized
        copy when it pays, otherwise double the columns."""
        head, tail = self._head, self._mat_tail
        cols = ("_deadline", "_chan", "_msg", "_nbytes", "_dead")
        if head > len(self._deadline) // 2:
            n = tail - head
            for name in cols:
                col = getattr(self, name)
                col[:n] = col[head:tail]
            self._dead[n:] = True
            for batch in self._pending.values():
                batch[_START] -= head
            self._head = 0
            self._mat_tail = n
        else:
            for name in cols:
                col = getattr(self, name)
                fill = True if name == "_dead" else (-1 if name == "_msg" else 0)
                grown = _np.full(len(col) * 2, fill, dtype=col.dtype)
                grown[:len(col)] = col
                setattr(self, name, grown)

    # -- vectorized introspection -------------------------------------------

    def _alive(self):
        self._materialize()
        return ~self._dead[self._head:self._mat_tail]

    def in_flight_count(self, channel=None):
        """Messages currently in flight (optionally on one channel)."""
        alive = self._alive()
        if channel is None:
            return int(alive.sum())
        cid = self._chan_ids.get(channel)
        if cid is None:
            return 0
        return int((alive
                    & (self._chan[self._head:self._mat_tail] == cid)).sum())

    def in_flight_bytes(self, channel=None):
        """Byte-sum of in-flight messages (one vectorized sweep)."""
        alive = self._alive()
        nbytes = self._nbytes[self._head:self._mat_tail]
        if channel is None:
            return int(nbytes[alive].sum())
        cid = self._chan_ids.get(channel)
        if cid is None:
            return 0
        return int(nbytes[alive
                          & (self._chan[self._head:self._mat_tail] == cid)].sum())

    def next_deadline(self):
        """Earliest landing time among in-flight messages (inf if none)."""
        alive = self._alive()
        if not alive.any():
            return float("inf")
        return float(self._deadline[self._head:self._mat_tail][alive].min())

    def per_channel_counts(self):
        """``{channel name: in-flight count}`` via one bincount sweep."""
        alive = self._alive()
        counts = _np.bincount(self._chan[self._head:self._mat_tail][alive],
                              minlength=len(self._channels))
        return {ch.name: int(c)
                for ch, c in zip(self._channels, counts) if c}

    @property
    def staged(self):
        """Total messages ever staged (materialized + buffered)."""
        return self._staged_base + len(self._staged)

    def stats(self):
        return {
            "staged": self.staged,
            "batches": self.batches,
            "vector_batches": self.vector_batches,
            "vector_messages": self.vector_messages,
            "in_flight": self.in_flight_count(),
            "rows": int(len(self._deadline)),
        }
