"""Counted resources with FIFO (or priority) waiter queues.

A :class:`Resource` models anything with limited concurrent capacity: a
CPU core pool, a DMA engine, a PCIe direction.  Processes acquire a slot
with ``yield resource.request()`` and must release it afterwards; the
request object doubles as a context manager::

    with resource.request() as req:
        yield req
        yield env.timeout(cost)

"""

import heapq
from heapq import heappush
from itertools import count

from ..errors import SimulationError
from .events import Event, NORMAL, PENDING
from .stats import TimeWeightedGauge


class Request(Event):
    """A pending (or granted) claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "priority", "_released")

    def __init__(self, resource, priority=0):
        # Inlined Event.__init__ — requests are data-plane hot.
        self.env = resource.env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self.resource = resource
        self.priority = priority
        self._released = False
        resource._do_request(self)

    def release(self):
        """Return the slot to the resource (idempotent)."""
        if not self._released:
            self._released = True
            self.resource._do_release(self)

    def cancel(self):
        """Withdraw an ungranted request (no-op if already granted)."""
        self.resource._cancel(self)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.release()
        return False


class Resource:
    """A pool of *capacity* identical slots with a FIFO waiter queue."""

    def __init__(self, env, capacity=1, name=None):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.name = name or "resource"
        self._in_use = 0
        self._waiters = []
        self._order = count()
        self.utilization = TimeWeightedGauge(env)
        self.queue_depth = TimeWeightedGauge(env)

    @property
    def in_use(self):
        return self._in_use

    @property
    def waiting(self):
        return len(self._waiters)

    def request(self, priority=0):
        """Create a claim; the returned event fires when a slot is granted."""
        return Request(self, priority)

    # Gauge updates below are inlined (see TimeWeightedGauge.set): the
    # request/grant/release cycle runs millions of times per saturation
    # run and the method-call overhead alone was measurable.

    def _do_request(self, req):
        if self._in_use < self.capacity and not self._waiters:
            self._grant(req)
        else:
            heapq.heappush(self._waiters, (req.priority, next(self._order), req))
            gauge = self.queue_depth
            value = len(self._waiters)
            if value != gauge._value:
                now = self.env.now
                gauge._area += gauge._value * (now - gauge._last_change)
                gauge._value = value
                gauge._last_change = now
                if value > gauge._max:
                    gauge._max = value

    def _grant(self, req):
        in_use = self._in_use + 1
        self._in_use = in_use
        gauge = self.utilization
        value = in_use / self.capacity
        if value != gauge._value:
            now = self.env.now
            gauge._area += gauge._value * (now - gauge._last_change)
            gauge._value = value
            gauge._last_change = now
            if value > gauge._max:
                gauge._max = value
        # Inlined req.succeed(req): a Request is only ever triggered
        # here (or failed by cancel), so the double-trigger guard is
        # redundant on this, the hottest resource path.
        req._ok = True
        req._value = req
        env = self.env
        eid = env._eid
        env._eid = eid + 1
        heappush(env._queue, (env.now, NORMAL, eid, req))

    def _do_release(self, req):
        if req._value is not PENDING:
            # Only granted requests hold a slot; releasing a request that
            # was still waiting (e.g. after an interrupt) frees nothing.
            self._in_use -= 1
        waiters = self._waiters
        while waiters and self._in_use < self.capacity:
            _, _, nxt = heapq.heappop(waiters)
            if nxt.triggered:  # cancelled entries are left triggered/failed
                continue
            self._grant(nxt)
        gauge = self.queue_depth
        value = len(waiters)
        if value != gauge._value:
            now = self.env.now
            gauge._area += gauge._value * (now - gauge._last_change)
            gauge._value = value
            gauge._last_change = now
            if value > gauge._max:
                gauge._max = value
        gauge = self.utilization
        value = self._in_use / self.capacity
        if value != gauge._value:
            now = self.env.now
            gauge._area += gauge._value * (now - gauge._last_change)
            gauge._value = value
            gauge._last_change = now
            if value > gauge._max:
                gauge._max = value

    def _cancel(self, req):
        if req.triggered:  # granted requests are always triggered
            return
        # Lazy deletion: mark by failing silently-defused; skipped on grant.
        self._waiters = [(p, o, r) for (p, o, r) in self._waiters if r is not req]
        heapq.heapify(self._waiters)
        self.queue_depth.set(len(self._waiters))

    def execute(self, duration, priority=0):
        """Convenience process: hold one slot for *duration* microseconds.

        Usage: ``yield from resource.execute(cost)`` inside a process.
        """
        req = Request(self, priority)
        try:
            yield req
            yield self.env.charge(duration)
        finally:
            req.release()

    def __repr__(self):
        return "<Resource %s %d/%d used, %d waiting>" % (
            self.name, self.in_use, self.capacity, self.waiting)
