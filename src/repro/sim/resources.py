"""Counted resources with FIFO (or priority) waiter queues.

A :class:`Resource` models anything with limited concurrent capacity: a
CPU core pool, a DMA engine, a PCIe direction.  Processes acquire a slot
with ``yield resource.request()`` and must release it afterwards; the
request object doubles as a context manager::

    with resource.request() as req:
        yield req
        yield env.timeout(cost)

"""

import heapq
from itertools import count

from ..errors import SimulationError
from .events import Event
from .stats import TimeWeightedGauge


class Request(Event):
    """A pending (or granted) claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "priority", "_released")

    def __init__(self, resource, priority=0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self._released = False
        resource._do_request(self)

    def release(self):
        """Return the slot to the resource (idempotent)."""
        if not self._released:
            self._released = True
            self.resource._do_release(self)

    def cancel(self):
        """Withdraw an ungranted request (no-op if already granted)."""
        self.resource._cancel(self)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.release()
        return False


class Resource:
    """A pool of *capacity* identical slots with a FIFO waiter queue."""

    def __init__(self, env, capacity=1, name=None):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.name = name or "resource"
        self._users = set()
        self._waiters = []
        self._order = count()
        self.utilization = TimeWeightedGauge(env)
        self.queue_depth = TimeWeightedGauge(env)

    @property
    def in_use(self):
        return len(self._users)

    @property
    def waiting(self):
        return len(self._waiters)

    def request(self, priority=0):
        """Create a claim; the returned event fires when a slot is granted."""
        return Request(self, priority)

    def _do_request(self, req):
        if len(self._users) < self.capacity and not self._waiters:
            self._grant(req)
        else:
            heapq.heappush(self._waiters, (req.priority, next(self._order), req))
            self.queue_depth.set(len(self._waiters))

    def _grant(self, req):
        self._users.add(req)
        self.utilization.set(len(self._users) / self.capacity)
        req.succeed(req)

    def _do_release(self, req):
        self._users.discard(req)
        while self._waiters and len(self._users) < self.capacity:
            _, _, nxt = heapq.heappop(self._waiters)
            if nxt.triggered:  # cancelled entries are left triggered/failed
                continue
            self._grant(nxt)
        self.queue_depth.set(len(self._waiters))
        self.utilization.set(len(self._users) / self.capacity)

    def _cancel(self, req):
        if req in self._users or req.triggered:
            return
        # Lazy deletion: mark by failing silently-defused; skipped on grant.
        self._waiters = [(p, o, r) for (p, o, r) in self._waiters if r is not req]
        heapq.heapify(self._waiters)
        self.queue_depth.set(len(self._waiters))

    def execute(self, duration, priority=0):
        """Convenience process: hold one slot for *duration* microseconds.

        Usage: ``yield from resource.execute(cost)`` inside a process.
        """
        with self.request(priority=priority) as req:
            yield req
            yield self.env.timeout(duration)

    def __repr__(self):
        return "<Resource %s %d/%d used, %d waiting>" % (
            self.name, self.in_use, self.capacity, self.waiting)
