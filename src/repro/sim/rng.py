"""Deterministic, per-component random streams.

Every stochastic model component asks the registry for a named stream.
Streams are derived from the root seed and the component name, so adding
a new component never perturbs the draws of existing ones — experiments
stay reproducible as the system grows.
"""

import zlib

import numpy as np


class RngRegistry:
    """Factory of independent ``numpy.random.Generator`` streams."""

    def __init__(self, seed=0):
        self.seed = int(seed)
        self._streams = {}

    def stream(self, name):
        """Return (creating on first use) the stream for *name*."""
        gen = self._streams.get(name)
        if gen is None:
            sub = zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF
            gen = np.random.default_rng(np.random.SeedSequence([self.seed, sub]))
            self._streams[name] = gen
        return gen

    def exponential(self, name, mean):
        """One draw from Exp(mean) on the named stream."""
        return float(self.stream(name).exponential(mean))

    def uniform(self, name, low, high):
        """One uniform draw on the named stream."""
        return float(self.stream(name).uniform(low, high))

    def lognormal(self, name, mean, sigma):
        """One lognormal draw on the named stream."""
        return float(self.stream(name).lognormal(mean, sigma))

    def integers(self, name, low, high):
        """One integer draw in [low, high) on the named stream."""
        return int(self.stream(name).integers(low, high))

    def choice(self, name, seq):
        """Pick one element of *seq* on the named stream."""
        idx = int(self.stream(name).integers(0, len(seq)))
        return seq[idx]
