"""Deterministic, per-component random streams.

Every stochastic model component asks the registry for a named stream.
Streams are derived from the root seed and the component name, so adding
a new component never perturbs the draws of existing ones — experiments
stay reproducible as the system grows.
"""

import zlib

import numpy as np


class RngRegistry:
    """Factory of independent ``numpy.random.Generator`` streams."""

    #: scalar draws prefetched per stream by :meth:`exponential`
    BLOCK = 512

    def __init__(self, seed=0):
        self.seed = int(seed)
        self._streams = {}
        self._exp_blocks = {}

    def stream(self, name):
        """Return (creating on first use) the stream for *name*."""
        gen = self._streams.get(name)
        if gen is None:
            sub = zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF
            gen = np.random.default_rng(np.random.SeedSequence([self.seed, sub]))
            self._streams[name] = gen
        return gen

    def exponential(self, name, mean):
        """One draw from Exp(mean) on the named stream.

        Standard-exponential variates are prefetched in blocks — numpy's
        ``exponential(scale)`` is ``standard_exponential() * scale`` draw
        for draw, so the values are bit-identical to unbatched scalar
        draws while the per-call cost drops to an index bump.  A stream
        consumed through this method must not also be consumed through
        the other draw methods (asserted there).
        """
        block = self._exp_blocks.get(name)
        if block is None or block[1] >= self.BLOCK:
            block = [self.stream(name).standard_exponential(self.BLOCK), 0]
            self._exp_blocks[name] = block
        idx = block[1]
        block[1] = idx + 1
        return float(block[0][idx] * mean)

    def uniform(self, name, low, high):
        """One uniform draw on the named stream."""
        assert name not in self._exp_blocks, \
            "stream %r is batch-consumed by exponential()" % name
        return float(self.stream(name).uniform(low, high))

    def lognormal(self, name, mean, sigma):
        """One lognormal draw on the named stream."""
        assert name not in self._exp_blocks, \
            "stream %r is batch-consumed by exponential()" % name
        return float(self.stream(name).lognormal(mean, sigma))

    def integers(self, name, low, high):
        """One integer draw in [low, high) on the named stream."""
        assert name not in self._exp_blocks, \
            "stream %r is batch-consumed by exponential()" % name
        return int(self.stream(name).integers(low, high))

    def choice(self, name, seq):
        """Pick one element of *seq* on the named stream."""
        assert name not in self._exp_blocks, \
            "stream %r is batch-consumed by exponential()" % name
        idx = int(self.stream(name).integers(0, len(seq)))
        return seq[idx]
