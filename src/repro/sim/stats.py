"""Measurement instruments.

All instruments support a *warmup* cut: samples recorded before
``reset(at_time)`` (or before the recorder's ``start`` argument) are
discarded, matching the paper's 2-second warmup methodology (§6).
"""

import math
from collections import defaultdict

import numpy as np


class LatencyRecorder:
    """Collects individual samples and reports exact percentiles."""

    def __init__(self, env, name=None):
        self.env = env
        self.name = name or "latency"
        self._samples = []

    def record(self, value):
        """Append one latency sample (us)."""
        self._samples.append(value)

    def reset(self):
        """Drop everything recorded so far (end of warmup)."""
        self._samples = []

    @property
    def count(self):
        """Number of samples recorded since the last reset."""
        return len(self._samples)

    @property
    def samples(self):
        """All samples as a float array."""
        return np.asarray(self._samples, dtype=float)

    def mean(self):
        """Arithmetic mean of the samples."""
        return float(np.mean(self._samples)) if self._samples else math.nan

    def percentile(self, q):
        """Exact q-th percentile (q in [0, 100])."""
        if not self._samples:
            return math.nan
        return float(np.percentile(self._samples, q))

    def p50(self):
        """Median latency."""
        return self.percentile(50)

    def p90(self):
        """90th percentile latency."""
        return self.percentile(90)

    def p99(self):
        """99th percentile latency."""
        return self.percentile(99)

    def max(self):
        """Largest sample."""
        return float(np.max(self._samples)) if self._samples else math.nan

    def min(self):
        """Smallest sample."""
        return float(np.min(self._samples)) if self._samples else math.nan

    def summary(self):
        """Dict of the statistics the paper reports."""
        return {
            "count": self.count,
            "mean": self.mean(),
            "p50": self.p50(),
            "p90": self.p90(),
            "p99": self.p99(),
            "min": self.min(),
            "max": self.max(),
        }


class RateMeter:
    """Counts events and reports a rate over the measured interval."""

    def __init__(self, env, name=None):
        self.env = env
        self.name = name or "rate"
        self.count = 0
        self._start = env.now

    def tick(self, n=1):
        """Count *n* events."""
        self.count += n

    def reset(self):
        """Restart the measurement window at the current time."""
        self.count = 0
        self._start = self.env.now

    @property
    def elapsed(self):
        """Time since the measurement window opened (us)."""
        return self.env.now - self._start

    def per_us(self):
        """Event rate per microsecond over the window."""
        if self.elapsed <= 0:
            return math.nan
        return self.count / self.elapsed

    def per_sec(self):
        """Event rate per second over the window."""
        return self.per_us() * 1e6


class TimeWeightedGauge:
    """Tracks a piecewise-constant value; reports its time-weighted mean."""

    def __init__(self, env, initial=0.0):
        self.env = env
        self._value = initial
        self._last_change = env.now
        self._area = 0.0
        self._start = env.now
        self._max = initial

    @property
    def value(self):
        """Current gauge value."""
        return self._value

    def set(self, value):
        """Change the gauge value at the current time."""
        if value == self._value:
            # No-op update: the running area accrues at the same rate
            # either way, so defer the accrual to the next real change.
            return
        now = self.env.now
        self._area += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now
        if value > self._max:
            self._max = value

    def reset(self):
        """Restart time-weighted accounting at the current value."""
        self._area = 0.0
        self._start = self.env.now
        self._last_change = self.env.now
        self._max = self._value

    def mean(self):
        """Time-weighted mean since the last reset."""
        now = self.env.now
        total = now - self._start
        if total <= 0:
            return self._value
        area = self._area + self._value * (now - self._last_change)
        return area / total

    def max(self):
        """Largest value seen since the last reset."""
        return self._max


class Counter:
    """A labelled monotonic counter bundle (e.g. per-message-type)."""

    def __init__(self):
        self._counts = defaultdict(int)

    def inc(self, label, n=1):
        """Increment *label* by *n*."""
        self._counts[label] += n

    def get(self, label):
        """Current count for *label* (0 if never incremented)."""
        return self._counts.get(label, 0)

    def as_dict(self):
        """Snapshot of all labelled counts."""
        return dict(self._counts)


def format_kernel_stats(stats):
    """Render a kernel counter block (see ``Environment.kernel_stats`` /
    ``sim.kernel_totals``) as an aligned, human-readable table."""
    lines = ["simulator kernel:"]
    total_charges = stats.get("charges_created", 0) + stats.get("charges_reused", 0)
    reuse = (100.0 * stats.get("charges_reused", 0) / total_charges
             if total_charges else 0.0)
    rows = [
        ("events processed", "{:,}".format(stats.get("events_processed", 0))),
        ("processes spawned", "{:,}".format(stats.get("processes_spawned", 0))),
        ("detached tasks", "{:,}".format(stats.get("tasks_spawned", 0))),
        ("pooled charges", "{:,} ({:.1f}% reused)".format(total_charges, reuse)),
        ("heap peak", "{:,}".format(stats.get("heap_peak", 0))),
        ("wall-clock in run()", "%.2f s" % stats.get("wall_seconds", 0.0)),
        ("events/sec", "{:,.0f}".format(stats.get("events_per_sec", 0.0))),
    ]
    width = max(len(label) for label, _ in rows)
    for label, value in rows:
        lines.append("  %-*s  %s" % (width, label, value))
    return "\n".join(lines)
