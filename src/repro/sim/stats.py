"""Measurement instruments bound to a simulation clock.

All instruments support a *warmup* cut: state recorded before
``reset(at_time)`` (or, for :class:`LatencyRecorder`, before its
``start`` argument) is discarded, matching the paper's 2-second warmup
methodology (§6).  ``at_time`` defaults to the environment's current
time; passing it explicitly restarts the measurement window at a chosen
simulated instant (e.g. a scheduled warmup boundary) even when the
reset itself runs slightly later.

Every instrument also speaks the telemetry protocol
(``kind``/``snapshot()``/``merge()``, DESIGN.md §4.9) so it can be
registered in the :mod:`repro.telemetry` registry and merged across
sweep workers.  Snapshots reduce to mergeable forms — a
:class:`LatencyRecorder` snapshots as a fixed-layout log-bucketed
histogram — while the live objects keep their exact-sample semantics.
"""

import math

import numpy as np

from ..telemetry import instruments as _ti
from ..telemetry.export import format_kernel_stats  # noqa: F401  (CLI shim)


class LatencyRecorder:
    """Collects individual samples and reports exact percentiles.

    ``start`` (optional) is the warmup cut: samples recorded while
    ``env.now < start`` are discarded by :meth:`record`.  (Hot paths
    that append to ``_samples`` directly — the client RX fast path —
    bypass the cut and rely on :meth:`reset` at the warmup boundary
    instead.)
    """

    kind = "histogram"

    def __init__(self, env, name=None, start=None):
        self.env = env
        self.name = name or "latency"
        self.start = start
        self._samples = []
        self._merged = None

    def record(self, value):
        """Append one latency sample (us); dropped before ``start``."""
        if self.start is not None and self.env.now < self.start:
            return
        self._samples.append(value)

    def record_many(self, values):
        """Bulk-append latency samples (us); all dropped before ``start``.

        The batched twin of :meth:`record` for vectorized producers
        (the population traffic plane records whole response batches in
        one call): the samples land in the same exact-sample list, so
        percentiles and snapshots are identical to repeated
        :meth:`record` calls.
        """
        if self.start is not None and self.env.now < self.start:
            return
        arr = np.asarray(values, dtype=float)
        if arr.size:
            self._samples.extend(arr.tolist())

    def reset(self, at_time=None):
        """Drop everything recorded so far (end of warmup).

        ``at_time`` moves the warmup cut: samples recorded before that
        simulated time (including future ones, if it lies ahead of the
        clock) are discarded as well.
        """
        self._samples = []
        self._merged = None
        if at_time is not None:
            self.start = at_time

    @property
    def count(self):
        """Number of samples recorded since the last reset."""
        return len(self._samples)

    @property
    def samples(self):
        """All samples as a float array."""
        return np.asarray(self._samples, dtype=float)

    def mean(self):
        """Arithmetic mean of the samples."""
        return float(np.mean(self._samples)) if self._samples else math.nan

    def percentile(self, q):
        """Exact q-th percentile (q in [0, 100])."""
        if not self._samples:
            return math.nan
        return float(np.percentile(self._samples, q))

    def p50(self):
        """Median latency."""
        return self.percentile(50)

    def p90(self):
        """90th percentile latency."""
        return self.percentile(90)

    def p99(self):
        """99th percentile latency."""
        return self.percentile(99)

    def max(self):
        """Largest sample."""
        return float(np.max(self._samples)) if self._samples else math.nan

    def min(self):
        """Smallest sample."""
        return float(np.min(self._samples)) if self._samples else math.nan

    def summary(self):
        """Dict of the statistics the paper reports."""
        return {
            "count": self.count,
            "mean": self.mean(),
            "p50": self.p50(),
            "p90": self.p90(),
            "p99": self.p99(),
            "min": self.min(),
            "max": self.max(),
        }

    def snapshot(self):
        """Mergeable form: the samples bucketed into a LogHistogram."""
        hist = _ti.LogHistogram()
        if self._samples:
            hist.record_many(self._samples)
        if self._merged is not None:
            hist.merge(self._merged.snapshot())
        return hist.snapshot()

    def merge(self, snap):
        """Fold a foreign histogram snapshot in (kept out of the exact
        local samples; it only surfaces through :meth:`snapshot`)."""
        if self._merged is None:
            self._merged = _ti.LogHistogram()
        self._merged.merge(snap)


class RateMeter:
    """Counts events and reports a rate over the measured interval."""

    kind = "rate"

    def __init__(self, env, name=None):
        self.env = env
        self.name = name or "rate"
        self.count = 0
        self._start = env.now
        self._merged_count = 0
        self._merged_elapsed = 0.0

    def tick(self, n=1):
        """Count *n* events."""
        self.count += n

    def reset(self, at_time=None):
        """Restart the measurement window (at ``at_time`` if given)."""
        self.count = 0
        self._start = self.env.now if at_time is None else at_time
        self._merged_count = 0
        self._merged_elapsed = 0.0

    @property
    def elapsed(self):
        """Time since the measurement window opened (us)."""
        return self.env.now - self._start

    def per_us(self):
        """Event rate per microsecond over the window."""
        if self.elapsed <= 0:
            return math.nan
        return self.count / self.elapsed

    def per_sec(self):
        """Event rate per second over the window."""
        return self.per_us() * 1e6

    def snapshot(self):
        return {"kind": "rate",
                "count": self.count + self._merged_count,
                "elapsed": self.elapsed + self._merged_elapsed}

    def merge(self, snap):
        """Fold a foreign rate snapshot in (surfaces only through
        :meth:`snapshot`; the live window stays untouched)."""
        self._merged_count += snap["count"]
        self._merged_elapsed += snap["elapsed"]


class TimeWeightedGauge(_ti.TimeWeightedGauge):
    """Tracks a piecewise-constant value; reports its time-weighted mean.

    The simulation-clock binding of the telemetry gauge: reads the
    environment's ``now``.  The internals (``_value``/``_area``/
    ``_last_change``/``_max``) are updated with inlined code by
    ``sim/resources.py`` on the hot path — keep the attribute names.
    """

    def __init__(self, env, initial=0.0):
        self.env = env
        super().__init__(clock=lambda: env.now, initial=initial)


class Counter(_ti.LabelledCounter):
    """A labelled monotonic counter bundle (e.g. per-message-type)."""
