"""Producer/consumer channels.

:class:`Store` is an (optionally bounded) FIFO of arbitrary items with
event-returning ``put``/``get``; :class:`PriorityStore` pops the smallest
item first.  These are the building blocks for NIC queues, dispatch
queues and mailbox-style notification between model components.
"""

import heapq
from collections import deque
from heapq import heappush
from itertools import count

from ..errors import SimulationError
from .events import Event, NORMAL, PENDING


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store, item):
        self.env = store.env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self.item = item
        store._do_put(self)


class StoreGet(Event):
    __slots__ = ()

    def __init__(self, store):
        self.env = store.env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        store._do_get(self)


class Store:
    """Unbounded-or-bounded FIFO channel of items."""

    def __init__(self, env, capacity=float("inf"), name=None):
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.name = name or "store"
        self._items = deque()
        self._getters = deque()
        self._putters = deque()
        self.total_put = 0

    def __len__(self):
        return len(self._items)

    @property
    def depth(self):
        """Current number of queued items."""
        return len(self._items)

    @property
    def items(self):
        """Read-only snapshot of queued items (for tests/inspection)."""
        return tuple(self._items)

    def put(self, item):
        """Enqueue *item*; the event fires once it is accepted."""
        return StorePut(self, item)

    def get(self):
        """Dequeue one item; the event fires with the item as value."""
        return StoreGet(self)

    def try_put(self, item):
        """Non-blocking put: True if accepted, False if the store is full.

        Used for drop-tail queues (NIC RX rings): the caller counts the
        drop instead of blocking.
        """
        if self._getters or len(self._items) < self.capacity:
            StorePut(self, item)
            return True
        return False

    def try_get(self):
        """Non-blocking pop: return an item or None."""
        if self._items:
            item = self._pop_item()
            self._wake_putter()
            return item
        return None

    def purge_waiters(self):
        """Withdraw every parked get and put (their events never fire).

        Fault-recovery hook: when a consumer dies mid-wait (accelerator
        crash), its parked ``StoreGet`` would otherwise silently swallow
        the next item put after the restart, and a parked ``StorePut``
        would inject a dead producer's item into the ring.  Returns
        ``(getters, putters)`` counts; consumes no schedule slots.
        """
        getters, putters = len(self._getters), len(self._putters)
        self._getters.clear()
        self._putters.clear()
        return getters, putters

    # -- internals ----------------------------------------------------------

    def _push_item(self, item):
        self._items.append(item)

    def _pop_item(self):
        return self._items.popleft()

    # The succeed() calls below are inlined: put/get events are created
    # untriggered and only triggered once, right here, so the
    # double-trigger guard would be dead weight on the data plane.

    def _do_put(self, event):
        env = self.env
        if self._getters:
            getter = self._getters.popleft()
            self.total_put += 1
            getter._ok = True
            getter._value = event.item
            eid = env._eid
            heappush(env._queue, (env.now, NORMAL, eid, getter))
            event._ok = True
            event._value = None
            env._eid = eid + 2
            heappush(env._queue, (env.now, NORMAL, eid + 1, event))
        elif len(self._items) < self.capacity:
            self._push_item(event.item)
            self.total_put += 1
            event._ok = True
            event._value = None
            eid = env._eid
            env._eid = eid + 1
            heappush(env._queue, (env.now, NORMAL, eid, event))
        else:
            self._putters.append(event)

    def _do_get(self, event):
        if self._items:
            event._ok = True
            event._value = self._pop_item()
            env = self.env
            eid = env._eid
            env._eid = eid + 1
            heappush(env._queue, (env.now, NORMAL, eid, event))
            self._wake_putter()
        else:
            self._getters.append(event)

    def _wake_putter(self):
        if self._putters and len(self._items) < self.capacity:
            put = self._putters.popleft()
            self._push_item(put.item)
            self.total_put += 1
            put._ok = True
            put._value = None
            env = self.env
            eid = env._eid
            env._eid = eid + 1
            heappush(env._queue, (env.now, NORMAL, eid, put))

    def __repr__(self):
        return "<%s %s depth=%d>" % (type(self).__name__, self.name, len(self._items))


class PriorityStore(Store):
    """A store that yields the smallest item first (heap order)."""

    def __init__(self, env, capacity=float("inf"), name=None):
        super().__init__(env, capacity, name)
        self._items = []
        self._seq = count()

    @property
    def items(self):
        return tuple(item for _, _, item in sorted(self._items))

    def _push_item(self, item):
        heapq.heappush(self._items, (item, next(self._seq), item))

    def _pop_item(self):
        return heapq.heappop(self._items)[2]
