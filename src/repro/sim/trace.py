"""Lightweight event tracing for debugging and latency breakdowns.

Tracing is off by default (zero overhead beyond a truthiness check).
When enabled, channels and components emit uniform
``(time, channel, event, msg_id, detail)`` rows — the Channel layer's
trace schema (DESIGN.md §4.7) — so one message can be followed across
hops by its ``msg_id``.  Records past ``limit`` are counted in
``tracer.dropped`` instead of vanishing silently, and :meth:`format`
warns once when the buffer overflowed.
"""

import warnings

from .. import telemetry

#: tracers constructed with ``enabled=True``, newest last (bounded);
#: lets the experiments CLI collect records from testbeds it never
#: sees directly (``--trace-channel``).
_MAX_ENABLED = 64
_enabled_tracers = []


def enabled_tracers():
    """Snapshot of recently-constructed enabled tracers."""
    return list(_enabled_tracers)


def clear_enabled_tracers():
    del _enabled_tracers[:]


class Tracer:
    """Collects trace records; disabled unless ``enabled`` is True."""

    def __init__(self, env, enabled=False, limit=100000):
        self.env = env
        self.enabled = enabled
        self.limit = limit
        self.records = []
        #: records rejected because the buffer hit ``limit``
        self.dropped = 0
        self._overflow_warned = False
        self._drop_counter = None
        if enabled:
            # Drops also count into the telemetry registry; the counter
            # binds to the scope active at construction, alongside the
            # testbed whose channels this tracer observes.
            self._drop_counter = telemetry.registry().counter(
                "sim.trace.dropped")
            if len(_enabled_tracers) >= _MAX_ENABLED:
                del _enabled_tracers[0]
            _enabled_tracers.append(self)

    def emit(self, channel, event, msg_id=None, detail=None):
        if not self.enabled:
            return
        if len(self.records) >= self.limit:
            self.dropped += 1
            self._drop_counter.inc()
            return
        self.records.append((self.env.now, channel, event, msg_id, detail))

    def filter(self, channel=None, event=None, contains=None):
        """Records matching the given channel/event names.

        ``channel`` matches exactly; ``contains`` matches any record
        whose channel name contains the substring (CLI filtering).
        """
        out = []
        for rec in self.records:
            if channel is not None and rec[1] != channel:
                continue
            if event is not None and rec[2] != event:
                continue
            if contains is not None and contains not in rec[1]:
                continue
            out.append(rec)
        return out

    def format(self, max_rows=50):
        lines = []
        for when, channel, event, msg_id, detail in self.records[:max_rows]:
            lines.append("%12.3fus %-20s %-16s %-8s %s" % (
                when, channel, event,
                "" if msg_id is None else msg_id,
                "" if detail is None else detail))
        if self.dropped:
            if not self._overflow_warned:
                self._overflow_warned = True
                warnings.warn(
                    "tracer dropped %d records past limit=%d "
                    "(telemetry counter: sim.trace.dropped)"
                    % (self.dropped, self.limit), RuntimeWarning,
                    stacklevel=2)
            lines.append("... %d records dropped past limit=%d ..."
                         % (self.dropped, self.limit))
        return "\n".join(lines)


class NullTracer:
    """A tracer that drops everything (default wiring)."""

    enabled = False
    dropped = 0

    def emit(self, channel, event, msg_id=None, detail=None):
        pass

    def filter(self, channel=None, event=None, contains=None):
        return []
