"""Lightweight event tracing for debugging and latency breakdowns.

Tracing is off by default (zero overhead beyond a truthiness check).
When enabled, components emit ``(time, component, event, detail)`` rows
which tests and the examples can assert on or pretty-print.
"""


class Tracer:
    """Collects trace records; disabled unless ``enabled`` is True."""

    def __init__(self, env, enabled=False, limit=100000):
        self.env = env
        self.enabled = enabled
        self.limit = limit
        self.records = []

    def emit(self, component, event, detail=None):
        if not self.enabled or len(self.records) >= self.limit:
            return
        self.records.append((self.env.now, component, event, detail))

    def filter(self, component=None, event=None):
        """Return records matching the given component/event names."""
        out = []
        for rec in self.records:
            if component is not None and rec[1] != component:
                continue
            if event is not None and rec[2] != event:
                continue
            out.append(rec)
        return out

    def format(self, max_rows=50):
        lines = []
        for when, component, event, detail in self.records[:max_rows]:
            lines.append("%12.3fus %-20s %-24s %s" % (
                when, component, event, "" if detail is None else detail))
        return "\n".join(lines)


class NullTracer:
    """A tracer that drops everything (default wiring)."""

    enabled = False

    def emit(self, component, event, detail=None):
        pass

    def filter(self, component=None, event=None):
        return []
