"""Calendar-queue scheduler backend (DESIGN.md §4.11).

:class:`WheelEnvironment` replaces the binary heap behind
:class:`~repro.sim.environment.Environment` with a bucketed timing
wheel: O(1) amortized insert for the near-future-dominated event mix
the Channel/Charge data planes produce, against the heap's O(log n).
Two further hot-path changes ride on the new queue layout:

* **bare-callback entries** — ``defer()`` and ``_kick()`` (the two
  primitives behind Channel landings, RMQ sweeps, fault windows and
  process/task kicks) schedule a 5-tuple ``(when, prio, eid, None, fn)``
  instead of allocating/recycling a pooled :class:`Charge`.  The run
  loop dispatches them by calling ``fn(tick)`` with a shared immutable
  tick event, skipping the callback-list walk and the pool bookkeeping
  entirely.  ``charge()``/``timeout()``/``schedule()`` still produce
  real events (generators must yield them).
* **vectorized Channel landings** — the environment owns a
  :class:`~repro.sim.landing.LandingTable` (numpy struct-of-arrays);
  ``Channel.push`` stages messages there and homogeneous bursts are
  delivered through one coalesced flush entry (see landing.py).

Tie-break contract: entries are tuples ordered by ``(time, priority,
eid)`` exactly like the heap's, and the eid sequence is shared with the
heap backend (every primitive consumes the same number of sequence
numbers), so the dispatch sequence reproduces the heap backend's pop
order *exactly*.  Mixed 4/5-tuples compare safely because eids are
unique: comparison never reaches element 3.

Queue layout — a timing wheel feeding a two-queue dispatch core:

* ``NBUCKETS`` (power of two) bucket lists indexed by the absolute
  bucket number ``int(when / WIDTH) & mask``.  A heap of occupied
  absolute indices finds the next non-empty bucket without scanning;
  entries beyond the window (``cursor + NBUCKETS``) sit in an overflow
  heap and migrate into buckets as the cursor approaches.
* the **drain** — the current bucket's entries, sorted once at the
  advance and consumed by index.  Nothing is ever inserted into it, so
  popping is one list index, not a heap sift.
* the **live heap** — a small persistent binary heap taking every
  insert at or before the cursor: event triggers at ``now`` (the
  environment's ``_queue`` is aliased to it, so the shared trigger
  sites' direct ``heappush`` lands here), kicks, zero-delay defers,
  sub-WIDTH charges.  Its occupancy is a handful of entries, so its C
  push/pop cost is a few tuple compares, against the full-schedule
  sift the heap backend pays.

The run loop dispatches whichever head — ``drain[pos]`` or ``live[0]``
— compares smaller; both hold times strictly earlier than any bucketed
entry, so the merge is globally ordered.

The wheel requires a non-negative clock; ``make_environment`` keeps the
heap as the default and as the determinism oracle (the cross-backend
stress tests replay identical workloads on both and compare dispatch
sequences).
"""

import gc
from heapq import heappush, heappop
from time import perf_counter

from ..errors import SimulationError
from .environment import Environment, EmptySchedule, _POOL_CAP, _StopSimulation
from .events import Charge, Event, NORMAL, URGENT
from .landing import LandingTable, numpy_available


class _Tick:
    """Shared dummy event handed to bare-callback entries.

    Every ``defer``/``_kick`` consumer either ignores its event argument
    or reads only ``_ok``/``_value`` (Process._resume, Task._step), so a
    single immutable successful-and-valueless event serves them all.
    """

    __slots__ = ()
    _ok = True
    _value = None
    _defused = False
    _pooled = False
    callbacks = None


class WheelEnvironment(Environment):
    """Calendar-queue scheduler with heap-identical event ordering."""

    backend = "wheel"

    #: bucket count (power of two) and bucket width in simulated us.
    #: 4096 x 1.0us covers a 4ms window — wider than every fixed
    #: latency in the profiles — so steady-state traffic never touches
    #: the overflow heap.
    NBUCKETS = 4096
    WIDTH = 1.0

    def __init__(self, initial_time=0.0):
        if initial_time < 0:
            raise SimulationError(
                "wheel backend requires a non-negative clock, got %r "
                "(use the heap backend)" % (initial_time,))
        super().__init__(initial_time)
        n = self.NBUCKETS
        self._buckets = [[] for _ in range(n)]
        self._mask = n - 1
        self._inv = 1.0 / self.WIDTH
        self._occupied = []      # heap of occupied absolute bucket indices
        self._overflow = []      # entry heap for times beyond the window
        self._cursor = int(self.now * self._inv)
        self._limit = self._cursor + n
        self._drain = []         # sorted entries of the current bucket
        self._drain_pos = 0      # dispatch position within the drain
        self._live = []          # heap of inserts at/before the cursor
        self._advances = 0       # bucket advances (occupancy sample clock)
        # The shared trigger sites (Event.succeed, Store completions,
        # Resource grants) heappush onto ``env._queue``.  Triggers
        # always fire at ``now``, and ``now`` never exceeds the cursor
        # bucket's horizon (future buckets hold strictly later times),
        # so aliasing ``_queue`` to the live heap routes them correctly
        # while the trigger sites stay byte-identical to the heap's.
        self._queue = self._live
        self._tick_event = _Tick()
        self._landing = LandingTable(self) if numpy_available() else None

    # -- queue --------------------------------------------------------------

    def _insert(self, entry):
        """Place a schedule entry in its bucket (the wheel's heappush).

        Entries at or before the cursor bucket go onto the live heap,
        where the run loop merges them with the drain head."""
        scaled = entry[0] * self._inv
        if scaled < self._limit:
            idx = int(scaled)
            if idx > self._cursor:
                bucket = self._buckets[idx & self._mask]
                if not bucket:
                    heappush(self._occupied, idx)
                bucket.append(entry)
            else:
                heappush(self._live, entry)
        else:
            heappush(self._overflow, entry)

    def _refill(self):
        """Advance to the next occupied bucket(s) and sort them into a
        fresh drain; returns the drain, or None when the schedule is
        empty.  Only called with the drain consumed and the live heap
        empty, so the new drain's entries are globally next.

        Queue occupancy for the ``heap_peak`` diagnostic is sampled
        every 64th advance — walking the occupied list per advance
        measurably slows sparse workloads (many advances, few events
        each).
        """
        occupied = self._occupied
        overflow = self._overflow
        buckets = self._buckets
        mask = self._mask
        inv = self._inv
        n = self.NBUCKETS
        if not occupied:
            if not overflow:
                return None
            # Jump the window to the earliest overflow entry's bucket.
            first = overflow[0][0] * inv
            if first != float("inf"):
                bound = int(first) + n
                while overflow and overflow[0][0] * inv < bound:
                    entry = heappop(overflow)
                    a = int(entry[0] * inv)
                    bucket = buckets[a & mask]
                    if not bucket:
                        heappush(occupied, a)
                    bucket.append(entry)
            if not occupied:
                # Degenerate non-finite deadlines: drain them directly.
                drain = sorted(overflow)
                del overflow[:]
                return drain
        idx = heappop(occupied)
        slot = idx & mask
        drain = buckets[slot]
        buckets[slot] = []
        # Sparse-schedule amortization: merge runs of occupied buckets
        # into one drain while it stays small, so workloads with a few
        # events per bucket pay the advance machinery (cursor/limit
        # update, overflow migration, sort, run-loop round trip) once
        # per ~two dozen events instead of once per bucket.  Global
        # order is unaffected: the cursor moves to the *last* merged
        # bucket, so cursor-or-earlier inserts still land on the live
        # heap and future buckets still hold strictly later times.
        while occupied and len(drain) < 24:
            idx = heappop(occupied)
            slot = idx & mask
            drain += buckets[slot]
            buckets[slot] = []
        self._cursor = idx
        self._limit = limit = idx + n
        while overflow and overflow[0][0] * inv < limit:
            entry = heappop(overflow)
            a = int(entry[0] * inv)
            bucket = buckets[a & mask]
            if not bucket:
                heappush(occupied, a)
            bucket.append(entry)
        drain.sort()
        adv = self._advances + 1
        self._advances = adv
        if not adv & 63:
            occ = len(drain) + len(overflow) + len(self._live)
            for a in occupied:
                occ += len(buckets[a & mask])
            if occ > self.heap_peak:
                self.heap_peak = occ
        return drain

    def _pop_entry(self):
        """Remove and return the earliest entry (slow path for step())."""
        live = self._live
        drain = self._drain
        pos = self._drain_pos
        if pos < len(drain):
            if live and live[0] < drain[pos]:
                return heappop(live)
            self._drain_pos = pos + 1
            return drain[pos]
        if live:
            return heappop(live)
        drain = self._refill()
        if drain is None:
            return None
        self._drain = drain
        self._drain_pos = 1
        return drain[0]

    # -- event construction overrides ---------------------------------------

    def charge(self, delay, value=None):
        if delay < 0:
            raise SimulationError("negative charge delay: %r" % delay)
        pool = self._charge_pool
        if pool:
            event = pool.pop()
            event._value = value
            event.delay = delay
            self.charges_reused += 1
        else:
            event = Charge(self, delay, value)
            self.charges_created += 1
        eid = self._eid
        self._eid = eid + 1
        when = self.now + delay
        scaled = when * self._inv
        if scaled < self._limit:
            idx = int(scaled)
            if idx > self._cursor:
                bucket = self._buckets[idx & self._mask]
                if not bucket:
                    heappush(self._occupied, idx)
                bucket.append((when, NORMAL, eid, event))
            else:
                heappush(self._live, (when, NORMAL, eid, event))
        else:
            heappush(self._overflow, (when, NORMAL, eid, event))
        return event

    def defer(self, delay, callback, priority=NORMAL):
        """Bare-callback twin of the heap's defer(): one 5-tuple entry,
        no Charge allocation or pool traffic.  Consumes one sequence
        number and dispatches at the same (time, priority, eid) slot, so
        ordering is identical; the callback receives the shared tick
        event instead of a Charge (every defer consumer ignores it).

        The bucket insert is inlined (vs calling :meth:`_insert`): defer
        is the single hottest constructor on this backend — every
        Channel landing flush, RMQ sweep and fault window goes through
        it — and the extra frame costs ~8% of pure-churn throughput."""
        if delay < 0:
            raise SimulationError("negative defer delay: %r" % delay)
        eid = self._eid
        self._eid = eid + 1
        when = self.now + delay
        scaled = when * self._inv
        if scaled < self._limit:
            idx = int(scaled)
            if idx > self._cursor:
                bucket = self._buckets[idx & self._mask]
                if not bucket:
                    heappush(self._occupied, idx)
                bucket.append((when, priority, eid, None, callback))
            else:
                heappush(self._live, (when, priority, eid, None, callback))
        else:
            heappush(self._overflow, (when, priority, eid, None, callback))

    def defer_at(self, when, callback, priority=NORMAL):
        """Absolute-time defer (see the heap twin): one bare 5-tuple
        entry at exactly *when*, routed through the wheel's bucket
        insert.  Frame execution's completion events land here."""
        if when < self.now:
            raise SimulationError("defer_at into the past: %r" % when)
        eid = self._eid
        self._eid = eid + 1
        self._insert((when, priority, eid, None, callback))

    def _kick(self, callback):
        # Kicks fire at ``now``, which never precedes the live/drain
        # horizon — straight onto the live heap.
        eid = self._eid
        self._eid = eid + 1
        heappush(self._live, (self.now, URGENT, eid, None, callback))

    # -- scheduling ----------------------------------------------------------

    def schedule(self, event, delay=0.0, priority=NORMAL):
        eid = self._eid
        self._eid = eid + 1
        self._insert((self.now + delay, priority, eid, event))

    def peek(self):
        heads = []
        drain = self._drain
        pos = self._drain_pos
        if pos < len(drain):
            heads.append(drain[pos][0])
        if self._live:
            heads.append(self._live[0][0])
        if heads:
            return min(heads)
        if self._occupied:
            return min(self._buckets[self._occupied[0] & self._mask])[0]
        if self._overflow:
            return self._overflow[0][0]
        return float("inf")

    def step(self):
        entry = self._pop_entry()
        if entry is None:
            raise EmptySchedule()
        self.now = entry[0]
        event = entry[3]
        if event is None:
            entry[4](self._tick_event)
            self.events_processed += 1
            return
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        self.events_processed += 1
        if event._pooled:
            callbacks.clear()
            event.callbacks = callbacks
            if len(self._charge_pool) < _POOL_CAP:
                self._charge_pool.append(event)
        elif not event._ok and not event._defused:
            raise event._value

    def run(self, until=None):
        """Wheel twin of the heap run loop (same semantics, counters,
        stop handling); see Environment.run for the contract.

        Each iteration dispatches the smaller of the drain head (sorted
        bucket, consumed by index) and the live-heap head (inserts made
        during dispatch).  The drain is never mutated between refills,
        so its length is cached and its pops are plain indexing."""
        stop_event = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
            else:
                horizon = float(until)
                if horizon < self.now:
                    raise SimulationError(
                        "cannot run until %s: already at %s" % (horizon, self.now))
                stop_event = self.event()
                stop_event._ok = True
                stop_event._value = None
                self.schedule(stop_event, delay=horizon - self.now, priority=0)
            stop_event.callbacks.append(_StopSimulation.throw_in)

        charge_pool = self._charge_pool
        tick = self._tick_event
        live = self._live
        nprocessed = 0
        gc_was_enabled = gc.isenabled()
        gc.disable()
        started = perf_counter()
        drain = self._drain
        dlen = len(drain)
        pos = self._drain_pos
        try:
            while True:
                if pos < dlen:
                    entry = drain[pos]
                    if live and live[0] < entry:
                        entry = heappop(live)
                    else:
                        pos += 1
                elif live:
                    entry = heappop(live)
                else:
                    nxt = self._refill()
                    if nxt is None:
                        break
                    drain = nxt
                    self._drain = drain
                    dlen = len(drain)
                    pos = 0
                    continue
                event = entry[3]
                self.now = entry[0]
                if event is None:
                    entry[4](tick)
                    nprocessed += 1
                    continue
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                # Counted after the callbacks, like the heap loop: a
                # _StopSimulation raised mid-dispatch must not count
                # the stop event itself.
                nprocessed += 1
                if event._pooled:
                    callbacks.clear()
                    event.callbacks = callbacks
                    charge_pool.append(event)
                elif not event._ok and not event._defused:
                    raise event._value
            if stop_event is not None and not stop_event.triggered:
                raise SimulationError(
                    "run() condition %r never fired; schedule is empty" % stop_event)
            return None
        except _StopSimulation as stop:
            return stop.args[0]
        finally:
            self.wall_seconds += perf_counter() - started
            if gc_was_enabled:
                gc.enable()
            del charge_pool[_POOL_CAP:]
            self.events_processed += nprocessed
            self._drain_pos = pos
            self._flush_totals()

    # -- instrumentation -----------------------------------------------------

    def kernel_stats(self):
        stats = super().kernel_stats()
        if self._landing is not None:
            stats["landing"] = self._landing.stats()
        return stats
