"""One mergeable telemetry surface for every measurement path.

The repro used to collect numbers through four organically grown
mechanisms (``sim/stats`` instruments, module-global kernel counters,
tracer drop counts, hand-built experiment rows).  This package replaces
them with a single observer contract:

* :mod:`~repro.telemetry.instruments` — typed instruments (monotonic
  counter, labelled counter, time-weighted gauge, mergeable log-bucketed
  histogram, pull counters) sharing ``kind``/``snapshot``/``merge``/
  ``reset(at_time)``;
* :mod:`~repro.telemetry.registry` — the hierarchical name → instrument
  registry plus the scope stack the sweep executor uses to keep
  ``--jobs N`` bit-identical;
* :mod:`~repro.telemetry.export` — pretty-printing and the
  ``repro.telemetry/1`` JSON schema consumed by the report scorecard.

Usage::

    from repro import telemetry

    reg = telemetry.registry()               # current scope's registry
    reg.counter("sim.kernel.events_processed").inc(n)
    with telemetry.scope() as point_reg:     # isolate one sweep point
        ...
        snap = point_reg.snapshot()
    telemetry.registry().merge(snap)

See DESIGN.md §4.9 for the full contract.
"""

from .instruments import (
    Counter,
    DerivedRatio,
    LabelledCounter,
    LogHistogram,
    PeakGauge,
    PullCounter,
    PullPeak,
    RateStat,
    RatioHolder,
    TimeWeightedGauge,
    materialize,
)
from .registry import (
    MetricsRegistry,
    current as registry,
    pop_scope,
    push_scope,
    reset_scopes,
    scope,
)
from .export import (
    CAMPAIGN_SCHEMA,
    SCHEMA,
    dump_campaign,
    dump_metrics,
    dumps_campaign,
    dumps_metrics,
    format_kernel_stats,
    format_snapshot,
    load_campaign,
    load_metrics,
)
from .diff import (
    diff_snapshots,
    relative_delta,
    scalar_of,
)

__all__ = [
    "Counter", "DerivedRatio", "LabelledCounter", "LogHistogram",
    "PeakGauge", "PullCounter", "PullPeak", "RateStat", "RatioHolder",
    "TimeWeightedGauge", "materialize",
    "MetricsRegistry", "registry", "push_scope", "pop_scope", "scope",
    "reset_scopes",
    "SCHEMA", "CAMPAIGN_SCHEMA", "dump_metrics", "dumps_metrics",
    "format_kernel_stats", "format_snapshot", "load_metrics",
    "dump_campaign", "dumps_campaign", "load_campaign",
    "diff_snapshots", "relative_delta", "scalar_of",
]


def snapshot(prefix=""):
    """Snapshot the current scope's registry."""
    return registry().snapshot(prefix)
