"""Snapshot diffing: reduce registry snapshots to scalars and compare.

The campaign engine (DESIGN.md §4.12) scores a component by how much
the world changes when the component is knocked out: it runs the
baseline and the ablated variant in their own telemetry scopes and
compares the two registry snapshots.  This module owns the comparison
arithmetic so every consumer (campaign importance scores, the report
scorecard, ad-hoc notebooks) reduces snapshots the same way.

Every instrument kind maps to one canonical scalar:

====================  =====================================================
kind                  scalar
====================  =====================================================
``counter``/``peak``  the value
``labelled``          sum over labels
``rate``              the event count (window lengths are host-independent
                      only in simulated time, so the count is the robust
                      scalar; use :func:`materialize` for rates)
``gauge``             the time-weighted mean (``area / elapsed``)
``histogram``         p99 (the tail is what ablations move; count and p50
                      ride along in :func:`diff_snapshots` entries)
====================  =====================================================
"""

import math

from .instruments import materialize

__all__ = ["scalar_of", "diff_snapshots", "relative_delta"]


def scalar_of(snap):
    """Reduce one instrument snapshot to its canonical scalar (table
    above).  Unknown kinds raise ``ValueError``."""
    kind = snap.get("kind")
    if kind in ("counter", "peak"):
        return snap["value"]
    if kind == "labelled":
        return sum(snap["values"].values())
    if kind == "rate":
        return snap["count"]
    if kind == "gauge":
        elapsed = snap["elapsed"]
        return snap["area"] / elapsed if elapsed > 0 else 0.0
    if kind == "histogram":
        if not snap["count"]:
            return 0.0
        return materialize(snap).p99()
    raise ValueError("unknown instrument kind %r" % (kind,))


def relative_delta(base, other):
    """``(other - base) / |base|`` — ``None`` when undefined.

    Undefined means a zero/NaN baseline (no meaningful relative change)
    or non-numeric operands; callers render ``None`` as "n/a" rather
    than inventing a sign.
    """
    try:
        base = float(base)
        other = float(other)
    except (TypeError, ValueError):
        return None
    if base == 0 or math.isnan(base) or math.isnan(other):
        return None
    return (other - base) / abs(base)


def diff_snapshots(base, other, prefix=""):
    """Compare two registry snapshots name by name.

    Returns ``{name: entry}`` over the union of names (optionally
    filtered by dotted *prefix*), where each entry carries::

        {"kind": ..., "base": scalar, "other": scalar,
         "delta": other - base, "rel": relative_delta or None}

    Histogram entries additionally carry ``p50``/``p99``/``count``
    deltas.  A name present on only one side diffs against the empty
    instrument (scalar 0 / empty histogram), so appearing and
    disappearing instruments show up as plain deltas instead of being
    silently dropped.  Kind clashes (same name, different family on the
    two sides) raise ``ValueError`` — that is a schema bug upstream.
    """
    names = list(base)
    seen = set(base)
    names.extend(n for n in other if n not in seen)
    out = {}
    for name in names:
        if prefix and not (name == prefix or name.startswith(prefix + ".")):
            continue
        a = base.get(name)
        b = other.get(name)
        if a is not None and b is not None and a["kind"] != b["kind"]:
            raise ValueError("kind clash for %r: %r vs %r"
                             % (name, a["kind"], b["kind"]))
        kind = (a or b)["kind"]
        sa = scalar_of(a) if a is not None else 0
        sb = scalar_of(b) if b is not None else 0
        entry = {"kind": kind, "base": sa, "other": sb, "delta": sb - sa,
                 "rel": relative_delta(sa, sb)}
        if kind == "histogram":
            ha = materialize(a) if a is not None and a["count"] else None
            hb = materialize(b) if b is not None and b["count"] else None
            entry["count"] = ((hb.count if hb else 0)
                              - (ha.count if ha else 0))
            entry["p50"] = ((hb.p50() if hb else 0.0)
                            - (ha.p50() if ha else 0.0))
            entry["p99"] = ((hb.p99() if hb else 0.0)
                            - (ha.p99() if ha else 0.0))
        out[name] = entry
    return out
