"""Rendering and (de)serialization for registry snapshots.

The JSON schema (consumed by ``repro.report.scorecard``)::

    {
      "schema": "repro.telemetry/1",
      "metrics": {
        "<dotted.name>": {"kind": "counter", "value": 123},
        "<dotted.name>": {"kind": "histogram", "count": ..., "sum": ...,
                           "min": ..., "max": ..., "zeros": ...,
                           "buckets": {"<idx>": n, ...}},
        ...
      }
    }

``metrics`` is exactly what ``MetricsRegistry.snapshot()`` returns, so
a dumped file can be merged straight back into a registry.
"""

import json
import math

from .instruments import materialize

__all__ = ["SCHEMA", "CAMPAIGN_SCHEMA", "format_snapshot",
           "format_kernel_stats", "dump_metrics", "dumps_metrics",
           "load_metrics", "dump_campaign", "dumps_campaign",
           "load_campaign"]

SCHEMA = "repro.telemetry/1"

#: sibling schema for campaign runs (DESIGN.md §4.12): per-variant rows,
#: stable run ids, and per-component importance scores derived from
#: telemetry snapshot deltas.  Written by ``python -m repro.experiments
#: campaign --out`` and consumed by the report scorecard.
CAMPAIGN_SCHEMA = "repro.campaign/1"


def _fmt_num(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if value and (abs(value) >= 1e6 or abs(value) < 1e-3):
            return "%.3g" % value
        return "%.3f" % value
    return "{:,}".format(value)


def _describe(snap):
    kind = snap["kind"]
    if kind in ("counter", "peak"):
        return _fmt_num(snap["value"])
    if kind == "labelled":
        values = snap["values"]
        return ", ".join("%s=%s" % (k, _fmt_num(values[k]))
                         for k in sorted(values)) or "-"
    if kind == "rate":
        acc = materialize(snap)
        return "%s events, %s/s" % (_fmt_num(snap["count"]),
                                    _fmt_num(acc.per_sec()))
    if kind == "gauge":
        elapsed = snap["elapsed"]
        mean = snap["area"] / elapsed if elapsed > 0 else 0.0
        return "mean %s, max %s" % (_fmt_num(mean), _fmt_num(snap["max"]))
    if kind == "histogram":
        hist = materialize(snap)
        return ("n=%s mean=%s p50=%s p99=%s max=%s"
                % (_fmt_num(snap["count"]), _fmt_num(hist.mean()),
                   _fmt_num(hist.p50()), _fmt_num(hist.p99()),
                   _fmt_num(snap["max"])))
    return repr(snap)


def format_snapshot(snapshot, prefix="", title="telemetry"):
    """Render a registry snapshot as an aligned, human-readable table."""
    names = [n for n in sorted(snapshot)
             if not prefix or n == prefix or n.startswith(prefix + ".")]
    if not names:
        return "%s: (no instruments)" % title
    width = max(len(n) for n in names)
    lines = ["%s: %d instruments" % (title, len(names))]
    for name in names:
        snap = snapshot[name]
        lines.append("  %-*s  %-9s  %s"
                     % (width, name, snap["kind"], _describe(snap)))
    return "\n".join(lines)


def format_kernel_stats(stats):
    """Render a kernel counter block (see ``Environment.kernel_stats`` /
    ``sim.kernel_totals``) as an aligned, human-readable table."""
    backend = stats.get("backend")
    # Tag the header only for non-default backends so existing heap
    # output (and anything parsing it) stays byte-identical.
    lines = ["simulator kernel%s:"
             % ("" if backend in (None, "heap") else " [%s backend]" % backend)]
    total_charges = stats.get("charges_created", 0) + stats.get("charges_reused", 0)
    reuse = (100.0 * stats.get("charges_reused", 0) / total_charges
             if total_charges else 0.0)
    rows = [
        ("events processed", "{:,}".format(stats.get("events_processed", 0))),
        ("processes spawned", "{:,}".format(stats.get("processes_spawned", 0))),
        ("detached tasks", "{:,}".format(stats.get("tasks_spawned", 0))),
        ("pooled charges", "{:,} ({:.1f}% reused)".format(total_charges, reuse)),
        ("heap peak", "{:,}".format(stats.get("heap_peak", 0))),
        ("wall-clock in run()", "%.2f s" % stats.get("wall_seconds", 0.0)),
        ("events/sec", "{:,.0f}".format(stats.get("events_per_sec", 0.0))),
        ("requests completed", "{:,}".format(stats.get("requests_completed", 0))),
        ("events/request", "%.2f" % stats.get("events_per_request", 0.0)),
    ]
    width = max(len(label) for label, _ in rows)
    for label, value in rows:
        lines.append("  %-*s  %s" % (width, label, value))
    return "\n".join(lines)


def dumps_metrics(snapshot, meta=None):
    """Serialize a registry snapshot to the ``repro.telemetry/1`` JSON.

    *meta* (optional dict, e.g. ``{"sim_backend": "wheel"}``) rides in a
    top-level ``meta`` block; readers of ``doc["metrics"]`` are
    unaffected and :func:`load_metrics` ignores it.
    """
    doc = {"schema": SCHEMA}
    if meta:
        doc["meta"] = dict(meta)
    doc["metrics"] = snapshot
    return json.dumps(doc, indent=2, sort_keys=False)


def dump_metrics(snapshot, path, meta=None):
    """Write the ``repro.telemetry/1`` JSON document to *path*."""
    with open(path, "w") as fh:
        fh.write(dumps_metrics(snapshot, meta=meta))
        fh.write("\n")


def load_metrics(path_or_file):
    """Load a metrics dump; returns the ``{name: snap}`` dict.

    Raises ``ValueError`` on a missing or unknown ``schema`` tag.
    """
    doc = _load_json(path_or_file)
    schema = doc.get("schema") if isinstance(doc, dict) else None
    if schema != SCHEMA:
        raise ValueError("not a %s document (schema=%r)" % (SCHEMA, schema))
    return doc["metrics"]


def _load_json(path_or_file):
    if hasattr(path_or_file, "read"):
        return json.load(path_or_file)
    with open(path_or_file) as fh:
        return json.load(fh)


# ---------------------------------------------------------------------------
# repro.campaign/1
# ---------------------------------------------------------------------------

def dumps_campaign(campaigns, meta=None):
    """Serialize campaign outcome documents to ``repro.campaign/1`` JSON.

    *campaigns* is a list of per-campaign dicts (see
    ``repro.experiments.campaign.CampaignOutcome.to_doc``); this layer
    only owns the envelope, so the schema version lives next to its
    ``repro.telemetry/1`` sibling.
    """
    doc = {"schema": CAMPAIGN_SCHEMA}
    if meta:
        doc["meta"] = dict(meta)
    doc["campaigns"] = list(campaigns)
    return json.dumps(doc, indent=2, sort_keys=False)


def dump_campaign(campaigns, path, meta=None):
    """Write the ``repro.campaign/1`` JSON document to *path*."""
    with open(path, "w") as fh:
        fh.write(dumps_campaign(campaigns, meta=meta))
        fh.write("\n")


def load_campaign(path_or_file):
    """Load a campaign dump; returns the full document dict.

    Validates the ``repro.campaign/1`` schema tag and the presence and
    shape of the ``campaigns`` list (each entry must carry ``exp_id``,
    ``variants``, and ``importance``); raises ``ValueError`` otherwise.
    """
    doc = _load_json(path_or_file)
    schema = doc.get("schema") if isinstance(doc, dict) else None
    if schema != CAMPAIGN_SCHEMA:
        raise ValueError("not a %s document (schema=%r)"
                         % (CAMPAIGN_SCHEMA, schema))
    campaigns = doc.get("campaigns")
    if not isinstance(campaigns, list):
        raise ValueError("%s document lacks a campaigns list"
                         % CAMPAIGN_SCHEMA)
    for entry in campaigns:
        missing = [k for k in ("exp_id", "variants", "importance")
                   if k not in entry]
        if missing:
            raise ValueError("campaign entry %r lacks %s"
                             % (entry.get("exp_id"), ", ".join(missing)))
    return doc
