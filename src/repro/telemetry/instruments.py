"""Typed telemetry instruments (DESIGN.md §4.9).

Every instrument speaks one small protocol:

``kind``
    Class-level string tag describing the snapshot schema.
``snapshot()``
    A JSON-serializable dict (always carrying ``"kind"``) capturing the
    instrument's state at call time.
``merge(snap)``
    Fold another instrument's snapshot (same kind) into this one.
    Merging is associative and commutative: counters add, peaks take the
    max, histogram buckets add bucket-wise.  (Float-valued fields such
    as a histogram's ``sum`` are exact only up to FP rounding; integer
    fields merge exactly in any order.)
``reset(at_time=None)``
    Zero the instrument **in place** — cached references stay valid —
    optionally restarting any time window at ``at_time`` instead of the
    instrument's own clock (the warmup cut).

Instruments are *read-only observers*: registering or snapshotting them
never perturbs simulated state, so fixed-seed outputs stay bit-identical
with telemetry on or off.

This module must not import anything from ``repro.sim`` — the simulator
layers import *us*.
"""

import math

__all__ = [
    "Counter", "LabelledCounter", "PeakGauge", "PullCounter", "PullPeak",
    "TimeWeightedGauge", "RateStat", "LogHistogram", "materialize",
]


class Counter:
    """A monotonic counter (``value`` only ever grows via :meth:`inc`)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, value=0):
        self.value = value

    def inc(self, n=1):
        self.value += n

    def snapshot(self):
        return {"kind": "counter", "value": self.value}

    def merge(self, snap):
        self.value += snap["value"]

    def reset(self, at_time=None):
        self.value = 0


class PeakGauge:
    """Tracks the maximum value ever :meth:`record`-ed."""

    kind = "peak"
    __slots__ = ("value",)

    def __init__(self, value=0):
        self.value = value

    def record(self, v):
        if v > self.value:
            self.value = v

    def snapshot(self):
        return {"kind": "peak", "value": self.value}

    def merge(self, snap):
        if snap["value"] > self.value:
            self.value = snap["value"]

    def reset(self, at_time=None):
        self.value = 0


class LabelledCounter:
    """A bundle of monotonic counters keyed by label."""

    kind = "labelled"
    __slots__ = ("_counts",)

    def __init__(self):
        self._counts = {}

    def inc(self, label, n=1):
        self._counts[label] = self._counts.get(label, 0) + n

    def get(self, label):
        return self._counts.get(label, 0)

    def as_dict(self):
        return dict(self._counts)

    def snapshot(self):
        return {"kind": "labelled", "values": dict(self._counts)}

    def merge(self, snap):
        counts = self._counts
        for label, n in snap["values"].items():
            counts[label] = counts.get(label, 0) + n

    def reset(self, at_time=None):
        self._counts.clear()


class PullCounter:
    """A counter whose value is *read* from live state at snapshot time.

    Wraps a zero-argument callable (typically a closure over a model
    object's plain-int attribute), so the hot path that bumps the
    underlying attribute pays nothing for being observable.  ``reset``
    captures the current reading as a baseline, implementing the warmup
    cut without touching the model; ``merge`` accumulates foreign
    snapshots on top of the live reading.
    """

    kind = "counter"
    __slots__ = ("_fn", "_base", "_merged")

    def __init__(self, fn):
        self._fn = fn
        self._base = 0
        self._merged = 0

    @property
    def value(self):
        return self._fn() - self._base + self._merged

    def snapshot(self):
        return {"kind": "counter", "value": self.value}

    def merge(self, snap):
        self._merged += snap["value"]

    def reset(self, at_time=None):
        self._base = self._fn()
        self._merged = 0


class PullPeak:
    """Like :class:`PullCounter` but merged as a peak (max wins)."""

    kind = "peak"
    __slots__ = ("_fn", "_merged")

    def __init__(self, fn):
        self._fn = fn
        self._merged = 0

    @property
    def value(self):
        live = self._fn()
        return live if live > self._merged else self._merged

    def snapshot(self):
        return {"kind": "peak", "value": self.value}

    def merge(self, snap):
        if snap["value"] > self._merged:
            self._merged = snap["value"]

    def reset(self, at_time=None):
        self._merged = 0


class DerivedRatio:
    """A ratio of two live readings, recomputed at snapshot time.

    For derived metrics like ``sim.kernel.events_per_request`` whose
    operands are themselves registered instruments: the operands merge
    across workers, the ratio never does — ``merge`` is a no-op and the
    live reading recomputes from the already-merged operands.  A
    division by zero reports 0.0 (no requests yet).
    """

    kind = "ratio"
    __slots__ = ("_num", "_den", "operands")

    def __init__(self, num, den, operands=None):
        self._num = num
        self._den = den
        #: ``(num_name, den_name)`` of registered operand instruments;
        #: rides in the snapshot so a receiving registry can re-derive
        #: the ratio from its own (merged) operands instead of holding
        #: one worker's stale quotient.
        self.operands = operands

    @property
    def value(self):
        den = self._den()
        return self._num() / den if den else 0.0

    def snapshot(self):
        snap = {"kind": "ratio", "value": self.value}
        if self.operands:
            snap["num"], snap["den"] = self.operands
        return snap

    def merge(self, snap):
        pass

    def reset(self, at_time=None):
        pass


class RatioHolder:
    """Accumulator twin of :class:`DerivedRatio` (latest reading wins).

    Materialized when a ratio snapshot arrives at a registry with no
    live instrument under that name — e.g. a worker's dump loaded
    standalone.  There are no operands to recompute from, so it simply
    holds the most recent value.
    """

    kind = "ratio"
    __slots__ = ("value",)

    def __init__(self, value=0.0):
        self.value = value

    def snapshot(self):
        return {"kind": "ratio", "value": self.value}

    def merge(self, snap):
        self.value = snap["value"]

    def reset(self, at_time=None):
        self.value = 0.0


class TimeWeightedGauge:
    """Tracks a piecewise-constant value; reports its time-weighted mean.

    ``clock`` is a zero-argument callable returning the current time
    (``repro.sim.stats.TimeWeightedGauge`` binds it to ``env.now``; the
    default clock is frozen at 0 for pure accumulators).  The internals
    (``_value``/``_area``/``_last_change``/``_start``/``_max``) are part
    of the performance contract: ``sim/resources.py`` updates them with
    inlined code on the hot path.
    """

    kind = "gauge"

    def __init__(self, clock=None, initial=0.0):
        self._clock = clock if clock is not None else _zero_clock
        now = self._clock()
        self._value = initial
        self._last_change = now
        self._area = 0.0
        self._start = now
        self._max = initial
        self._merged_area = 0.0
        self._merged_elapsed = 0.0

    @property
    def value(self):
        """Current gauge value."""
        return self._value

    def set(self, value):
        """Change the gauge value at the current time."""
        if value == self._value:
            # No-op update: the running area accrues at the same rate
            # either way, so defer the accrual to the next real change.
            return
        now = self._clock()
        self._area += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now
        if value > self._max:
            self._max = value

    def reset(self, at_time=None):
        """Restart time-weighted accounting at the current value.

        ``at_time`` backdates (or forward-dates) the window start — the
        warmup cut: accounting restarts as if the value had been held
        constant since ``at_time``.
        """
        now = self._clock() if at_time is None else at_time
        self._area = 0.0
        self._start = now
        self._last_change = now
        self._max = self._value
        self._merged_area = 0.0
        self._merged_elapsed = 0.0

    def _window(self):
        now = self._clock()
        area = self._area + self._value * (now - self._last_change)
        return area, now - self._start

    def mean(self):
        """Time-weighted mean since the last reset (merges included)."""
        area, elapsed = self._window()
        area += self._merged_area
        elapsed += self._merged_elapsed
        if elapsed <= 0:
            return self._value
        return area / elapsed

    def max(self):
        """Largest value seen since the last reset."""
        return self._max

    def snapshot(self):
        area, elapsed = self._window()
        return {
            "kind": "gauge",
            "area": area + self._merged_area,
            "elapsed": elapsed + self._merged_elapsed,
            "max": self._max,
        }

    def merge(self, snap):
        self._merged_area += snap["area"]
        self._merged_elapsed += snap["elapsed"]
        if snap["max"] > self._max:
            self._max = snap["max"]


def _zero_clock():
    return 0.0


class RateStat:
    """Pure event-count + elapsed-window accumulator (kind ``rate``).

    The live, clocked version is ``repro.sim.stats.RateMeter``; this is
    the registry-side accumulator that foreign rate snapshots merge
    into.  ``per_sec`` aggregates as total events over total (summed)
    window time.
    """

    kind = "rate"
    __slots__ = ("count", "elapsed")

    def __init__(self, count=0, elapsed=0.0):
        self.count = count
        self.elapsed = elapsed

    def per_us(self):
        if self.elapsed <= 0:
            return math.nan
        return self.count / self.elapsed

    def per_sec(self):
        return self.per_us() * 1e6

    def snapshot(self):
        return {"kind": "rate", "count": self.count, "elapsed": self.elapsed}

    def merge(self, snap):
        self.count += snap["count"]
        self.elapsed += snap["elapsed"]

    def reset(self, at_time=None):
        self.count = 0
        self.elapsed = 0.0


class LogHistogram:
    """A mergeable log-bucketed histogram with a *fixed* bucket layout.

    The layout never varies with the data: :data:`BUCKETS_PER_DECADE`
    geometric buckets per factor of 10, spanning ``10**MIN_EXP`` ..
    ``10**MAX_EXP`` (values outside clamp to the edge buckets;
    non-positive values count in a dedicated ``zeros`` bucket).  A fixed
    layout is what makes ``merge`` associative and commutative across
    sweep workers: bucket counts add index-wise, with no re-binning.

    ``percentile`` returns the geometric midpoint of the bucket holding
    the requested order statistic (the ``numpy`` ``method="lower"``
    rank), so its relative error against the exact sample is bounded by
    half a bucket's width in log space: :data:`MAX_REL_ERROR` =
    ``10**(1 / (2 * BUCKETS_PER_DECADE)) - 1`` ≈ 7.5% (documented as
    ≤ 8%).
    """

    kind = "histogram"

    BUCKETS_PER_DECADE = 16
    MIN_EXP = -6   # smallest resolvable decade: 1e-6
    MAX_EXP = 12   # largest resolvable decade:  1e12
    NBUCKETS = (MAX_EXP - MIN_EXP) * BUCKETS_PER_DECADE
    MAX_REL_ERROR = 10.0 ** (1.0 / (2 * BUCKETS_PER_DECADE)) - 1.0

    __slots__ = ("count", "zeros", "sum", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.zeros = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self.buckets = {}  # sparse: bucket offset (int) -> count

    @classmethod
    def bucket_index(cls, value):
        """Offset of the bucket holding *value* (> 0), clamped in range."""
        idx = (math.floor(math.log10(value) * cls.BUCKETS_PER_DECADE)
               - cls.MIN_EXP * cls.BUCKETS_PER_DECADE)
        if idx < 0:
            return 0
        if idx >= cls.NBUCKETS:
            return cls.NBUCKETS - 1
        return idx

    @classmethod
    def bucket_value(cls, index):
        """Geometric midpoint of the bucket at *index*."""
        exp = (index + cls.MIN_EXP * cls.BUCKETS_PER_DECADE + 0.5)
        return 10.0 ** (exp / cls.BUCKETS_PER_DECADE)

    def record(self, value, n=1):
        """Count *value*, *n* times."""
        self.count += n
        self.sum += value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0:
            self.zeros += n
            return
        idx = self.bucket_index(value)
        buckets = self.buckets
        buckets[idx] = buckets.get(idx, 0) + n

    def record_many(self, values):
        """Bulk-record an iterable/array of samples (vectorized)."""
        import numpy as np

        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return
        self.count += int(arr.size)
        self.sum += float(arr.sum())
        lo = float(arr.min())
        hi = float(arr.max())
        if self.min is None or lo < self.min:
            self.min = lo
        if self.max is None or hi > self.max:
            self.max = hi
        positive = arr[arr > 0]
        self.zeros += int(arr.size - positive.size)
        if positive.size:
            idx = (np.floor(np.log10(positive) * self.BUCKETS_PER_DECADE)
                   .astype(np.int64)
                   - self.MIN_EXP * self.BUCKETS_PER_DECADE)
            np.clip(idx, 0, self.NBUCKETS - 1, out=idx)
            offsets, counts = np.unique(idx, return_counts=True)
            buckets = self.buckets
            for off, n in zip(offsets.tolist(), counts.tolist()):
                buckets[off] = buckets.get(off, 0) + n

    def mean(self):
        return self.sum / self.count if self.count else math.nan

    def percentile(self, q):
        """Estimated q-th percentile (q in [0, 100]).

        Uses the "lower" order statistic: rank ``floor((count-1)*q/100)``
        — matching ``np.percentile(..., method="lower")`` to within
        :data:`MAX_REL_ERROR` relative error.
        """
        if not self.count:
            return math.nan
        rank = math.floor((self.count - 1) * q / 100.0)
        if rank < self.zeros:
            return 0.0
        seen = self.zeros
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if rank < seen:
                return self.bucket_value(idx)
        return self.max if self.max is not None else math.nan

    def p50(self):
        return self.percentile(50)

    def p99(self):
        return self.percentile(99)

    def snapshot(self):
        # Bucket keys are strings so a snapshot compares equal to its
        # own JSON round-trip (JSON objects cannot have int keys).
        return {
            "kind": "histogram",
            "count": self.count,
            "zeros": self.zeros,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": {str(idx): self.buckets[idx]
                        for idx in sorted(self.buckets)},
        }

    def merge(self, snap):
        self.count += snap["count"]
        self.zeros += snap.get("zeros", 0)
        self.sum += snap["sum"]
        if snap["min"] is not None and (self.min is None
                                        or snap["min"] < self.min):
            self.min = snap["min"]
        if snap["max"] is not None and (self.max is None
                                        or snap["max"] > self.max):
            self.max = snap["max"]
        buckets = self.buckets
        for key, n in snap["buckets"].items():
            idx = int(key)
            buckets[idx] = buckets.get(idx, 0) + n

    def reset(self, at_time=None):
        self.count = 0
        self.zeros = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self.buckets.clear()


#: snapshot ``kind`` -> accumulator class used when a merge arrives for
#: a name with no live instrument (see ``MetricsRegistry.merge``).
_ACCUMULATORS = {
    "counter": Counter,
    "peak": PeakGauge,
    "labelled": LabelledCounter,
    "gauge": TimeWeightedGauge,
    "rate": RateStat,
    "histogram": LogHistogram,
    "ratio": RatioHolder,
}


def materialize(snap):
    """Build a fresh accumulator instrument holding *snap*'s data."""
    try:
        cls = _ACCUMULATORS[snap["kind"]]
    except KeyError:
        raise ValueError("unknown instrument kind %r" % (snap.get("kind"),))
    inst = cls()
    inst.merge(snap)
    return inst
