"""The mergeable metrics registry and its scope stack (DESIGN.md §4.9).

A :class:`MetricsRegistry` maps hierarchical dotted names
(``lynx.server.<host>.rx.drops``, ``sim.kernel.events_processed``,
``gpu.<id>.occupancy``, ``mqueue.<id>.depth``) to instrument objects.
Components register their instruments at construction time into the
*current* registry (:func:`current`); measurement consumers read them
back by name or take a :meth:`~MetricsRegistry.snapshot` of everything.

Scopes make sweeps mergeable: the executor pushes a fresh registry
around each point (:func:`push_scope` / :func:`scope`), snapshots it
when the point finishes, and merges the snapshot into the parent
registry — the same arithmetic whether the point ran inline or in a
worker process, which is what keeps ``--jobs N`` bit-identical.

Name-collision policy: registering an existing name **replaces** the
old instrument (latest wins), so long-lived root registries do not pin
every testbed a process ever built.  Within one testbed, constructors
are responsible for unique names (they derive them from IPs, mqueue
names, and device indices, which are unique by construction).
"""

from .instruments import (
    Counter,
    DerivedRatio,
    LabelledCounter,
    LogHistogram,
    PeakGauge,
    PullCounter,
    PullPeak,
    TimeWeightedGauge,
    materialize,
)

__all__ = ["MetricsRegistry", "current", "push_scope", "pop_scope", "scope",
           "reset_scopes"]


class MetricsRegistry:
    """A named collection of telemetry instruments."""

    def __init__(self):
        self._instruments = {}  # name -> instrument, insertion-ordered

    # -- registration ------------------------------------------------------

    def register(self, name, instrument):
        """Register *instrument* under *name* (replacing any old one)."""
        self._instruments[name] = instrument
        return instrument

    def unregister(self, name):
        self._instruments.pop(name, None)

    def _get_or_create(self, name, cls, *args):
        inst = self._instruments.get(name)
        if isinstance(inst, cls):
            return inst
        return self.register(name, cls(*args))

    def counter(self, name):
        """Get-or-create a monotonic :class:`Counter` under *name*."""
        return self._get_or_create(name, Counter)

    def peak(self, name):
        """Get-or-create a :class:`PeakGauge` under *name*."""
        return self._get_or_create(name, PeakGauge)

    def labelled(self, name):
        """Get-or-create a :class:`LabelledCounter` under *name*."""
        return self._get_or_create(name, LabelledCounter)

    def histogram(self, name):
        """Get-or-create a :class:`LogHistogram` under *name*."""
        return self._get_or_create(name, LogHistogram)

    def gauge(self, name, clock=None):
        """Get-or-create a :class:`TimeWeightedGauge` under *name*."""
        inst = self._instruments.get(name)
        if isinstance(inst, TimeWeightedGauge):
            return inst
        return self.register(name, TimeWeightedGauge(clock))

    def pull(self, name, fn):
        """Register a :class:`PullCounter` reading *fn()* at snapshot."""
        return self.register(name, PullCounter(fn))

    def pull_peak(self, name, fn):
        """Register a :class:`PullPeak` reading *fn()* at snapshot."""
        return self.register(name, PullPeak(fn))

    def ratio(self, name, num, den):
        """Get-or-create a :class:`DerivedRatio` of two counters by name.

        *num* and *den* are the dotted names of counter instruments in
        this registry (created on demand).  Get-or-create, not replace:
        counter resets are in-place, so the existing instrument's
        operand references stay valid.
        """
        inst = self._instruments.get(name)
        if isinstance(inst, DerivedRatio):
            return inst
        n = self.counter(num)
        d = self.counter(den)
        return self.register(
            name, DerivedRatio(lambda: n.value, lambda: d.value,
                               operands=(num, den)))

    # -- access ------------------------------------------------------------

    def get(self, name, default=None):
        """The live instrument registered under *name*, or *default*."""
        return self._instruments.get(name, default)

    def __contains__(self, name):
        return name in self._instruments

    def __len__(self):
        return len(self._instruments)

    def names(self, prefix=""):
        """Registered names (optionally filtered by dotted prefix)."""
        if not prefix:
            return list(self._instruments)
        return [n for n in self._instruments if _under(n, prefix)]

    # -- snapshot / merge / reset -----------------------------------------

    def snapshot(self, prefix=""):
        """``{name: instrument.snapshot()}`` in registration order."""
        out = {}
        for name, inst in self._instruments.items():
            if prefix and not _under(name, prefix):
                continue
            out[name] = inst.snapshot()
        return out

    def merge(self, snapshot):
        """Fold a :meth:`snapshot` dict into this registry.

        Names with a live instrument of the same kind merge in place;
        unknown names materialize a fresh accumulator.  A kind clash
        (same name, different instrument family) replaces the live
        instrument with an accumulator holding the incoming data —
        latest schema wins, consistent with the registration policy.
        """
        instruments = self._instruments
        for name, snap in snapshot.items():
            inst = instruments.get(name)
            if inst is not None and inst.kind == snap["kind"]:
                inst.merge(snap)
            elif snap["kind"] == "ratio" and "num" in snap:
                # Re-derive from this registry's own operands (which
                # merge additively) instead of holding one incoming
                # quotient — merged ratios are not sums of ratios.
                self.ratio(name, snap["num"], snap["den"])
            else:
                instruments[name] = materialize(snap)

    def reset(self, prefix="", at_time=None):
        """Zero matching instruments **in place** (cached refs stay valid)."""
        for name, inst in self._instruments.items():
            if prefix and not _under(name, prefix):
                continue
            inst.reset(at_time)

    def clear(self):
        """Drop every instrument (worker hygiene, not the warmup cut)."""
        self._instruments.clear()


def _under(name, prefix):
    return name == prefix or name.startswith(prefix + ".") \
        or (prefix.endswith(".") and name.startswith(prefix))


# --------------------------------------------------------------------------
# the scope stack
# --------------------------------------------------------------------------

_root = MetricsRegistry()
_stack = [_root]


def current():
    """The innermost active registry (the root when no scope is open)."""
    return _stack[-1]


def push_scope(registry=None):
    """Open a nested registry scope; returns the new current registry."""
    registry = registry if registry is not None else MetricsRegistry()
    _stack.append(registry)
    return registry


def pop_scope():
    """Close the innermost scope; returns the registry that was popped."""
    if len(_stack) == 1:
        raise RuntimeError("cannot pop the root telemetry scope")
    return _stack.pop()


class scope:
    """``with telemetry.scope() as reg:`` — a scoped registry.

    Implemented as a class (not ``contextlib.contextmanager``) so exits
    remove *this* scope even if a callee leaked an extra push.
    """

    def __init__(self, registry=None):
        self.registry = registry if registry is not None else MetricsRegistry()

    def __enter__(self):
        push_scope(self.registry)
        return self.registry

    def __exit__(self, exc_type, exc, tb):
        if self.registry in _stack:
            while _stack[-1] is not self.registry:
                _stack.pop()
            _stack.pop()
        return False


def reset_scopes():
    """Forget inherited scopes and all root instruments.

    Worker-process hygiene under the ``fork`` start method: the child
    inherits the parent's scope stack and root registry, including pull
    instruments closed over the parent's live testbeds — none of which
    may leak into the worker's own snapshots.
    """
    del _stack[1:]
    _root.clear()
