"""Canonical units used throughout the simulator.

Simulated time is a ``float`` number of **microseconds**; sizes are
**bytes**; bandwidths are **bytes per microsecond** (1 B/us == 1 MB/s).
These helpers exist so device models read like their data sheets.
"""

# -- time ------------------------------------------------------------------
NS = 1e-3  #: one nanosecond, in microseconds
US = 1.0  #: one microsecond
MS = 1e3  #: one millisecond, in microseconds
SEC = 1e6  #: one second, in microseconds

# -- size ------------------------------------------------------------------
BYTE = 1
KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


def gbps(rate):
    """Convert a link rate in gigabits/s to bytes/us."""
    return rate * 1e9 / 8 / SEC


def gbytes_per_sec(rate):
    """Convert GB/s to bytes/us."""
    return rate * 1e9 / SEC


def mpps(rate):
    """Convert millions of packets per second to packets/us."""
    return rate * 1e6 / SEC


def per_sec(rate):
    """Convert an events-per-second rate to events/us."""
    return rate / SEC


def to_krps(per_us):
    """Convert an events/us rate to thousands of requests per second."""
    return per_us * SEC / 1e3
