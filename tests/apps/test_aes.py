"""AES-128 correctness (FIPS-197 vectors + properties)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.crypto.aes import AES128, BLOCK_SIZE, expand_key
from repro.errors import ConfigError

FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_PLAIN = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CIPHER = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")


class TestFipsVectors:
    def test_appendix_c_encrypt(self):
        assert AES128(FIPS_KEY).encrypt_block_raw(FIPS_PLAIN) == FIPS_CIPHER

    def test_appendix_c_decrypt(self):
        assert AES128(FIPS_KEY).decrypt_block_raw(FIPS_CIPHER) == FIPS_PLAIN

    def test_appendix_a_key_expansion_last_word(self):
        round_keys = expand_key(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        # FIPS-197 A.1: w[43] = b6:63:0c:a6
        assert bytes(round_keys[10][-4:]) == bytes.fromhex("b6630ca6")


class TestValidation:
    def test_key_length_checked(self):
        with pytest.raises(ConfigError):
            AES128(b"short")

    def test_block_length_checked(self):
        with pytest.raises(ConfigError):
            AES128(FIPS_KEY).encrypt_block_raw(b"tiny")

    def test_ciphertext_multiple_of_block(self):
        with pytest.raises(ConfigError):
            AES128(FIPS_KEY).decrypt(b"123")

    def test_bad_padding_detected(self):
        cipher = AES128(FIPS_KEY)
        mangled = bytearray(cipher.encrypt(b"hello"))
        mangled[-1] ^= 0xFF
        with pytest.raises(ConfigError):
            cipher.decrypt(bytes(mangled))


class TestProperties:
    @given(data=st.binary(min_size=0, max_size=200),
           key=st.binary(min_size=16, max_size=16))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, data, key):
        cipher = AES128(key)
        assert cipher.decrypt(cipher.encrypt(data)) == data

    @given(data=st.binary(min_size=1, max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_ciphertext_differs_from_plaintext(self, data):
        ct = AES128(FIPS_KEY).encrypt(data)
        assert ct != data
        assert len(ct) % BLOCK_SIZE == 0

    @given(block=st.binary(min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_block_roundtrip(self, block):
        cipher = AES128(FIPS_KEY)
        assert cipher.decrypt_block_raw(cipher.encrypt_block_raw(block)) == block
