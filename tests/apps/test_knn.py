"""k-NN service application."""

import numpy as np
import pytest

from repro.apps.knn import (
    DEFAULT_K,
    DIM,
    KnnApp,
    KnnDataset,
    decode_query,
    decode_result,
    encode_query,
    encode_result,
)
from repro.errors import ConfigError


class TestWireFormat:
    def test_query_roundtrip(self):
        vec = np.arange(DIM, dtype=np.float32)
        assert np.array_equal(decode_query(encode_query(vec)), vec)

    def test_query_is_256_bytes(self):
        assert len(encode_query(np.zeros(DIM, dtype=np.float32))) == 256

    def test_wrong_dim_rejected(self):
        with pytest.raises(ConfigError):
            encode_query(np.zeros(10, dtype=np.float32))

    def test_result_roundtrip(self):
        payload = encode_result([3, 1], [0.5, 2.25])
        assert decode_result(payload) == [(3, 0.5), (1, 2.25)]


class TestDataset:
    def test_exact_match_is_its_own_neighbour(self):
        ds = KnnDataset(size=256)
        for i in (0, 17, 255):
            indices, distances = ds.query(ds.vectors[i], k=1)
            assert indices[0] == i
            # float32 norm-trick cancellation leaves a little residue
            assert distances[0] == pytest.approx(0.0, abs=1e-2)

    def test_matches_naive_topk(self):
        ds = KnnDataset(size=128)
        rng = np.random.default_rng(5)
        query = rng.standard_normal(DIM).astype(np.float32)
        indices, distances = ds.query(query, k=5)
        naive = np.argsort(np.linalg.norm(ds.vectors - query, axis=1))[:5]
        assert list(indices) == list(naive)
        assert list(distances) == sorted(distances)

    def test_sample_query_finds_its_base(self):
        ds = KnnDataset(size=512)
        for i in (3, 99):
            indices, _ = ds.query(ds.sample_query(i), k=1)
            assert indices[0] == i

    def test_deterministic(self):
        a = KnnDataset(size=64, seed=1)
        b = KnnDataset(size=64, seed=1)
        assert np.array_equal(a.vectors, b.vectors)


class TestApp:
    def test_compute_encodes_topk(self):
        ds = KnnDataset(size=128)
        app = KnnApp(dataset=ds, k=3)
        payload = encode_query(ds.sample_query(7))
        pairs = decode_result(app.compute(payload))
        assert len(pairs) == 3
        assert pairs[0][0] == 7

    def test_duration_scales_with_dataset(self):
        small = KnnApp(dataset=KnnDataset(size=1000))
        large = KnnApp(dataset=KnnDataset(size=4000))
        assert large.gpu_duration == pytest.approx(4 * small.gpu_duration)


class TestEndToEnd:
    def test_multi_gpu_service_returns_correct_neighbours(self):
        from repro import Testbed
        from repro.net import Address
        from repro.net.packet import UDP

        tb = Testbed()
        env = tb.env
        host = tb.machine("10.0.0.1")
        snic = tb.bluefield("10.0.0.100")
        runtime, server = tb.lynx_on_bluefield(snic)
        ds = KnnDataset(size=512)
        app = KnnApp(dataset=ds)
        for _ in range(2):  # two GPUs behind one port
            gpu = host.add_gpu()
            env.process(runtime.start_gpu_service(gpu, app, port=7000,
                                                  n_mqueues=1))
        env.run(until=200)
        client = tb.client("10.0.1.1")
        hits = []

        def drive(env):
            for i in range(8):
                payload = encode_query(ds.sample_query(i))
                response = yield from client.request(
                    payload, Address("10.0.0.100", 7000), proto=UDP)
                pairs = decode_result(response.payload)
                hits.append(pairs[0][0] == i)

        env.process(drive(env))
        env.run(until=100000)
        assert hits and all(hits)
