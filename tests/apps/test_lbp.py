"""LBP face verification algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.facever import (
    FaceDatabase,
    chi_square,
    face_bytes,
    lbp_codes,
    lbp_histogram,
    person_label,
    verify,
)
from repro.errors import ConfigError


class TestLbpCodes:
    def test_flat_image_codes_are_all_ones(self):
        # Every neighbour equals the center => every bit set (>=).
        img = np.full((32, 32), 100, dtype=np.uint8)
        codes = lbp_codes(img)
        assert np.all(codes == 0xFF)

    def test_shape(self):
        codes = lbp_codes(np.zeros((32, 32), dtype=np.uint8))
        assert codes.shape == (30, 30)

    def test_known_pattern(self):
        # Bright top-left neighbour only.
        img = np.zeros((32, 32), dtype=np.int32)
        img[0, 0] = 255
        img[1, 1] = 10  # center brighter than its other neighbours? no:
        codes = lbp_codes(img)
        # center (1,1)=10: top-left neighbour 255 >= 10 -> bit 0 set;
        # all-zero neighbours are < 10 -> bits clear.
        assert codes[0, 0] == 0b00000001

    def test_wrong_size_rejected(self):
        with pytest.raises(ConfigError):
            lbp_codes(np.zeros((16, 16), dtype=np.uint8))


class TestHistogram:
    def test_total_mass_equals_pixels(self):
        img = face_bytes(1)
        hist = lbp_histogram(img)
        # 30x30 interior split into 3x3 cells of 8x8 => 9*64 pixels? no:
        # range(0, 30 - 30%8, 8) -> 0,8,16 => 3 cells/side, 24x24 pixels.
        assert hist.sum() == 24 * 24

    def test_histogram_length(self):
        assert len(lbp_histogram(face_bytes(1))) == 9 * 256


class TestChiSquare:
    def test_identity_is_zero(self):
        h = lbp_histogram(face_bytes(2))
        assert chi_square(h, h) == 0.0

    def test_symmetry(self):
        h1 = lbp_histogram(face_bytes(1))
        h2 = lbp_histogram(face_bytes(2))
        assert chi_square(h1, h2) == pytest.approx(chi_square(h2, h1))

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_non_negative(self, seed):
        rng = np.random.default_rng(seed)
        h1 = rng.integers(0, 50, 256).astype(float)
        h2 = rng.integers(0, 50, 256).astype(float)
        assert chi_square(h1, h2) >= 0.0


class TestVerification:
    def test_same_person_verifies(self):
        db = FaceDatabase(16)
        for pid in range(8):
            same, dist = verify(db.probe(pid), face_bytes(pid))
            assert same, "pid %d distance %.1f" % (pid, dist)

    def test_impostor_rejected(self):
        db = FaceDatabase(16)
        for pid in range(8):
            same, dist = verify(db.impostor_probe(pid), face_bytes(pid))
            assert not same, "pid %d distance %.1f" % (pid, dist)

    def test_separation_margin(self):
        """Same-person distances are well below different-person ones."""
        db = FaceDatabase(16)
        same_max = max(verify(db.probe(p), face_bytes(p))[1]
                       for p in range(10))
        diff_min = min(verify(db.impostor_probe(p), face_bytes(p))[1]
                       for p in range(10))
        assert diff_min > 1.5 * same_max


class TestDataset:
    def test_labels_are_12_bytes(self):
        assert len(person_label(3)) == 12

    def test_images_are_1024_bytes(self):
        assert len(face_bytes(3)) == 1024

    def test_identity_is_deterministic(self):
        assert face_bytes(5) == face_bytes(5)

    def test_variants_differ_but_identity_persists(self):
        assert face_bytes(5, variant=1) != face_bytes(5, variant=2)

    def test_preload_items_count(self):
        db = FaceDatabase(12)
        assert len(list(db.items())) == 12
