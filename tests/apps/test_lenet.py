"""LeNet-5 numpy implementation."""

import numpy as np
import pytest

from repro.apps.lenet import (
    LeNet5,
    LeNetApp,
    MnistStream,
    conv2d_valid,
    conv2d_valid_batch,
    image_bytes,
    maxpool2,
    maxpool2_batch,
    render_digit,
    template_set,
)
from repro.errors import ConfigError


class TestLayers:
    def test_conv_identity_kernel(self):
        x = np.arange(25, dtype=float).reshape(1, 5, 5)
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0  # identity
        out = conv2d_valid(x, w, np.zeros(1))
        assert out.shape == (1, 3, 3)
        assert np.allclose(out[0], x[0, 1:4, 1:4])

    def test_conv_matches_naive(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((3, 8, 8))
        w = rng.standard_normal((4, 3, 3, 3))
        b = rng.standard_normal(4)
        fast = conv2d_valid(x, w, b)
        naive = np.zeros_like(fast)
        for k in range(4):
            for i in range(6):
                for j in range(6):
                    naive[k, i, j] = np.sum(x[:, i:i+3, j:j+3] * w[k]) + b[k]
        assert np.allclose(fast, naive)

    def test_conv_channel_mismatch(self):
        with pytest.raises(ConfigError):
            conv2d_valid(np.zeros((2, 5, 5)), np.zeros((1, 3, 3, 3)),
                         np.zeros(1))

    def test_maxpool(self):
        x = np.array([[[1, 2, 5, 0],
                       [3, 4, 1, 1],
                       [0, 0, 9, 2],
                       [7, 1, 3, 4]]], dtype=float)
        out = maxpool2(x)
        assert np.array_equal(out[0], [[4, 5], [7, 9]])

    def test_batched_conv_matches_per_image(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((5, 3, 8, 8))
        w = rng.standard_normal((4, 3, 3, 3))
        b = rng.standard_normal(4)
        batched = conv2d_valid_batch(x, w, b)
        assert batched.shape == (5, 4, 6, 6)
        for i in range(5):
            assert np.allclose(batched[i], conv2d_valid(x[i], w, b))

    def test_batched_conv_channel_mismatch(self):
        with pytest.raises(ConfigError):
            conv2d_valid_batch(np.zeros((2, 2, 5, 5)),
                               np.zeros((1, 3, 3, 3)), np.zeros(1))

    def test_batched_maxpool_matches_per_image(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((4, 2, 6, 6))
        batched = maxpool2_batch(x)
        assert batched.shape == (4, 2, 3, 3)
        for i in range(4):
            assert np.allclose(batched[i], maxpool2(x[i]))


class TestModel:
    def test_forward_shape(self):
        logits = LeNet5().forward(np.zeros(784, dtype=np.uint8))
        assert logits.shape == (10,)

    def test_deterministic_given_seed(self):
        img = image_bytes(3)
        assert LeNet5(seed=5).classify(img) == LeNet5(seed=5).classify(img)

    def test_wrong_size_rejected(self):
        with pytest.raises(ConfigError):
            LeNet5().forward(np.zeros(100))

    def test_forward_batch_matches_forward(self):
        model = LeNet5()
        rng = np.random.default_rng(3)
        images = rng.integers(0, 256, size=(6, 28, 28)).astype(np.uint8)
        batched = model.forward_batch(images)
        assert batched.shape == (6, 10)
        singles = np.stack([model.forward(img) for img in images])
        assert np.allclose(batched, singles)
        assert np.array_equal(model.classify_batch(images),
                              np.argmax(singles, axis=1))

    def test_forward_batch_accepts_bytes(self):
        model = LeNet5()
        imgs = [image_bytes(d) for d in (1, 2, 3)]
        batched = model.forward_batch(imgs)
        singles = np.stack([model.forward(img) for img in imgs])
        assert np.allclose(batched, singles)

    def test_forward_batch_wrong_shape_rejected(self):
        with pytest.raises(ConfigError):
            LeNet5().forward_batch(np.zeros((2, 14, 14), dtype=np.uint8))

    def test_weight_cache_keeps_instances_independent(self):
        a, b = LeNet5(seed=11), LeNet5(seed=11)
        assert np.array_equal(a.fc3_w, b.fc3_w)
        b.fc3_w[0] = 123.0
        assert not np.array_equal(a.fc3_w, b.fc3_w)
        assert np.array_equal(LeNet5(seed=11).fc3_w, a.fc3_w)

    def test_calibrated_model_classifies_clean_digits(self):
        model = LeNet5().calibrate_to_templates(template_set())
        for digit in range(10):
            assert model.classify(render_digit(digit)) == digit

    def test_calibrated_model_tolerates_noise_and_shift(self):
        model = LeNet5().calibrate_to_templates(template_set())
        stream = MnistStream(seed=42)
        pairs = [stream.sample(i) for i in range(50)]
        correct = sum(1 for p, label in pairs if model.classify(p) == label)
        assert correct >= 40  # >=80% on the noisy stream


class TestApp:
    def test_app_encodes_digit(self):
        app = LeNetApp()
        payload = image_bytes(7)
        assert app.decode_response(app.compute(payload)) == 7

    def test_fast_mode_skips_compute(self):
        app = LeNetApp(compute_for_real=False)
        assert app.decode_response(app.compute(image_bytes(7))) == 0

    def test_uses_dynamic_parallelism(self):
        # §6.3: inference kernels are spawned from the polling kernel.
        assert LeNetApp.use_dynamic_parallelism


class TestMnist:
    def test_image_is_784_bytes(self):
        assert len(image_bytes(0)) == 784

    def test_bad_digit_rejected(self):
        with pytest.raises(ConfigError):
            render_digit(10)

    def test_stream_cycles_labels(self):
        stream = MnistStream()
        labels = [stream.sample(i)[1] for i in range(20)]
        assert labels == list(range(10)) * 2
