"""memcached-style KV server."""

import pytest

from repro import Testbed
from repro.apps.memcached import (
    KeyValueStore,
    MemcachedServer,
    MISS,
    STORED,
    encode_get,
    encode_set,
)
from repro.config import XEON_VMA
from repro.errors import ConfigError
from repro.net import Address, ClosedLoopGenerator
from repro.net.packet import TCP, UDP


class TestKeyValueStore:
    def test_set_then_get(self):
        store = KeyValueStore()
        assert store.execute(encode_set(b"k", b"v")) == STORED
        assert store.execute(encode_get(b"k")) == b"v"
        assert store.hits == 1

    def test_miss(self):
        store = KeyValueStore()
        assert store.execute(encode_get(b"nope")) == MISS
        assert store.misses == 1

    def test_binary_safe_values(self):
        store = KeyValueStore()
        value = bytes(range(256))
        store.execute(encode_set(b"bin", value))
        assert store.execute(encode_get(b"bin")) == value

    def test_bad_request_rejected(self):
        with pytest.raises(ConfigError):
            KeyValueStore().execute(b"DELETE everything")

    def test_preload(self):
        store = KeyValueStore()
        store.preload([(b"a", b"1"), (b"b", b"2")])
        assert len(store) == 2


def build_server(port=11211, cores=2):
    tb = Testbed()
    host = tb.machine("10.0.0.2")
    pool = host.pool(count=cores, name="mc")
    server = MemcachedServer(tb.env, host.nic, pool, XEON_VMA, port=port)
    return tb, server


class TestMemcachedServer:
    def test_udp_get_set_roundtrip(self):
        tb, server = build_server()
        client = tb.client("10.0.1.1")
        results = []

        def run(env):
            addr = Address("10.0.0.2", 11211)
            r = yield from client.request(encode_set(b"k1", b"hello"), addr,
                                          proto=UDP)
            results.append(bytes(r.payload))
            r = yield from client.request(encode_get(b"k1"), addr, proto=UDP)
            results.append(bytes(r.payload))

        tb.env.process(run(tb.env))
        tb.run(until=10000)
        assert results == [STORED, b"hello"]

    def test_tcp_access(self):
        tb, server = build_server()
        client = tb.client("10.0.1.1")
        gen = ClosedLoopGenerator(tb.env, client, Address("10.0.0.2", 11211),
                                  concurrency=2,
                                  payload_fn=lambda i: encode_get(b"missing"),
                                  proto=TCP)
        tb.run(until=30000)
        assert gen.completed > 20
        assert server.store.misses > 20

    def test_throughput_scales_with_cores(self):
        """Fig 9's premise: memcached scales linearly with CPU cores."""
        rates = {}
        for cores in (1, 2, 4):
            tb, server = build_server(cores=cores)
            clients = [tb.client("10.0.1.%d" % i) for i in range(1, 4)]
            for c in clients:
                ClosedLoopGenerator(tb.env, c, Address("10.0.0.2", 11211),
                                    concurrency=16,
                                    payload_fn=lambda i: encode_get(b"x"),
                                    proto=UDP)
            tb.warmup_then_measure([server.ops], 5000, 30000)
            rates[cores] = server.ops.per_sec()
        assert rates[2] > rates[1] * 1.6
        assert rates[4] > rates[2] * 1.6

    def test_xeon_core_rate_matches_calibration(self):
        """Fig 9: ~250 Ktps per Xeon core."""
        tb, server = build_server(cores=1)
        clients = [tb.client("10.0.1.%d" % i) for i in range(1, 4)]
        for c in clients:
            ClosedLoopGenerator(tb.env, c, Address("10.0.0.2", 11211),
                                concurrency=16,
                                payload_fn=lambda i: encode_get(b"x"),
                                proto=UDP)
        tb.warmup_then_measure([server.ops], 5000, 30000)
        assert server.ops.per_sec() == pytest.approx(250000, rel=0.25)


class TestExtendedProtocol:
    def test_delete_existing(self):
        from repro.apps.memcached import DELETED, encode_delete

        store = KeyValueStore()
        store.execute(encode_set(b"k", b"v"))
        assert store.execute(encode_delete(b"k")) == DELETED
        assert store.execute(encode_get(b"k")) == MISS

    def test_delete_missing_counts_miss(self):
        from repro.apps.memcached import encode_delete

        store = KeyValueStore()
        assert store.execute(encode_delete(b"nope")) == MISS
        assert store.misses == 1

    def test_stats(self):
        from repro.apps.memcached import encode_stats

        store = KeyValueStore()
        store.execute(encode_set(b"a", b"1"))
        store.execute(encode_get(b"a"))
        store.execute(encode_get(b"b"))
        assert store.execute(encode_stats()) == b"items=1 hits=1 misses=1"
