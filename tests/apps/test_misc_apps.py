"""Vector-scale, echo/spin, and SGX echo applications."""

import numpy as np
import pytest

from repro import Testbed
from repro.apps.base import EchoApp, SpinApp
from repro.apps.sgx_echo import SgxEchoApp, VcaBridgeBaseline, VcaLynxService
from repro.apps.vector_scale import (
    MatrixProductAggressor,
    VectorScaleApp,
    decode_vector,
    encode_vector,
)
from repro.errors import ConfigError


class TestVectorScale:
    def test_scales_by_constant(self):
        app = VectorScaleApp(scale=3)
        vec = np.arange(256, dtype=np.int32)
        out = decode_vector(app.compute(encode_vector(vec)))
        assert np.array_equal(out, vec * 3)

    def test_payload_is_1024_bytes(self):
        assert len(encode_vector(np.zeros(256, dtype=np.int32))) == 1024

    def test_wrong_length_rejected(self):
        with pytest.raises(ConfigError):
            encode_vector(np.zeros(10, dtype=np.int32))


class TestAggressor:
    def test_occupies_llc_and_completes_products(self):
        tb = Testbed()
        host = tb.machine("10.0.0.1")
        pool = host.pool(count=2, name="aggr")
        aggressor = MatrixProductAggressor(tb.env, pool)
        tb.run(until=600000)
        assert aggressor.completed >= 2
        assert aggressor.mean_product_time() >= aggressor.DURATION_XEON_US

    def test_working_set_fills_xeon_llc(self):
        # §3.2: the 1140x1140 matrices "fully occupy" the 15MB LLC, so
        # any co-running working set pushes the socket into thrashing.
        assert MatrixProductAggressor.WORKING_SET > 0.95 * 15 * 1024 * 1024


class TestEchoApps:
    def test_echo_returns_payload(self):
        assert EchoApp().compute(b"abc") == b"abc"

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigError):
            EchoApp(delay=-1)
        with pytest.raises(ConfigError):
            SpinApp(-5)

    def test_spin_returns_fixed_response(self):
        assert SpinApp(10.0, response=b"ok").compute(b"whatever") == b"ok"


class TestSgxEcho:
    def test_enclave_computation_is_real_crypto(self):
        app = SgxEchoApp()
        ct = app.encrypt_value(6)
        out = app.process(ct)
        assert app.decrypt_value(out) == 42

    def test_key_must_be_16_bytes(self):
        with pytest.raises(ConfigError):
            SgxEchoApp(key=b"short")

    def test_lynx_vs_bridge_latency_gap(self):
        """§6.2: the Lynx path is several times faster than the bridge."""
        from repro.net import Address, ClosedLoopGenerator
        from repro.net.packet import UDP
        from repro.lynx.mqueue import MQueue
        from repro.lynx.rmq import RemoteMQManager

        # --- Lynx path ---
        tb = Testbed()
        env = tb.env
        host = tb.machine("10.0.0.1")
        vca = tb.vca()
        snic = tb.bluefield("10.0.0.100")
        runtime, server = tb.lynx_on_bluefield(snic)
        app = SgxEchoApp()
        manager = runtime.attach_accelerator(
            vca.nodes[0], memory=vca.mqueue_memory, needs_barrier=False)
        mq = MQueue(env, vca.mqueue_memory,
                    entries=64, name="vca-mq")
        manager.register(mq)
        server.bind(9000, [mq])
        VcaLynxService(env, vca.nodes[0], mq, app)
        client = tb.client("10.0.1.1")
        payload = app.encrypt_value(5)
        ClosedLoopGenerator(env, client, Address("10.0.0.100", 9000),
                            concurrency=1, payload_fn=lambda i: payload,
                            proto=UDP)
        tb.warmup_then_measure([client.latency], 5000, 30000)
        lynx_p90 = client.latency.p90()

        # --- bridge baseline ---
        tb2 = Testbed()
        host2 = tb2.machine("10.0.0.1")
        vca2 = tb2.vca()
        VcaBridgeBaseline(tb2.env, host2, vca2.nodes[0], app, port=9000)
        client2 = tb2.client("10.0.1.1")
        ClosedLoopGenerator(tb2.env, client2, Address("10.0.0.1", 9000),
                            concurrency=1, payload_fn=lambda i: payload,
                            proto=UDP)
        tb2.warmup_then_measure([client2.latency], 5000, 30000)
        bridge_p90 = client2.latency.p90()

        assert lynx_p90 < bridge_p90 / 2.5
