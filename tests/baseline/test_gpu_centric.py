"""GPU-centric baseline (§3.3, GPUnet-style)."""

import pytest

from repro import Testbed
from repro.apps.base import EchoApp, SpinApp
from repro.baseline.gpu_centric import GpuCentricServer, RDMA_PROTO
from repro.errors import ConfigError
from repro.net import Address, ClosedLoopGenerator


def build(app=None, app_tbs=200, io_tbs=32, helpers=2):
    tb = Testbed()
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu()
    server = GpuCentricServer(tb.env, host, gpu, app or EchoApp(),
                              port=7777, app_threadblocks=app_tbs,
                              io_threadblocks=io_tbs, helper_cores=helpers)
    return tb, host, gpu, server


class TestConstruction:
    def test_threadblocks_bounded_by_gpu(self):
        tb = Testbed()
        host = tb.machine("10.0.0.1")
        gpu = host.add_gpu()
        with pytest.raises(ConfigError):
            GpuCentricServer(tb.env, host, gpu, EchoApp(), port=7777,
                             app_threadblocks=230, io_threadblocks=20)

    def test_needs_io_threadblocks(self):
        tb = Testbed()
        host = tb.machine("10.0.0.1")
        gpu = host.add_gpu()
        with pytest.raises(ConfigError):
            GpuCentricServer(tb.env, host, gpu, EchoApp(), port=7777,
                             io_threadblocks=0)

    def test_occupies_whole_gpu(self):
        tb, host, gpu, server = build(app_tbs=200, io_tbs=40)
        tb.run(until=10)
        assert gpu.sm_slots.in_use == 240


class TestServing:
    def test_rdma_echo_roundtrip(self):
        tb, host, gpu, server = build()
        client = tb.client("10.0.1.1")
        results = []

        def run(env):
            for i in range(5):
                response = yield from client.request(
                    b"msg-%d" % i, Address("10.0.0.1", 7777),
                    proto=RDMA_PROTO)
                results.append(bytes(response.payload))

        tb.env.process(run(tb.env))
        tb.run(until=20000)
        assert results == [b"msg-%d" % i for i in range(5)]

    def test_udp_clients_rejected(self):
        """§3.3: GPU-side stacks are InfiniBand-only."""
        tb, host, gpu, server = build()
        client = tb.client("10.0.1.1")
        gen = ClosedLoopGenerator(tb.env, client, Address("10.0.0.1", 7777),
                                  concurrency=1,
                                  payload_fn=lambda i: b"x", proto="udp",
                                  timeout=2000)
        tb.run(until=20000)
        assert gen.completed == 0
        assert server.dropped > 0

    def test_host_helpers_burn_cpu(self):
        """§3.3: 'the majority of these works require a few host CPU
        cores to operate the GPU-side network I/O'."""
        tb, host, gpu, server = build(app=SpinApp(50.0))
        client = tb.client("10.0.1.1")
        ClosedLoopGenerator(tb.env, client, Address("10.0.0.1", 7777),
                            concurrency=64, payload_fn=lambda i: b"x" * 32,
                            proto=RDMA_PROTO)
        tb.run(until=100000)
        assert server.helpers.utilization > 0.02

    def test_io_threadblocks_limit_app_capacity(self):
        """Fewer app threadblocks => lower compute-bound throughput."""
        rates = {}
        for io_tbs in (16, 120):
            tb, host, gpu, server = build(app=SpinApp(200.0),
                                          app_tbs=240 - io_tbs,
                                          io_tbs=io_tbs, helpers=3)
            client = tb.client("10.0.1.1")
            ClosedLoopGenerator(tb.env, client, Address("10.0.0.1", 7777),
                                concurrency=300,
                                payload_fn=lambda i: b"x" * 32,
                                proto=RDMA_PROTO, timeout=50000)
            tb.warmup_then_measure([client.responses], 20000, 50000)
            rates[io_tbs] = client.responses.per_sec()
        assert rates[120] < 0.65 * rates[16]
