"""Host-centric baseline server behaviour."""

import pytest

from repro import Testbed
from repro.apps.base import EchoApp, SpinApp
from repro.baseline import HostCentricServer
from repro.config import K40M
from repro.errors import ConfigError
from repro.net import Address, ClosedLoopGenerator, OpenLoopGenerator
from repro.net.packet import TCP, UDP


def build(app=None, cores=1, gpus=1, proto=UDP, streams_per_gpu=256):
    tb = Testbed()
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu_list = [host.add_gpu(K40M) for _ in range(gpus)]
    server = HostCentricServer(env, host, gpu_list, app or EchoApp(),
                               port=7777, cores=cores, proto=proto,
                               streams_per_gpu=streams_per_gpu)
    return tb, env, host, server, Address("10.0.0.1", 7777)


class TestBasics:
    def test_needs_a_gpu(self):
        tb = Testbed()
        host = tb.machine("10.0.0.1")
        with pytest.raises(ConfigError):
            HostCentricServer(tb.env, host, [], EchoApp(), port=7777)

    def test_echo_integrity(self):
        tb, env, host, server, addr = build()
        client = tb.client("10.0.1.1")
        results = []

        def run(env):
            for i in range(10):
                response = yield from client.request(b"req-%d" % i, addr,
                                                     proto=UDP)
                results.append(bytes(response.payload))

        env.process(run(env))
        env.run(until=50000)
        assert results == [b"req-%d" % i for i in range(10)]

    def test_host_cpu_is_busy_per_request(self):
        """The defining contrast with Lynx: CPU works for every request."""
        tb, env, host, server, addr = build()
        client = tb.client("10.0.1.1")
        ClosedLoopGenerator(env, client, addr, concurrency=4,
                            payload_fn=lambda i: b"x" * 32, proto=UDP)
        env.run(until=50000)
        assert server.pool.utilization > 0.2

    def test_gpu_round_robin_across_gpus(self):
        tb, env, host, server, addr = build(gpus=2, app=SpinApp(50.0))
        client = tb.client("10.0.1.1")
        ClosedLoopGenerator(env, client, addr, concurrency=8,
                            payload_fn=lambda i: b"x", proto=UDP)
        env.run(until=20000)
        assert host.gpus[0].kernels_launched > 0
        assert host.gpus[1].kernels_launched > 0

    def test_tcp_service(self):
        tb, env, host, server, addr = build(proto=TCP)
        client = tb.client("10.0.1.1")
        gen = ClosedLoopGenerator(env, client, addr, concurrency=2,
                                  payload_fn=lambda i: b"t", proto=TCP)
        env.run(until=50000)
        assert gen.completed > 20


class TestBottlenecks:
    def test_driver_lock_limits_throughput(self):
        """Kernel time is 0: throughput is driver/CPU-bound."""
        tb, env, host, server, addr = build(app=SpinApp(0.0))
        client = tb.client("10.0.1.1")
        OpenLoopGenerator(env, client, addr, rate_per_us=1.0,
                          payload_fn=lambda i: b"x" * 16, proto=UDP)
        tb.warmup_then_measure([client.responses], 20000, 50000)
        tput = client.responses.per_sec()
        # Well below the offered 1M/s: tens of K at most.
        assert 10000 < tput < 80000

    def test_stream_pool_bounds_inflight(self):
        tb, env, host, server, addr = build(app=SpinApp(2000.0),
                                            streams_per_gpu=4)
        client = tb.client("10.0.1.1")
        OpenLoopGenerator(env, client, addr, rate_per_us=0.05,
                          payload_fn=lambda i: b"x", proto=UDP)
        env.run(until=30000)
        assert server.streams.in_use <= 4

    def test_invocation_overhead_single_request(self):
        """§3.2: ~100us kernel => ~130us pipeline (30us overhead)."""
        tb, env, host, server, addr = build(app=SpinApp(100.0))
        client = tb.client("10.0.1.1")
        ClosedLoopGenerator(env, client, addr, concurrency=1,
                            payload_fn=lambda i: b"x" * 4, proto=UDP)
        tb.warmup_then_measure([client.latency], 5000, 20000)
        # e2e also includes network + stack + client: allow some slack
        assert 125 <= client.latency.p50() <= 155
