"""Campaign declarations reproduce the hand-written ablation studies.

The eight ``ALL_STUDIES`` used to be hand-rolled modules; they are now
:class:`~repro.experiments.campaign.Campaign` declarations.  The golden
fixture (``tests/fixtures/golden_ablation_rows.json``) was captured
from the pre-refactor code at the fixed seed — the declarations must
reproduce its rows and notes bit-identically.

Only the cheap studies run here (the full set takes ~50s and is
covered by ``benchmarks/test_ablations.py``, which asserts parity for
all eight).
"""

import json
import os

import pytest

from repro import telemetry
from repro.experiments import ablations
from repro.experiments.campaign import describe

_FIXTURE = os.path.join(os.path.dirname(__file__), os.pardir, "fixtures",
                        "golden_ablation_rows.json")
with open(_FIXTURE) as _fh:
    GOLDEN = json.load(_fh)

#: studies cheap enough for the tier-1 suite (a few seconds total); the
#: benchmarks assert parity for the full set
CHEAP = ("ABL-DP", "ABL-CO", "ABL-RS", "ABL-CS", "ABL-DC")

_BY_ID = {c.exp_id: c for c in ablations.ALL_STUDIES}


class TestGoldenRowParity:
    @pytest.mark.parametrize("exp_id", CHEAP)
    def test_rows_and_notes_bit_identical(self, exp_id):
        with telemetry.scope():
            result = _BY_ID[exp_id](fast=GOLDEN["fast"],
                                    seed=GOLDEN["seed"])
        rows = json.loads(json.dumps(result.rows))
        assert rows == GOLDEN["rows"][exp_id]
        assert list(result.notes) == GOLDEN["notes"][exp_id]

    def test_fixture_covers_all_eight_studies(self):
        assert set(GOLDEN["rows"]) == set(_BY_ID)


class TestDocstringRegeneration:
    """Satellite fix: the module docstring used to list five of the
    eight studies by hand; it is now generated from the registry."""

    def test_every_study_listed(self):
        doc = ablations.__doc__
        for camp in ablations.ALL_STUDIES:
            assert camp.exp_id in doc, camp.exp_id
            assert camp.slug in doc, camp.slug

    def test_listing_matches_registry_output(self):
        assert describe(ablations.ALL_STUDIES) in ablations.__doc__

    def test_slugs_are_the_module_bindings(self):
        for camp in ablations.ALL_STUDIES:
            assert getattr(ablations, camp.slug) is camp
