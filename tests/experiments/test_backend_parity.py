"""Cross-backend golden identity: heap vs wheel (DESIGN.md §4.11).

The calendar-queue backend is only allowed to exist because it is
observably identical to the heap: same result rows, same merged
telemetry, same CLI output — at any worker count.  These tests pin that
contract on real experiment workloads (E09 end-to-end; a reduced E04
grid through the sweep executor).  Frame execution (DESIGN.md §4.14)
rides the same contract on a second axis: scalar chains and coalesced
frames must produce identical rows on either backend.
"""

import contextlib

import pytest

from repro import telemetry
from repro.experiments import e04_fig6_throughput_grid as e04
from repro.experiments import e09_fig8a_lenet as e09
from repro.experiments.__main__ import main
from repro.experiments.sweep import Point, run_points
from repro.sim import configure_backend


@contextlib.contextmanager
def _backend(name):
    configure_backend(name)
    try:
        yield
    finally:
        configure_backend(None)


#: merged-metrics keys that measure the host or the scheduler's own
#: internals rather than the model; everything else must match exactly.
#: ``events_processed``/``events_per_request`` are kernel internals too:
#: frame execution (on by default for wheel, off for heap) coalesces
#: scheduler events by design while leaving every model observable —
#: including ``requests_completed`` — bit-identical (DESIGN.md §4.14).
_HOST_KEYS = frozenset((
    "sim.kernel.wall_seconds",
    "sim.kernel.heap_peak",
    "sim.kernel.charges_created",
    "sim.kernel.charges_reused",
    "sim.kernel.events_processed",
    "sim.kernel.events_per_request",
))


def _model_metrics(snapshot):
    return {k: v for k, v in snapshot.items()
            if k not in _HOST_KEYS and "wall" not in k}


def _mini_grid():
    """Four cheap E04 points spanning three designs and both backends'
    interesting paths (doorbells, RMQ rings, RDMA, PCIe)."""
    spec = [("host-centric", 20.0, 1), ("lynx-bluefield", 20.0, 1),
            ("lynx-bluefield", 20.0, 8), ("lynx-xeon-6core", 200.0, 4)]
    return [Point(("E04-mini", design, exec_us, n_mq), e04.measure_design,
                  dict(design=design, exec_us=exec_us, n_mq=n_mq,
                       measure=2000.0, warmup=500.0),
                  root_seed=42)
            for design, exec_us, n_mq in spec]


@pytest.fixture(scope="module")
def heap_grid():
    """Reference rates + merged model metrics for the mini grid."""
    with _backend("heap"), telemetry.scope() as reg:
        rates = run_points(_mini_grid(), jobs=1)
        snap = reg.snapshot()
    return rates, _model_metrics(snap)


class TestExperimentRows:
    def test_e09_rows_identical(self):
        with _backend("heap"):
            heap_rows = e09.run(fast=True, seed=42).rows
        with _backend("wheel"):
            wheel_rows = e09.run(fast=True, seed=42).rows
        assert heap_rows == wheel_rows

    def test_e09_rows_identical_scalar_vs_frame_both_backends(
            self, monkeypatch):
        """The frame axis, explicitly: backend defaults already cross
        scalar (heap) with frame (wheel), but each backend must also
        match *itself* with frame execution flipped."""
        rows = {}
        for backend in ("heap", "wheel"):
            for frame in ("0", "1"):
                monkeypatch.setenv("REPRO_FRAME_EXEC", frame)
                with _backend(backend):
                    rows[(backend, frame)] = e09.run(fast=True, seed=42).rows
        reference = rows[("heap", "0")]
        for key, got in rows.items():
            assert got == reference, key


class TestSweepGrid:
    def test_serial_rates_and_metrics_identical(self, heap_grid):
        heap_rates, heap_metrics = heap_grid
        with _backend("wheel"), telemetry.scope() as reg:
            wheel_rates = run_points(_mini_grid(), jobs=1)
            wheel_metrics = _model_metrics(reg.snapshot())
        assert wheel_rates == heap_rates
        assert wheel_metrics == heap_metrics

    def test_parallel_wheel_matches_serial_heap(self, heap_grid):
        """Fan the wheel-backend grid across workers: values must equal
        the serial heap reference bit-for-bit (workers inherit the
        backend through the pool initializer)."""
        heap_rates, heap_metrics = heap_grid
        with _backend("wheel"), telemetry.scope() as reg:
            wheel_rates = run_points(_mini_grid(), jobs=4)
            wheel_metrics = _model_metrics(reg.snapshot())
        assert wheel_rates == heap_rates
        assert wheel_metrics == heap_metrics


class TestCliBackendFlag:
    def test_sim_backend_wheel_runs_and_resets(self, capsys):
        from repro.sim import environment as env_mod

        assert main(["E01", "--sim-backend", "wheel",
                     "--kernel-stats"]) == 0
        out = capsys.readouterr().out
        assert "[E01]" in out
        assert "simulator kernel [wheel backend]:" in out
        # the flag must not leak into later runs
        assert env_mod._configured_backend is None

    def test_same_rows_printed_either_backend(self, capsys):
        assert main(["E01"]) == 0
        heap_out = capsys.readouterr().out
        assert main(["E01", "--sim-backend", "wheel"]) == 0
        wheel_out = capsys.readouterr().out
        assert heap_out == wheel_out
